// The per-optimization ablation switches must actually reach the layer they
// claim to disable: zero_copy_off deep-copies every send, mac_memo_off
// silences the verification memo (and its counter), pipeline_off caps the
// WAN pipeline at depth 1 and costs real throughput. Each test observes the
// mechanism, not just the flag.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/buffer.hpp"
#include "sim/actor.hpp"
#include "sim/simulation.hpp"
#include "workload/experiment.hpp"

namespace byzcast::workload {
namespace {

ExperimentConfig small_lan() {
  ExperimentConfig cfg;
  cfg.num_groups = 2;
  cfg.clients_per_group = 10;
  cfg.workload.pattern = Pattern::kMixed;
  cfg.warmup = 300 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = 5;
  return cfg;
}

std::uint64_t sum_counters_with_prefix(const ExperimentResult& res,
                                       const std::string& prefix) {
  std::uint64_t total = 0;
  for (const auto& [name, counter] : res.metrics->counters()) {
    if (name.rfind(prefix, 0) == 0) total += counter.value();
  }
  return total;
}

TEST(Ablation, ZeroCopyOffMaterializesEverySend) {
  auto cfg = small_lan();
  const std::uint64_t before_on = Buffer::materializations();
  (void)run_experiment(cfg);
  const std::uint64_t with_zero_copy = Buffer::materializations() - before_on;

  cfg.zero_copy_off = true;
  const std::uint64_t before_off = Buffer::materializations();
  (void)run_experiment(cfg);
  const std::uint64_t without = Buffer::materializations() - before_off;

  // With the fan-out optimization a message materializes once and is
  // ref-counted through its sends; with it off, every send deep-copies.
  // (Replies and other point-to-point traffic materialize either way, so
  // the delta is well short of the raw fan-out factor.)
  EXPECT_GT(without, with_zero_copy + with_zero_copy / 2);
}

// Duplicate-verification fixture for the MAC memo: the memo only pays off
// when a receiver sees the same (sender, payload) pair more than once
// (retransmits, relayed copies) — clean protocol runs never duplicate, so
// this drives the seam directly through the sim profile the experiment
// harness configures.
class DupReceiver final : public sim::Actor {
 public:
  DupReceiver(sim::Simulation& sim, std::string name)
      : Actor(sim, std::move(name)) {}
  int verified = 0;

 protected:
  void on_message(const sim::WireMessage& msg) override {
    if (verify(msg)) ++verified;
  }
};

class DupSender final : public sim::Actor {
 public:
  DupSender(sim::Simulation& sim, std::string name)
      : Actor(sim, std::move(name)) {}
  void fire(ProcessId to, int copies) {
    for (int i = 0; i < copies; ++i) {
      send(to, to_bytes("identical bytes every time"));
    }
  }

 protected:
  void on_message(const sim::WireMessage&) override {}
};

TEST(Ablation, MacMemoOffForcesFullReverification) {
  // Memo on (default profile, real HMACs): the second and third identical
  // copies are answered from the cache.
  {
    sim::Simulation sim(11, sim::Profile::lan());
    DupReceiver rx(sim, "rx");
    DupSender tx(sim, "tx");
    tx.fire(rx.id(), 3);
    sim.run_until(1 * kSecond);
    EXPECT_EQ(rx.verified, 3);
    EXPECT_EQ(rx.mac_memo_hits(), 2u);
  }
  // mac_memo_off: same traffic, every copy pays the full HMAC again.
  {
    sim::Profile profile = sim::Profile::lan();
    profile.mac_memo_off = true;
    sim::Simulation sim(11, profile);
    DupReceiver rx(sim, "rx");
    DupSender tx(sim, "tx");
    tx.fire(rx.id(), 3);
    sim.run_until(1 * kSecond);
    EXPECT_EQ(rx.verified, 3);
    EXPECT_EQ(rx.mac_memo_hits(), 0u);
  }
}

TEST(Ablation, MacMemoOffStillCompletesTraffic) {
  // End-to-end plumbing: the config flag reaches the run (exported hit
  // counters all zero) and only degrades, never breaks, the protocol.
  auto cfg = small_lan();
  cfg.mac_memo_off = true;
  const auto res = run_experiment(cfg);
  ASSERT_NE(res.metrics, nullptr);
  EXPECT_EQ(sum_counters_with_prefix(res, "replica.mac_memo_hits."), 0u);
  EXPECT_GT(res.completed, 100u);
}

TEST(Ablation, PipelineOffCostsWanThroughput) {
  // PR 6's consensus pipelining is worth ~2x on the WAN (depth-1 ceiling is
  // ~2.9k msg/s, the preset depth ~6k). Offer 4000/s open loop: the
  // pipelined run sustains it, the depth-1 run saturates well below.
  ExperimentConfig cfg;
  cfg.environment = Environment::kWan;
  cfg.num_groups = 2;
  cfg.clients_per_group = 100;
  cfg.workload.pattern = Pattern::kMixed;
  cfg.open_loop_total_rate = 4000.0;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 3 * kSecond;
  cfg.seed = 5;
  const auto base = run_experiment(cfg);

  cfg.pipeline_off = true;
  const auto off = run_experiment(cfg);

  EXPECT_GT(base.throughput, 3'500.0);
  EXPECT_GT(base.throughput, off.throughput * 1.2);
}

}  // namespace
}  // namespace byzcast::workload
