// Workload spec parsing: the JSON schema of configs/workloads/*.json maps
// onto ExperimentConfig/RateSchedule, defaults hold when fields are absent,
// and malformed documents are rejected with a diagnostic instead of running
// a half-configured experiment.
#include "workload/spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"

namespace byzcast::workload {
namespace {

std::optional<WorkloadSpec> parse(const std::string& text,
                                  std::string* error = nullptr) {
  std::string json_error;
  const auto doc = Json::parse(text, &json_error);
  EXPECT_TRUE(doc.has_value()) << json_error;
  if (!doc) return std::nullopt;
  return parse_workload_spec(*doc, error);
}

TEST(WorkloadSpec, ParsesFullSweepDocument) {
  const auto spec = parse(R"({
    "name": "wan-sweep",
    "protocol": "byzcast-2l",
    "environment": "wan",
    "num_groups": 2,
    "f": 1,
    "clients_per_group": 100,
    "payload_size": 64,
    "warmup_ms": 2000,
    "duration_ms": 6000,
    "seed": 42,
    "monitors": true,
    "workload": {"pattern": "mixed", "mixed_local": 10, "mixed_global": 1},
    "rate": {"kind": "sweep", "rates": [1500, 3000, 4500],
             "knee_p99_factor": 4.0, "knee_goodput_floor": 0.9,
             "bisect_iters": 2},
    "ablations": ["pipeline_off", "zero_copy_off"]
  })");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "wan-sweep");
  EXPECT_EQ(spec->base.protocol, Protocol::kByzCast2Level);
  EXPECT_EQ(spec->base.environment, Environment::kWan);
  EXPECT_EQ(spec->base.num_groups, 2);
  EXPECT_EQ(spec->base.clients_per_group, 100);
  EXPECT_EQ(spec->base.payload_size, 64u);
  EXPECT_EQ(spec->base.warmup, 2 * kSecond);
  EXPECT_EQ(spec->base.duration, 6 * kSecond);
  EXPECT_EQ(spec->base.seed, 42u);
  EXPECT_TRUE(spec->base.monitors);
  EXPECT_EQ(spec->base.workload.pattern, Pattern::kMixed);
  EXPECT_EQ(spec->schedule.kind, RateSchedule::Kind::kSweep);
  ASSERT_EQ(spec->schedule.rates.size(), 3u);
  EXPECT_DOUBLE_EQ(spec->schedule.rates[1], 3000.0);
  EXPECT_DOUBLE_EQ(spec->schedule.knee_p99_factor, 4.0);
  EXPECT_DOUBLE_EQ(spec->schedule.knee_goodput_floor, 0.9);
  EXPECT_EQ(spec->schedule.bisect_iters, 2);
  ASSERT_EQ(spec->ablations.size(), 2u);
  EXPECT_EQ(spec->ablations[0], "pipeline_off");
  // Listing an ablation must not mutate the base config — sweep mode runs
  // the baseline curve from it.
  EXPECT_FALSE(spec->base.pipeline_off);
  EXPECT_FALSE(spec->base.zero_copy_off);
}

TEST(WorkloadSpec, MinimalDocumentKeepsDefaults) {
  const auto spec = parse(R"({"name": "tiny"})");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->base.protocol, Protocol::kByzCast2Level);
  EXPECT_EQ(spec->base.environment, Environment::kLan);
  EXPECT_EQ(spec->schedule.kind, RateSchedule::Kind::kFixed);
  EXPECT_DOUBLE_EQ(spec->schedule.fixed_rate, 0.0);  // 0 = closed loop
  EXPECT_TRUE(spec->ablations.empty());
  EXPECT_LT(spec->base.open_loop_local_share, 0.0);  // pattern's own mix
}

TEST(WorkloadSpec, ParsesStagePipelineKnobs) {
  const auto spec = parse(R"({
    "name": "vertical",
    "verify_workers": 4,
    "exec_shards": 8,
    "ablations": ["stage_pipeline_off"]
  })");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->base.verify_workers, 4u);
  EXPECT_EQ(spec->base.exec_shards, 8u);
  // The ablation is listed, not applied — sweep mode derives the off-curve.
  EXPECT_FALSE(spec->base.stage_pipeline_off);
  ASSERT_EQ(spec->ablations.size(), 1u);
  EXPECT_EQ(spec->ablations[0], "stage_pipeline_off");

  // Absent knobs default to the serial pipeline.
  const auto plain = parse(R"({"name": "tiny"})");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->base.verify_workers, 0u);
  EXPECT_EQ(plain->base.exec_shards, 0u);
  EXPECT_FALSE(plain->base.stage_pipeline_off);
}

TEST(WorkloadSpec, ParsesZipfWorkloadAndLocalShare) {
  const auto spec = parse(R"({
    "name": "zipf",
    "workload": {"pattern": "zipf", "zipf_s": 0.99, "global_fanout": 2,
                 "local_share": 0.9},
    "rate": {"kind": "fixed", "value": 4000}
  })");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->base.workload.pattern, Pattern::kZipf);
  EXPECT_DOUBLE_EQ(spec->base.workload.zipf_s, 0.99);
  EXPECT_DOUBLE_EQ(spec->base.open_loop_local_share, 0.9);
  EXPECT_DOUBLE_EQ(spec->schedule.fixed_rate, 4000.0);
}

TEST(WorkloadSpec, RejectsBadDocuments) {
  const struct {
    const char* text;
    const char* why;
  } cases[] = {
      {R"({})", "missing name"},
      {R"({"name": "x", "protocol": "paxos"})", "unknown protocol"},
      {R"({"name": "x", "environment": "moon"})", "unknown environment"},
      {R"({"name": "x", "workload": {"pattern": "hot"}})", "unknown pattern"},
      {R"({"name": "x", "workload": {"zipf_s": -1}})", "negative zipf_s"},
      {R"({"name": "x", "workload": {"local_share": 1.5}})",
       "local_share > 1"},
      {R"({"name": "x", "rate": {"kind": "warp"}})", "unknown rate kind"},
      {R"({"name": "x", "rate": {"kind": "sweep", "rates": []}})",
       "empty rates"},
      {R"({"name": "x", "rate": {"kind": "sweep", "rates": [100, 100]}})",
       "non-increasing rates"},
      {R"({"name": "x", "rate": {"kind": "step", "rates": [0, 100]}})",
       "non-positive rate"},
      {R"({"name": "x", "rate": {"kind": "sweep", "rates": [1, 2],
           "knee_p99_factor": 1.0}})",
       "knee factor must exceed 1"},
      {R"({"name": "x", "rate": {"kind": "sweep", "rates": [1, 2],
           "knee_goodput_floor": 1.5}})",
       "goodput floor above 1"},
      {R"({"name": "x", "ablations": ["warp_drive_off"]})",
       "unknown ablation"},
      {R"({"name": "x", "num_groups": 0})", "no groups"},
      {R"({"name": "x", "duration_ms": 0})", "empty window"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(parse(c.text, &error).has_value()) << c.why;
    EXPECT_FALSE(error.empty()) << c.why;
  }
}

TEST(WorkloadSpec, ApplyAblationSetsExactlyTheNamedSwitch) {
  ExperimentConfig cfg;
  EXPECT_TRUE(apply_ablation(cfg, "zero_copy_off"));
  EXPECT_TRUE(cfg.zero_copy_off);
  EXPECT_FALSE(cfg.mac_memo_off);

  cfg = ExperimentConfig{};
  EXPECT_TRUE(apply_ablation(cfg, "mac_memo_off"));
  EXPECT_TRUE(cfg.mac_memo_off);

  cfg = ExperimentConfig{};
  EXPECT_TRUE(apply_ablation(cfg, "mac_memo_on"));
  EXPECT_TRUE(cfg.real_macs);  // the memo-ON companion of the MAC pair
  EXPECT_FALSE(cfg.mac_memo_off);

  cfg = ExperimentConfig{};
  EXPECT_TRUE(apply_ablation(cfg, "pipeline_off"));
  EXPECT_TRUE(cfg.pipeline_off);

  cfg = ExperimentConfig{};
  EXPECT_TRUE(apply_ablation(cfg, "batch_adapt_off"));
  EXPECT_TRUE(cfg.batch_adapt_off);

  cfg = ExperimentConfig{};
  EXPECT_TRUE(apply_ablation(cfg, "stage_pipeline_off"));
  EXPECT_TRUE(cfg.stage_pipeline_off);

  cfg = ExperimentConfig{};
  EXPECT_FALSE(apply_ablation(cfg, "warp_drive_off"));
}

TEST(WorkloadSpec, LoadsCheckedInSpecFiles) {
  // The shipped spec files must stay parseable — they are the CI sweep's
  // and the cluster smoke's inputs.
  for (const char* name :
       {"wan_sweep.json", "lan_sweep.json", "zipf_mix.json",
        "net_smoke.json", "ci_sweep.json"}) {
    std::string error;
    const auto spec = load_workload_spec(
        std::string(BZC_CONFIGS_DIR) + "/workloads/" + name, &error);
    EXPECT_TRUE(spec.has_value()) << name << ": " << error;
  }
}

TEST(WorkloadSpec, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(load_workload_spec("/nonexistent/spec.json", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace byzcast::workload
