#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace byzcast::workload {
namespace {

std::vector<GroupId> targets(int n) {
  std::vector<GroupId> out;
  for (int i = 0; i < n; ++i) out.push_back(GroupId{i});
  return out;
}

TEST(Generator, LocalOnlyAlwaysHome) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kLocalOnly;
  DestinationGenerator gen(cfg, targets(4), /*home=*/2);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.next(rng), std::vector<GroupId>{GroupId{2}});
  }
}

TEST(Generator, UniformPairsAreValidAndCovering) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kGlobalUniformPairs;
  DestinationGenerator gen(cfg, targets(4), 0);
  Rng rng(2);
  std::map<std::pair<int, int>, int> seen;
  for (int i = 0; i < 6000; ++i) {
    auto dst = gen.next(rng);
    ASSERT_EQ(dst.size(), 2u);
    ASSERT_NE(dst[0], dst[1]);
    const auto key = std::minmax(dst[0].value, dst[1].value);
    ++seen[{key.first, key.second}];
  }
  EXPECT_EQ(seen.size(), 6u);  // all C(4,2) pairs occur
  for (const auto& [pair, count] : seen) EXPECT_GT(count, 700);
}

TEST(Generator, SkewedPairsOnlyTwoDestinations) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kGlobalSkewedPairs;
  DestinationGenerator gen(cfg, targets(4), 0);
  Rng rng(3);
  int first = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto dst = gen.next(rng);
    ASSERT_EQ(dst.size(), 2u);
    if (dst[0] == GroupId{0}) {
      EXPECT_EQ(dst[1], GroupId{1});
      ++first;
    } else {
      EXPECT_EQ(dst[0], GroupId{2});
      EXPECT_EQ(dst[1], GroupId{3});
    }
  }
  EXPECT_NEAR(first, 1000, 100);
}

TEST(Generator, MixedRatioApproximatesTenToOne) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kMixed;
  cfg.mixed_local = 10;
  cfg.mixed_global = 1;
  DestinationGenerator gen(cfg, targets(4), 1);
  Rng rng(4);
  int local = 0;
  const int n = 22000;
  for (int i = 0; i < n; ++i) {
    const auto dst = gen.next(rng);
    if (dst.size() == 1) {
      EXPECT_EQ(dst[0], GroupId{1});  // home group
      ++local;
    } else {
      ASSERT_EQ(dst.size(), 2u);
    }
  }
  EXPECT_NEAR(static_cast<double>(local) / n, 10.0 / 11.0, 0.01);
}

TEST(Generator, TwoGroupPairsAreTheOnlyPair) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kGlobalUniformPairs;
  DestinationGenerator gen(cfg, targets(2), 0);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    auto dst = gen.next(rng);
    std::sort(dst.begin(), dst.end());
    EXPECT_EQ(dst, (std::vector<GroupId>{GroupId{0}, GroupId{1}}));
  }
}

TEST(Generator, FanoutProducesDistinctGroups) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kGlobalFanout;
  cfg.global_fanout = 4;
  DestinationGenerator gen(cfg, targets(8), 0);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    auto dst = gen.next(rng);
    ASSERT_EQ(dst.size(), 4u);
    std::sort(dst.begin(), dst.end());
    EXPECT_EQ(std::adjacent_find(dst.begin(), dst.end()), dst.end());
    for (const GroupId g : dst) {
      EXPECT_GE(g.value, 0);
      EXPECT_LT(g.value, 8);
    }
  }
}

TEST(Generator, FanoutFullBroadcastCoversAllGroups) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kGlobalFanout;
  cfg.global_fanout = 8;
  DestinationGenerator gen(cfg, targets(8), 0);
  Rng rng(7);
  auto dst = gen.next(rng);
  std::sort(dst.begin(), dst.end());
  ASSERT_EQ(dst.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)].value, i);
}

TEST(Generator, FanoutIsUniformOverGroups) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kGlobalFanout;
  cfg.global_fanout = 2;
  DestinationGenerator gen(cfg, targets(4), 0);
  Rng rng(8);
  std::map<int, int> hits;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    for (const GroupId g : gen.next(rng)) ++hits[g.value];
  }
  for (const auto& [g, count] : hits) {
    EXPECT_NEAR(count, n * 2 / 4, n / 20) << "group " << g;
  }
}

}  // namespace
}  // namespace byzcast::workload
