#include "workload/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace byzcast::workload {
namespace {

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(1234.5, 1), "1234.5");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Report, TableAlignsColumns) {
  ::testing::internal::CaptureStdout();
  print_table({"col", "value"},
              {{"aaaa", "1"}, {"b", "22222"}});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("col"), std::string::npos);
  EXPECT_NE(out.find("aaaa"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Report, HeaderFormat) {
  ::testing::internal::CaptureStdout();
  print_header("Figure 42");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(out, "\n== Figure 42 ==\n");
}

TEST(Report, CdfPrintsPoints) {
  LatencyRecorder rec;
  for (int i = 1; i <= 10; ++i) rec.record(i, i * kMillisecond);
  ::testing::internal::CaptureStdout();
  print_cdf("test", rec, 5);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("test latency CDF (n=10):"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);  // reaches CDF 1.0
}

TEST(Report, CdfCsvWritesFile) {
  LatencyRecorder rec;
  for (int i = 1; i <= 20; ++i) rec.record(i, i * kMillisecond);
  const std::string path = ::testing::TempDir() + "bzc_cdf_test.csv";
  write_cdf_csv(path, rec, 10);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "latency_ms,cdf");
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_GT(lines, 5);
}

TEST(Report, MetricsSidecarWritesObservabilityJson) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::kByzCast2Level;
  cfg.num_groups = 2;
  cfg.clients_per_group = 2;
  cfg.workload.pattern = Pattern::kGlobalUniformPairs;
  cfg.warmup = 200 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = 5;
  const ExperimentResult result = run_experiment(cfg);
  ASSERT_NE(result.metrics, nullptr);
  ASSERT_NE(result.trace, nullptr);

  const std::string path = ::testing::TempDir() + "bzc_metrics_test.json";
  write_metrics_sidecar(path, result);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // Acceptance-criterion contents: per-group a-delivery counters, per-replica
  // CPU-busy fractions, and a reconstructed multi-hop trace.
  EXPECT_NE(json.find("\"group.a_deliveries.g0\""), std::string::npos);
  EXPECT_NE(json.find("\"group.a_deliveries.g1\""), std::string::npos);
  EXPECT_NE(json.find("\"replica.cpu_busy_mean.g0.r0\""), std::string::npos);
  EXPECT_NE(json.find("\"actor.queue_depth.g0.r0\""), std::string::npos);
  EXPECT_NE(json.find("\"example_multi_hop\""), std::string::npos);
  EXPECT_NE(json.find("\"a_delivered\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, MetricsSidecarIsNoOpWithoutObservability) {
  ExperimentResult result;  // metrics/trace left null
  const std::string path =
      ::testing::TempDir() + "bzc_metrics_absent_test.json";
  write_metrics_sidecar(path, result);
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

TEST(Report, SeriesCsvWritesRows) {
  const std::string path = ::testing::TempDir() + "bzc_series_test.csv";
  write_series_csv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
}

}  // namespace
}  // namespace byzcast::workload
