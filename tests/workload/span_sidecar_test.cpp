// The span sidecar and Chrome trace must be byte-identical across same-seed
// simulation runs: the experiment harness, the span pipeline, and both
// exporters are fully deterministic (integer nanoseconds, sorted message
// ids, no host-time or pointer-order leakage).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "workload/report.hpp"

namespace byzcast::workload {
namespace {

ExperimentConfig traced_config() {
  ExperimentConfig config;
  config.protocol = Protocol::kByzCast2Level;
  config.num_groups = 2;
  config.clients_per_group = 3;
  config.workload.pattern = Pattern::kMixed;
  config.warmup = 50 * kMillisecond;
  config.duration = 150 * kMillisecond;
  config.seed = 11;
  config.span_tracing = true;
  config.span_sample_every = 1;
  config.monitors = true;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SpanSidecar, SameSeedRunsAreByteIdentical) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bzc_span_sidecar").string();
  const ExperimentConfig config = traced_config();

  std::vector<std::string> sidecars, chromes;
  for (int run = 0; run < 2; ++run) {
    const ExperimentResult result = run_experiment(config);
    ASSERT_NE(result.spans, nullptr);
    EXPECT_GT(result.spans->spans().size(), 0u);
    const std::string spans_path =
        dir + "/spans_" + std::to_string(run) + ".json";
    const std::string chrome_path =
        dir + "/chrome_" + std::to_string(run) + ".json";
    write_span_sidecar(spans_path, result, config.f);
    write_chrome_trace(chrome_path, result);
    sidecars.push_back(slurp(spans_path));
    chromes.push_back(slurp(chrome_path));
  }
  ASSERT_FALSE(sidecars[0].empty());
  ASSERT_FALSE(chromes[0].empty());
  EXPECT_EQ(sidecars[0], sidecars[1]);
  EXPECT_EQ(chromes[0], chromes[1]);
  std::filesystem::remove_all(dir);
}

TEST(SpanSidecar, SchemaAndMonitorsOnCleanRun) {
  const ExperimentResult result = run_experiment(traced_config());
  ASSERT_NE(result.monitors, nullptr);
  EXPECT_EQ(result.monitors->total_violations(), 0u);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bzc_span_schema").string();
  const std::string path = dir + "/spans.json";
  write_span_sidecar(path, result, 1);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"schema\":\"byzcast-spans-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"messages\":["), std::string::npos);
  EXPECT_NE(text.find("\"aggregates\":{\"local\":"), std::string::npos);
  EXPECT_NE(text.find("\"edges\":["), std::string::npos);
  EXPECT_NE(text.find("\"violations_total\":0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(SpanSidecar, NoOpWithoutSpans) {
  ExperimentConfig config = traced_config();
  config.span_tracing = false;
  config.monitors = false;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.spans, nullptr);
  const std::string path =
      (std::filesystem::temp_directory_path() / "bzc_span_noop.json")
          .string();
  write_span_sidecar(path, result, 1);
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace byzcast::workload
