// Smoke tests of the experiment harness (short runs): every protocol
// completes traffic, reports sane statistics, and the headline qualitative
// relations of §V hold even at reduced scale.
#include "workload/experiment.hpp"

#include <gtest/gtest.h>

namespace byzcast::workload {
namespace {

ExperimentConfig quick(Protocol protocol, Pattern pattern, int groups,
                       int clients_per_group) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.num_groups = groups;
  cfg.clients_per_group = clients_per_group;
  cfg.workload.pattern = pattern;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 1500 * kMillisecond;
  cfg.seed = 99;
  return cfg;
}

TEST(Experiment, ByzCastLocalTrafficFlows) {
  const auto res = run_experiment(
      quick(Protocol::kByzCast2Level, Pattern::kLocalOnly, 2, 10));
  EXPECT_GT(res.throughput, 100.0);
  EXPECT_GT(res.completed, 100u);
  EXPECT_EQ(res.throughput_global, 0.0);
  EXPECT_GT(res.latency_local.count(), 0u);
  EXPECT_GT(res.a_deliveries, 0u);
}

TEST(Experiment, ByzCastGlobalTrafficFlows) {
  const auto res = run_experiment(
      quick(Protocol::kByzCast2Level, Pattern::kGlobalUniformPairs, 2, 10));
  EXPECT_GT(res.throughput, 50.0);
  EXPECT_EQ(res.throughput_local, 0.0);
  EXPECT_GT(res.latency_global.count(), 0u);
}

TEST(Experiment, BaselineFlows) {
  const auto res =
      run_experiment(quick(Protocol::kBaseline, Pattern::kMixed, 2, 10));
  EXPECT_GT(res.throughput, 50.0);
}

TEST(Experiment, BftSmartFlows) {
  const auto res =
      run_experiment(quick(Protocol::kBftSmart, Pattern::kLocalOnly, 1, 20));
  EXPECT_GT(res.throughput, 100.0);
  EXPECT_EQ(res.throughput, res.throughput_local);
}

TEST(Experiment, ThreeLevelFlows) {
  const auto res = run_experiment(quick(
      Protocol::kByzCast3Level, Pattern::kGlobalUniformPairs, 4, 5));
  EXPECT_GT(res.throughput, 50.0);
}

TEST(Experiment, GlobalLatencyRoughlyTwiceLocal) {
  // Single client, no contention (paper Fig. 7): global ≈ 2x local.
  auto local_cfg =
      quick(Protocol::kByzCast2Level, Pattern::kLocalOnly, 2, 1);
  local_cfg.clients_per_group = 1;
  const auto local = run_experiment(local_cfg);

  auto global_cfg =
      quick(Protocol::kByzCast2Level, Pattern::kGlobalUniformPairs, 2, 1);
  global_cfg.clients_per_group = 1;
  const auto global = run_experiment(global_cfg);

  ASSERT_GT(local.latency_local.count(), 0u);
  ASSERT_GT(global.latency_global.count(), 0u);
  const double ratio =
      global.latency_global.median_ms() / local.latency_local.median_ms();
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.5);
}

TEST(Experiment, ByzCastLocalBeatsBaselineLocal) {
  // Partial genuineness: with local-only traffic on 2 groups, ByzCast
  // reaches roughly double the Baseline's throughput (Baseline routes
  // everything through one root).
  const auto byz = run_experiment(
      quick(Protocol::kByzCast2Level, Pattern::kLocalOnly, 2, 40));
  const auto base =
      run_experiment(quick(Protocol::kBaseline, Pattern::kLocalOnly, 2, 40));
  EXPECT_GT(byz.throughput, base.throughput * 1.2);
}

TEST(Experiment, WanLatencyDominatedByRegionRtt) {
  auto cfg = quick(Protocol::kByzCast2Level, Pattern::kLocalOnly, 2, 1);
  cfg.environment = Environment::kWan;
  cfg.warmup = 2 * kSecond;
  cfg.duration = 20 * kSecond;
  const auto res = run_experiment(cfg);
  ASSERT_GT(res.latency_local.count(), 0u);
  // Quorum formation spans continents: tens to hundreds of ms.
  EXPECT_GT(res.latency_local.median_ms(), 50.0);
  EXPECT_LT(res.latency_local.median_ms(), 2000.0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  const auto a = run_experiment(
      quick(Protocol::kByzCast2Level, Pattern::kMixed, 2, 5));
  const auto b = run_experiment(
      quick(Protocol::kByzCast2Level, Pattern::kMixed, 2, 5));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.latency_all.mean_ms(), b.latency_all.mean_ms());
}

}  // namespace
}  // namespace byzcast::workload
