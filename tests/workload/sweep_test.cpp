// Saturation-knee classification (pure, on synthetic curves) and a small
// end-to-end sweep in the simulator: healthy rates stay unsaturated, the
// measured points carry the full record, and a goodput collapse is detected
// as a knee.
#include "workload/sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace byzcast::workload {
namespace {

SweepPoint point(double offered, double p99_ms, double goodput) {
  SweepPoint p;
  p.offered = offered;
  p.throughput = offered * goodput;
  p.goodput_ratio = goodput;
  p.p50_ms = p99_ms / 2;
  p.p99_ms = p99_ms;
  p.completed = static_cast<std::uint64_t>(offered * goodput);
  return p;
}

TEST(SweepClassify, HealthyCurveHasNoKnee) {
  std::vector<SweepPoint> pts = {point(100, 10, 1.0), point(200, 11, 1.0),
                                 point(400, 12, 0.99)};
  classify_saturation(pts, 5.0, 0.95);
  for (const auto& p : pts) EXPECT_FALSE(p.saturated);
  EXPECT_EQ(first_saturated(pts), kNoKnee);
}

TEST(SweepClassify, LatencyBlowupPastPlateauIsSaturated) {
  // Plateau p99 is the lowest-offered point's (10 ms); 5x = 50 ms.
  std::vector<SweepPoint> pts = {point(100, 10, 1.0), point(200, 20, 1.0),
                                 point(400, 49, 1.0), point(800, 51, 1.0),
                                 point(1600, 500, 1.0)};
  classify_saturation(pts, 5.0, 0.95);
  EXPECT_FALSE(pts[0].saturated);
  EXPECT_FALSE(pts[1].saturated);
  EXPECT_FALSE(pts[2].saturated);  // 49 < 50: still on the healthy side
  EXPECT_TRUE(pts[3].saturated);
  EXPECT_TRUE(pts[4].saturated);
  EXPECT_EQ(first_saturated(pts), 3u);
}

TEST(SweepClassify, GoodputShortfallIsSaturatedEvenWithFlatLatency) {
  std::vector<SweepPoint> pts = {point(100, 10, 1.0), point(200, 10, 0.94)};
  classify_saturation(pts, 5.0, 0.95);
  EXPECT_FALSE(pts[0].saturated);
  EXPECT_TRUE(pts[1].saturated);
  EXPECT_EQ(first_saturated(pts), 1u);
}

TEST(SweepClassify, FirstPointCanOnlySaturateByGoodput) {
  // The plateau is defined by the first point, so its own latency can never
  // classify it — but a goodput collapse at the lowest rate still counts.
  std::vector<SweepPoint> pts = {point(100, 1000, 1.0)};
  classify_saturation(pts, 5.0, 0.95);
  EXPECT_FALSE(pts[0].saturated);

  std::vector<SweepPoint> collapsed = {point(100, 1000, 0.5)};
  classify_saturation(collapsed, 5.0, 0.95);
  EXPECT_TRUE(collapsed[0].saturated);
}

TEST(SweepClassify, ZeroCompletionsIsAlwaysSaturated) {
  std::vector<SweepPoint> pts = {point(100, 10, 1.0), point(200, 10, 1.0)};
  pts[1].completed = 0;
  pts[1].goodput_ratio = 1.0;  // even with a (bogus) healthy ratio
  classify_saturation(pts, 5.0, 0.95);
  EXPECT_TRUE(pts[1].saturated);
}

TEST(Sweep, MeasurePointFillsTheFullRecord) {
  ExperimentConfig cfg;
  cfg.num_groups = 2;
  cfg.clients_per_group = 10;
  cfg.workload.pattern = Pattern::kMixed;
  cfg.warmup = 300 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = 7;
  const SweepPoint p = measure_point(cfg, 500.0);
  EXPECT_DOUBLE_EQ(p.offered, 500.0);
  EXPECT_GT(p.completed, 0u);
  EXPECT_GT(p.throughput, 0.0);
  EXPECT_GT(p.goodput_ratio, 0.9);  // 500/s on a LAN is far from saturation
  EXPECT_GT(p.p99_ms, 0.0);
  EXPECT_GE(p.p99_ms, p.p50_ms);
  EXPECT_EQ(p.sample_overflow, 0u);
}

TEST(Sweep, HealthyGridReportsNoKneeAndFullCurve) {
  ExperimentConfig cfg;
  cfg.num_groups = 2;
  cfg.clients_per_group = 10;
  cfg.workload.pattern = Pattern::kLocalOnly;
  cfg.warmup = 300 * kMillisecond;
  cfg.duration = 1 * kSecond;
  cfg.seed = 7;
  SweepSettings settings;
  settings.rates = {200.0, 400.0};
  const SweepCurve curve = run_sweep(cfg, settings, "smoke");
  EXPECT_EQ(curve.label, "smoke");
  ASSERT_EQ(curve.points.size(), 2u);
  EXPECT_FALSE(curve.knee_found);
  EXPECT_DOUBLE_EQ(curve.max_unsaturated_rate, 400.0);
  EXPECT_LT(curve.points[0].offered, curve.points[1].offered);
}

}  // namespace
}  // namespace byzcast::workload
