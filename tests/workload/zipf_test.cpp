// Statistical validation of the rejection-inversion Zipf sampler: chi-square
// goodness of fit against the analytic pmf across the exponents the workload
// engine sweeps (uniform, mild, the classic 0.99, and super-linear skew),
// plus structural checks on the Zipf destination pattern.
#include "workload/zipf.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workload/generator.hpp"

namespace byzcast::workload {
namespace {

/// Pearson chi-square statistic of `draws` samples against the sampler's
/// analytic pmf over its full support.
double chi_square_stat(const ZipfSampler& zipf, std::uint64_t draws,
                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> observed(zipf.n(), 0);
  for (std::uint64_t i = 0; i < draws; ++i) ++observed[zipf.next(rng)];
  double stat = 0.0;
  for (std::uint64_t k = 0; k < zipf.n(); ++k) {
    const double expected = zipf.pmf(k) * static_cast<double>(draws);
    const double diff = static_cast<double>(observed[k]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(Zipf, ChiSquareGoodnessOfFitAcrossExponents) {
  // n = 50 support, 200k draws: df = 49, chi-square critical value at
  // alpha = 0.001 is 85.4. The seeds are fixed, so this never flakes; a
  // value past 100 means the sampler's distribution is simply wrong.
  for (const double s : {0.0, 0.5, 0.99, 1.2}) {
    const ZipfSampler zipf(50, s);
    EXPECT_LT(chi_square_stat(zipf, 200'000, 1234), 100.0) << "s=" << s;
  }
}

TEST(Zipf, PmfIsANormalizedDistribution) {
  for (const double s : {0.0, 0.5, 0.99, 1.2}) {
    const ZipfSampler zipf(50, s);
    double total = 0.0;
    for (std::uint64_t k = 0; k < zipf.n(); ++k) total += zipf.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-12) << "s=" << s;
    EXPECT_GE(zipf.pmf(0), zipf.pmf(49)) << "s=" << s;
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfSampler zipf(8, 0.0);
  Rng rng(5);
  std::vector<std::uint64_t> counts(8, 0);
  for (int i = 0; i < 80'000; ++i) ++counts[zipf.next(rng)];
  for (const auto c : counts) {
    EXPECT_GT(c, 9'000u);
    EXPECT_LT(c, 11'000u);
  }
}

TEST(Zipf, SingletonSupport) {
  const ZipfSampler zipf(1, 1.2);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

TEST(Zipf, MillionKeyPopulationStaysInRangeAndSkewed) {
  // The rejection scheme is O(1) in n — a million-key draw must neither
  // leave the support nor lose its head-heavy shape.
  const std::uint64_t n = 1'000'000;
  const ZipfSampler zipf(n, 1.01);
  Rng rng(77);
  std::uint64_t head = 0;  // ranks < 10
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t k = zipf.next(rng);
    ASSERT_LT(k, n);
    if (k < 10) ++head;
  }
  // P(rank < 10) ~ 18% at s = 1.01, n = 1e6; uniform would give 0.001%.
  EXPECT_GT(head, 5'000u);
}

TEST(Zipf, GeneratorLocalSkewsTowardHottestGroup) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kZipf;
  cfg.zipf_s = 1.2;
  std::vector<GroupId> targets;
  for (int g = 0; g < 4; ++g) targets.push_back(GroupId{g});
  DestinationGenerator gen(cfg, targets, /*home=*/2);
  Rng rng(11);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20'000; ++i) {
    const auto dst = gen.next_local(rng);
    ASSERT_EQ(dst.size(), 1u);
    ++counts[dst[0].value];
  }
  // pmf(0)/pmf(3) = 4^1.2 ~ 5.3; leave slack but require the hot group to
  // dominate and the ordering to be monotone head-to-tail.
  EXPECT_GT(counts[0], counts[3] * 3);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Zipf, GeneratorGlobalFanoutIsDistinctAndSkewed) {
  GeneratorConfig cfg;
  cfg.pattern = Pattern::kZipf;
  cfg.zipf_s = 0.99;
  cfg.global_fanout = 3;
  std::vector<GroupId> targets;
  for (int g = 0; g < 6; ++g) targets.push_back(GroupId{g});
  DestinationGenerator gen(cfg, targets, /*home=*/0);
  Rng rng(13);
  int hot_member = 0;
  for (int i = 0; i < 5'000; ++i) {
    const auto dst = gen.next_global(rng);
    ASSERT_EQ(dst.size(), 3u);
    std::set<GroupId> uniq(dst.begin(), dst.end());
    ASSERT_EQ(uniq.size(), 3u) << "fanout destinations must be distinct";
    for (const auto g : dst) {
      ASSERT_GE(g.value, 0);
      ASSERT_LT(g.value, 6);
    }
    if (uniq.count(GroupId{0}) != 0) ++hot_member;
  }
  // Group 0 is the Zipf head: it should sit in far more destination sets
  // than the uniform 3/6 = 50% baseline.
  EXPECT_GT(hot_member, 3'500);
}

}  // namespace
}  // namespace byzcast::workload
