// Open-loop RateController: the arrival process is Poisson (exponential
// inter-arrival times, CV ~ 1), the achieved rate tracks the target within
// 2% in simulated time, lateness is absorbed by catch-up rather than
// accumulated, and step retargeting carries the ideal clock over.
#include "workload/rate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace byzcast::workload {
namespace {

TEST(RateController, InterArrivalTimesAreExponential) {
  // A prompt caller fires exactly at the ideal instants, so the gaps are
  // the controller's raw exponential draws: mean = 1/rate, CV = 1.
  const double rate = 1000.0;  // mean gap 1 ms
  RateController ctl(rate, Rng(7));
  Time now = 0;
  std::vector<double> gaps;
  Time prev = 0;
  for (int i = 0; i < 100'000; ++i) {
    now += ctl.next_delay(now);
    gaps.push_back(static_cast<double>(now - prev));
    prev = now;
  }
  double mean = 0.0;
  for (const double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  const double cv = std::sqrt(var) / mean;
  EXPECT_NEAR(mean, 1e6, 2e4);  // 1 ms +- 2%
  EXPECT_NEAR(cv, 1.0, 0.03);   // exponential: CV = 1
  EXPECT_EQ(ctl.behind_ns(), 0u);
}

TEST(RateController, AchievedRateWithinTwoPercentOfTarget) {
  for (const double rate : {200.0, 1'000.0, 20'000.0}) {
    RateController ctl(rate, Rng(21));
    const Time horizon = 20 * kSecond;
    Time now = 0;
    std::uint64_t fired = 0;
    for (;;) {
      const Time d = ctl.next_delay(now);
      now += d;
      if (now > horizon) break;
      ++fired;
    }
    const double achieved = static_cast<double>(fired) / to_sec(horizon);
    EXPECT_NEAR(achieved, rate, rate * 0.02) << "rate=" << rate;
  }
}

TEST(RateController, LateCallerCatchesUpToTarget) {
  // The caller stalls 5 ms after every 10th arrival (0.5 ms average extra
  // per arrival against a 1 ms mean gap). A naive sleep(exp_gap) loop
  // would under-offer by ~33%; drift correction clamps the next delays to
  // zero and converges back onto the ideal schedule.
  const double rate = 1000.0;
  RateController ctl(rate, Rng(31));
  const Time horizon = 20 * kSecond;
  Time now = 0;
  std::uint64_t fired = 0;
  for (;;) {
    now += ctl.next_delay(now);
    if (now > horizon) break;
    ++fired;
    if (fired % 10 == 0) now += 5 * kMillisecond;  // scheduler stall
  }
  const double achieved = static_cast<double>(fired) / to_sec(horizon);
  EXPECT_NEAR(achieved, rate, rate * 0.02);
  EXPECT_GT(ctl.behind_ns(), 0u);  // the stalls were seen and absorbed
}

TEST(RateController, SetRateRetargetsFromNextArrival) {
  RateController ctl(500.0, Rng(41));
  const Time half = 10 * kSecond;
  Time now = 0;
  std::uint64_t first = 0;
  while (true) {
    now += ctl.next_delay(now);
    if (now > half) break;
    ++first;
  }
  ctl.set_rate(2'000.0);
  EXPECT_NEAR(ctl.rate_per_sec(), 2'000.0, 1e-9);
  std::uint64_t second = 0;
  while (true) {
    now += ctl.next_delay(now);
    if (now > 2 * half) break;
    ++second;
  }
  EXPECT_NEAR(static_cast<double>(first) / to_sec(half), 500.0, 25.0);
  EXPECT_NEAR(static_cast<double>(second) / to_sec(half), 2'000.0, 100.0);
  EXPECT_EQ(ctl.scheduled(), first + second + 2);  // + the two break draws
}

TEST(RateController, OriginAnchorsTheFirstArrival) {
  // Anchored at `origin`, the first arrival is ~one gap later — not a
  // catch-up burst from time zero.
  const Time origin = 5 * kSecond;
  RateController ctl(100.0, Rng(51), origin);
  const Time d = ctl.next_delay(origin);
  EXPECT_GT(d, 0);
  EXPECT_EQ(ctl.behind_ns(), 0u);
}

}  // namespace
}  // namespace byzcast::workload
