// End-to-end linearizability of sharded state machine replication on
// ByzCast (§II-D): (i) real-time order is respected — an operation that
// completed before another was invoked is a-delivered first everywhere they
// meet; (ii) every reply equals the result of replaying the a-delivery
// order sequentially.
#include <gtest/gtest.h>

#include <map>

#include "core/system.hpp"
#include "sim/simulation.hpp"

namespace byzcast::core {
namespace {

/// Replicated register bank: "ADD <account> <n>" returns the new balance.
class BankShard final : public ShardApplication {
 public:
  Bytes apply(GroupId, const MulticastMessage& m) override {
    const std::string op = to_text(m.payload);
    const auto sp1 = op.find(' ');
    const auto sp2 = op.find(' ', sp1 + 1);
    const std::string account = op.substr(sp1 + 1, sp2 - sp1 - 1);
    const long n = std::stol(op.substr(sp2 + 1));
    balances_[account] += n;
    return to_bytes(account + "=" + std::to_string(balances_[account]));
  }

 private:
  std::map<std::string, long> balances_;
};

struct OpRecord {
  MessageId id;
  std::string op;
  Time invoked = 0;
  Time responded = -1;
  std::string result;
};

struct LinFixture {
  LinFixture()
      : sim(401, sim::Profile::lan()),
        system(sim,
               OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{100}),
               1) {
    for (const GroupId g : {GroupId{0}, GroupId{1}}) {
      for (int i = 0; i < 4; ++i) {
        system.node(g, i).set_shard_application(&shards[{g.value, i}]);
      }
    }
  }

  sim::Simulation sim;
  ByzCastSystem system;
  std::map<std::pair<std::int32_t, int>, BankShard> shards;
  std::vector<OpRecord> history;
};

TEST(Linearizability, RealTimeOrderAndSequentialSemantics) {
  LinFixture f;
  // account "a" lives on shard g0, account "b" on shard g1 (by fiat).
  const auto shard_of = [](const std::string& account) {
    return account == "a" ? GroupId{0} : GroupId{1};
  };

  auto c0 = f.system.make_client("c0");
  auto c1 = f.system.make_client("c1");
  std::function<void(Client&, int, int)> issue = [&](Client& c, int left,
                                                     int who) {
    if (left == 0) return;
    const std::string account = (left + who) % 2 == 0 ? "a" : "b";
    const std::string op = "ADD " + account + " " + std::to_string(left);
    const std::size_t slot = f.history.size();
    f.history.push_back(OpRecord{MessageId{c.id(), 0}, op, f.sim.now(), -1,
                                 ""});
    std::vector<GroupId> dst = {shard_of(account)};
    if (left % 4 == 0) dst = {GroupId{0}, GroupId{1}};  // cross-shard op
    c.a_multicast(dst, to_bytes(op),
                  [&, slot, left, who](const MulticastMessage& m, Time) {
                    f.history[slot].id = m.id;
                    f.history[slot].responded = f.sim.now();
                    issue(c, left - 1, who);
                  });
  };
  issue(*c0, 16, 0);
  issue(*c1, 16, 1);
  f.sim.run_until(120 * kSecond);

  for (const auto& rec : f.history) {
    ASSERT_GE(rec.responded, 0) << "op did not complete: " << rec.op;
  }

  // Index ops by message id.
  std::map<MessageId, const OpRecord*> by_id;
  for (const auto& rec : f.history) by_id[rec.id] = &rec;

  // (i) Real-time order per shard: in replica 0's a-delivery sequence, an
  // op that responded before another was invoked must come first.
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    const auto& seq =
        f.system.delivery_log().sequence(f.system.group(g).replica(0).id());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        const OpRecord* early = by_id.at(seq[i]);
        const OpRecord* late = by_id.at(seq[j]);
        // Illegal iff `late` (delivered later) already finished before
        // `early` (delivered earlier) was even invoked.
        EXPECT_GE(late->responded, early->invoked)
            << "real-time violation between '" << early->op << "' and '"
            << late->op << "' at shard " << g.value;
      }
    }
  }

  // (ii) Sequential semantics: replaying each shard's delivery order yields
  // the same balances every replica computed.
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    BankShard replay;
    const auto& seq =
        f.system.delivery_log().sequence(f.system.group(g).replica(0).id());
    Bytes last;
    for (const auto& mid : seq) {
      MulticastMessage m;
      m.payload = to_bytes(by_id.at(mid)->op);
      last = replay.apply(g, m);
    }
    // The replayed final state matches a fresh application of the same ops
    // on the live replicas: compare the final balance strings through one
    // more no-op ADD 0 probe.
    MulticastMessage probe;
    probe.payload = to_bytes("ADD a 0");
    const Bytes expect_a = replay.apply(g, probe);
    const Bytes got_a = f.shards[{g.value, 0}].apply(g, probe);
    EXPECT_EQ(to_text(expect_a), to_text(got_a)) << "shard " << g.value;
  }
}

TEST(Linearizability, SequentialClientSeesMonotoneBalances) {
  LinFixture f;
  auto client = f.system.make_client("solo");
  std::vector<long> balances;
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client->a_multicast({GroupId{0}}, to_bytes("ADD a 1"),
                        [&, left](const MulticastMessage&, Time) {
                          // Balance parsed from replica 0's state.
                          MulticastMessage probe;
                          probe.payload = to_bytes("ADD a 0");
                          const Bytes b =
                              f.shards[{0, 0}].apply(GroupId{0}, probe);
                          const std::string text = to_text(b);
                          balances.push_back(
                              std::stol(text.substr(text.find('=') + 1)));
                          issue(left - 1);
                        });
  };
  issue(10);
  f.sim.run_until(60 * kSecond);
  ASSERT_EQ(balances.size(), 10u);
  for (std::size_t i = 0; i < balances.size(); ++i) {
    EXPECT_EQ(balances[i], static_cast<long>(i + 1));
  }
}

}  // namespace
}  // namespace byzcast::core
