// Invariant monitors attached to live simulated runs: clean executions —
// honest and with tolerated (masked) faults — keep every counter at zero,
// and the front-running adversarial schedule of front_running_test.cpp is
// flagged whenever it actually produces cross-group divergence.
#include <gtest/gtest.h>

#include "common/monitor.hpp"
#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

std::vector<GroupId> mixed_dst(int c, int k, Rng&) {
  if (k % 3 == 2) return {GroupId{0}, GroupId{1}};
  return {GroupId{c % 2}};
}

TEST(MonitorIntegration, CleanRunStaysAtZero) {
  MonitorHub monitors;
  monitors.set_pending_bound(1024);
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.monitors = &monitors;
  ByzCastHarness h(cfg);
  h.run(4, 15, mixed_dst);
  EXPECT_EQ(h.completions, 60);
  EXPECT_EQ(monitors.total_violations(), 0u);
}

TEST(MonitorIntegration, MaskedByzantineFaultStaysAtZero) {
  // A silent auxiliary replica is within the f=1 fault budget: the protocol
  // masks it completely, so the monitors must see nothing.
  MonitorHub monitors;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.monitors = &monitors;
  std::vector<bft::FaultSpec> faults(4);
  faults[1].silent = true;
  cfg.faults.by_group[GroupId{testing::kAuxBase}] = faults;
  ByzCastHarness h(cfg);
  h.run(4, 15, mixed_dst);
  EXPECT_EQ(h.completions, 60);
  EXPECT_EQ(monitors.total_violations(), 0u);
}

TEST(MonitorIntegration, FrontRunningDivergenceIsFlagged) {
  // The adversarial schedule of front_running_test.cpp: auxiliary replica 2
  // front-runs toward g0 while the network delays the other correct aux
  // relays toward g0, letting the Byzantine copy decide the (f+1)-th-copy
  // position there. Whenever the race actually reorders g0 against g1, the
  // online monitors must catch it (as a FIFO regression of a client's
  // stream or a cross-group order cycle); on schedules where the race
  // resolves benignly they must stay silent.
  MonitorHub monitors;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.monitors = &monitors;
  bft::FaultSpec spec;
  spec.front_run = true;
  std::vector<bft::FaultSpec> faults(4);
  faults[2] = spec;
  cfg.faults.by_group[GroupId{testing::kAuxBase}] = faults;
  ByzCastHarness h(cfg);

  const auto& aux = h.system.group(GroupId{testing::kAuxBase}).info();
  const auto& g0 = h.system.group(GroupId{0}).info();
  for (const int slow_aux : {1, 3}) {
    for (const ProcessId target : g0.replicas()) {
      h.sim.network().faults().add_delay(
          aux.replicas()[static_cast<std::size_t>(slow_aux)], target,
          50 * kMillisecond);
    }
  }
  h.run_tracked(4, 25, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 100);

  const bool ordered = static_cast<bool>(
      testing::check_prefix_order(h.property_input()));
  const std::uint64_t flagged =
      monitors.violations("fifo") + monitors.violations("acyclic_order");
  if (!ordered) {
    EXPECT_GT(flagged, 0u)
        << "post-hoc checker saw divergence the online monitors missed";
    RecordProperty("front_running_divergence", "reproduced-and-flagged");
  } else {
    EXPECT_EQ(flagged, 0u)
        << "monitors flagged a run the checker found clean";
    RecordProperty("front_running_divergence", "not-triggered");
  }
}

TEST(MonitorIntegration, PendingBoundObservesRealPendingSets) {
  // A bound of zero copies can never hold once the first parent copy
  // arrives: the monitor must trip on a legitimate run, demonstrating the
  // observation path end to end (the CI smoke uses a generous bound).
  MonitorHub monitors;
  monitors.set_pending_bound(/*bound=*/0);
  monitors.set_pending_bound(1);  // the smallest enabled bound
  HarnessConfig cfg;
  cfg.num_targets = 4;
  cfg.obs.monitors = &monitors;
  ByzCastHarness h(cfg);
  // All-global traffic through the root: pending sets at the destinations
  // routinely hold more than one message below threshold.
  h.run(6, 10, [](int, int, Rng& rng) {
    const auto a = static_cast<std::int32_t>(rng.next_below(4));
    const auto b = static_cast<std::int32_t>(rng.next_below(3));
    return std::vector<GroupId>{GroupId{a}, GroupId{b < a ? b : b + 1}};
  });
  EXPECT_EQ(h.completions, 60);
  EXPECT_GT(monitors.violations("bounded_pending"), 0u);
}

}  // namespace
}  // namespace byzcast::core
