// ShardApplication integration: a replicated counter service on ByzCast —
// per-shard determinism, identical replies (f+1 matching), cross-shard
// operations applied consistently, and corrupt-reply tolerance end to end.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

/// Deterministic counter: ops are "ADD <n>" (applies everywhere the message
/// is delivered) and "READ". The reply carries the post-op value.
class CounterShard final : public ShardApplication {
 public:
  Bytes apply(GroupId, const MulticastMessage& m) override {
    const std::string op = to_text(m.payload);
    if (op.rfind("ADD ", 0) == 0) {
      value_ += std::stol(op.substr(4));
    }
    return to_bytes(std::to_string(value_));
  }

  [[nodiscard]] long value() const { return value_; }

 private:
  long value_ = 0;
};

struct CounterFixture {
  explicit CounterFixture(HarnessConfig cfg) : h(cfg) {
    for (const GroupId g : h.targets()) {
      for (int i = 0; i < 4; ++i) {
        h.system.node(g, i).set_shard_application(&shards[{g.value, i}]);
      }
    }
  }

  ByzCastHarness h;
  std::map<std::pair<std::int32_t, int>, CounterShard> shards;
};

TEST(ShardApplication, RepliesCarryApplicationResults) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  CounterFixture f(cfg);
  auto client = f.h.system.make_client("c");

  std::vector<std::string> results;
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client->a_multicast({GroupId{0}}, to_bytes("ADD 5"),
                        [&, left](const MulticastMessage&, Time) {
                          results.push_back(
                              std::to_string(f.shards[{0, 0}].value()));
                          issue(left - 1);
                        });
  };
  issue(4);
  f.h.sim.run_until(30 * kSecond);
  EXPECT_EQ(results,
            (std::vector<std::string>{"5", "10", "15", "20"}));
}

TEST(ShardApplication, AllReplicasOfShardConverge) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  CounterFixture f(cfg);
  auto c0 = f.h.system.make_client("c0");
  auto c1 = f.h.system.make_client("c1");
  int done = 0;
  std::function<void(Client&, int)> issue = [&](Client& c, int left) {
    if (left == 0) return;
    c.a_multicast({GroupId{left % 2}}, to_bytes("ADD 1"),
                  [&, left](const MulticastMessage&, Time) {
                    ++done;
                    issue(c, left - 1);
                  });
  };
  issue(*c0, 10);
  issue(*c1, 10);
  f.h.sim.run_until(60 * kSecond);
  EXPECT_EQ(done, 20);
  for (const GroupId g : f.h.targets()) {
    const long v0 = f.shards[{g.value, 0}].value();
    for (int i = 1; i < 4; ++i) {
      EXPECT_EQ((f.shards[{g.value, i}].value()), v0)
          << "replica " << i << " of group " << g.value;
    }
  }
  // Conservation: 20 ADD 1, split across two shards.
  EXPECT_EQ((f.shards[{0, 0}].value() + f.shards[{1, 0}].value()), 20);
}

TEST(ShardApplication, CrossShardOpsAppliedOnBothShards) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  CounterFixture f(cfg);
  auto client = f.h.system.make_client("c");
  int done = 0;
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("ADD 3"),
                        [&, left](const MulticastMessage&, Time) {
                          ++done;
                          issue(left - 1);
                        });
  };
  issue(7);
  f.h.sim.run_until(60 * kSecond);
  EXPECT_EQ(done, 7);
  EXPECT_EQ((f.shards[{0, 0}].value()), 21);
  EXPECT_EQ((f.shards[{1, 0}].value()), 21);
}

TEST(ShardApplication, CorruptingReplicaOutvotedEndToEnd) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  std::vector<bft::FaultSpec> faults(4);
  faults[1].corrupt_replies = true;
  cfg.faults.by_group[GroupId{0}] = faults;
  CounterFixture f(cfg);
  auto client = f.h.system.make_client("c");
  bool done = false;
  client->a_multicast({GroupId{0}}, to_bytes("ADD 9"),
                      [&](const MulticastMessage&, Time) { done = true; });
  f.h.sim.run_until(30 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ((f.shards[{0, 0}].value()), 9);
}

}  // namespace
}  // namespace byzcast::core
