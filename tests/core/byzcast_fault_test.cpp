// ByzCast under Byzantine relays and crashes: fabricated messages never
// reach a-delivery (the f+1 copy rule), relay-dropping replicas cannot block
// propagation, and crashed replicas (one per group) do not affect safety or
// liveness.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;
using ::byzcast::testing::TreeKind;

core::FaultPlan fault_in_group(GroupId g, int replica_index,
                               bft::FaultSpec spec) {
  core::FaultPlan plan;
  std::vector<bft::FaultSpec> faults(4);
  faults[static_cast<std::size_t>(replica_index)] = spec;
  plan.by_group[g] = faults;
  return plan;
}

TEST(ByzCastFault, FabricatedRelayNeverDelivered) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  bft::FaultSpec spec;
  spec.fabricate_relay = true;
  cfg.faults = fault_in_group(GroupId{testing::kAuxBase}, 2, spec);
  ByzCastHarness h(cfg);
  h.run_tracked(4, 10, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 40);

  // No fabricated id (origin >= kFabricatedOriginBase) was ever a-delivered
  // anywhere: a single Byzantine relay cannot fake the f+1 copies.
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_LT(rec.msg.origin.value, kFabricatedOriginBase);
  }
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastFault, RelayDroppingAuxiliaryReplicaTolerated) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  bft::FaultSpec spec;
  spec.drop_relays = true;
  cfg.faults = fault_in_group(GroupId{testing::kAuxBase}, 1, spec);
  ByzCastHarness h(cfg);
  h.run_tracked(4, 10, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  // 2f+1 correct auxiliary replicas still relay f+1 copies: progress.
  EXPECT_EQ(h.completions, 40);
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastFault, CrashedReplicaInEveryGroup) {
  HarnessConfig cfg;
  cfg.tree = TreeKind::kThreeLevel;
  cfg.num_targets = 4;
  core::FaultPlan plan;
  // Crash one (non-leader) replica in every group of the tree.
  for (const int gid : {0, 1, 2, 3, testing::kAuxBase, testing::kAuxBase + 1,
                        testing::kAuxBase + 2}) {
    std::vector<bft::FaultSpec> faults(4);
    faults[3] = bft::FaultSpec::crashed();
    plan.by_group[GroupId{gid}] = faults;
  }
  cfg.faults = plan;
  ByzCastHarness h(cfg);
  h.run_tracked(6, 8, [](int c, int, Rng&) {
    if (c % 2 == 0) return std::vector<GroupId>{GroupId{c % 4}};
    return std::vector<GroupId>{GroupId{0}, GroupId{3}};
  });
  EXPECT_EQ(h.completions, 48);
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastFault, CrashedLeaderInAuxiliaryGroup) {
  // The auxiliary group's view-0 leader is dead: global messages stall until
  // the view change, then everything completes.
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.faults = fault_in_group(GroupId{testing::kAuxBase}, 0,
                              bft::FaultSpec::crashed());
  ByzCastHarness h(cfg);
  h.run_tracked(2, 5,
                [](int, int, Rng&) {
                  return std::vector<GroupId>{GroupId{0}, GroupId{1}};
                },
                /*horizon=*/240 * kSecond);
  EXPECT_EQ(h.completions, 10);
  testing::expect_atomic_multicast_properties(h.property_input());
}

// A Byzantine client that broadcasts a global message directly in a target
// group's broadcast (bypassing the lca) must not get it a-delivered:
// Algorithm 1 handles direct sends only at k=0 (the lca).
class BypassingClient final : public sim::Actor {
 public:
  BypassingClient(sim::Simulation& sim, bft::GroupInfo group)
      : Actor(sim, "bypass"), group_(std::move(group)) {}

  void attack(std::vector<GroupId> claimed_dst) {
    MulticastMessage m;
    m.id = MessageId{id(), 0};
    m.dst = std::move(claimed_dst);
    m.canonicalize();
    bft::Request req;
    req.group = group_.id;
    req.origin = id();
    req.seq = 0;
    req.op = m.encode();
    const Bytes encoded = bft::encode_request(req);
    for (const ProcessId r : group_.replicas()) send(r, encoded);
  }

 protected:
  void on_message(const sim::WireMessage&) override {}

 private:
  bft::GroupInfo group_;
};

TEST(ByzCastFault, DirectSendToNonLcaGroupIgnored) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  // Global message {g0,g1} injected straight into g0's broadcast: g0 orders
  // the request, but the ByzCast node must refuse to handle it (entry group
  // for that dst is the auxiliary root).
  BypassingClient attacker(h.sim, h.system.group(GroupId{0}).info());
  attacker.attack({GroupId{0}, GroupId{1}});
  h.sim.run_until(20 * kSecond);
  EXPECT_EQ(h.system.delivery_log().records().size(), 0u);
  // The request *was* ordered (consensus ran) — the guard is in the node.
  EXPECT_GE(h.system.group(GroupId{0}).replica(0).executed_requests(), 1u);
}

TEST(ByzCastFault, MalformedDestinationSetIgnored) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  // dst contains the auxiliary group (not a target): must be rejected.
  BypassingClient attacker(h.sim,
                           h.system.group(GroupId{testing::kAuxBase}).info());
  attacker.attack({GroupId{0}, GroupId{testing::kAuxBase}});
  h.sim.run_until(20 * kSecond);
  EXPECT_EQ(h.system.delivery_log().records().size(), 0u);
}

TEST(ByzCastFault, MixedFaultsAcrossTree) {
  HarnessConfig cfg;
  cfg.tree = TreeKind::kThreeLevel;
  cfg.num_targets = 4;
  core::FaultPlan plan;
  {
    std::vector<bft::FaultSpec> faults(4);
    faults[1].fabricate_relay = true;
    plan.by_group[GroupId{testing::kAuxBase}] = faults;
  }
  {
    std::vector<bft::FaultSpec> faults(4);
    faults[2].drop_relays = true;
    plan.by_group[GroupId{testing::kAuxBase + 1}] = faults;
  }
  {
    std::vector<bft::FaultSpec> faults(4);
    faults[3] = bft::FaultSpec::crashed();
    plan.by_group[GroupId{2}] = faults;
  }
  cfg.faults = plan;
  ByzCastHarness h(cfg);
  h.run_tracked(8, 8, [](int c, int, Rng&) {
    switch (c % 4) {
      case 0: return std::vector<GroupId>{GroupId{0}, GroupId{1}};
      case 1: return std::vector<GroupId>{GroupId{2}, GroupId{3}};
      case 2: return std::vector<GroupId>{GroupId{1}, GroupId{2}};
      default: return std::vector<GroupId>{GroupId{c % 4}};
    }
  });
  EXPECT_EQ(h.completions, 64);
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_LT(rec.msg.origin.value, kFabricatedOriginBase);
  }
  testing::expect_atomic_multicast_properties(h.property_input());
}

}  // namespace
}  // namespace byzcast::core
