#include "core/system.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace byzcast::core {
namespace {

TEST(System, AssemblesOneGroupPerTreeNode) {
  sim::Simulation sim(1, sim::Profile::lan());
  const std::vector<GroupId> targets = {GroupId{0}, GroupId{1}, GroupId{2}};
  ByzCastSystem system(sim, OverlayTree::two_level(targets, GroupId{50}), 1);

  EXPECT_EQ(system.registry().size(), 4u);
  for (const GroupId g : system.tree().all_groups()) {
    EXPECT_EQ(system.group(g).n(), 4);
    EXPECT_EQ(system.group(g).f(), 1);
    EXPECT_EQ(system.registry().at(g).id, g);
  }
}

TEST(System, ProcessIdsAreDisjointAcrossGroups) {
  sim::Simulation sim(2, sim::Profile::lan());
  ByzCastSystem system(
      sim, OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{50}), 1);
  std::set<ProcessId> all;
  for (const auto& [g, info] : system.registry()) {
    for (const ProcessId p : info.replicas()) {
      EXPECT_TRUE(all.insert(p).second) << "duplicate pid";
    }
  }
  EXPECT_EQ(all.size(), 12u);
}

TEST(System, FaultPlanAppliesPerGroup) {
  sim::Simulation sim(3, sim::Profile::lan());
  FaultPlan plan;
  std::vector<bft::FaultSpec> faults(4);
  faults[1] = bft::FaultSpec::crashed();
  plan.by_group[GroupId{0}] = faults;
  ByzCastSystem system(
      sim, OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{50}), 1,
      plan);
  EXPECT_TRUE(system.group(GroupId{0}).replica(1).faults().silent);
  EXPECT_FALSE(system.group(GroupId{1}).replica(1).faults().silent);
  EXPECT_EQ(system.group(GroupId{0}).correct_indices().size(), 3u);
  EXPECT_EQ(system.group(GroupId{1}).correct_indices().size(), 4u);
}

TEST(System, FaultPlanForGroupDefaultsToCorrect) {
  FaultPlan plan;
  EXPECT_TRUE(plan.for_group(GroupId{7}).empty());
  plan.by_group[GroupId{7}] = std::vector<bft::FaultSpec>(4);
  EXPECT_EQ(plan.for_group(GroupId{7}).size(), 4u);
}

TEST(System, NodeAccessorReturnsTheHostedApplication) {
  sim::Simulation sim(4, sim::Profile::lan());
  ByzCastSystem system(
      sim, OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{50}), 1);
  ByzCastNode& node = system.node(GroupId{0}, 2);
  EXPECT_EQ(node.handled_count(), 0u);
  EXPECT_EQ(node.a_delivered_count(), 0u);
}

TEST(System, ClientsGetFreshIds) {
  sim::Simulation sim(5, sim::Profile::lan());
  ByzCastSystem system(
      sim, OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{50}), 1);
  auto c1 = system.make_client("a");
  auto c2 = system.make_client("b");
  EXPECT_NE(c1->id(), c2->id());
  for (const auto& [g, info] : system.registry()) {
    EXPECT_FALSE(info.is_member(c1->id()));
  }
}

TEST(SystemDeathTest, UnfinalizedTreeRejected) {
  sim::Simulation sim(6, sim::Profile::lan());
  OverlayTree tree;
  tree.add_group(GroupId{0}, true);
  EXPECT_DEATH(ByzCastSystem(sim, std::move(tree), 1), "Precondition");
}

}  // namespace
}  // namespace byzcast::core
