// CriticalPathAnalyzer unit tests over hand-built span logs: exact
// telescoping decomposition, representative-replica ((f+1)-th delivery)
// selection, robustness to Byzantine garbage stamps, and truncated traces.
#include <gtest/gtest.h>

#include "common/span.hpp"
#include "core/critical_path.hpp"

namespace byzcast::core {
namespace {

constexpr ProcessId kClient{1};
const MessageId kMsg{kClient, 0};

Span span(SpanKind kind, GroupId g, ProcessId where, Time begin, Time end,
          std::int64_t detail = 0) {
  Span s;
  s.msg = kMsg;
  s.kind = kind;
  s.group = g;
  s.where = where;
  s.begin = begin;
  s.end = end;
  s.detail = detail;
  return s;
}

/// One replica's full pipeline chain, shifted by `delta`.
void add_chain(SpanLog& log, GroupId g, ProcessId r, Time delta) {
  log.record(span(SpanKind::kNetTransit, g, r, 100 + delta, 150 + delta));
  log.record(span(SpanKind::kMailboxWait, g, r, 150 + delta, 160 + delta));
  log.record(span(SpanKind::kCpuService, g, r, 160 + delta, 170 + delta));
  log.record(span(SpanKind::kConsensusQueue, g, r, 170 + delta, 200 + delta));
  log.record(span(SpanKind::kWriteQuorum, g, r, 200 + delta, 260 + delta));
  log.record(span(SpanKind::kAcceptQuorum, g, r, 260 + delta, 300 + delta));
  log.record(span(SpanKind::kExecute, g, r, 300 + delta, 320 + delta));
}

constexpr GroupId kEntry{100};
constexpr GroupId kG0{0};
constexpr GroupId kG1{1};

/// Builds the canonical 2-destination trace used by most tests: entry group
/// (replicas 40/41) relays to destinations g0 (10/11) and g1 (20/21); g1's
/// representative a-delivery is latest, so it is the critical destination.
void make_global_trace(SpanLog& log) {
  log.record(span(SpanKind::kEndToEnd, GroupId{}, kClient, 100, 1100,
                  /*dst_count=*/2));
  add_chain(log, kEntry, ProcessId{40}, 0);
  add_chain(log, kEntry, ProcessId{41}, 10);
  log.record(span(SpanKind::kRelay, kEntry, ProcessId{41}, 330, 330,
                  /*child=*/kG0.value));
  log.record(span(SpanKind::kRelay, kEntry, ProcessId{41}, 330, 330,
                  /*child=*/kG1.value));

  // g0: both replicas deliver early; only the a-deliver instants matter for
  // ranking the representative.
  log.record(span(SpanKind::kADeliver, kG0, ProcessId{10}, 600, 600));
  log.record(span(SpanKind::kADeliver, kG0, ProcessId{11}, 640, 640));

  // g1: replica 20 delivers at 700, replica 21 (the f+1-th = representative
  // at f=1) at 750, with the full chain.
  log.record(span(SpanKind::kADeliver, kG1, ProcessId{20}, 700, 700));
  log.record(span(SpanKind::kNetTransit, kG1, ProcessId{21}, 330, 400));
  log.record(span(SpanKind::kMailboxWait, kG1, ProcessId{21}, 400, 410));
  log.record(span(SpanKind::kCpuService, kG1, ProcessId{21}, 410, 420));
  log.record(span(SpanKind::kConsensusQueue, kG1, ProcessId{21}, 420, 500));
  log.record(span(SpanKind::kWriteQuorum, kG1, ProcessId{21}, 500, 560));
  log.record(span(SpanKind::kAcceptQuorum, kG1, ProcessId{21}, 560, 600));
  log.record(span(SpanKind::kExecute, kG1, ProcessId{21}, 600, 700));
  log.record(span(SpanKind::kADeliver, kG1, ProcessId{21}, 750, 750));
}

TEST(CriticalPath, DecomposesExactlyAlongTheCriticalPath) {
  SpanLog log;
  make_global_trace(log);
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  ASSERT_EQ(analyzer.messages().size(), 1u);
  const MessageBreakdown& m = analyzer.messages().front();
  ASSERT_TRUE(m.complete);
  EXPECT_TRUE(m.is_global);
  EXPECT_EQ(m.dst_count, 2u);
  EXPECT_EQ(m.end_to_end, 1000);
  EXPECT_EQ(m.critical_dst, kG1);

  // Entry group first, then the critical destination; the representative of
  // the entry group is its (f+1)-th = second-earliest orderer (replica 41),
  // of g1 the second-earliest deliverer (replica 21).
  ASSERT_EQ(m.hops.size(), 2u);
  EXPECT_EQ(m.hops[0].group, kEntry);
  EXPECT_EQ(m.hops[0].replica, ProcessId{41});
  EXPECT_EQ(m.hops[1].group, kG1);
  EXPECT_EQ(m.hops[1].replica, ProcessId{21});

  // Hand-computed decomposition (see make_global_trace timings).
  EXPECT_EQ(m.totals.queueing, 130);
  EXPECT_EQ(m.totals.cpu, 150);
  EXPECT_EQ(m.totals.network, 120);
  EXPECT_EQ(m.totals.quorum_wait, 600);
  EXPECT_EQ(m.totals.total(), m.end_to_end);

  // Hop components sum to the totals minus nothing — the reply wait lands
  // on the last hop.
  Components hop_sum;
  for (const auto& h : m.hops) hop_sum += h.components;
  EXPECT_EQ(hop_sum.total(), m.totals.total());
}

TEST(CriticalPath, EdgeLatencyTracksOrderingToOrdering) {
  SpanLog log;
  make_global_trace(log);
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  const auto edges = analyzer.edge_latency();
  ASSERT_EQ(edges.count({kEntry, kG1}), 1u);
  const PercentileStats& s = edges.at({kEntry, kG1});
  EXPECT_EQ(s.n, 1u);
  // Entry ordered at 330 (replica 41), g1 at 700.
  EXPECT_EQ(s.p50, 370);
}

TEST(CriticalPath, AggregateSplitsByDestinationClass) {
  SpanLog log;
  make_global_trace(log);
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  EXPECT_EQ(analyzer.aggregate(/*global=*/true).n, 1u);
  EXPECT_EQ(analyzer.aggregate(/*global=*/false).n, 0u);
  const auto agg = analyzer.aggregate(true);
  EXPECT_EQ(agg.end_to_end.p50, 1000);
  EXPECT_EQ(agg.quorum_wait.p50, 600);
}

TEST(CriticalPath, ByzantineGarbageStampsStayExact) {
  SpanLog log;
  make_global_trace(log);
  // A Byzantine replica of the critical group stamps absurd values into its
  // own chain; it also happens to be the representative's neighbour, so the
  // analysis must stay within [submit, completion] regardless.
  log.record(span(SpanKind::kNetTransit, kG1, ProcessId{21}, -5000, 999999));
  log.record(span(SpanKind::kConsensusQueue, kG1, ProcessId{21}, 999999,
                  999999));
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  ASSERT_EQ(analyzer.messages().size(), 1u);
  const MessageBreakdown& m = analyzer.messages().front();
  ASSERT_TRUE(m.complete);
  EXPECT_EQ(m.totals.total(), m.end_to_end);
  EXPECT_GE(m.totals.queueing, 0);
  EXPECT_GE(m.totals.cpu, 0);
  EXPECT_GE(m.totals.network, 0);
  EXPECT_GE(m.totals.quorum_wait, 0);
}

TEST(CriticalPath, MissingEndToEndMeansIncomplete) {
  SpanLog log;
  add_chain(log, kEntry, ProcessId{40}, 0);
  log.record(span(SpanKind::kADeliver, kG0, ProcessId{10}, 600, 600));
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  ASSERT_EQ(analyzer.messages().size(), 1u);
  EXPECT_FALSE(analyzer.messages().front().complete);
  EXPECT_EQ(analyzer.aggregate(false).n, 0u);
  EXPECT_EQ(analyzer.aggregate(true).n, 0u);
}

TEST(CriticalPath, MissingADeliverMeansIncomplete) {
  SpanLog log;
  log.record(span(SpanKind::kEndToEnd, GroupId{}, kClient, 100, 1100, 1));
  add_chain(log, kEntry, ProcessId{40}, 0);
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  ASSERT_EQ(analyzer.messages().size(), 1u);
  EXPECT_FALSE(analyzer.messages().front().complete);
}

TEST(CriticalPath, FewerReplicasThanFStillPicksLatest) {
  SpanLog log;
  log.record(span(SpanKind::kEndToEnd, GroupId{}, kClient, 0, 500, 1));
  log.record(span(SpanKind::kADeliver, kG0, ProcessId{10}, 300, 300));
  // Only one replica observed; with f=1 the analyzer falls back to the last
  // available one instead of producing nothing.
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  ASSERT_EQ(analyzer.messages().size(), 1u);
  const MessageBreakdown& m = analyzer.messages().front();
  ASSERT_TRUE(m.complete);
  EXPECT_EQ(m.critical_dst, kG0);
  EXPECT_EQ(m.totals.total(), m.end_to_end);
}

TEST(CriticalPath, RelayCycleFromLyingRelaysIsBounded) {
  SpanLog log;
  make_global_trace(log);
  // Fabricated relay spans claiming g1 -> entry (a cycle in the "tree").
  log.record(span(SpanKind::kRelay, kG1, ProcessId{21}, 700, 700,
                  /*child=*/kEntry.value));
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{1});
  ASSERT_EQ(analyzer.messages().size(), 1u);
  const MessageBreakdown& m = analyzer.messages().front();
  ASSERT_TRUE(m.complete);
  EXPECT_LE(m.hops.size(), 64u);
  EXPECT_EQ(m.totals.total(), m.end_to_end);
}

}  // namespace
}  // namespace byzcast::core
