// End-to-end atomic multicast under a mid-run leader crash with deep
// consensus pipelining in every group: the §II-B property checkers and the
// online invariant monitors must both come up clean — the pipelined window
// recovery is invisible at the multicast level.
#include <gtest/gtest.h>

#include "common/monitor.hpp"
#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

TEST(PipelineCrash, LeaderCrashMidRunKeepsAllProperties) {
  // Small batches + depth 4 keep several instances open in the LCA group
  // when its leader goes silent mid-run; the new leader must re-propose the
  // whole open window without breaking order across destination groups.
  MonitorHub monitors;
  monitors.set_pending_bound(1024);
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.monitors = &monitors;
  cfg.profile.batch_max = 4;
  cfg.profile.pipeline_depth = 4;
  std::vector<bft::FaultSpec> faults(4);
  faults[0].silent_after = 50 * kMillisecond;
  cfg.faults.by_group[GroupId{testing::kAuxBase}] = faults;
  ByzCastHarness h(cfg);

  h.run_tracked(6, 15, [](int c, int k, Rng&) {
    if (k % 3 == 2) return std::vector<GroupId>{GroupId{0}, GroupId{1}};
    return std::vector<GroupId>{GroupId{c % 2}};
  });

  EXPECT_EQ(h.completions, 90);
  const auto in = h.property_input();
  EXPECT_TRUE(check_integrity(in));
  EXPECT_TRUE(check_validity_agreement(in));
  EXPECT_TRUE(check_prefix_order(in));
  EXPECT_TRUE(check_acyclic_order(in));
  EXPECT_EQ(monitors.total_violations(), 0u);
  // The crash was real: the LCA group moved past view 0.
  auto& lca = h.system.group(GroupId{testing::kAuxBase});
  bool view_changed = false;
  for (const int i : lca.correct_indices()) {
    view_changed |= lca.replica(i).view() >= 1;
  }
  EXPECT_TRUE(view_changed);
}

}  // namespace
}  // namespace byzcast::core
