#include "core/delivery_log.hpp"

#include <gtest/gtest.h>

namespace byzcast::core {
namespace {

TEST(DeliveryLog, RecordsInOrder) {
  DeliveryLog log;
  const ProcessId p{1};
  log.record(GroupId{0}, p, MessageId{ProcessId{9}, 0}, 10);
  log.record(GroupId{0}, p, MessageId{ProcessId{9}, 1}, 20);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].when, 10);
  EXPECT_EQ(log.records()[1].msg.seq, 1u);
  EXPECT_EQ(log.total_deliveries(), 2u);
}

TEST(DeliveryLog, PerReplicaSequences) {
  DeliveryLog log;
  const ProcessId p{1};
  const ProcessId q{2};
  log.record(GroupId{0}, p, MessageId{ProcessId{9}, 0}, 1);
  log.record(GroupId{1}, q, MessageId{ProcessId{9}, 1}, 2);
  log.record(GroupId{0}, p, MessageId{ProcessId{9}, 2}, 3);
  ASSERT_EQ(log.sequence(p).size(), 2u);
  EXPECT_EQ(log.sequence(p)[0].seq, 0u);
  EXPECT_EQ(log.sequence(p)[1].seq, 2u);
  ASSERT_EQ(log.sequence(q).size(), 1u);
}

TEST(DeliveryLog, UnknownReplicaHasEmptySequence) {
  DeliveryLog log;
  EXPECT_TRUE(log.sequence(ProcessId{77}).empty());
}

}  // namespace
}  // namespace byzcast::core
