// Multiple outstanding messages per client (the open-loop capability):
// pipelined a_multicasts all complete, replies match the right message, and
// FIFO order at the entry group follows issue order.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/simulation.hpp"

namespace byzcast::core {
namespace {

struct Fixture {
  Fixture()
      : sim(301, sim::Profile::lan()),
        system(sim,
               OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{100}),
               1) {}

  sim::Simulation sim;
  ByzCastSystem system;
};

TEST(OpenLoopClient, PipelinedMessagesAllComplete) {
  Fixture f;
  auto client = f.system.make_client("pipeliner");
  std::vector<std::uint64_t> completed_uids;
  for (int k = 0; k < 10; ++k) {
    client->a_multicast({GroupId{0}}, to_bytes("p" + std::to_string(k)),
                        [&](const MulticastMessage& m, Time) {
                          completed_uids.push_back(m.id.seq);
                        });
  }
  EXPECT_EQ(client->outstanding(), 10u);
  f.sim.run_until(30 * kSecond);
  EXPECT_EQ(client->outstanding(), 0u);
  EXPECT_EQ(client->completed(), 10u);
  ASSERT_EQ(completed_uids.size(), 10u);
  // Every message completed exactly once. (Completion-callback order can
  // reorder slightly — replies race over jittered links; a-DELIVERY order
  // is FIFO and asserted in DeliveryOrderMatchesIssueOrderPerEntryGroup.)
  std::sort(completed_uids.begin(), completed_uids.end());
  for (std::uint64_t k = 0; k < 10; ++k) EXPECT_EQ(completed_uids[k], k);
}

TEST(OpenLoopClient, MixedDestinationsInterleave) {
  Fixture f;
  auto client = f.system.make_client("mixed");
  int local_done = 0;
  int global_done = 0;
  for (int k = 0; k < 6; ++k) {
    client->a_multicast({GroupId{k % 2}}, to_bytes("l"),
                        [&](const MulticastMessage&, Time) { ++local_done; });
    client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("g"),
                        [&](const MulticastMessage&, Time) { ++global_done; });
  }
  f.sim.run_until(60 * kSecond);
  EXPECT_EQ(local_done, 6);
  EXPECT_EQ(global_done, 6);
}

TEST(OpenLoopClient, DeliveryOrderMatchesIssueOrderPerEntryGroup) {
  Fixture f;
  auto client = f.system.make_client("fifo");
  int done = 0;
  for (int k = 0; k < 8; ++k) {
    client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("m"),
                        [&](const MulticastMessage&, Time) { ++done; });
  }
  f.sim.run_until(60 * kSecond);
  EXPECT_EQ(done, 8);
  // Every replica of both destination groups a-delivered uid 0..7 in order.
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    auto& grp = f.system.group(g);
    for (int i = 0; i < grp.n(); ++i) {
      const auto& seq =
          f.system.delivery_log().sequence(grp.replica(i).id());
      ASSERT_EQ(seq.size(), 8u);
      for (std::uint64_t k = 0; k < 8; ++k) EXPECT_EQ(seq[k].seq, k);
    }
  }
}

}  // namespace
}  // namespace byzcast::core
