// The paper (§III-B, last paragraph): "target groups can be inner nodes in
// the overlay tree, or we can have a tree that contains target groups only."
// Exercise Algorithm 1 on such trees: an inner target group both orders for
// its subtree and a-delivers its own messages.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/properties.hpp"

namespace byzcast::core {
namespace {

/// g0 is the root AND a target; g1, g2 are its children.
OverlayTree targets_only_tree() {
  OverlayTree t;
  t.add_group(GroupId{0}, true);
  t.add_group(GroupId{1}, true);
  t.add_group(GroupId{2}, true);
  t.set_parent(GroupId{1}, GroupId{0});
  t.set_parent(GroupId{2}, GroupId{0});
  t.finalize();
  return t;
}

struct InnerTargetHarness {
  InnerTargetHarness() : sim(91, sim::Profile::lan()),
                         system(sim, targets_only_tree(), 1) {}

  void run(int count, const std::vector<std::vector<GroupId>>& dsts,
           Time horizon = 120 * kSecond) {
    client = system.make_client("c");
    std::function<void(int)> issue = [&, count](int k) {
      if (k == count) return;
      const auto& dst = dsts[static_cast<std::size_t>(k) % dsts.size()];
      MulticastMessage canon;
      canon.dst = dst;
      canon.canonicalize();
      sent.push_back(byzcast::testing::SentMessage{
          MessageId{client->id(), static_cast<std::uint64_t>(k)}, canon.dst});
      client->a_multicast(dst, to_bytes("m"),
                          [&, k](const MulticastMessage&, Time) {
                            ++completions;
                            issue(k + 1);
                          });
    };
    issue(0);
    sim.run_until(horizon);
  }

  byzcast::testing::PropertyInput property_input() {
    byzcast::testing::PropertyInput in;
    in.log = &system.delivery_log();
    in.sent = sent;
    for (const GroupId g : system.tree().target_groups()) {
      auto& grp = system.group(g);
      for (int i = 0; i < grp.n(); ++i) {
        in.correct_replicas[g].push_back(grp.replica(i).id());
      }
    }
    return in;
  }

  sim::Simulation sim;
  ByzCastSystem system;
  std::unique_ptr<Client> client;
  std::vector<byzcast::testing::SentMessage> sent;
  int completions = 0;
};

TEST(InnerTarget, RootTargetDeliversItsOwnLocalMessages) {
  InnerTargetHarness h;
  h.run(5, {{GroupId{0}}});
  EXPECT_EQ(h.completions, 5);
  EXPECT_EQ(h.system.delivery_log().records().size(), 5u * 4u);
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_EQ(rec.group, GroupId{0});
  }
}

TEST(InnerTarget, MessageToRootAndLeafDeliversAtBoth) {
  InnerTargetHarness h;
  // lca({g0, g1}) = g0 itself: g0 orders, a-delivers, AND relays to g1.
  h.run(6, {{GroupId{0}, GroupId{1}}});
  EXPECT_EQ(h.completions, 6);
  std::map<GroupId, int> per_group;
  for (const auto& rec : h.system.delivery_log().records()) {
    ++per_group[rec.group];
  }
  EXPECT_EQ(per_group[GroupId{0}], 6 * 4);
  EXPECT_EQ(per_group[GroupId{1}], 6 * 4);
  EXPECT_EQ(per_group.count(GroupId{2}), 0u);
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(InnerTarget, LeafPairOrderedByInnerTarget) {
  InnerTargetHarness h;
  // lca({g1, g2}) = g0: the inner *target* group orders without being a
  // destination (it must NOT a-deliver).
  h.run(6, {{GroupId{1}, GroupId{2}}});
  EXPECT_EQ(h.completions, 6);
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_NE(rec.group, GroupId{0});
  }
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(InnerTarget, MixedTrafficStaysAcyclic) {
  InnerTargetHarness h;
  h.run(24, {{GroupId{0}},
             {GroupId{0}, GroupId{1}},
             {GroupId{1}, GroupId{2}},
             {GroupId{0}, GroupId{1}, GroupId{2}}});
  EXPECT_EQ(h.completions, 24);
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

}  // namespace
}  // namespace byzcast::core
