// Hop tracing end to end: a 2-group global message multicast through the
// two-level tree must yield exactly the Algorithm 1 path — enter/ordered at
// the lca (the auxiliary group), a relay into each destination child, then
// enter/ordered/a-delivered at both children, with the wire hop counter 0 at
// the lca and 1 below it.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

TEST(Trace, TwoGroupGlobalMessagePath) {
  MetricsRegistry metrics;
  TraceLog trace;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs = Observability{&metrics, &trace};
  ByzCastHarness h(cfg);
  h.run_tracked(1, 1, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  ASSERT_EQ(h.completions, 1);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(trace.dropped(), 0u);

  const MessageId id = h.sent[0].id;
  EXPECT_EQ(trace.find_multi_hop(2), id);
  EXPECT_EQ(trace.find_multi_hop(3), id);  // lca + both children

  const std::vector<TraceRecord> path = trace.path(id);
  // 3 events at the lca + 3 at each destination child.
  ASSERT_EQ(path.size(), 9u);

  const GroupId lca{testing::kAuxBase};
  const auto expect_hop = [&](std::size_t i, GroupId group, HopEvent event,
                              std::uint32_t hop) {
    EXPECT_EQ(path[i].group, group) << "hop " << i;
    EXPECT_EQ(path[i].event, event) << "hop " << i;
    EXPECT_EQ(path[i].hop, hop) << "hop " << i;
    EXPECT_EQ(path[i].msg, id) << "hop " << i;
  };
  // The lca's prefix is fully ordered: enter -> ordered -> relayed, hop 0.
  expect_hop(0, lca, HopEvent::kEnterGroup, 0);
  expect_hop(1, lca, HopEvent::kOrdered, 0);
  expect_hop(2, lca, HopEvent::kRelayed, 0);

  // Each child then sees enter -> ordered -> a-delivered at hop 1; the two
  // children interleave freely, so check per group instead of by index.
  for (const GroupId child : {GroupId{0}, GroupId{1}}) {
    std::vector<HopEvent> events;
    for (std::size_t i = 3; i < path.size(); ++i) {
      if (path[i].group != child) continue;
      events.push_back(path[i].event);
      EXPECT_EQ(path[i].hop, 1u) << "child " << child.value;
      EXPECT_GE(path[i].when, path[2].when);
    }
    EXPECT_EQ(events,
              (std::vector<HopEvent>{HopEvent::kEnterGroup, HopEvent::kOrdered,
                                     HopEvent::kADelivered}))
        << "child " << child.value;
  }

  // Timestamps along the reconstructed path never go backwards.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(path[i - 1].when, path[i].when);
  }

  // The per-group counters published alongside the trace agree with it:
  // every replica of every group ordered the one message, and both target
  // groups a-delivered it (4 replicas each).
  EXPECT_EQ(metrics.counter("node.ordered.g100").value(), 4u);
  EXPECT_EQ(metrics.counter("node.ordered.g0").value(), 4u);
  EXPECT_EQ(metrics.counter("node.a_deliver.g0").value(), 4u);
  EXPECT_EQ(metrics.counter("node.a_deliver.g1").value(), 4u);
  EXPECT_EQ(metrics.counter("node.a_deliver.g100").value(), 0u);
}

TEST(Trace, LocalMessageNeverLeavesItsGroup) {
  MetricsRegistry metrics;
  TraceLog trace;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs = Observability{&metrics, &trace};
  ByzCastHarness h(cfg);
  h.run_tracked(1, 1, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}};
  });
  ASSERT_EQ(h.completions, 1);

  // lca({g0}) = g0 itself: a single-group path, all at hop 0, no relay.
  const std::vector<TraceRecord> path = trace.path(h.sent[0].id);
  ASSERT_EQ(path.size(), 3u);
  for (const TraceRecord& rec : path) {
    EXPECT_EQ(rec.group, GroupId{0});
    EXPECT_EQ(rec.hop, 0u);
    EXPECT_NE(rec.event, HopEvent::kRelayed);
  }
  EXPECT_FALSE(trace.find_multi_hop(2) == h.sent[0].id);
}

TEST(Trace, CapacityBoundDropsAreCounted) {
  TraceLog trace(/*capacity=*/4);
  const MessageId id{ProcessId{7}, 1};
  for (int i = 0; i < 10; ++i) {
    trace.record(id, GroupId{0}, ProcessId{1}, HopEvent::kOrdered, 0,
                 i * kMillisecond);
  }
  EXPECT_EQ(trace.records().size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
}

}  // namespace
}  // namespace byzcast::core
