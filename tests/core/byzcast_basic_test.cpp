// End-to-end ByzCast in the failure-free case: local and global messages
// over 2-level and 3-level trees, delivery sets, replies, and the partial
// genuineness of local messages.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;
using ::byzcast::testing::TreeKind;

TEST(ByzCastBasic, LocalMessageDeliveredByItsGroupOnly) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(1, 1, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}};
  });
  EXPECT_EQ(h.completions, 1);
  const auto& records = h.system.delivery_log().records();
  // 4 replicas of g0 deliver; none in g1 or the auxiliary.
  EXPECT_EQ(records.size(), 4u);
  for (const auto& rec : records) EXPECT_EQ(rec.group, GroupId{0});
}

TEST(ByzCastBasic, GlobalMessageDeliveredByAllDestinations) {
  HarnessConfig cfg;
  cfg.num_targets = 3;
  ByzCastHarness h(cfg);
  h.run_tracked(1, 1, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{2}};
  });
  EXPECT_EQ(h.completions, 1);
  std::map<GroupId, int> per_group;
  for (const auto& rec : h.system.delivery_log().records()) {
    ++per_group[rec.group];
  }
  EXPECT_EQ(per_group[GroupId{0}], 4);
  EXPECT_EQ(per_group[GroupId{2}], 4);
  EXPECT_EQ(per_group.count(GroupId{1}), 0u);
}

TEST(ByzCastBasic, LocalMessagesAreGenuine) {
  // Partial genuineness: local traffic to g0 must not involve the
  // auxiliary group or g1 at all (zero handled messages there).
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(4, 10, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}};
  });
  EXPECT_EQ(h.completions, 40);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(h.system.node(GroupId{testing::kAuxBase}, i).handled_count(),
              0u);
    EXPECT_EQ(h.system.node(GroupId{1}, i).handled_count(), 0u);
    EXPECT_EQ(h.system.node(GroupId{0}, i).handled_count(), 10u * 4u);
  }
  // And no consensus ran in the uninvolved groups.
  EXPECT_EQ(h.system.group(GroupId{1}).replica(0).decided_instances(), 0u);
  EXPECT_EQ(
      h.system.group(GroupId{testing::kAuxBase}).replica(0).decided_instances(),
      0u);
}

TEST(ByzCastBasic, GlobalMessagesTraverseTheLca) {
  HarnessConfig cfg;
  cfg.tree = TreeKind::kThreeLevel;
  cfg.num_targets = 4;
  ByzCastHarness h(cfg);
  // {g0,g1} has lca h2 (kAuxBase+1); h1 and h3 must stay idle.
  h.run_tracked(2, 5, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 10);
  EXPECT_GT(h.system.node(GroupId{testing::kAuxBase + 1}, 0).handled_count(),
            0u);
  EXPECT_EQ(h.system.node(GroupId{testing::kAuxBase}, 0).handled_count(), 0u);
  EXPECT_EQ(h.system.node(GroupId{testing::kAuxBase + 2}, 0).handled_count(),
            0u);
}

TEST(ByzCastBasic, CrossBranchGlobalUsesRoot) {
  HarnessConfig cfg;
  cfg.tree = TreeKind::kThreeLevel;
  cfg.num_targets = 4;
  ByzCastHarness h(cfg);
  // {g0,g3} spans both branches: must be ordered by h1, then h2/h3.
  h.run_tracked(1, 3, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{3}};
  });
  EXPECT_EQ(h.completions, 3);
  EXPECT_EQ(h.system.node(GroupId{testing::kAuxBase}, 0).handled_count(), 3u);
  EXPECT_EQ(h.system.node(GroupId{testing::kAuxBase + 1}, 0).handled_count(),
            3u);
  EXPECT_EQ(h.system.node(GroupId{testing::kAuxBase + 2}, 0).handled_count(),
            3u);
  std::map<GroupId, int> per_group;
  for (const auto& rec : h.system.delivery_log().records()) {
    ++per_group[rec.group];
  }
  EXPECT_EQ(per_group[GroupId{0}], 3 * 4);
  EXPECT_EQ(per_group[GroupId{3}], 3 * 4);
  EXPECT_EQ(per_group.count(GroupId{1}), 0u);
  EXPECT_EQ(per_group.count(GroupId{2}), 0u);
}

TEST(ByzCastBasic, ManyClientsMixedTraffic) {
  HarnessConfig cfg;
  cfg.num_targets = 4;
  ByzCastHarness h(cfg);
  h.run_tracked(8, 15, [](int c, int k, Rng& rng) {
    if ((c + k) % 3 == 0) {
      const auto a = static_cast<std::int32_t>(rng.next_below(4));
      auto b = static_cast<std::int32_t>(rng.next_below(3));
      if (b >= a) ++b;
      return std::vector<GroupId>{GroupId{a}, GroupId{b}};
    }
    return std::vector<GroupId>{GroupId{c % 4}};
  });
  EXPECT_EQ(h.completions, 120);
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastBasic, SingleGroupTreeIsPlainBroadcast) {
  HarnessConfig cfg;
  cfg.tree = TreeKind::kSingle;
  cfg.num_targets = 1;
  ByzCastHarness h(cfg);
  h.run_tracked(3, 10, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}};
  });
  EXPECT_EQ(h.completions, 30);
  EXPECT_EQ(h.system.delivery_log().records().size(), 30u * 4u);
}

TEST(ByzCastBasic, WideDestinationSets) {
  // Messages addressed to all four groups at once.
  HarnessConfig cfg;
  cfg.num_targets = 4;
  ByzCastHarness h(cfg);
  h.run_tracked(2, 5, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}, GroupId{2},
                                GroupId{3}};
  });
  EXPECT_EQ(h.completions, 10);
  EXPECT_EQ(h.system.delivery_log().records().size(), 10u * 4u * 4u);
  testing::expect_atomic_multicast_properties(h.property_input());
}

}  // namespace
}  // namespace byzcast::core
