// ByzCast over the paper's 4-region WAN model: correctness is untouched by
// wide-area latency; latency magnitude reflects inter-region quorum paths;
// the system tolerates the loss of one whole region (one replica of every
// group).
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/properties.hpp"

namespace byzcast::core {
namespace {

struct WanHarness {
  explicit WanHarness(const FaultPlan& plan = {}, std::uint64_t seed = 71)
      : sim(seed, sim::Profile::wan(),
            std::make_unique<sim::WanLatency>(
                sim::WanLatency::ec2_four_regions(sim::Profile::wan()))),
        system(sim,
               OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{100}),
               1, plan) {
    auto& wan = static_cast<sim::WanLatency&>(sim.latency_model());
    for (const auto& [gid, info] : system.registry()) {
      for (std::size_t i = 0; i < info.replicas().size(); ++i) {
        wan.assign(info.replicas()[i],
                   RegionId{static_cast<std::int32_t>(i % 4)});
      }
    }
  }

  std::unique_ptr<Client> make_client(RegionId region) {
    auto client = system.make_client("wan-client");
    static_cast<sim::WanLatency&>(sim.latency_model())
        .assign(client->id(), region);
    return client;
  }

  sim::Simulation sim;
  ByzCastSystem system;
};

TEST(Wan, LocalMessageCompletesWithContinentalLatency) {
  WanHarness h;
  auto client = h.make_client(RegionId{0});  // CA
  Time latency = -1;
  client->a_multicast({GroupId{0}}, to_bytes("wan-local"),
                      [&](const MulticastMessage&, Time l) { latency = l; });
  h.sim.run_until(30 * kSecond);
  ASSERT_GE(latency, 0);
  // A quorum round among CA/VA/EU/JP takes at least one cross-continent
  // round trip (CA-VA RTT = 70 ms) and realistically several hundred ms.
  EXPECT_GT(latency, 70 * kMillisecond);
  EXPECT_LT(latency, 2 * kSecond);
}

TEST(Wan, GlobalRoughlyTwiceLocal) {
  WanHarness h;
  auto client = h.make_client(RegionId{1});  // VA
  Time local_latency = -1;
  Time global_latency = -1;
  client->a_multicast(
      {GroupId{0}}, to_bytes("l"),
      [&](const MulticastMessage&, Time l) {
        local_latency = l;
        client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("g"),
                            [&](const MulticastMessage&, Time g) {
                              global_latency = g;
                            });
      });
  h.sim.run_until(60 * kSecond);
  ASSERT_GT(local_latency, 0);
  ASSERT_GT(global_latency, 0);
  const double ratio = static_cast<double>(global_latency) /
                       static_cast<double>(local_latency);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 3.2);
}

TEST(Wan, SurvivesLossOfOneRegion) {
  // Region 3 (JP) goes dark: every group loses exactly one replica, which
  // is within f=1.
  FaultPlan plan;
  for (const int gid : {0, 1, 100}) {
    std::vector<bft::FaultSpec> faults(4);
    faults[3] = bft::FaultSpec::crashed();  // replica 3 = JP in every group
    plan.by_group[GroupId{gid}] = faults;
  }
  WanHarness h(plan);
  auto client = h.make_client(RegionId{2});  // EU
  int done = 0;
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("survives"),
                        [&, left](const MulticastMessage&, Time) {
                          ++done;
                          issue(left - 1);
                        });
  };
  issue(5);
  h.sim.run_until(120 * kSecond);
  EXPECT_EQ(done, 5);
}

TEST(Wan, OrderingHoldsAcrossRegions) {
  WanHarness h;
  auto c0 = h.make_client(RegionId{0});
  auto c1 = h.make_client(RegionId{3});
  std::vector<byzcast::testing::SentMessage> sent;
  int done = 0;
  const std::vector<GroupId> both = {GroupId{0}, GroupId{1}};
  std::function<void(Client&, int, int)> issue = [&](Client& c, int left,
                                                     int uid) {
    if (left == 0) return;
    sent.push_back(byzcast::testing::SentMessage{
        MessageId{c.id(), static_cast<std::uint64_t>(uid)}, both});
    c.a_multicast(both, to_bytes("m"),
                  [&, left, uid](const MulticastMessage&, Time) {
                    ++done;
                    issue(c, left - 1, uid + 1);
                  });
  };
  issue(*c0, 8, 0);
  issue(*c1, 8, 0);
  h.sim.run_until(300 * kSecond);
  EXPECT_EQ(done, 16);

  byzcast::testing::PropertyInput in;
  in.log = &h.system.delivery_log();
  in.sent = sent;
  for (const GroupId g : h.system.tree().target_groups()) {
    auto& grp = h.system.group(g);
    for (int i = 0; i < grp.n(); ++i) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  byzcast::testing::expect_atomic_multicast_properties(in);
}

}  // namespace
}  // namespace byzcast::core
