// Whole-system determinism: two simulations built from the same seed
// produce byte-identical outcomes — the foundation for reproducible
// experiments and debuggable failures.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/simulation.hpp"

namespace byzcast::core {
namespace {

struct RunOutcome {
  std::vector<std::tuple<std::int32_t, std::int32_t, std::uint64_t, Time>>
      deliveries;  // (group, replica, msg seq, when)
  std::vector<Time> latencies;
  std::uint64_t wire_messages = 0;
  Digest history0{};
};

RunOutcome run_once(std::uint64_t seed) {
  sim::Simulation sim(seed, sim::Profile::lan());
  ByzCastSystem system(
      sim, OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{100}), 1);
  auto c0 = system.make_client("a");
  auto c1 = system.make_client("b");

  RunOutcome out;
  std::function<void(Client&, int)> issue = [&](Client& c, int left) {
    if (left == 0) return;
    const std::vector<GroupId> dst =
        left % 3 == 0 ? std::vector<GroupId>{GroupId{0}, GroupId{1}}
                      : std::vector<GroupId>{GroupId{left % 2}};
    c.a_multicast(dst, to_bytes("op"),
                  [&, left](const MulticastMessage&, Time latency) {
                    out.latencies.push_back(latency);
                    issue(c, left - 1);
                  });
  };
  issue(*c0, 12);
  issue(*c1, 12);
  sim.run_until(60 * kSecond);

  for (const auto& rec : system.delivery_log().records()) {
    out.deliveries.emplace_back(rec.group.value, rec.replica.value,
                                rec.msg.seq, rec.when);
  }
  out.wire_messages = sim.network().messages_sent();
  out.history0 = system.group(GroupId{0}).replica(0).history_digest();
  return out;
}

TEST(Determinism, IdenticalSeedIdenticalRun) {
  const RunOutcome a = run_once(12345);
  const RunOutcome b = run_once(12345);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.wire_messages, b.wire_messages);
  EXPECT_EQ(a.history0, b.history0);
}

TEST(Determinism, DifferentSeedDifferentSchedule) {
  const RunOutcome a = run_once(1);
  const RunOutcome b = run_once(2);
  // Same logical outcome count, different timing.
  EXPECT_EQ(a.latencies.size(), b.latencies.size());
  EXPECT_NE(a.latencies, b.latencies);
}

}  // namespace
}  // namespace byzcast::core
