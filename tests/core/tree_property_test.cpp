// Property tests over randomly generated overlay trees: lca/reach/height
// invariants that Algorithm 1 and the optimizer rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/tree.hpp"

namespace byzcast::core {
namespace {

/// Builds a random tree: `num_targets` leaves, up to `max_aux` inner
/// auxiliaries arranged randomly (every auxiliary is guaranteed at least
/// one target beneath it by attaching targets after the aux skeleton).
OverlayTree random_tree(Rng& rng, int num_targets, int max_aux) {
  OverlayTree t;
  // At most one auxiliary per target so the one-target-per-auxiliary pass
  // below can make every auxiliary useful (non-empty reach).
  const int num_aux =
      static_cast<int>(rng.next_in(1, std::min(max_aux, num_targets)));
  std::vector<GroupId> aux;
  for (int a = 0; a < num_aux; ++a) {
    const GroupId id{100 + a};
    t.add_group(id, false);
    if (a > 0) {
      // Parent among earlier auxiliaries: guarantees acyclicity.
      t.set_parent(id, aux[static_cast<std::size_t>(
                        rng.next_below(static_cast<std::uint64_t>(a)))]);
    }
    aux.push_back(id);
  }
  std::vector<GroupId> targets;
  for (int g = 0; g < num_targets; ++g) {
    const GroupId id{g};
    t.add_group(id, true);
    targets.push_back(id);
  }
  // First pass: give EVERY auxiliary one target so none is useless
  // (num_aux <= num_targets guarantees enough).
  std::size_t next_target = 0;
  for (int a = num_aux - 1; a >= 0; --a) {
    t.set_parent(targets[next_target++], aux[static_cast<std::size_t>(a)]);
  }
  // Remaining targets attach anywhere.
  for (; next_target < targets.size(); ++next_target) {
    t.set_parent(targets[next_target],
                 aux[static_cast<std::size_t>(
                     rng.next_below(static_cast<std::uint64_t>(num_aux)))]);
  }
  t.finalize();
  return t;
}

class TreePropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreePropertySweep, Invariants) {
  Rng rng(GetParam());
  const int num_targets = static_cast<int>(rng.next_in(2, 8));
  const OverlayTree t = random_tree(rng, num_targets, 5);

  const auto targets = t.target_groups();
  ASSERT_EQ(targets.size(), static_cast<std::size_t>(num_targets));

  // Root reaches every target.
  EXPECT_EQ(t.reach(t.root()).size(), targets.size());

  // reach(x) = union of children's reaches (plus x when x is a target).
  for (const GroupId g : t.all_groups()) {
    std::set<GroupId> expect;
    if (t.is_target(g)) expect.insert(g);
    for (const GroupId c : t.children(g)) {
      expect.insert(t.reach(c).begin(), t.reach(c).end());
    }
    EXPECT_EQ(t.reach(g), expect) << "group " << g.value;
  }

  // Heights: child height < parent height; depth increases downward.
  for (const GroupId g : t.all_groups()) {
    for (const GroupId c : t.children(g)) {
      EXPECT_LT(t.height(c), t.height(g));
      EXPECT_EQ(t.depth(c), t.depth(g) + 1);
    }
  }

  // lca properties on random destination sets.
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<GroupId> dst;
    for (const GroupId g : targets) {
      if (rng.next_bool(0.5)) dst.push_back(g);
    }
    if (dst.empty()) dst.push_back(targets.front());

    const GroupId top = t.lca(dst);
    // Every destination lies in the lca's reach.
    for (const GroupId d : dst) {
      EXPECT_TRUE(t.reach(top).contains(d));
    }
    // Minimality: no child of the lca also covers the whole set.
    for (const GroupId c : t.children(top)) {
      bool covers_all = true;
      for (const GroupId d : dst) {
        if (!t.reach(c).contains(d)) covers_all = false;
      }
      EXPECT_FALSE(covers_all)
          << "lca not minimal for a " << dst.size() << "-set";
    }
    // lca is order-insensitive.
    std::vector<GroupId> shuffled(dst.rbegin(), dst.rend());
    EXPECT_EQ(t.lca(shuffled), top);

    // P(T, d) contains the lca and every destination, and every group in
    // it is on a path: its reach intersects dst.
    const auto path = t.path_groups(dst);
    EXPECT_NE(std::find(path.begin(), path.end(), top), path.end());
    for (const GroupId d : dst) {
      EXPECT_NE(std::find(path.begin(), path.end(), d), path.end());
    }
    for (const GroupId x : path) {
      bool intersects = false;
      for (const GroupId d : dst) {
        if (t.reach(x).contains(d)) intersects = true;
      }
      EXPECT_TRUE(intersects);
    }
  }

  // Single-destination lca is the destination itself.
  for (const GroupId g : targets) {
    EXPECT_EQ(t.lca({g}), g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreePropertySweep,
                         ::testing::Range<std::uint64_t>(7000, 7016));

}  // namespace
}  // namespace byzcast::core
