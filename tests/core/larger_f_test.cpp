// ByzCast with f=2 (7 replicas per group): the f+1 copy rule, quorums and
// relays all scale with f, including under faults up to the threshold.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/properties.hpp"

namespace byzcast::core {
namespace {

struct F2Harness {
  explicit F2Harness(const FaultPlan& plan = {}, std::uint64_t seed = 61)
      : sim(seed, sim::Profile::lan()),
        system(sim,
               OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{100}),
               /*f=*/2, plan) {}

  void run_messages(int count, const std::vector<GroupId>& dst,
                    Time horizon = 120 * kSecond) {
    client = system.make_client("c");
    std::function<void(int)> issue = [&, dst](int left) {
      if (left == 0) return;
      sent.push_back(byzcast::testing::SentMessage{
          MessageId{client->id(), static_cast<std::uint64_t>(count - left)},
          dst});
      client->a_multicast(dst, to_bytes("op"),
                          [&, left](const MulticastMessage&, Time) {
                            ++completions;
                            issue(left - 1);
                          });
    };
    issue(count);
    sim.run_until(horizon);
  }

  byzcast::testing::PropertyInput property_input() {
    byzcast::testing::PropertyInput in;
    in.log = &system.delivery_log();
    in.sent = sent;
    for (const GroupId g : system.tree().target_groups()) {
      auto& grp = system.group(g);
      for (const int i : grp.correct_indices()) {
        in.correct_replicas[g].push_back(grp.replica(i).id());
      }
    }
    return in;
  }

  sim::Simulation sim;
  ByzCastSystem system;
  std::unique_ptr<Client> client;
  std::vector<byzcast::testing::SentMessage> sent;
  int completions = 0;
};

TEST(LargerF, GroupsHaveSevenReplicas) {
  F2Harness h;
  EXPECT_EQ(h.system.group(GroupId{0}).n(), 7);
  EXPECT_EQ(h.system.group(GroupId{100}).info().quorum(), 5);
}

TEST(LargerF, GlobalMessagesFlowWithF2) {
  F2Harness h;
  h.run_messages(10, {GroupId{0}, GroupId{1}});
  EXPECT_EQ(h.completions, 10);
  // 7 replicas per destination group deliver each message.
  EXPECT_EQ(h.system.delivery_log().records().size(), 10u * 7u * 2u);
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(LargerF, ToleratesTwoFaultyAuxReplicas) {
  FaultPlan plan;
  std::vector<bft::FaultSpec> faults(7);
  faults[3] = bft::FaultSpec::crashed();
  faults[5].drop_relays = true;
  plan.by_group[GroupId{100}] = faults;
  F2Harness h(plan);
  h.run_messages(10, {GroupId{0}, GroupId{1}});
  EXPECT_EQ(h.completions, 10);
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(LargerF, SingleFabricatorCannotReachFPlusOne) {
  FaultPlan plan;
  std::vector<bft::FaultSpec> faults(7);
  faults[2].fabricate_relay = true;
  faults[4].fabricate_relay = true;  // two fabricators still < f+1 = 3
  plan.by_group[GroupId{100}] = faults;
  F2Harness h(plan);
  h.run_messages(9, {GroupId{0}, GroupId{1}});
  EXPECT_EQ(h.completions, 9);
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_LT(rec.msg.origin.value, kFabricatedOriginBase);
  }
}

}  // namespace
}  // namespace byzcast::core
