// Algorithm 1 on deep (4+ level) trees: messages climb to the right lca and
// are re-ordered level by level on the way down; latency grows with the lca
// height; all atomic multicast properties hold.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/properties.hpp"

namespace byzcast::core {
namespace {

// chain: h0(root) <- h1 <- h2, targets: g0@h0, g1@h1, g2@h2, g3@h2.
OverlayTree deep_tree() {
  return OverlayTree::chain(
      {GroupId{0}, GroupId{1}, GroupId{2}, GroupId{3}},
      {GroupId{100}, GroupId{101}, GroupId{102}});
}

TEST(DeepTree, ChainBuilderShape) {
  const OverlayTree t = deep_tree();
  EXPECT_EQ(t.root(), GroupId{100});
  EXPECT_EQ(t.height(GroupId{100}), 4);
  EXPECT_EQ(t.height(GroupId{101}), 3);
  EXPECT_EQ(t.height(GroupId{102}), 2);
  EXPECT_EQ(t.lca({GroupId{2}, GroupId{3}}), GroupId{102});
  EXPECT_EQ(t.lca({GroupId{1}, GroupId{2}}), GroupId{101});
  EXPECT_EQ(t.lca({GroupId{0}, GroupId{3}}), GroupId{100});
}

struct DeepHarness {
  DeepHarness() : sim(111, sim::Profile::lan()), system(sim, deep_tree(), 1) {}

  Time run_one(const std::vector<GroupId>& dst) {
    auto client = system.make_client("c");
    Time measured = -1;
    client->a_multicast(dst, to_bytes("m"),
                        [&](const MulticastMessage&, Time l) {
                          measured = l;
                        });
    sim.run_until(sim.now() + 60 * kSecond);
    return measured;
  }

  sim::Simulation sim;
  ByzCastSystem system;
};

TEST(DeepTree, LatencyGrowsWithLcaHeight) {
  DeepHarness h;
  const Time local = h.run_one({GroupId{3}});                       // height 1
  const Time h2 = h.run_one({GroupId{2}, GroupId{3}});              // height 2
  const Time h3 = h.run_one({GroupId{1}, GroupId{2}});              // height 3
  const Time h4 = h.run_one({GroupId{0}, GroupId{3}});              // height 4
  ASSERT_GT(local, 0);
  ASSERT_GT(h2, 0);
  ASSERT_GT(h3, 0);
  ASSERT_GT(h4, 0);
  EXPECT_GT(h2, local);
  EXPECT_GT(h3, h2);
  EXPECT_GT(h4, h3);
  // Each extra level adds roughly one more ordering round.
  EXPECT_GT(static_cast<double>(h4) / static_cast<double>(local), 2.5);
}

TEST(DeepTree, DeepRelayDeliversEverywhere) {
  DeepHarness h;
  auto client = h.system.make_client("c");
  int done = 0;
  client->a_multicast(
      {GroupId{0}, GroupId{1}, GroupId{2}, GroupId{3}}, to_bytes("all"),
      [&](const MulticastMessage&, Time) { ++done; });
  h.sim.run_until(60 * kSecond);
  EXPECT_EQ(done, 1);
  std::map<GroupId, int> per_group;
  for (const auto& rec : h.system.delivery_log().records()) {
    ++per_group[rec.group];
  }
  for (const int g : {0, 1, 2, 3}) {
    EXPECT_EQ(per_group[GroupId{g}], 4) << "group " << g;
  }
}

TEST(DeepTree, PropertiesUnderMixedDeepTraffic) {
  DeepHarness h;
  std::vector<byzcast::testing::SentMessage> sent;
  std::vector<std::unique_ptr<Client>> clients;
  int done = 0;
  const std::vector<std::vector<GroupId>> dsts = {
      {GroupId{3}},
      {GroupId{2}, GroupId{3}},
      {GroupId{1}, GroupId{3}},
      {GroupId{0}, GroupId{1}, GroupId{2}, GroupId{3}},
  };
  for (int c = 0; c < 4; ++c) {
    clients.push_back(h.system.make_client("c" + std::to_string(c)));
  }
  std::function<void(int, int)> issue = [&](int c, int k) {
    if (k == 8) return;
    const auto& dst = dsts[static_cast<std::size_t>((c + k) % dsts.size())];
    MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    sent.push_back(byzcast::testing::SentMessage{
        MessageId{clients[static_cast<std::size_t>(c)]->id(),
                  static_cast<std::uint64_t>(k)},
        canon.dst});
    clients[static_cast<std::size_t>(c)]->a_multicast(
        dst, to_bytes("m"), [&, c, k](const MulticastMessage&, Time) {
          ++done;
          issue(c, k + 1);
        });
  };
  for (int c = 0; c < 4; ++c) issue(c, 0);
  h.sim.run_until(240 * kSecond);
  EXPECT_EQ(done, 32);

  byzcast::testing::PropertyInput in;
  in.log = &h.system.delivery_log();
  in.sent = sent;
  for (const GroupId g : h.system.tree().target_groups()) {
    auto& grp = h.system.group(g);
    for (int i = 0; i < grp.n(); ++i) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  byzcast::testing::expect_atomic_multicast_properties(in);
}

}  // namespace
}  // namespace byzcast::core
