#include "core/tree.hpp"

#include <gtest/gtest.h>

namespace byzcast::core {
namespace {

std::vector<GroupId> ids(std::initializer_list<int> values) {
  std::vector<GroupId> out;
  for (const int v : values) out.push_back(GroupId{v});
  return out;
}

// The paper's Fig. 1 tree: h1 over {h2, h3}, h2 over {g1, g2}, h3 over
// {g3, g4}. We use ids g1..g4 = 1..4, h1..h3 = 11..13.
OverlayTree fig1_tree() {
  return OverlayTree::three_level(ids({1, 2, 3, 4}), GroupId{11}, GroupId{12},
                                  GroupId{13});
}

TEST(OverlayTree, Fig1ReachSets) {
  const OverlayTree t = fig1_tree();
  EXPECT_EQ(t.reach(GroupId{11}),
            (std::set<GroupId>{GroupId{1}, GroupId{2}, GroupId{3}, GroupId{4}}));
  EXPECT_EQ(t.reach(GroupId{12}), (std::set<GroupId>{GroupId{1}, GroupId{2}}));
  EXPECT_EQ(t.reach(GroupId{13}), (std::set<GroupId>{GroupId{3}, GroupId{4}}));
  EXPECT_EQ(t.reach(GroupId{1}), (std::set<GroupId>{GroupId{1}}));
}

TEST(OverlayTree, Fig1Heights) {
  // Paper convention (Table III): leaves height 1, root of the 3-level tree
  // height 3.
  const OverlayTree t = fig1_tree();
  EXPECT_EQ(t.height(GroupId{1}), 1);
  EXPECT_EQ(t.height(GroupId{12}), 2);
  EXPECT_EQ(t.height(GroupId{13}), 2);
  EXPECT_EQ(t.height(GroupId{11}), 3);
  EXPECT_EQ(t.root(), GroupId{11});
}

TEST(OverlayTree, Fig1Lca) {
  const OverlayTree t = fig1_tree();
  EXPECT_EQ(t.lca(ids({1})), GroupId{1});
  EXPECT_EQ(t.lca(ids({1, 2})), GroupId{12});
  EXPECT_EQ(t.lca(ids({3, 4})), GroupId{13});
  EXPECT_EQ(t.lca(ids({1, 3})), GroupId{11});
  EXPECT_EQ(t.lca(ids({2, 4})), GroupId{11});
  EXPECT_EQ(t.lca(ids({1, 2, 3})), GroupId{11});
  EXPECT_EQ(t.lca(ids({1, 2, 3, 4})), GroupId{11});
}

TEST(OverlayTree, Fig1PathGroups) {
  const OverlayTree t = fig1_tree();
  // P(T, {g1,g2}) = {h2, g1, g2}.
  const auto p12 = t.path_groups(ids({1, 2}));
  EXPECT_EQ(std::set<GroupId>(p12.begin(), p12.end()),
            (std::set<GroupId>{GroupId{12}, GroupId{1}, GroupId{2}}));
  // P(T, {g2,g3}) = {h1, h2, h3, g2, g3}.
  const auto p23 = t.path_groups(ids({2, 3}));
  EXPECT_EQ(std::set<GroupId>(p23.begin(), p23.end()),
            (std::set<GroupId>{GroupId{11}, GroupId{12}, GroupId{13},
                               GroupId{2}, GroupId{3}}));
}

TEST(OverlayTree, TwoLevelLayout) {
  const OverlayTree t = OverlayTree::two_level(ids({1, 2, 3, 4}), GroupId{10});
  EXPECT_EQ(t.root(), GroupId{10});
  EXPECT_EQ(t.height(GroupId{10}), 2);
  EXPECT_EQ(t.lca(ids({1, 4})), GroupId{10});
  EXPECT_EQ(t.lca(ids({2})), GroupId{2});
  EXPECT_EQ(t.children(GroupId{10}).size(), 4u);
  EXPECT_FALSE(t.is_target(GroupId{10}));
  EXPECT_TRUE(t.is_target(GroupId{3}));
}

TEST(OverlayTree, SingleNode) {
  const OverlayTree t = OverlayTree::single(GroupId{5});
  EXPECT_EQ(t.root(), GroupId{5});
  EXPECT_EQ(t.lca(ids({5})), GroupId{5});
  EXPECT_EQ(t.height(GroupId{5}), 1);
  EXPECT_TRUE(t.children(GroupId{5}).empty());
}

TEST(OverlayTree, TargetsAsInnerNodes) {
  // Algorithm 1 allows target groups as inner nodes; the tree supports it.
  OverlayTree t;
  t.add_group(GroupId{1}, true);
  t.add_group(GroupId{2}, true);
  t.add_group(GroupId{3}, true);
  t.set_parent(GroupId{2}, GroupId{1});
  t.set_parent(GroupId{3}, GroupId{1});
  t.finalize();
  EXPECT_EQ(t.root(), GroupId{1});
  EXPECT_EQ(t.reach(GroupId{1}),
            (std::set<GroupId>{GroupId{1}, GroupId{2}, GroupId{3}}));
  EXPECT_EQ(t.lca(ids({1, 2})), GroupId{1});
  EXPECT_EQ(t.lca(ids({2, 3})), GroupId{1});
  EXPECT_EQ(t.height(GroupId{1}), 2);
}

TEST(OverlayTree, GroupEnumeration) {
  const OverlayTree t = fig1_tree();
  EXPECT_EQ(t.all_groups().size(), 7u);
  EXPECT_EQ(t.target_groups().size(), 4u);
  EXPECT_EQ(t.auxiliary_groups().size(), 3u);
}

TEST(OverlayTree, DepthFromRoot) {
  const OverlayTree t = fig1_tree();
  EXPECT_EQ(t.depth(GroupId{11}), 0);
  EXPECT_EQ(t.depth(GroupId{12}), 1);
  EXPECT_EQ(t.depth(GroupId{4}), 2);
}

TEST(OverlayTreeDeathTest, TwoRootsRejected) {
  OverlayTree t;
  t.add_group(GroupId{1}, true);
  t.add_group(GroupId{2}, true);
  EXPECT_DEATH(t.finalize(), "Precondition");
}

TEST(OverlayTreeDeathTest, LcaOfNonTargetRejected) {
  const OverlayTree t = fig1_tree();
  EXPECT_DEATH((void)t.lca({GroupId{11}}), "Precondition");
}

TEST(OverlayTreeDeathTest, UselessAuxiliaryRejected) {
  // An auxiliary group with no targets beneath it cannot exist.
  OverlayTree t;
  t.add_group(GroupId{1}, true);
  t.add_group(GroupId{10}, false);
  t.add_group(GroupId{11}, false);
  t.set_parent(GroupId{1}, GroupId{10});
  t.set_parent(GroupId{11}, GroupId{10});
  EXPECT_DEATH(t.finalize(), "Precondition");
}

}  // namespace
}  // namespace byzcast::core
