#include "core/multicast.hpp"

#include <gtest/gtest.h>

namespace byzcast::core {
namespace {

TEST(MulticastMessage, EncodeDecodeRoundTrip) {
  MulticastMessage m;
  m.id = MessageId{ProcessId{42}, 7};
  m.dst = {GroupId{1}, GroupId{3}};
  m.payload = to_bytes("hello shards");
  const Bytes encoded = m.encode();
  EXPECT_EQ(MulticastMessage::decode(encoded), m);
}

TEST(MulticastMessage, CanonicalizeSortsAndDedups) {
  MulticastMessage m;
  m.dst = {GroupId{3}, GroupId{1}, GroupId{3}, GroupId{2}};
  m.canonicalize();
  EXPECT_EQ(m.dst, (std::vector<GroupId>{GroupId{1}, GroupId{2}, GroupId{3}}));
}

TEST(MulticastMessage, LocalVsGlobal) {
  MulticastMessage local;
  local.dst = {GroupId{1}};
  EXPECT_TRUE(local.is_local());
  EXPECT_FALSE(local.is_global());

  MulticastMessage global;
  global.dst = {GroupId{1}, GroupId{2}};
  EXPECT_FALSE(global.is_local());
  EXPECT_TRUE(global.is_global());
}

TEST(MulticastMessage, EncodingIsCanonicalAfterCanonicalize) {
  MulticastMessage a;
  a.id = MessageId{ProcessId{1}, 0};
  a.dst = {GroupId{2}, GroupId{1}};
  a.canonicalize();
  MulticastMessage b;
  b.id = MessageId{ProcessId{1}, 0};
  b.dst = {GroupId{1}, GroupId{2}};
  b.canonicalize();
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(MulticastMessage, EmptyPayloadAllowed) {
  MulticastMessage m;
  m.id = MessageId{ProcessId{9}, 1};
  m.dst = {GroupId{0}};
  EXPECT_EQ(MulticastMessage::decode(m.encode()), m);
}

}  // namespace
}  // namespace byzcast::core
