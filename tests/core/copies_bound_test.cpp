// Regression tests for the copies_ memory leak: entries that reach the f+1
// threshold (or a direct-path handle) are erased immediately, and entries
// that can never complete — fabricated messages relayed by at most f
// Byzantine parents — are reclaimed by the time-based sweep instead of
// accumulating for the lifetime of the run.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

core::FaultPlan fabricating_aux_replica(int replica_index) {
  core::FaultPlan plan;
  std::vector<bft::FaultSpec> faults(4);
  faults[static_cast<std::size_t>(replica_index)].fabricate_relay = true;
  plan.by_group[GroupId{testing::kAuxBase}] = faults;
  return plan;
}

std::size_t total_pending(ByzCastHarness& h) {
  std::size_t total = 0;
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    for (int i = 0; i < 4; ++i) {
      total += h.system.node(g, i).pending_copy_count();
    }
  }
  return total;
}

TEST(CopiesBound, HandledEntriesErasedInFaultFreeRun) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(4, 10, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 40);
  // Every global message reached the f+1 threshold and was erased on
  // handle(); nothing lingers once the run has drained.
  EXPECT_EQ(total_pending(h), 0u);
}

TEST(CopiesBound, FabricatedEntriesSweptNotAccumulated) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.faults = fabricating_aux_replica(2);
  ByzCastHarness h(cfg);
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    for (int i = 0; i < 4; ++i) {
      h.system.node(g, i).set_pending_expiry(10 * kSecond);
    }
  }
  const auto global_pair = [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  };
  // Wave 1: the Byzantine auxiliary replica fabricates one fake per 3
  // handled messages; each fake reaches both target groups with a single
  // sender, so it parks in copies_ below the f+1 threshold.
  h.run_tracked(4, 30, global_pair, /*horizon=*/120 * kSecond);
  EXPECT_EQ(h.completions, 120);
  const std::size_t parked = h.system.node(GroupId{0}, 0).pending_copy_count();
  EXPECT_GT(parked, 10u);  // ~40 fakes accumulated during the burst

  // Wave 2, issued 120 simulated seconds later: the first execute() at each
  // target replica runs the lazy sweep, and every wave-1 fake is now far
  // older than the 10 s expiry. Only wave-2 fabrications may remain.
  h.run(1, 3, global_pair, /*horizon=*/240 * kSecond);
  EXPECT_EQ(h.completions, 123);
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    for (int i = 0; i < 4; ++i) {
      const std::size_t pending = h.system.node(g, i).pending_copy_count();
      EXPECT_LT(pending, parked) << "group " << g.value << " replica " << i;
      EXPECT_LE(pending, 4u) << "group " << g.value << " replica " << i;
    }
  }
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_LT(rec.msg.origin.value, kFabricatedOriginBase);
  }
}

TEST(CopiesBound, LateCopiesAfterHandleDoNotReopenEntry) {
  // With f+1 = 2 of 4 parent replicas sufficient, the remaining 2 copies of
  // every global message arrive after handle(); the handled_ fast path must
  // not re-insert into copies_.
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(2, 20, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 40);
  EXPECT_EQ(total_pending(h), 0u);
  for (const GroupId g : {GroupId{0}, GroupId{1}}) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(h.system.node(g, i).handled_count(), 40u);
    }
  }
}

}  // namespace
}  // namespace byzcast::core
