// Documents the front-running subtlety discussed in DESIGN.md §3: the f+1
// copy rule of Algorithm 1 guarantees authenticity, and with correct relays
// it also preserves the parent's order (Lemma 4). A Byzantine parent replica
// that *reorders* its relay stream toward one child can shift where the
// (f+1)-th copy lands in that child. With f=1 this requires the adversary's
// copy plus one correct copy to arrive before the remaining correct copies —
// a race this test makes possible by delaying two of the three correct
// relays. The test demonstrates (a) the paper's guarantees hold under the
// behaviours its proofs model (no reordering), and (b) the adversarial
// schedule can produce divergence, which we *detect* rather than assert
// rigidly (it is timing-dependent).
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

TEST(FrontRunning, HonestRelaysPreserveParentOrder) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(6, 15, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 90);
  EXPECT_TRUE(testing::check_prefix_order(h.property_input()));
  EXPECT_TRUE(testing::check_acyclic_order(h.property_input()));
}

TEST(FrontRunning, FrontRunningRelayPreservesLivenessAndAuthenticity) {
  // One auxiliary replica inverts consecutive pairs toward g0. With f=1 its
  // copy plus a single prompt correct copy already form the f+1 threshold,
  // so even without network interference the (f+1)-th-copy position can
  // race — this is exactly the DESIGN.md §3 subtlety. What MUST survive
  // regardless: validity, agreement, integrity, and within-group agreement.
  HarnessConfig cfg;
  cfg.num_targets = 2;
  bft::FaultSpec spec;
  spec.front_run = true;
  std::vector<bft::FaultSpec> faults(4);
  faults[2] = spec;
  cfg.faults.by_group[GroupId{testing::kAuxBase}] = faults;
  ByzCastHarness h(cfg);
  h.run_tracked(6, 15, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 90);
  EXPECT_TRUE(testing::check_validity_agreement(h.property_input()));
  EXPECT_TRUE(testing::check_integrity(h.property_input()));
  // All correct replicas of the SAME group still agree perfectly (their
  // order is the group's atomic broadcast order).
  for (const auto& [g, replicas] : h.correct_replicas()) {
    const auto& ref = h.system.delivery_log().sequence(replicas.front());
    for (const ProcessId p : replicas) {
      EXPECT_EQ(h.system.delivery_log().sequence(p), ref)
          << "within-group divergence in " << to_string(g);
    }
  }
}

TEST(FrontRunning, AdversarialScheduleCanReorderOneChild) {
  // Adversarial setup: auxiliary replica 2 front-runs toward g0 AND the
  // network delays the relay links of correct auxiliary replicas 1 and 3
  // toward g0's replicas, so the Byzantine copy plus replica 0's copy decide
  // the (f+1)-th-copy position in g0, while g1 sees the honest order.
  HarnessConfig cfg;
  cfg.num_targets = 2;
  bft::FaultSpec spec;
  spec.front_run = true;
  std::vector<bft::FaultSpec> faults(4);
  faults[2] = spec;
  cfg.faults.by_group[GroupId{testing::kAuxBase}] = faults;
  ByzCastHarness h(cfg);

  const auto& aux = h.system.group(GroupId{testing::kAuxBase}).info();
  const auto& g0 = h.system.group(GroupId{0}).info();
  for (const int slow_aux : {1, 3}) {
    for (const ProcessId target : g0.replicas()) {
      h.sim.network().faults().add_delay(
          aux.replicas()[static_cast<std::size_t>(slow_aux)], target,
          50 * kMillisecond);
    }
  }

  h.run_tracked(4, 25, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 100);

  // Liveness and per-group agreement are unaffected...
  EXPECT_TRUE(testing::check_validity_agreement(h.property_input()));
  EXPECT_TRUE(testing::check_integrity(h.property_input()));

  // ...but cross-group prefix order MAY break under this schedule. We
  // report the outcome either way: the point of this test is to document
  // the scenario and keep it executable, not to demand a specific race
  // resolution.
  const auto prefix = testing::check_prefix_order(h.property_input());
  if (!prefix) {
    RecordProperty("front_running_divergence", "reproduced");
    SUCCEED() << "front-running divergence reproduced (see DESIGN.md §3): "
              << prefix.message();
  } else {
    RecordProperty("front_running_divergence", "not-triggered");
    SUCCEED() << "adversarial schedule did not trigger divergence this run";
  }
}

}  // namespace
}  // namespace byzcast::core
