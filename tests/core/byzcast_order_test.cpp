// Ordering guarantees of ByzCast: prefix and acyclic order across groups,
// the main invariant (lower groups preserve the order induced higher up),
// and FIFO of a single client's messages.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;
using ::byzcast::testing::TreeKind;

TEST(ByzCastOrder, ConcurrentGlobalsConsistentlyOrdered) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  // Many clients hammering the same destination pair: both groups must see
  // the exact same relative order for every pair of messages.
  h.run_tracked(10, 10, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 100);
  const auto in = h.property_input();
  EXPECT_TRUE(testing::check_prefix_order(in));
  EXPECT_TRUE(testing::check_acyclic_order(in));
  EXPECT_TRUE(testing::check_validity_agreement(in));
}

TEST(ByzCastOrder, OverlappingPairsAcyclic) {
  // The paper's Fig. 1(b) scenario generalized: m1 -> {g0,g1},
  // m2 -> {g1,g2}, m3 -> {g2,g0} concurrently, many times over. Pairwise
  // orders must compose without cycles.
  HarnessConfig cfg;
  cfg.tree = TreeKind::kThreeLevel;
  cfg.num_targets = 4;
  ByzCastHarness h(cfg);
  h.run_tracked(9, 12, [](int c, int, Rng&) {
    switch (c % 3) {
      case 0: return std::vector<GroupId>{GroupId{0}, GroupId{1}};
      case 1: return std::vector<GroupId>{GroupId{1}, GroupId{2}};
      default: return std::vector<GroupId>{GroupId{2}, GroupId{0}};
    }
  });
  EXPECT_EQ(h.completions, 108);
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastOrder, LocalAndGlobalInterleaved) {
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(6, 20, [](int c, int k, Rng&) {
    if ((k + c) % 2 == 0) return std::vector<GroupId>{GroupId{c % 2}};
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 120);
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastOrder, SameClientMessagesDeliveredInSendOrder) {
  // A closed-loop client's messages to the same destination set must be
  // a-delivered in send order (FIFO through a fixed entry group).
  HarnessConfig cfg;
  cfg.num_targets = 2;
  ByzCastHarness h(cfg);
  h.run_tracked(1, 25, [](int, int, Rng&) {
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};
  });
  EXPECT_EQ(h.completions, 25);

  const ProcessId client = h.clients[0]->id();
  for (const auto& [g, replicas] : h.correct_replicas()) {
    for (const ProcessId p : replicas) {
      const auto& seq = h.system.delivery_log().sequence(p);
      std::uint64_t expected = 0;
      for (const auto& msg : seq) {
        ASSERT_EQ(msg.origin, client);
        EXPECT_EQ(msg.seq, expected++) << "at " << to_string(p);
      }
      EXPECT_EQ(expected, 25u);
    }
  }
}

TEST(ByzCastOrder, ThreeLevelTreeMainInvariant) {
  // Cross-branch messages ordered at the root must be delivered in the
  // root-induced order at every destination, even while branch-local
  // traffic interleaves.
  HarnessConfig cfg;
  cfg.tree = TreeKind::kThreeLevel;
  cfg.num_targets = 4;
  ByzCastHarness h(cfg);
  h.run_tracked(8, 10, [](int c, int, Rng&) {
    if (c % 2 == 0) {
      return std::vector<GroupId>{GroupId{0}, GroupId{3}};  // cross-branch
    }
    return std::vector<GroupId>{GroupId{0}, GroupId{1}};  // left branch
  });
  EXPECT_EQ(h.completions, 80);
  testing::expect_atomic_multicast_properties(h.property_input());
}

TEST(ByzCastOrder, BaselineRoutingAlsoOrders) {
  HarnessConfig cfg;
  cfg.num_targets = 3;
  cfg.routing = Routing::kViaRoot;
  ByzCastHarness h(cfg);
  h.run_tracked(6, 10, [](int c, int, Rng&) {
    if (c % 3 == 0) return std::vector<GroupId>{GroupId{0}};
    return std::vector<GroupId>{GroupId{c % 3}, GroupId{(c + 1) % 3}};
  });
  EXPECT_EQ(h.completions, 60);
  testing::expect_atomic_multicast_properties(h.property_input());
}

}  // namespace
}  // namespace byzcast::core
