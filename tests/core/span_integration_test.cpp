// End-to-end span tracing through the simulator: a traced mixed workload
// produces well-formed span trees whose critical-path decomposition sums to
// the measured end-to-end latency exactly — including under message loss,
// Byzantine fault injection, and span-log truncation.
#include <gtest/gtest.h>

#include "common/span.hpp"
#include "core/critical_path.hpp"
#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;

/// Every third message global to {g0, g1}, the rest local to the client's
/// home group.
std::vector<GroupId> mixed_dst(int c, int k, Rng&) {
  if (k % 3 == 2) return {GroupId{0}, GroupId{1}};
  return {GroupId{c % 2}};
}

void expect_exact_decomposition(const SpanLog& log, int f,
                                std::size_t* complete_local = nullptr,
                                std::size_t* complete_global = nullptr) {
  CriticalPathAnalyzer analyzer(log, CriticalPathAnalyzer::Options{f});
  for (const auto& m : analyzer.messages()) {
    if (!m.complete) continue;
    if (complete_local != nullptr && !m.is_global) ++*complete_local;
    if (complete_global != nullptr && m.is_global) ++*complete_global;
    EXPECT_EQ(m.totals.total(), m.end_to_end)
        << "inexact decomposition for " << to_string(m.id);
    EXPECT_GE(m.totals.queueing, 0);
    EXPECT_GE(m.totals.cpu, 0);
    EXPECT_GE(m.totals.network, 0);
    EXPECT_GE(m.totals.quorum_wait, 0);
    EXPECT_FALSE(m.hops.empty());
  }
}

TEST(SpanIntegration, TracedMixedRunDecomposesExactly) {
  SpanLog spans;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.spans = &spans;
  cfg.trace_sample_every = 1;
  ByzCastHarness h(cfg);
  h.run(4, 12, mixed_dst);
  EXPECT_EQ(h.completions, 48);
  EXPECT_EQ(spans.dropped(), 0u);
  EXPECT_EQ(spans.traced_messages().size(), 48u);

  std::size_t local = 0;
  std::size_t global = 0;
  expect_exact_decomposition(spans, cfg.f, &local, &global);
  EXPECT_EQ(local, 32u);
  EXPECT_EQ(global, 16u);

  // Global messages crossed the entry group: the analyzer saw the relay
  // edges from the auxiliary root to both destinations.
  CriticalPathAnalyzer analyzer(spans, CriticalPathAnalyzer::Options{cfg.f});
  EXPECT_FALSE(analyzer.edge_latency().empty());
}

TEST(SpanIntegration, SamplingTracesEveryNthMessage) {
  SpanLog spans;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.spans = &spans;
  cfg.trace_sample_every = 4;
  ByzCastHarness h(cfg);
  h.run(2, 12, mixed_dst);
  EXPECT_EQ(h.completions, 24);
  // Client uids 0, 4, 8 of each of the two clients.
  EXPECT_EQ(spans.traced_messages().size(), 6u);
  for (const MessageId& id : spans.traced_messages()) {
    EXPECT_EQ(id.seq % 4, 0u);
  }
}

TEST(SpanIntegration, WellFormedUnderMessageLoss) {
  SpanLog spans;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.spans = &spans;
  cfg.trace_sample_every = 1;
  ByzCastHarness h(cfg);
  h.sim.network().faults().set_loss_probability(0.01);
  h.run(4, 10, mixed_dst);
  EXPECT_GT(h.completions, 0);
  // Loss may leave some traces truncated (complete=false); whatever IS
  // complete must still decompose exactly.
  expect_exact_decomposition(spans, cfg.f);
}

TEST(SpanIntegration, WellFormedUnderByzantineFaults) {
  SpanLog spans;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.spans = &spans;
  cfg.trace_sample_every = 1;
  // One auxiliary replica goes fully silent, another front-runs toward a
  // child: both the f+1 thresholds and the relay streams are stressed.
  std::vector<bft::FaultSpec> faults(4);
  faults[1].silent = true;
  cfg.faults.by_group[GroupId{testing::kAuxBase}] = faults;
  ByzCastHarness h(cfg);
  std::size_t global = 0;
  h.run(4, 10, mixed_dst);
  EXPECT_EQ(h.completions, 40);
  expect_exact_decomposition(spans, cfg.f, nullptr, &global);
  EXPECT_GT(global, 0u);
}

TEST(SpanIntegration, TruncationByCapacityIsReportedAndHarmless) {
  SpanLog spans(/*capacity=*/200);
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.spans = &spans;
  cfg.trace_sample_every = 1;
  ByzCastHarness h(cfg);
  h.run(4, 12, mixed_dst);
  EXPECT_EQ(h.completions, 48);
  EXPECT_GT(spans.dropped(), 0u);
  EXPECT_EQ(spans.spans().size(), 200u);
  // Truncated span trees analyze without crashing; complete ones (if any)
  // stay exact.
  expect_exact_decomposition(spans, cfg.f);
}

TEST(SpanIntegration, UntracedRunRecordsNothing) {
  SpanLog spans;
  HarnessConfig cfg;
  cfg.num_targets = 2;
  cfg.obs.spans = &spans;
  cfg.trace_sample_every = 0;  // knob off: no client ever sets the flag
  ByzCastHarness h(cfg);
  h.run(2, 6, mixed_dst);
  EXPECT_EQ(h.completions, 12);
  EXPECT_TRUE(spans.spans().empty());
}

}  // namespace
}  // namespace byzcast::core
