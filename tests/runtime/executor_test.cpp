#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/timer_wheel.hpp"
#include "runtime/wall_clock.hpp"

namespace byzcast::runtime {
namespace {

/// Blocks the caller until `count` arrivals.
class Latch {
 public:
  explicit Latch(int count) : remaining_(count) {}
  void arrive() {
    const std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }
  bool wait_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [this] { return remaining_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

TEST(Executor, TasksRunOnTheirAssignedWorker) {
  Executor ex(3);
  ex.start();
  constexpr int kTasks = 50;
  // One plain (non-atomic) counter per worker: only that worker writes it,
  // which is exactly the serialization the executor promises. TSan audits.
  std::vector<int> per_worker(3, 0);
  Latch done(3 * kTasks);
  for (int i = 0; i < kTasks; ++i) {
    for (std::size_t w = 0; w < 3; ++w) {
      ASSERT_TRUE(ex.post(w, [&, w] {
        EXPECT_EQ(ex.current_worker(), w);
        ++per_worker[w];
        done.arrive();
      }));
    }
  }
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  ex.stop();
  for (std::size_t w = 0; w < 3; ++w) EXPECT_EQ(per_worker[w], kTasks);
}

TEST(Executor, SelfPostRunsBeforeLaterMailboxTraffic) {
  Executor ex(1);
  ex.start();
  std::vector<int> order;
  Latch done(1);
  ASSERT_TRUE(ex.post(0, [&] {
    // The continuation self-posts; it must run before task B, which is
    // already behind us in the mailbox by the time we finish.
    ex.post(0, [&] { order.push_back(1); });
    order.push_back(0);
  }));
  ASSERT_TRUE(ex.post(0, [&] {
    order.push_back(2);
    done.arrive();
  }));
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  ex.stop();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Executor, StopDrainsQueuedTasksThenRejects) {
  Executor ex(2);
  std::atomic<int> ran{0};
  // Queued before start: they run once the workers spin up, and stop()
  // must not lose them.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ex.post(i % 2, [&] { ran.fetch_add(1); }));
  }
  ex.start();
  ex.stop();
  EXPECT_EQ(ran.load(), 20);
  EXPECT_FALSE(ex.post(0, [] {}));
  EXPECT_FALSE(ex.post_external(1, [] {}));
}

TEST(Executor, ExternalPostAppliesBackpressureNotLoss) {
  Executor ex(1, /*mailbox_capacity=*/4);
  std::atomic<int> ran{0};
  // More tasks than capacity while the worker is not yet running: the edge
  // blocks instead of dropping, so start the worker from another thread.
  std::thread starter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ex.start();
  });
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(ex.post_external(0, [&] { ran.fetch_add(1); }));
  }
  starter.join();
  ex.stop();
  EXPECT_EQ(ran.load(), 64);
}

TEST(TimerWheel, FiresAfterDelayNeverEarly) {
  TimerWheel wheel(kMillisecond);
  WallClock clock;
  wheel.start();
  std::atomic<Time> fired_at{-1};
  Latch done(1);
  const Time delay = 20 * kMillisecond;
  const Time armed_at = clock.now();
  wheel.schedule(delay, [&] {
    fired_at.store(clock.now());
    done.arrive();
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  wheel.stop();
  EXPECT_GE(fired_at.load() - armed_at, delay);
}

TEST(TimerWheel, AcceptsSchedulesBeforeStart) {
  TimerWheel wheel(kMillisecond);
  std::atomic<bool> fired{false};
  Latch done(1);
  wheel.schedule(5 * kMillisecond, [&] {
    fired.store(true);
    done.arrive();
  });
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_FALSE(fired.load());  // cold wheel: nothing fires until start
  wheel.start();
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  wheel.stop();
  EXPECT_TRUE(fired.load());
}

TEST(TimerWheel, StopDropsPendingTimers) {
  TimerWheel wheel(kMillisecond);
  wheel.start();
  std::atomic<bool> fired{false};
  wheel.schedule(60 * kSecond, [&] { fired.store(true); });
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.stop();
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(fired.load());
  // And a post-stop schedule is silently dropped, not queued forever.
  wheel.schedule(kMillisecond, [&] { fired.store(true); });
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, DelaysLongerThanOneRevolutionFireOnce) {
  // 8 slots x 1ms tick: a 30ms delay needs several revolutions' rounds.
  TimerWheel wheel(kMillisecond, /*slots=*/8);
  WallClock clock;
  wheel.start();
  std::atomic<int> fires{0};
  Latch done(1);
  const Time armed_at = clock.now();
  std::atomic<Time> fired_at{0};
  wheel.schedule(30 * kMillisecond, [&] {
    fires.fetch_add(1);
    fired_at.store(clock.now());
    done.arrive();
  });
  ASSERT_TRUE(done.wait_for(std::chrono::seconds(30)));
  // Give a spurious second fire a chance to happen before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  wheel.stop();
  EXPECT_EQ(fires.load(), 1);
  EXPECT_GE(fired_at.load() - armed_at, 30 * kMillisecond);
}

}  // namespace
}  // namespace byzcast::runtime
