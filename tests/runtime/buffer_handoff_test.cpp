// Cross-thread Buffer handoff through runtime::Mailbox: the zero-copy wire
// fabric ships one shared backing allocation to many consumers, so the
// shared_ptr control block and the immutable payload bytes are read from
// several threads at once. These tests run under the ThreadSanitizer CI job
// (suite name matches its Mailbox filter) to prove the fabric is race-free:
// concurrent ref bumps, reads of aliased storage, and releases where the
// last owner dies on a different thread than the one that materialized it.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "runtime/mailbox.hpp"

namespace byzcast::runtime {
namespace {

Bytes patterned(std::size_t n, std::uint8_t base) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(base + i);
  }
  return b;
}

TEST(MailboxBufferHandoff, SingleProducerShipsAliasedCopies) {
  constexpr int kCopies = 64;
  Mailbox<Buffer> box(8);

  const std::uint64_t before = Buffer::materializations();
  std::thread producer([&box] {
    const Buffer payload{patterned(256, 3)};  // one materialization
    for (int i = 0; i < kCopies; ++i) {
      ASSERT_TRUE(box.push(payload));  // ref bump per recipient
    }
    box.close();
  });

  // Consumer side: every copy aliases the same storage and reads the same
  // bytes, concurrently with the producer still pushing further refs.
  std::vector<Buffer> received;
  Buffer item;
  while (box.pop(item)) received.push_back(std::move(item));
  producer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCopies));
  EXPECT_EQ(Buffer::materializations(), before + 1);
  const std::uint8_t* data = received.front().data();
  for (const Buffer& b : received) {
    ASSERT_EQ(b.size(), 256u);
    EXPECT_EQ(b.data(), data);
    EXPECT_EQ(b[0], 3);
    EXPECT_EQ(b[255], static_cast<std::uint8_t>(3 + 255));
  }
}

TEST(MailboxBufferHandoff, SliceStaysValidAfterProducerReleasesParent) {
  Mailbox<Buffer> box(4);
  std::thread producer([&box] {
    // The parent Buffer dies on this thread before the consumer reads the
    // slice; the slice's shared ownership must keep the bytes alive across
    // the thread boundary.
    const Buffer parent{patterned(128, 40)};
    ASSERT_TRUE(box.push(parent.slice(32, 64)));
    box.close();
  });
  producer.join();  // parent destroyed before we pop

  Buffer slice;
  ASSERT_TRUE(box.pop(slice));
  ASSERT_EQ(slice.size(), 64u);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i], static_cast<std::uint8_t>(40 + 32 + i));
  }
}

TEST(MailboxBufferHandoff, ManyProducersFanOutOneSharedPayload) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 32;
  Mailbox<Buffer> box(16);

  // One payload shared by all producer threads: concurrent ref bumps on one
  // control block, concurrent reads of one byte range.
  const Buffer shared{patterned(512, 11)};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, &shared] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(box.push(shared));
      }
    });
  }

  int popped = 0;
  std::uint64_t checksum = 0;
  Buffer item;
  while (popped < kProducers * kPerProducer && box.pop(item)) {
    ++popped;
    ASSERT_EQ(item.data(), shared.data());
    checksum += item[static_cast<std::size_t>(popped) % item.size()];
    item = Buffer{};  // release this ref on the consumer thread
  }
  for (std::thread& t : producers) t.join();
  box.close();

  EXPECT_EQ(popped, kProducers * kPerProducer);
  EXPECT_GT(checksum, 0u);
}

TEST(MailboxBufferHandoff, LastOwnerMayDieOnConsumerThread) {
  Mailbox<Buffer> box(2);
  const std::uint8_t* data = nullptr;
  std::thread producer([&box, &data] {
    Buffer only{patterned(64, 90)};
    data = only.data();
    ASSERT_TRUE(box.push(std::move(only)));
    box.close();
  });
  producer.join();

  {
    Buffer last;
    ASSERT_TRUE(box.pop(last));
    EXPECT_EQ(last.data(), data);
    EXPECT_EQ(last[63], static_cast<std::uint8_t>(90 + 63));
  }  // the final ref — storage is freed here, on the consumer thread
}

}  // namespace
}  // namespace byzcast::runtime
