// Stage pipeline on the wall-clock backend: a ParallelSystem with a real
// StagePool (verify workers fanning MAC checks + digest precompute, exec
// shards running deferred per-request work behind the per-origin FIFO
// barrier) must still satisfy every §II-B property and the runtime
// monitors, while demonstrably routing work through the stages.
// (Suite name matches the ThreadSanitizer CI filter via "RuntimeSystem".)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/monitor.hpp"
#include "core/multicast.hpp"
#include "runtime/parallel_system.hpp"
#include "support/properties.hpp"

namespace byzcast::runtime {
namespace {

using testing::PropertyInput;
using testing::SentMessage;

TEST(RuntimeSystemStagePipeline, PropertiesAndMonitorsHoldUnderStagedLoad) {
  const std::vector<GroupId> targets{GroupId{0}, GroupId{1}};
  MonitorHub monitors;

  ParallelOptions opts;
  opts.runtime.seed = 7;
  opts.runtime.profile.verify_workers = 4;
  opts.runtime.profile.exec_shards = 2;
  opts.obs.monitors = &monitors;
  ParallelSystem system(core::OverlayTree::two_level(targets, GroupId{100}),
                        /*f=*/1, opts);

  // The pool must actually exist at these knob settings.
  ASSERT_NE(system.env().stage_pool(), nullptr);
  EXPECT_EQ(system.env().stage_pool()->verify_workers(), 4u);
  EXPECT_EQ(system.env().stage_pool()->exec_shards(), 2u);

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  std::vector<core::Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(&system.add_client("client" + std::to_string(c)));
  }
  system.start();

  // Mixed traffic: locals to either group plus globals spanning both, with
  // payloads long enough that the deferred ack digest is real work.
  std::vector<SentMessage> sent;
  std::vector<std::vector<GroupId>> dsts;
  for (int c = 0; c < kClients; ++c) {
    for (int k = 0; k < kPerClient; ++k) {
      core::MulticastMessage canon;
      switch (k % 3) {
        case 0: canon.dst = {targets[0]}; break;
        case 1: canon.dst = {targets[1]}; break;
        default: canon.dst = {targets[0], targets[1]}; break;
      }
      canon.canonicalize();
      sent.push_back(SentMessage{
          MessageId{clients[static_cast<std::size_t>(c)]->id(),
                    static_cast<std::uint64_t>(k)},
          canon.dst});
      dsts.push_back(canon.dst);
      const std::string payload =
          "staged-" + std::to_string(c) + "-" + std::to_string(k) +
          std::string(128, 'x');
      ASSERT_TRUE(system.a_multicast(*clients[static_cast<std::size_t>(c)],
                                     canon.dst, to_bytes(payload)));
    }
  }

  const std::size_t expected = system.expected_deliveries(dsts);
  ASSERT_TRUE(
      system.await_total_deliveries(expected, std::chrono::minutes(3)))
      << system.delivery_log().total_deliveries() << "/" << expected;
  system.stop();

  // §II-B properties over the full delivery log.
  PropertyInput in;
  in.log = &system.delivery_log();
  in.sent = sent;
  for (const GroupId g : targets) {
    auto& grp = system.system().group(g);
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  testing::expect_atomic_multicast_properties(in);

  // Runtime monitors (fifo / agreement streams) observed every delivery and
  // flagged nothing — the exec-shard reply barrier kept §II-B FIFO intact.
  EXPECT_EQ(monitors.total_violations(), 0u)
      << monitors.detailed_violations().size() << " detailed violations";

  // The stages were exercised, not bypassed: replicas pre-verified messages
  // off-stage and sharded deferred request work.
  std::uint64_t staged_verifies = 0;
  std::uint64_t deferred_execs = 0;
  for (const GroupId g : targets) {
    auto& grp = system.system().group(g);
    for (int i = 0; i < grp.n(); ++i) {
      staged_verifies += grp.replica(i).counters().staged_verifies;
      deferred_execs += grp.replica(i).counters().deferred_execs;
    }
  }
  EXPECT_GT(staged_verifies, 0u);
  EXPECT_GT(deferred_execs, 0u);
}

}  // namespace
}  // namespace byzcast::runtime
