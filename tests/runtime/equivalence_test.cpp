// Sim-vs-runtime equivalence over the zero-copy wire fabric: the same fixed
// workload is run on the deterministic simulator (twice — its DeliveryLog
// must be bit-for-bit identical across runs, so the shared-Buffer fan-out
// cannot have introduced nondeterminism) and on the wall-clock thread
// backend. Both logs must satisfy the §II-B atomic multicast properties and
// agree on *what* each group delivered; the runtime's interleaving may
// differ, which is exactly what the property checkers constrain.
// The stage-pipeline variant repeats the exercise with verify workers and
// exec shards on: the simulator's stage model must stay deterministic and
// deliver the same sets, the ablation must restore the serial log bit-for-
// bit, and the runtime StagePool must not change delivered content.
// (Suite name matches the ThreadSanitizer CI filter via "RuntimeSystem".)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/multicast.hpp"
#include "runtime/parallel_system.hpp"
#include "support/byzcast_harness.hpp"
#include "support/properties.hpp"

namespace byzcast::runtime {
namespace {

using testing::ByzCastHarness;
using testing::HarnessConfig;
using testing::PropertyInput;
using testing::SentMessage;
using testing::TreeKind;

constexpr int kClients = 2;

/// Per client: three locals and three globals over two target groups.
const std::vector<std::vector<GroupId>>& schedule() {
  static const std::vector<std::vector<GroupId>> kSchedule{
      {GroupId{0}},
      {GroupId{1}},
      {GroupId{0}, GroupId{1}},
      {GroupId{0}},
      {GroupId{0}, GroupId{1}},
      {GroupId{1}},
  };
  return kSchedule;
}

/// (group, client index, client-local seq): which message a group delivered,
/// independent of the backend's process-id assignment.
using DeliveredKey = std::tuple<std::int32_t, std::size_t, std::uint64_t>;

/// Raw delivery tuple for exact sim-vs-sim comparison (includes order and
/// virtual timestamps).
using RawRecord =
    std::tuple<std::int32_t, std::int32_t, std::int32_t, std::uint64_t,
               Time>;

struct SimRun {
  std::vector<RawRecord> raw;           // full log, in record order
  std::set<DeliveredKey> delivered;     // group-level delivered sets
};

SimRun run_sim(std::uint64_t seed,
               const sim::Profile& profile = sim::Profile::lan()) {
  HarnessConfig config;
  config.tree = TreeKind::kTwoLevel;
  config.num_targets = 2;
  config.f = 1;
  config.seed = seed;
  config.profile = profile;
  ByzCastHarness h(config);
  h.run_tracked(kClients, static_cast<int>(schedule().size()),
                [](int, int k, Rng&) {
                  return schedule()[static_cast<std::size_t>(k)];
                });
  EXPECT_EQ(h.completions,
            kClients * static_cast<int>(schedule().size()));
  testing::expect_atomic_multicast_properties(h.property_input());

  std::map<std::int32_t, std::size_t> client_index;
  for (std::size_t c = 0; c < h.clients.size(); ++c) {
    client_index[h.clients[c]->id().value] = c;
  }

  SimRun out;
  for (const auto& rec : h.system.delivery_log().records()) {
    out.raw.emplace_back(rec.group.value, rec.replica.value,
                         rec.msg.origin.value, rec.msg.seq, rec.when);
    const auto it = client_index.find(rec.msg.origin.value);
    if (it == client_index.end()) {
      ADD_FAILURE() << "delivery from unknown origin "
                    << rec.msg.origin.value;
      continue;
    }
    out.delivered.emplace(rec.group.value, it->second, rec.msg.seq);
  }
  return out;
}

/// The wall-clock backend, same fixed workload: checks the §II-B properties
/// and returns the delivered sets. `verify_workers`/`exec_shards` > 0 turn
/// the RuntimeEnv's StagePool on.
std::set<DeliveredKey> run_runtime(std::uint32_t verify_workers,
                                   std::uint32_t exec_shards) {
  const std::vector<GroupId> targets{GroupId{0}, GroupId{1}};
  ParallelOptions opts;
  opts.runtime.seed = 42;
  opts.runtime.profile.verify_workers = verify_workers;
  opts.runtime.profile.exec_shards = exec_shards;
  ParallelSystem system(core::OverlayTree::two_level(targets, GroupId{100}),
                        /*f=*/1, opts);
  std::vector<core::Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(&system.add_client("client" + std::to_string(c)));
  }
  system.start();

  std::vector<SentMessage> sent;
  std::vector<std::vector<GroupId>> dsts;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (std::size_t k = 0; k < schedule().size(); ++k) {
      core::MulticastMessage canon;
      canon.dst = schedule()[k];
      canon.canonicalize();
      sent.push_back(SentMessage{
          MessageId{clients[c]->id(), static_cast<std::uint64_t>(k)},
          canon.dst});
      dsts.push_back(canon.dst);
      EXPECT_TRUE(system.a_multicast(
          *clients[c], canon.dst,
          to_bytes("m-" + std::to_string(c) + "-" + std::to_string(k))));
    }
  }
  const std::size_t expected = system.expected_deliveries(dsts);
  EXPECT_TRUE(
      system.await_total_deliveries(expected, std::chrono::minutes(3)))
      << system.delivery_log().total_deliveries() << "/" << expected;
  system.stop();

  PropertyInput in;
  in.log = &system.delivery_log();
  in.sent = sent;
  for (const GroupId g : targets) {
    auto& grp = system.system().group(g);
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  testing::expect_atomic_multicast_properties(in);

  std::map<std::int32_t, std::size_t> client_index;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    client_index[clients[c]->id().value] = c;
  }
  std::set<DeliveredKey> delivered;
  for (const auto& rec : system.delivery_log().records()) {
    const auto it = client_index.find(rec.msg.origin.value);
    EXPECT_NE(it, client_index.end());
    if (it == client_index.end()) continue;
    delivered.emplace(rec.group.value, it->second, rec.msg.seq);
  }
  return delivered;
}

TEST(RuntimeSystemEquivalence, SimIsDeterministicAndRuntimeDeliversSameSets) {
  // 1) Determinism: two sim runs with the same seed produce the same
  //    DeliveryLog record-for-record (order, replicas, timestamps). Shared
  //    payload buffers must not leak wall-clock state into the simulation.
  const SimRun sim_a = run_sim(/*seed=*/42);
  const SimRun sim_b = run_sim(/*seed=*/42);
  ASSERT_EQ(sim_a.raw.size(), sim_b.raw.size());
  EXPECT_EQ(sim_a.raw, sim_b.raw);

  // 2) The wall-clock backend, same workload: properties hold and every
  //    group a-delivers exactly the same message set as the simulator.
  EXPECT_EQ(run_runtime(/*verify_workers=*/0, /*exec_shards=*/0),
            sim_a.delivered);
}

TEST(RuntimeSystemEquivalence, StagePipelineIsDeterministicAndEquivalent) {
  const SimRun serial = run_sim(/*seed=*/42);

  // 1) The simulator's stage model (verify pool + exec-shard makespan) must
  //    be exactly as deterministic as the serial pipeline.
  sim::Profile staged = sim::Profile::lan();
  staged.verify_workers = 4;
  staged.exec_shards = 4;
  const SimRun stage_a = run_sim(/*seed=*/42, staged);
  const SimRun stage_b = run_sim(/*seed=*/42, staged);
  ASSERT_EQ(stage_a.raw.size(), stage_b.raw.size());
  EXPECT_EQ(stage_a.raw, stage_b.raw);

  // 2) Staging moves work between stages; it must not change WHAT each
  //    group delivers.
  EXPECT_EQ(stage_a.delivered, serial.delivered);

  // 3) The stage_pipeline_off ablation restores the serial log bit-for-bit
  //    (order, replicas, virtual timestamps) even with the knobs set.
  sim::Profile ablated = staged;
  ablated.stage_pipeline_off = true;
  const SimRun off = run_sim(/*seed=*/42, ablated);
  EXPECT_EQ(off.raw, serial.raw);

  // 4) Runtime with a real StagePool (4 verify workers, 2 exec shards):
  //    properties hold and delivered sets match the simulator's.
  EXPECT_EQ(run_runtime(/*verify_workers=*/4, /*exec_shards=*/2),
            serial.delivered);
}

}  // namespace
}  // namespace byzcast::runtime
