// Sim-vs-runtime equivalence over the zero-copy wire fabric: the same fixed
// workload is run on the deterministic simulator (twice — its DeliveryLog
// must be bit-for-bit identical across runs, so the shared-Buffer fan-out
// cannot have introduced nondeterminism) and on the wall-clock thread
// backend. Both logs must satisfy the §II-B atomic multicast properties and
// agree on *what* each group delivered; the runtime's interleaving may
// differ, which is exactly what the property checkers constrain.
// (Suite name matches the ThreadSanitizer CI filter via "RuntimeSystem".)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/multicast.hpp"
#include "runtime/parallel_system.hpp"
#include "support/byzcast_harness.hpp"
#include "support/properties.hpp"

namespace byzcast::runtime {
namespace {

using testing::ByzCastHarness;
using testing::HarnessConfig;
using testing::PropertyInput;
using testing::SentMessage;
using testing::TreeKind;

constexpr int kClients = 2;

/// Per client: three locals and three globals over two target groups.
const std::vector<std::vector<GroupId>>& schedule() {
  static const std::vector<std::vector<GroupId>> kSchedule{
      {GroupId{0}},
      {GroupId{1}},
      {GroupId{0}, GroupId{1}},
      {GroupId{0}},
      {GroupId{0}, GroupId{1}},
      {GroupId{1}},
  };
  return kSchedule;
}

/// (group, client index, client-local seq): which message a group delivered,
/// independent of the backend's process-id assignment.
using DeliveredKey = std::tuple<std::int32_t, std::size_t, std::uint64_t>;

/// Raw delivery tuple for exact sim-vs-sim comparison (includes order and
/// virtual timestamps).
using RawRecord =
    std::tuple<std::int32_t, std::int32_t, std::int32_t, std::uint64_t,
               Time>;

struct SimRun {
  std::vector<RawRecord> raw;           // full log, in record order
  std::set<DeliveredKey> delivered;     // group-level delivered sets
};

SimRun run_sim(std::uint64_t seed) {
  HarnessConfig config;
  config.tree = TreeKind::kTwoLevel;
  config.num_targets = 2;
  config.f = 1;
  config.seed = seed;
  ByzCastHarness h(config);
  h.run_tracked(kClients, static_cast<int>(schedule().size()),
                [](int, int k, Rng&) {
                  return schedule()[static_cast<std::size_t>(k)];
                });
  EXPECT_EQ(h.completions,
            kClients * static_cast<int>(schedule().size()));
  testing::expect_atomic_multicast_properties(h.property_input());

  std::map<std::int32_t, std::size_t> client_index;
  for (std::size_t c = 0; c < h.clients.size(); ++c) {
    client_index[h.clients[c]->id().value] = c;
  }

  SimRun out;
  for (const auto& rec : h.system.delivery_log().records()) {
    out.raw.emplace_back(rec.group.value, rec.replica.value,
                         rec.msg.origin.value, rec.msg.seq, rec.when);
    const auto it = client_index.find(rec.msg.origin.value);
    if (it == client_index.end()) {
      ADD_FAILURE() << "delivery from unknown origin "
                    << rec.msg.origin.value;
      continue;
    }
    out.delivered.emplace(rec.group.value, it->second, rec.msg.seq);
  }
  return out;
}

TEST(RuntimeSystemEquivalence, SimIsDeterministicAndRuntimeDeliversSameSets) {
  // 1) Determinism: two sim runs with the same seed produce the same
  //    DeliveryLog record-for-record (order, replicas, timestamps). Shared
  //    payload buffers must not leak wall-clock state into the simulation.
  const SimRun sim_a = run_sim(/*seed=*/42);
  const SimRun sim_b = run_sim(/*seed=*/42);
  ASSERT_EQ(sim_a.raw.size(), sim_b.raw.size());
  EXPECT_EQ(sim_a.raw, sim_b.raw);

  // 2) The wall-clock backend, same workload: properties hold and every
  //    group a-delivers exactly the same message set as the simulator.
  const std::vector<GroupId> targets{GroupId{0}, GroupId{1}};
  ParallelOptions opts;
  opts.runtime.seed = 42;
  ParallelSystem system(core::OverlayTree::two_level(targets, GroupId{100}),
                        /*f=*/1, opts);
  std::vector<core::Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(&system.add_client("client" + std::to_string(c)));
  }
  system.start();

  std::vector<SentMessage> sent;
  std::vector<std::vector<GroupId>> dsts;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (std::size_t k = 0; k < schedule().size(); ++k) {
      core::MulticastMessage canon;
      canon.dst = schedule()[k];
      canon.canonicalize();
      sent.push_back(SentMessage{
          MessageId{clients[c]->id(), static_cast<std::uint64_t>(k)},
          canon.dst});
      dsts.push_back(canon.dst);
      ASSERT_TRUE(system.a_multicast(
          *clients[c], canon.dst,
          to_bytes("m-" + std::to_string(c) + "-" + std::to_string(k))));
    }
  }
  const std::size_t expected = system.expected_deliveries(dsts);
  ASSERT_TRUE(
      system.await_total_deliveries(expected, std::chrono::minutes(3)))
      << system.delivery_log().total_deliveries() << "/" << expected;
  system.stop();

  PropertyInput in;
  in.log = &system.delivery_log();
  in.sent = sent;
  for (const GroupId g : targets) {
    auto& grp = system.system().group(g);
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  testing::expect_atomic_multicast_properties(in);

  std::map<std::int32_t, std::size_t> client_index;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    client_index[clients[c]->id().value] = c;
  }
  std::set<DeliveredKey> runtime_delivered;
  for (const auto& rec : system.delivery_log().records()) {
    const auto it = client_index.find(rec.msg.origin.value);
    ASSERT_NE(it, client_index.end());
    runtime_delivered.emplace(rec.group.value, it->second, rec.msg.seq);
  }
  EXPECT_EQ(runtime_delivered, sim_a.delivered);
}

}  // namespace
}  // namespace byzcast::runtime
