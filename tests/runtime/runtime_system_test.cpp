// End-to-end check of the wall-clock backend: a 2-level ByzCast tree (three
// target groups under one auxiliary root, f=1) runs on real threads with a
// mixed local/global workload, and the five atomic multicast properties of
// §II-B are evaluated over the concurrently recorded DeliveryLog. This is
// the runtime counterpart of properties/byzcast_properties_test.cpp — same
// oracle, real concurrency instead of simulated time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/multicast.hpp"
#include "runtime/parallel_system.hpp"
#include "support/properties.hpp"

namespace byzcast::runtime {
namespace {

using testing::PropertyInput;
using testing::SentMessage;

std::vector<GroupId> canonical(std::vector<GroupId> dst) {
  core::MulticastMessage m;
  m.dst = std::move(dst);
  m.canonicalize();
  return m.dst;
}

TEST(RuntimeSystem, MixedWorkloadSatisfiesAtomicMulticastProperties) {
  const std::vector<GroupId> targets{GroupId{0}, GroupId{1}, GroupId{2}};
  const GroupId aux{100};

  MetricsRegistry metrics;
  TraceLog trace;
  ParallelOptions opts;
  opts.runtime.seed = 7;
  opts.obs = Observability{&metrics, &trace};
  ParallelSystem system(core::OverlayTree::two_level(targets, aux), /*f=*/1,
                        opts);
  // Thread-per-group: 4 groups + 1 client worker.
  ASSERT_GE(system.env().executor().workers(), 4u);

  std::vector<core::Client*> clients;
  for (int c = 0; c < 3; ++c) {
    clients.push_back(&system.add_client("client" + std::to_string(c)));
  }
  system.start();

  // Per client: 4 local singles, 3 pairwise globals, 1 all-groups global.
  const std::vector<std::vector<GroupId>> schedule{
      {GroupId{0}},           {GroupId{1}},
      {GroupId{2}},           {GroupId{0}},
      {GroupId{0}, GroupId{1}}, {GroupId{1}, GroupId{2}},
      {GroupId{0}, GroupId{2}}, {GroupId{0}, GroupId{1}, GroupId{2}},
  };

  std::vector<SentMessage> sent;
  std::atomic<int> completions{0};
  std::vector<std::vector<GroupId>> dsts;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (std::size_t k = 0; k < schedule.size(); ++k) {
      const auto dst = canonical(schedule[k]);
      sent.push_back(SentMessage{
          MessageId{clients[c]->id(), static_cast<std::uint64_t>(k)}, dst});
      dsts.push_back(dst);
      const Bytes payload =
          to_bytes("m-" + std::to_string(c) + "-" + std::to_string(k));
      ASSERT_TRUE(system.a_multicast(
          *clients[c], dst, payload,
          [&completions](const core::MulticastMessage&, Time) {
            completions.fetch_add(1);
          }));
    }
  }

  const std::size_t expected = system.expected_deliveries(dsts);
  ASSERT_TRUE(
      system.await_total_deliveries(expected, std::chrono::minutes(3)))
      << "quiescence timeout: " << system.delivery_log().total_deliveries()
      << "/" << expected << " deliveries";
  system.stop();

  PropertyInput in;
  in.log = &system.delivery_log();
  in.sent = sent;
  for (const GroupId g : targets) {
    auto& grp = system.system().group(g);
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  EXPECT_TRUE(check_integrity(in));
  EXPECT_TRUE(check_validity_agreement(in));
  EXPECT_TRUE(check_prefix_order(in));
  EXPECT_TRUE(check_acyclic_order(in));

  // Every message completed back at its client (f+1 replies per dst group),
  // and the shared recorders saw concurrent traffic without losing it.
  EXPECT_EQ(completions.load(), static_cast<int>(sent.size()));
  EXPECT_EQ(system.delivery_log().total_deliveries(), expected);
  EXPECT_GT(trace.records().size(), 0u);
  EXPECT_GT(metrics.counters().size(), 0u);
}

TEST(RuntimeSystem, InjectedLatencyStillDeliversEverything) {
  const std::vector<GroupId> targets{GroupId{0}, GroupId{1}};
  MetricsRegistry metrics;
  ParallelOptions opts;
  opts.runtime.seed = 11;
  opts.runtime.net_delay = 2 * kMillisecond;  // every hop through the wheel
  opts.obs = Observability{&metrics, nullptr};
  ParallelSystem system(core::OverlayTree::two_level(targets, GroupId{100}),
                        /*f=*/1, opts);
  core::Client& client = system.add_client("client0");
  system.start();

  std::vector<SentMessage> sent;
  std::vector<std::vector<GroupId>> dsts;
  for (int k = 0; k < 4; ++k) {
    const auto dst = canonical(k % 2 == 0
                                   ? std::vector<GroupId>{GroupId{0}}
                                   : std::vector<GroupId>{GroupId{0},
                                                          GroupId{1}});
    sent.push_back(
        SentMessage{MessageId{client.id(), static_cast<std::uint64_t>(k)},
                    dst});
    dsts.push_back(dst);
    ASSERT_TRUE(system.a_multicast(client, dst, to_bytes("d-" +
                                                         std::to_string(k))));
  }
  const std::size_t expected = system.expected_deliveries(dsts);
  ASSERT_TRUE(
      system.await_total_deliveries(expected, std::chrono::minutes(3)));
  system.stop();

  PropertyInput in;
  in.log = &system.delivery_log();
  in.sent = sent;
  for (const GroupId g : targets) {
    auto& grp = system.system().group(g);
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[g].push_back(grp.replica(i).id());
    }
  }
  EXPECT_TRUE(check_integrity(in));
  EXPECT_TRUE(check_validity_agreement(in));
  EXPECT_TRUE(check_prefix_order(in));
  EXPECT_TRUE(check_acyclic_order(in));
}

}  // namespace
}  // namespace byzcast::runtime
