#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace byzcast::runtime {
namespace {

TEST(Mailbox, FifoSingleThread) {
  Mailbox<int> mb(8);
  EXPECT_TRUE(mb.push(1));
  EXPECT_TRUE(mb.push(2));
  EXPECT_TRUE(mb.push(3));
  int v = 0;
  EXPECT_TRUE(mb.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(mb.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(mb.pop(v));
  EXPECT_EQ(v, 3);
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, PushBlocksAtCapacityUntilPop) {
  Mailbox<int> mb(1);
  ASSERT_TRUE(mb.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(mb.push(2));  // full: must wait for the pop below
    pushed.store(true);
  });
  // Cannot assert "still blocked" without a race; assert the postcondition:
  // after one pop, the producer gets through and both items come out FIFO.
  int v = 0;
  ASSERT_TRUE(mb.pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(mb.pop(v));
  EXPECT_EQ(v, 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(Mailbox, ForcePushIgnoresCapacity) {
  Mailbox<int> mb(2);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(mb.force_push(i));
  EXPECT_EQ(mb.size(), 10u);
  int v = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(mb.pop(v));
    EXPECT_EQ(v, i);
  }
}

TEST(Mailbox, CloseWakesBlockedProducerWithFalse) {
  Mailbox<int> mb(1);
  ASSERT_TRUE(mb.push(1));
  std::thread producer([&] { EXPECT_FALSE(mb.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mb.close();
  producer.join();
  // The queued item survives the close for the consumer to drain.
  int v = 0;
  EXPECT_TRUE(mb.pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(mb.pop(v));  // drained and closed
}

TEST(Mailbox, CloseWakesBlockedConsumerAfterDrain) {
  Mailbox<int> mb(4);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(mb.pop(v));  // blocks until close, then false (empty)
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mb.close();
  consumer.join();
  EXPECT_FALSE(mb.push(7));
  EXPECT_FALSE(mb.force_push(7));
}

TEST(Mailbox, MultiProducerSingleConsumerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  Mailbox<int> mb(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(mb.force_push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::thread consumer([&] {
    int v = 0;
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      ASSERT_TRUE(mb.pop(v));
      seen.push_back(v);
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  // Per-producer FIFO: each producer's items appear in its push order.
  std::vector<int> last(kProducers, -1);
  for (const int v : seen) {
    const int p = v / kPerProducer;
    EXPECT_LT(last[p], v % kPerProducer);
    last[p] = v % kPerProducer;
  }
}

}  // namespace
}  // namespace byzcast::runtime
