// The exhaustive tree search must make the paper's choices: a 2-level tree
// for the uniform workload and a 3-level (split) tree for the skewed one.
#include "optimizer/search.hpp"

#include <gtest/gtest.h>

namespace byzcast::optimizer {
namespace {

std::vector<GroupId> targets4() {
  return {GroupId{1}, GroupId{2}, GroupId{3}, GroupId{4}};
}

std::vector<GroupId> aux3() {
  return {GroupId{11}, GroupId{12}, GroupId{13}};
}

WorkloadSpec with_aux_capacity(WorkloadSpec spec, double k) {
  for (const GroupId h : aux3()) spec.capacity[h] = k;
  return spec;
}

TEST(Search, UniformWorkloadPicksTwoLevel) {
  const WorkloadSpec spec =
      with_aux_capacity(uniform_pairs_workload(targets4(), 1200.0), 9500.0);
  const auto result = optimize_tree(targets4(), aux3(), spec);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->evaluation.feasible);
  EXPECT_EQ(result->evaluation.sum_heights, 12);  // the 2-level optimum
  // The optimal tree is 2-level: root directly over all four targets.
  const GroupId root = result->tree.root();
  EXPECT_EQ(result->tree.children(root).size(), 4u);
  EXPECT_EQ(result->tree.height(root), 2);
}

TEST(Search, SkewedWorkloadPicksSplitTree) {
  const WorkloadSpec spec =
      with_aux_capacity(skewed_pairs_workload(targets4(), 9000.0), 9500.0);
  const auto result = optimize_tree(targets4(), aux3(), spec);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->evaluation.feasible);
  // Σ heights = 4: both pairs must be ordered at height-2 groups, i.e.
  // {g1,g2} and {g3,g4} under different auxiliaries (no single root can
  // carry 18000 m/s).
  EXPECT_EQ(result->evaluation.sum_heights, 4);
  const GroupId lca12 = result->tree.lca({GroupId{1}, GroupId{2}});
  const GroupId lca34 = result->tree.lca({GroupId{3}, GroupId{4}});
  EXPECT_NE(lca12, lca34);
  EXPECT_EQ(result->tree.height(lca12), 2);
  EXPECT_EQ(result->tree.height(lca34), 2);
  // Neither auxiliary exceeds capacity.
  EXPECT_LE(result->evaluation.load.at(lca12), 9500.0);
  EXPECT_LE(result->evaluation.load.at(lca34), 9500.0);
}

TEST(Search, InfeasibleWhenLoadExceedsAllLayouts) {
  // Every pair overlaps, total load above any single group's capacity and
  // pairs cannot be split: {g1,g2} at 20000 m/s exceeds K = 9500 no matter
  // where its lca sits.
  WorkloadSpec spec;
  spec.add(make_destination({GroupId{1}, GroupId{2}}), 20000.0);
  spec = with_aux_capacity(std::move(spec), 9500.0);
  // Target capacity also bounded: deliveries hit the destination groups.
  spec.capacity[GroupId{1}] = 9500.0;
  spec.capacity[GroupId{2}] = 9500.0;
  const auto result =
      optimize_tree({GroupId{1}, GroupId{2}}, aux3(), spec);
  EXPECT_FALSE(result.has_value());
}

TEST(Search, SingleTargetNeedsNoAuxiliary) {
  WorkloadSpec spec;
  spec.add(make_destination({GroupId{1}}), 100.0);
  const auto result = optimize_tree({GroupId{1}}, {}, spec);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tree.root(), GroupId{1});
  EXPECT_EQ(result->evaluation.sum_heights, 1);
}

TEST(Search, TwoTargetsOneAux) {
  WorkloadSpec spec;
  spec.add(make_destination({GroupId{1}, GroupId{2}}), 100.0);
  const auto result = optimize_tree({GroupId{1}, GroupId{2}}, {GroupId{11}},
                                    spec);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->tree.root(), GroupId{11});
  EXPECT_EQ(result->evaluation.sum_heights, 2);
}

TEST(Search, ReportsSearchSpaceSize) {
  const WorkloadSpec spec =
      with_aux_capacity(uniform_pairs_workload(targets4(), 1200.0), 9500.0);
  const auto result = optimize_tree(targets4(), aux3(), spec);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->candidates_considered, result->candidates_valid);
  EXPECT_GT(result->candidates_valid, 0u);
}

TEST(Search, EightTargetsScale) {
  std::vector<GroupId> targets;
  for (int i = 1; i <= 8; ++i) targets.push_back(GroupId{i});
  WorkloadSpec spec = uniform_pairs_workload(targets, 10.0);
  for (const GroupId h : aux3()) spec.capacity[h] = 1e9;
  const auto result = optimize_tree(targets, aux3(), spec);
  ASSERT_TRUE(result.has_value());
  // With ample capacity the flat 2-level tree wins: 28 pairs * height 2.
  EXPECT_EQ(result->evaluation.sum_heights, 56);
}

TEST(Search, WeightedObjectiveFavorsHotPairs) {
  // One scorching pair {g1,g2} plus background pairs; the total exceeds a
  // single auxiliary's capacity, so the flat 2-level tree is infeasible and
  // some destination must be pushed below height 2. The load-weighted
  // extension guarantees the HOT pair keeps its height-2 lca (demoting it
  // would cost 9000 weighted units versus 200 for a background pair).
  // Background at 110 m/s: the flat tree carries 9000 + 5*110 = 9550 >
  // 9500 (infeasible), while an auxiliary over the hot pair carries
  // 9000 + 4*110 = 9440 <= 9500 (feasible).
  WorkloadSpec spec = uniform_pairs_workload(targets4(), 110.0);
  spec.load[make_destination({GroupId{1}, GroupId{2}})] = 9000.0;
  spec = with_aux_capacity(std::move(spec), 9500.0);

  const auto unweighted = optimize_tree(targets4(), aux3(), spec,
                                        Objective::kSumHeights);
  ASSERT_TRUE(unweighted.has_value());
  EXPECT_GT(unweighted->evaluation.sum_heights, 12);  // flat is infeasible

  const auto weighted = optimize_tree(targets4(), aux3(), spec,
                                      Objective::kLoadWeightedHeights);
  ASSERT_TRUE(weighted.has_value());
  EXPECT_EQ(weighted->tree.height(
                weighted->tree.lca({GroupId{1}, GroupId{2}})),
            2);
  EXPECT_LE(weighted->evaluation.weighted_heights,
            unweighted->evaluation.weighted_heights);
}

TEST(Search, WeightedAndUnweightedAgreeOnUniformLoad) {
  const WorkloadSpec spec =
      with_aux_capacity(uniform_pairs_workload(targets4(), 1200.0), 9500.0);
  const auto a = optimize_tree(targets4(), aux3(), spec,
                               Objective::kSumHeights);
  const auto b = optimize_tree(targets4(), aux3(), spec,
                               Objective::kLoadWeightedHeights);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->evaluation.sum_heights, b->evaluation.sum_heights);
}

}  // namespace
}  // namespace byzcast::optimizer
