// Table II / Table III: the closed-form evaluation of the 2-level and
// 3-level trees under the paper's uniform and skewed workloads must
// reproduce the paper's numbers exactly.
#include "optimizer/evaluate.hpp"

#include <gtest/gtest.h>

namespace byzcast::optimizer {
namespace {

std::vector<GroupId> targets4() {
  return {GroupId{1}, GroupId{2}, GroupId{3}, GroupId{4}};
}

core::OverlayTree two_level() {
  return core::OverlayTree::two_level(targets4(), GroupId{11});
}

core::OverlayTree three_level() {
  return core::OverlayTree::three_level(targets4(), GroupId{11}, GroupId{12},
                                        GroupId{13});
}

WorkloadSpec with_aux_capacity(WorkloadSpec spec, double k) {
  for (const int h : {11, 12, 13}) spec.capacity[GroupId{h}] = k;
  return spec;
}

TEST(Evaluate, UniformWorkloadDefinition) {
  const WorkloadSpec spec = uniform_pairs_workload(targets4(), 1200.0);
  EXPECT_EQ(spec.destinations.size(), 6u);  // C(4,2) pairs
  for (const auto& d : spec.destinations) {
    EXPECT_EQ(spec.load_of(d), 1200.0);
  }
}

TEST(Evaluate, SkewedWorkloadDefinition) {
  const WorkloadSpec spec = skewed_pairs_workload(targets4(), 9000.0);
  ASSERT_EQ(spec.destinations.size(), 2u);
  EXPECT_EQ(spec.destinations[0],
            make_destination({GroupId{1}, GroupId{2}}));
  EXPECT_EQ(spec.destinations[1],
            make_destination({GroupId{3}, GroupId{4}}));
}

// Table III row 1: uniform workload, two-level tree.
TEST(Evaluate, TableIIIUniformTwoLevel) {
  const WorkloadSpec spec =
      with_aux_capacity(uniform_pairs_workload(targets4(), 1200.0), 9500.0);
  const Evaluation ev = evaluate(two_level(), spec);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.sum_heights, 12);                     // 6 pairs * height 2
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{11}), 7200.0);  // L_u(T2, h1)
  EXPECT_EQ(ev.involved.at(GroupId{11}).size(), 6u);  // T_u(T2, h1) = D_u
}

// Table III row 2: uniform workload, three-level tree.
TEST(Evaluate, TableIIIUniformThreeLevel) {
  const WorkloadSpec spec =
      with_aux_capacity(uniform_pairs_workload(targets4(), 1200.0), 9500.0);
  const Evaluation ev = evaluate(three_level(), spec);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.sum_heights, 16);  // 2 pairs at height 2, 4 at height 3
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{11}), 4800.0);  // L_u(T3, h1)
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{12}), 6000.0);  // L_u(T3, h2)
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{13}), 6000.0);  // L_u(T3, h3)
  EXPECT_EQ(ev.involved.at(GroupId{11}).size(), 4u);
  EXPECT_EQ(ev.involved.at(GroupId{12}).size(), 5u);
  EXPECT_EQ(ev.involved.at(GroupId{13}).size(), 5u);
}

// Table III row 3: skewed workload, two-level tree — NOT viable.
TEST(Evaluate, TableIIISkewedTwoLevelInfeasible) {
  const WorkloadSpec spec =
      with_aux_capacity(skewed_pairs_workload(targets4(), 9000.0), 9500.0);
  const Evaluation ev = evaluate(two_level(), spec);
  EXPECT_FALSE(ev.feasible);
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{11}), 18000.0);  // L_s(T2, h1)
  EXPECT_EQ(ev.sum_heights, 4);
  ASSERT_EQ(ev.overloaded.size(), 1u);
  EXPECT_EQ(ev.overloaded[0], GroupId{11});
}

// Table III row 4: skewed workload, three-level tree — best choice.
TEST(Evaluate, TableIIISkewedThreeLevelBest) {
  const WorkloadSpec spec =
      with_aux_capacity(skewed_pairs_workload(targets4(), 9000.0), 9500.0);
  const Evaluation ev = evaluate(three_level(), spec);
  EXPECT_TRUE(ev.feasible);
  EXPECT_EQ(ev.sum_heights, 4);
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{11}), 0.0);     // root idle
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{12}), 9000.0);  // h2
  EXPECT_DOUBLE_EQ(ev.load.at(GroupId{13}), 9000.0);  // h3
  EXPECT_TRUE(ev.involved.at(GroupId{11}).empty());
}

TEST(Evaluate, BetterPrefersFeasibility) {
  Evaluation feasible;
  feasible.feasible = true;
  feasible.sum_heights = 100;
  Evaluation infeasible;
  infeasible.feasible = false;
  infeasible.sum_heights = 4;
  EXPECT_TRUE(better(feasible, infeasible));
  EXPECT_FALSE(better(infeasible, feasible));
}

TEST(Evaluate, BetterPrefersLowerHeights) {
  Evaluation a;
  a.sum_heights = 12;
  Evaluation b;
  b.sum_heights = 16;
  EXPECT_TRUE(better(a, b));
  EXPECT_FALSE(better(b, a));
}

TEST(Evaluate, TargetLoadsIncludeLocalDeliveryWork) {
  const WorkloadSpec spec = uniform_pairs_workload(targets4(), 100.0);
  const Evaluation ev = evaluate(two_level(), spec);
  // Each target participates in 3 of the 6 pairs.
  for (const GroupId g : targets4()) {
    EXPECT_DOUBLE_EQ(ev.load.at(g), 300.0);
  }
}

TEST(Evaluate, UnconstrainedGroupsNeverOverload) {
  WorkloadSpec spec = skewed_pairs_workload(targets4(), 1e9);
  const Evaluation ev = evaluate(two_level(), spec);
  EXPECT_TRUE(ev.feasible);  // no capacities specified
}

}  // namespace
}  // namespace byzcast::optimizer
