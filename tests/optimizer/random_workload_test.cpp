// Randomized optimizer validation: for random workloads, the search result
// is always feasible, never worse than the canned 2-level/3-level layouts,
// and its reported loads are consistent with an independent re-evaluation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "optimizer/search.hpp"

namespace byzcast::optimizer {
namespace {

class RandomWorkloadSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkloadSweep, SearchIsSoundAndNoWorseThanCannedTrees) {
  Rng rng(GetParam());
  const int num_targets = static_cast<int>(rng.next_in(2, 6));
  std::vector<GroupId> targets;
  for (int i = 0; i < num_targets; ++i) targets.push_back(GroupId{i});
  const std::vector<GroupId> aux = {GroupId{100}, GroupId{101}, GroupId{102}};

  WorkloadSpec spec;
  // Random subset of destination sets: all pairs with probability, plus a
  // few wider sets.
  for (int i = 0; i < num_targets; ++i) {
    for (int j = i + 1; j < num_targets; ++j) {
      if (rng.next_bool(0.7)) {
        spec.add(make_destination({targets[static_cast<std::size_t>(i)],
                                   targets[static_cast<std::size_t>(j)]}),
                 static_cast<double>(rng.next_in(100, 5000)));
      }
    }
  }
  if (spec.destinations.empty()) {
    spec.add(make_destination({targets[0], targets[1]}), 500.0);
  }
  if (num_targets >= 3 && rng.next_bool(0.5)) {
    spec.add(make_destination({targets[0], targets[1], targets[2]}),
             static_cast<double>(rng.next_in(50, 1000)));
  }
  for (const GroupId h : aux) {
    spec.capacity[h] = static_cast<double>(rng.next_in(6000, 20000));
  }

  const auto result = optimize_tree(targets, aux, spec);
  if (!result) {
    // If the search says infeasible, the canned layouts must be infeasible
    // too (the search space includes them).
    const Evaluation two = evaluate(
        core::OverlayTree::two_level(targets, aux[0]), spec);
    EXPECT_FALSE(two.feasible);
    if (num_targets >= 2) {
      const Evaluation three = evaluate(
          core::OverlayTree::three_level(targets, aux[0], aux[1], aux[2]),
          spec);
      EXPECT_FALSE(three.feasible);
    }
    return;
  }

  // Soundness: the returned evaluation is reproducible and feasible.
  EXPECT_TRUE(result->evaluation.feasible);
  const Evaluation re = evaluate(result->tree, spec);
  EXPECT_TRUE(re.feasible);
  EXPECT_EQ(re.sum_heights, result->evaluation.sum_heights);

  // Optimality against the canned layouts.
  const Evaluation two = evaluate(
      core::OverlayTree::two_level(targets, aux[0]), spec);
  if (two.feasible) {
    EXPECT_LE(result->evaluation.sum_heights, two.sum_heights);
  }
  const Evaluation three = evaluate(
      core::OverlayTree::three_level(targets, aux[0], aux[1], aux[2]), spec);
  if (three.feasible) {
    EXPECT_LE(result->evaluation.sum_heights, three.sum_heights);
  }

  // Load accounting: total load on leaves equals sum over destinations of
  // |d ∩ targets| * F(d) ... every destination d loads each of its |d|
  // targets once.
  double expect_leaf_load = 0;
  for (const auto& d : spec.destinations) {
    expect_leaf_load += spec.load_of(d) * static_cast<double>(d.size());
  }
  double got_leaf_load = 0;
  for (const GroupId g : targets) {
    got_leaf_load += result->evaluation.load.at(g);
  }
  EXPECT_NEAR(got_leaf_load, expect_leaf_load, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep,
                         ::testing::Range<std::uint64_t>(8100, 8116));

}  // namespace
}  // namespace byzcast::optimizer
