// Introspection plane end to end: the per-process HTTP responder must serve
// registered handlers on its event loop (unit tests on a bare EventLoop),
// and a live InProcessCluster must be scrapable mid-run — /healthz showing
// consensus progress between two scrapes, /metrics as legal exposition text
// — and mergeable afterwards: collect_and_merge() aligns every process's
// spans onto one timeline and emits the cluster sidecar + Perfetto trace.
#include "net/introspect.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/multicast.hpp"
#include "core/properties.hpp"
#include "net/cluster.hpp"
#include "net/collector.hpp"
#include "net/config.hpp"
#include "net/event_loop.hpp"

namespace byzcast::net {
namespace {

using namespace std::chrono_literals;

TEST(ParseQuery, SplitsPairsAndLetsLaterDuplicatesWin) {
  const auto q = parse_query("a=1&b=two&a=3");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.at("a"), "3");
  EXPECT_EQ(q.at("b"), "two");
  EXPECT_TRUE(parse_query("").empty());
  // A key without '=' maps to the empty string.
  const auto bare = parse_query("flag&x=1");
  EXPECT_EQ(bare.at("flag"), "");
  EXPECT_EQ(bare.at("x"), "1");
}

/// Runs `loop` on a background thread for the duration of `body`, then
/// shuts the server down on the loop thread before joining.
void with_server(EventLoop& loop, IntrospectServer& server,
                 const std::function<void()>& body) {
  std::thread t([&] { loop.run(); });
  body();
  loop.post([&] {
    server.shutdown();
    loop.request_stop();
  });
  t.join();
}

TEST(IntrospectServer, ServesHandlersAndCountsUnknownPaths) {
  EventLoop loop;
  IntrospectServer server(loop);
  server.handle("/ping", [](const std::string& query) {
    IntrospectServer::Response r;
    r.body = "pong:" + query;
    return r;
  });
  std::string error;
  ASSERT_TRUE(server.listen("127.0.0.1", 0, &error)) << error;
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  with_server(loop, server, [&] {
    std::string err;
    const auto body = http_get("127.0.0.1", port, "/ping?x=1", 2000, &err);
    ASSERT_TRUE(body.has_value()) << err;
    EXPECT_EQ(*body, "pong:x=1");

    const auto plain = http_get("127.0.0.1", port, "/ping", 2000, &err);
    ASSERT_TRUE(plain.has_value()) << err;
    EXPECT_EQ(*plain, "pong:");

    // Unknown path: a 404, which http_get reports as a failure.
    EXPECT_FALSE(http_get("127.0.0.1", port, "/nope", 2000, &err).has_value());
  });

  // Loop stopped: stats are safe to read from this thread now.
  EXPECT_EQ(server.stats().requests, 3u);
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST(IntrospectServer, RejectsNonGetRequests) {
  EventLoop loop;
  IntrospectServer server(loop);
  server.handle("/x", [](const std::string&) {
    return IntrospectServer::Response{};
  });
  std::string error;
  ASSERT_TRUE(server.listen("127.0.0.1", 0, &error)) << error;

  with_server(loop, server, [&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string req = "POST /x HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    std::string reply;
    char buf[512];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
      reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(reply.find(" 400 "), std::string::npos) << reply;
  });
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

// --- live-cluster integration ---------------------------------------------

/// f=1, three target groups: g0 the root, g1/g2 its children — the same
/// shape net_cluster_test drives. Ports are placeholders; InProcessCluster
/// listens ephemerally (introspection servers included) and rewrites them.
ClusterConfig three_group_config() {
  std::string text = R"({"name": "inproc", "f": 1, "seed": 11, "groups": [)";
  for (int g = 0; g < 3; ++g) {
    if (g > 0) text += ",";
    text += R"({"id": )" + std::to_string(g) + R"(, "target": true,)";
    text += g == 0 ? R"( "parent": null,)" : R"( "parent": 0,)";
    text += R"( "replicas": [)";
    for (int r = 0; r < 4; ++r) {
      if (r > 0) text += ",";
      text += R"({"host": "127.0.0.1", "port": )" +
              std::to_string(11000 + g * 10 + r) + "}";
    }
    text += "]}";
  }
  text += "]}";
  std::string err;
  auto cfg = ClusterConfig::parse(text, &err);
  BZC_EXPECTS(cfg.has_value());
  return *cfg;
}

struct Scrape {
  std::int64_t decided = 0;
  std::int64_t deliveries = 0;
};

Scrape scrape_healthz(std::uint16_t port) {
  std::string err;
  const auto body = http_get("127.0.0.1", port, "/healthz", 2000, &err);
  EXPECT_TRUE(body.has_value()) << err;
  Scrape s;
  if (!body) return s;
  const auto j = Json::parse(*body, &err);
  EXPECT_TRUE(j.has_value()) << err;
  if (!j) return s;
  EXPECT_EQ(j->get("schema").as_string(), "byzcast-healthz-v1");
  EXPECT_TRUE(j->get("is_replica").as_bool());
  EXPECT_EQ(j->get("monitor").int_or("violations_total", -1), 0);
  s.decided = j->int_or("decided_instances", -1);
  s.deliveries = j->int_or("deliveries", -1);
  EXPECT_GE(s.decided, 0);
  EXPECT_GE(s.deliveries, 0);
  return s;
}

TEST(ClusterIntrospection, MidRunScrapeShowsProgressAndMergeIsClean) {
  InProcessCluster cluster(three_group_config());
  std::vector<core::Client*> clients{&cluster.add_client("c0")};
  clients[0]->set_trace_sample_every(1);  // trace every message
  cluster.start();

  // Every seat (and the client process) got an ephemeral introspection
  // port, folded into the resolved config like real deployment ports.
  const ClusterConfig& resolved = cluster.resolved();
  for (const GroupSpec& g : resolved.groups) {
    for (const Endpoint& ep : g.replicas) {
      EXPECT_NE(ep.introspect_port, 0);
    }
  }
  EXPECT_NE(resolved.client_introspect_port, 0);
  const std::uint16_t probe = resolved.groups[0].replicas[0].introspect_port;

  // Closed-loop workload, one client; mid-run (after ~1/3 completed) a
  // scrape of a live replica must succeed from another thread.
  const int total = 21;
  const Bytes payload(64, std::uint8_t{0xab});
  std::atomic<int> done{0};
  std::vector<std::vector<GroupId>> issued;
  Rng rng(0x5eedULL);
  std::function<void()> issue = [&] {
    if (static_cast<int>(issued.size()) == total) return;
    std::vector<GroupId> dst;
    if (rng.next_bool(0.5)) {
      const auto a = static_cast<std::int32_t>(rng.next_below(3));
      const auto b = static_cast<std::int32_t>(rng.next_below(2));
      dst = {GroupId{a}, GroupId{b < a ? b : b + 1}};
    } else {
      dst = {GroupId{static_cast<std::int32_t>(rng.next_below(3))}};
    }
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued.push_back(canon.dst);
    clients[0]->a_multicast(std::move(dst), payload,
                            [&](const core::MulticastMessage&, Time) {
                              done.fetch_add(1);
                              issue();
                            });
  };
  cluster.client_node().env().post([&] { issue(); });

  Scrape mid;
  std::string mid_metrics;
  bool mid_fired = false;
  const auto deadline = std::chrono::steady_clock::now() + 120s;
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    if (!mid_fired && done.load() >= total / 3) {
      mid_fired = true;
      mid = scrape_healthz(probe);
      std::string err;
      const auto metrics =
          http_get("127.0.0.1", probe, "/metrics", 2000, &err);
      ASSERT_TRUE(metrics.has_value()) << err;
      mid_metrics = *metrics;
    }
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(done.load(), total);
  ASSERT_TRUE(mid_fired);

  // The mid-run exposition is real Prometheus text carrying this node's
  // identity and at least the core consensus counters.
  EXPECT_NE(mid_metrics.find("# TYPE "), std::string::npos);
  EXPECT_NE(mid_metrics.find("node=\"g0_r0\""), std::string::npos);
  EXPECT_NE(mid_metrics.find("net_transport_messages_sent"),
            std::string::npos);

  // Let stragglers catch up, then scrape again: monotone progress.
  std::uint64_t last = cluster.total_deliveries();
  auto stable_since = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < stable_since + 2500ms) {
    std::this_thread::sleep_for(20ms);
    const std::uint64_t now = cluster.total_deliveries();
    if (now != last) {
      last = now;
      stable_since = std::chrono::steady_clock::now();
    }
  }
  const Scrape late = scrape_healthz(probe);
  EXPECT_GE(late.decided, mid.decided);
  EXPECT_GE(late.deliveries, mid.deliveries);
  EXPECT_GT(late.deliveries, 0);

  // Cluster-wide collection while everything is still live: all 13
  // processes scraped, spans aligned, critical path extracted.
  const std::string out_dir = ::testing::TempDir() + "introspect_merge";
  ASSERT_EQ(::system(("mkdir -p " + out_dir).c_str()), 0);
  const MergeResult merged = collect_and_merge(resolved, out_dir);
  EXPECT_TRUE(merged.ok) << merged.error;
  EXPECT_EQ(merged.scraped_ok, 13u);
  EXPECT_EQ(merged.monitor_violations, 0u);
  EXPECT_GT(merged.merged_spans, 0u);
  EXPECT_GE(merged.traced_messages, 1u);
  EXPECT_GE(merged.complete_messages, 1u);

  // The sidecar is a byzcast-spans-v1 document with the per-node cluster
  // section; the trace file is a Chrome-trace object.
  {
    std::ifstream in(out_dir + "/cluster_spans.json");
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    const auto j = Json::parse(ss.str(), &err);
    ASSERT_TRUE(j.has_value()) << err;
    EXPECT_EQ(j->get("schema").as_string(), "byzcast-spans-v1");
    EXPECT_TRUE(j->get("messages").is_array());
    EXPECT_TRUE(j->get("cluster").is_object());
    EXPECT_EQ(j->get("cluster").get("nodes").size(), 13u);
  }
  {
    std::ifstream in(out_dir + "/cluster_trace.json");
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string err;
    const auto j = Json::parse(ss.str(), &err);
    ASSERT_TRUE(j.has_value()) << err;
    EXPECT_TRUE(j->get("traceEvents").is_array());
    EXPECT_GT(j->get("traceEvents").size(), 0u);
  }

  cluster.stop();
  EXPECT_EQ(cluster.total_monitor_violations(), 0u);
}

}  // namespace
}  // namespace byzcast::net
