// ClusterConfig: JSON round-trips, derived pid/endpoint/tree/delay views,
// rejection of malformed configs (always an error string, never an abort),
// and validation of the two checked-in deployment files (BZC_CONFIGS_DIR is
// injected by the build so the test sees the same files operators use).
#include "net/config.hpp"

#include <gtest/gtest.h>

#include <string>

namespace byzcast::net {
namespace {

std::string minimal_config(const std::string& patch = "") {
  // f=1, two groups: root 0 (target) and child 1.
  std::string base = R"({
    "name": "t", "f": 1, "seed": 7,
    "groups": [
      {"id": 0, "target": true, "parent": null, "replicas": [
        {"host": "127.0.0.1", "port": 9000},
        {"host": "127.0.0.1", "port": 9001},
        {"host": "127.0.0.1", "port": 9002},
        {"host": "127.0.0.1", "port": 9003}]},
      {"id": 1, "target": true, "parent": 0, "replicas": [
        {"host": "127.0.0.1", "port": 9010},
        {"host": "127.0.0.1", "port": 9011},
        {"host": "127.0.0.1", "port": 9012},
        {"host": "127.0.0.1", "port": 9013}]}
    ])";
  return base + patch + "}";
}

TEST(ClusterConfig, ParsesMinimalAndDerivesViews) {
  std::string err;
  const auto cfg = ClusterConfig::parse(minimal_config(), &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->f, 1);
  EXPECT_EQ(cfg->replicas_per_group(), 4);
  EXPECT_EQ(cfg->replica_count(), 8);
  EXPECT_EQ(cfg->pid_of(GroupId{0}, 0).value, 0);
  EXPECT_EQ(cfg->pid_of(GroupId{1}, 3).value, 7);
  const auto loc = cfg->replica_of(ProcessId{6});
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->first, GroupId{1});
  EXPECT_EQ(loc->second, 2);
  EXPECT_FALSE(cfg->replica_of(ProcessId{8}).has_value());  // client pid
  ASSERT_NE(cfg->endpoint_of(ProcessId{5}), nullptr);
  EXPECT_EQ(cfg->endpoint_of(ProcessId{5})->port, 9011);

  const core::OverlayTree tree = cfg->tree();
  EXPECT_EQ(tree.root(), GroupId{0});
  EXPECT_TRUE(tree.is_target(GroupId{0}));
  EXPECT_EQ(tree.parent(GroupId{1}), GroupId{0});

  const sim::Profile p = cfg->profile();
  EXPECT_EQ(p.cpu_vote, 0);  // wallclock base
  EXPECT_TRUE(p.fast_macs);
  EXPECT_EQ(p.leader_timeout, 2 * kSecond);  // default 2000ms knob
}

TEST(ClusterConfig, JsonRoundTripIsIdentity) {
  std::string err;
  const auto cfg = ClusterConfig::parse(minimal_config(), &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  const auto back = ClusterConfig::from_json(cfg->to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*cfg, *back);
  // And through text, too.
  const auto text_back = ClusterConfig::parse(cfg->to_json().dump(), &err);
  ASSERT_TRUE(text_back.has_value()) << err;
  EXPECT_EQ(*cfg, *text_back);
}

TEST(ClusterConfig, IntrospectPortsParseAndRoundTrip) {
  // Per-seat and client introspection ports are optional (0 = disabled) and
  // must survive to_json — tooling rewrites ports through that path.
  std::string text = minimal_config(R"(, "client_introspect_port": 7590)");
  const std::string needle = R"("port": 9000)";
  text.replace(text.find(needle), needle.size(),
               R"("port": 9000, "introspect_port": 7500)");
  std::string err;
  const auto cfg = ClusterConfig::parse(text, &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  EXPECT_EQ(cfg->groups[0].replicas[0].introspect_port, 7500);
  EXPECT_EQ(cfg->groups[0].replicas[1].introspect_port, 0);
  EXPECT_EQ(cfg->client_introspect_port, 7590);
  ASSERT_NE(cfg->endpoint_of(ProcessId{0}), nullptr);
  EXPECT_EQ(cfg->endpoint_of(ProcessId{0})->introspect_port, 7500);

  const auto back = ClusterConfig::from_json(cfg->to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*cfg, *back);
  // Disabled ports stay omitted from the emitted JSON (sparse configs stay
  // sparse through rewrites).
  const std::string dumped = cfg->to_json().dump();
  EXPECT_EQ(dumped.find("\"introspect_port\": 0"), std::string::npos);

  // Out-of-range ports are operator input errors, not aborts.
  EXPECT_FALSE(ClusterConfig::parse(
                   minimal_config(R"(, "client_introspect_port": 70000)"), &err)
                   .has_value());
}

TEST(ClusterConfig, ProtocolKnobsReachTheProfile) {
  std::string err;
  const auto cfg = ClusterConfig::parse(
      minimal_config(R"(, "protocol": {"pipeline_depth": 2, "batch_max": 64,
                        "batch_timeout_ms": 5, "leader_timeout_ms": 750})"),
      &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  const sim::Profile p = cfg->profile();
  EXPECT_EQ(p.pipeline_depth, 2u);
  EXPECT_EQ(p.batch_max, 64u);
  EXPECT_EQ(p.batch_timeout, 5 * kMillisecond);
  EXPECT_EQ(p.leader_timeout, 750 * kMillisecond);
}

TEST(ClusterConfig, WanDelaysFollowTheMatrix) {
  std::string err;
  const auto cfg = ClusterConfig::parse(
      minimal_config(R"(, "wan": {
         "regions": ["CA", "VA"],
         "rtt_ms": [[0, 70], [70, 0]],
         "intra_region_rtt_ms": 0.5},
       "client_region": "VA")"),
      &err);
  // The minimal config's groups carry no region, which must be rejected
  // once a wan section is present.
  EXPECT_FALSE(cfg.has_value());

  const auto cfg2 = ClusterConfig::parse(
      R"({"f": 1, "wan": {"regions": ["CA", "VA"],
                          "rtt_ms": [[0, 70], [70, 0]],
                          "intra_region_rtt_ms": 0.5},
          "client_region": "VA",
          "groups": [
            {"id": 0, "parent": null, "region": "CA", "replicas": [
              {"host": "127.0.0.1", "port": 1}, {"host": "127.0.0.1", "port": 2},
              {"host": "127.0.0.1", "port": 3}, {"host": "127.0.0.1", "port": 4}]},
            {"id": 1, "parent": 0, "region": "VA", "replicas": [
              {"host": "127.0.0.1", "port": 5}, {"host": "127.0.0.1", "port": 6},
              {"host": "127.0.0.1", "port": 7}, {"host": "127.0.0.1", "port": 8}]}
          ]})",
      &err);
  ASSERT_TRUE(cfg2.has_value()) << err;
  // CA -> VA replica: one-way 35ms. CA -> CA replica: 0.25ms. CA -> client
  // (client_region VA): 35ms.
  EXPECT_EQ(cfg2->link_delay("CA", ProcessId{4}), 35 * kMillisecond);
  EXPECT_EQ(cfg2->link_delay("CA", ProcessId{0}),
            kMillisecond / 4);
  EXPECT_EQ(cfg2->link_delay("CA", ProcessId{100}), 35 * kMillisecond);
  EXPECT_EQ(cfg2->region_of(ProcessId{100}), "VA");
}

TEST(ClusterConfig, RejectsMalformedConfigs) {
  const char* bad[] = {
      "",                                     // not JSON
      "[]",                                   // wrong root type
      R"({"f": 0, "groups": []})",            // f < 1
      R"({"f": 1, "groups": []})",            // no groups
      R"({"f": 1, "groups": [{"id": 0}]})",   // no replicas
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(ClusterConfig::parse(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(ClusterConfig, RejectsStructuralViolations) {
  std::string err;
  // Wrong replica count for f=1.
  EXPECT_FALSE(ClusterConfig::parse(
                   R"({"f": 1, "groups": [{"id": 0, "parent": null,
                       "replicas": [{"host": "h", "port": 1}]}]})",
                   &err)
                   .has_value());
  // Two roots.
  EXPECT_FALSE(
      ClusterConfig::parse(minimal_config()
                               .replace(minimal_config().find("\"parent\": 0"),
                                        11, "\"parent\": null"),
                           &err)
          .has_value());
  EXPECT_NE(err.find("root"), std::string::npos);
  // Parent cycle.
  std::string cyclic = minimal_config();
  cyclic.replace(cyclic.find("\"parent\": null"), 14, "\"parent\": 1");
  EXPECT_FALSE(ClusterConfig::parse(cyclic, &err).has_value());
  // Unknown parent.
  std::string orphan = minimal_config();
  orphan.replace(orphan.find("\"parent\": 0"), 11, "\"parent\": 9");
  EXPECT_FALSE(ClusterConfig::parse(orphan, &err).has_value());
  // Port out of range.
  std::string bad_port = minimal_config();
  bad_port.replace(bad_port.find("9000"), 4, "70000");
  EXPECT_FALSE(ClusterConfig::parse(bad_port, &err).has_value());
}

TEST(ClusterConfig, CheckedInConfigsAreValid) {
  for (const char* name : {"lan_local.json", "wan_table1.json"}) {
    std::string err;
    const std::string path = std::string(BZC_CONFIGS_DIR) + "/" + name;
    const auto cfg = ClusterConfig::load_file(path, &err);
    ASSERT_TRUE(cfg.has_value()) << path << ": " << err;
    EXPECT_EQ(cfg->f, 1);
    EXPECT_EQ(cfg->groups.size(), 3u);
    EXPECT_EQ(cfg->replica_count(), 12);
    const auto tree = cfg->tree();
    EXPECT_EQ(tree.root(), GroupId{0});
    // Round-trip survives the file form as well.
    const auto back = ClusterConfig::parse(cfg->to_json().dump(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*cfg, *back);
  }
  std::string err;
  const auto wan = ClusterConfig::load_file(
      std::string(BZC_CONFIGS_DIR) + "/wan_table1.json", &err);
  ASSERT_TRUE(wan.has_value()) << err;
  ASSERT_TRUE(wan->wan.has_value());
  // Table I: CA <-> EU RTT 165ms -> one-way 82.5ms.
  EXPECT_EQ(wan->link_delay("CA", wan->pid_of(GroupId{2}, 0)),
            82'500 * kMicrosecond);
}

TEST(ClusterConfig, LoadFileReportsMissingFile) {
  std::string err;
  EXPECT_FALSE(
      ClusterConfig::load_file("/nonexistent/x.json", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace byzcast::net
