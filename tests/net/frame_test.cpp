// Frame codec hardening: the decoder sits on the trust boundary (raw TCP
// bytes), so truncation, oversized length prefixes, garbage and arbitrary
// read() fragmentation must never crash, mis-deliver, or desynchronize
// silently — a poisoned stream must be detected so the connection resets.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "sim/wire.hpp"

namespace byzcast::net {
namespace {

sim::WireMessage make_message(std::size_t payload_size = 48) {
  sim::WireMessage m;
  m.from = ProcessId{7};
  m.to = ProcessId{12};
  Bytes payload(payload_size);
  std::iota(payload.begin(), payload.end(), std::uint8_t{1});
  m.payload = Buffer(std::move(payload));
  for (std::size_t i = 0; i < m.mac.size(); ++i) {
    m.mac[i] = static_cast<std::uint8_t>(0xe0 + i);
  }
  return m;
}

Bytes flatten(const std::vector<Buffer>& chunks) {
  Bytes out;
  for (const Buffer& b : chunks) {
    out.insert(out.end(), b.data(), b.data() + b.size());
  }
  return out;
}

TEST(Frame, WireMessageRoundTrip) {
  const sim::WireMessage m = make_message();
  const Bytes wire = flatten(encode_wire_frame(m));

  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kWireMessage);
  const auto back = decode_wire_body(BytesView(frame->body));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->from, m.from);
  EXPECT_EQ(back->to, m.to);
  EXPECT_EQ(back->mac, m.mac);
  ASSERT_EQ(back->payload.size(), m.payload.size());
  EXPECT_EQ(std::memcmp(back->payload.data(), m.payload.data(),
                        m.payload.size()),
            0);
  // Receive-side timestamps are local, never wire-carried.
  EXPECT_EQ(back->sent_at, -1);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
}

TEST(Frame, PayloadChunkIsSharedNotCopied) {
  const sim::WireMessage m = make_message(1024);
  const auto chunks = encode_wire_frame(m);
  ASSERT_EQ(chunks.size(), 2u);
  // Chunk 1 must be the same backing buffer as the message payload — the
  // encode-once fan-out invariant the zero-copy fabric established.
  EXPECT_EQ(chunks[1].data(), m.payload.data());
}

TEST(Frame, HelloRoundTrip) {
  const std::vector<ProcessId> pids{ProcessId{3}, ProcessId{999}};
  const Buffer hello = encode_hello_frame(pids);
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(hello.data(), hello.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kHello);
  const auto back = decode_hello_body(BytesView(frame->body));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pids);
}

TEST(Frame, ByteByByteFeedAcrossReadBoundaries) {
  const sim::WireMessage m = make_message(200);
  Bytes wire = flatten(encode_wire_frame(m));
  const Bytes hello_wire = [&] {
    const Buffer h = encode_hello_frame({ProcessId{1}});
    return Bytes(h.data(), h.data() + h.size());
  }();
  wire.insert(wire.end(), hello_wire.begin(), hello_wire.end());

  FrameDecoder dec(kDefaultMaxFrameBytes);
  std::vector<DecodedFrame> frames;
  for (const std::uint8_t byte : wire) {
    dec.feed(&byte, 1);
    while (auto f = dec.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kWireMessage);
  EXPECT_EQ(frames[1].type, FrameType::kHello);
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  EXPECT_TRUE(decode_wire_body(BytesView(frames[0].body)).has_value());
}

TEST(Frame, TruncatedFrameYieldsNothingAndNoError) {
  const Bytes wire = flatten(encode_wire_frame(make_message()));
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size() - 5);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kNone);
  // The remaining bytes complete it.
  dec.feed(wire.data() + wire.size() - 5, 5);
  EXPECT_TRUE(dec.next().has_value());
}

TEST(Frame, OversizedLengthPrefixIsRejected) {
  const Bytes wire = flatten(encode_wire_frame(make_message(4096)));
  // A decoder with a tiny cap must reject the announced length up front,
  // before any allocation in its size.
  FrameDecoder dec(/*max_frame_bytes=*/256);
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kOversized);
  // Poisoned: even valid bytes afterwards yield nothing.
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Frame, BadMagicIsRejected) {
  Bytes wire = flatten(encode_wire_frame(make_message()));
  wire[0] = 'X';
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadMagic);
}

TEST(Frame, UnknownFrameTypeIsRejected) {
  Bytes wire = flatten(encode_wire_frame(make_message()));
  wire[4] = 0x7f;  // type byte
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadType);
}

TEST(Frame, GarbageMidStreamPoisonsInsteadOfMisdelivering) {
  const Bytes good = flatten(encode_wire_frame(make_message()));
  Bytes wire = good;
  Bytes garbage(64, std::uint8_t{0x5a});
  wire.insert(wire.end(), garbage.begin(), garbage.end());
  wire.insert(wire.end(), good.begin(), good.end());

  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size());
  EXPECT_TRUE(dec.next().has_value());   // the first, intact frame
  EXPECT_FALSE(dec.next().has_value());  // then poison, never the third
  EXPECT_NE(dec.error(), FrameDecoder::Error::kNone);
}

TEST(Frame, RandomGarbageNeverCrashes) {
  Rng rng(0xfeedULL);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec(/*max_frame_bytes=*/4096);
    Bytes junk(1 + rng.next_below(512));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    dec.feed(junk.data(), junk.size());
    while (dec.next().has_value()) {
      // Frames decoded from junk are possible (junk may form a valid
      // header); bodies must still decode safely or not at all.
    }
  }
}

TEST(Frame, ShortWireBodiesDecodeToNullopt) {
  const Bytes wire = flatten(encode_wire_frame(make_message()));
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  for (std::size_t cut = 0; cut < kWireBodyMetaSize; ++cut) {
    EXPECT_FALSE(
        decode_wire_body(BytesView(frame->body.data(), cut)).has_value());
  }
}

TEST(Frame, HelloBodyLengthMustMatchCount) {
  Buffer hello = encode_hello_frame({ProcessId{1}, ProcessId{2}});
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(hello.data(), hello.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  Bytes body = frame->body;
  body.pop_back();  // count now disagrees with the byte count
  EXPECT_FALSE(decode_hello_body(BytesView(body)).has_value());
}

TEST(Frame, SentAtTravelsOnTheWireWhenStamped) {
  sim::WireMessage m = make_message();
  m.sent_at = 123456789;
  const Bytes wire = flatten(encode_wire_frame(m));

  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(wire.data(), wire.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->flags, kFlagSentAt);
  const auto back = decode_wire_body(BytesView(frame->body), frame->flags);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->sent_at, 123456789);
  // Without the flag the same body bytes must not be misread as a
  // timestamp (the 8 extra bytes would corrupt the payload instead — the
  // decode simply treats them as payload prefix, which the MAC check
  // upstream would reject; here we only assert no timestamp appears).
  const auto unflagged = decode_wire_body(BytesView(frame->body), 0);
  ASSERT_TRUE(unflagged.has_value());
  EXPECT_EQ(unflagged->sent_at, -1);
}

TEST(Frame, ClockPingPongRoundTrip) {
  const Buffer ping = encode_clock_ping_frame(987654321);
  const Buffer pong = encode_clock_pong_frame(987654321, 1111111);

  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(ping.data(), ping.size());
  dec.feed(pong.data(), pong.size());

  const auto f1 = dec.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, FrameType::kClockPing);
  const auto p = decode_clock_ping_body(BytesView(f1->body));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->t0, 987654321);

  const auto f2 = dec.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::kClockPong);
  const auto q = decode_clock_pong_body(BytesView(f2->body));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->t0, 987654321);
  EXPECT_EQ(q->t_peer, 1111111);
}

TEST(Frame, ClockBodiesRejectWrongSizes) {
  const Buffer ping = encode_clock_ping_frame(1);
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(ping.data(), ping.size());
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(decode_clock_ping_body(
                   BytesView(frame->body.data(), frame->body.size() - 1))
                   .has_value());
  // A ping body is half a pong body; neither parses as the other.
  EXPECT_FALSE(decode_clock_pong_body(BytesView(frame->body)).has_value());
}

TEST(Frame, UnknownFlagBitsPoisonTheStream) {
  const Bytes wire = flatten(encode_wire_frame(make_message()));
  Bytes tampered = wire;
  tampered[5] |= 0x80;  // header byte 5 = flags; 0x80 is undefined
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(tampered.data(), tampered.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadType);
}

TEST(Frame, FlagsAreRejectedOnFramesThatCannotCarryThem) {
  // kFlagSentAt is defined for kWireMessage only; on a clock ping it is an
  // unknown bit and must poison, not be ignored.
  const Buffer ping = encode_clock_ping_frame(42);
  Bytes tampered(ping.data(), ping.data() + ping.size());
  tampered[5] |= kFlagSentAt;
  FrameDecoder dec(kDefaultMaxFrameBytes);
  dec.feed(tampered.data(), tampered.size());
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.error(), FrameDecoder::Error::kBadType);
}

}  // namespace
}  // namespace byzcast::net
