// End-to-end ByzCast over the net backend: an InProcessCluster runs one
// ClusterNode per replica seat plus a client-only node, each on its own
// event-loop thread, over real localhost TCP — the same code path as the
// multi-process deployment minus fork/exec. A mixed workload must complete
// and satisfy the five §II-B properties; killing one replica mid-run (f=1)
// must not break completion or the properties for the surviving seats.
#include "net/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "core/multicast.hpp"
#include "core/properties.hpp"
#include "net/config.hpp"

namespace byzcast::net {
namespace {

using namespace std::chrono_literals;

/// f=1, three target groups: g0 is the root, g1/g2 its children — the
/// checked-in deployment shape. Ports are placeholders; InProcessCluster
/// listens ephemerally and rewrites them.
ClusterConfig three_group_config() {
  std::string text = R"({"name": "inproc", "f": 1, "seed": 11, "groups": [)";
  for (int g = 0; g < 3; ++g) {
    if (g > 0) text += ",";
    text += R"({"id": )" + std::to_string(g) + R"(, "target": true,)";
    text += g == 0 ? R"( "parent": null,)" : R"( "parent": 0,)";
    text += R"( "replicas": [)";
    for (int r = 0; r < 4; ++r) {
      if (r > 0) text += ",";
      text += R"({"host": "127.0.0.1", "port": )" +
              std::to_string(10000 + g * 10 + r) + "}";
    }
    text += "]}";
  }
  text += "]}";
  std::string err;
  auto cfg = ClusterConfig::parse(text, &err);
  BZC_EXPECTS(cfg.has_value());
  return *cfg;
}

struct WorkloadResult {
  int completed = 0;
  std::vector<core::SentMessage> sent;
};

/// Drives `msgs_per_client` messages per client closed-loop on the client
/// node's loop thread; `mid_run` (optional) fires once on the polling thread
/// after a third of the total completed.
WorkloadResult run_workload(InProcessCluster& cluster,
                            std::vector<core::Client*> clients,
                            int msgs_per_client, double global_fraction,
                            const std::function<void()>& mid_run = {}) {
  const int n_clients = static_cast<int>(clients.size());
  const int total = n_clients * msgs_per_client;
  const Bytes payload(64, std::uint8_t{0xab});
  std::vector<int> issued_count(clients.size(), 0);
  std::vector<std::vector<std::vector<GroupId>>> issued(clients.size());
  std::atomic<int> done{0};
  Rng rng(0x5eedULL);

  // Everything below runs on the client node's loop thread (a_multicast is
  // actor code), so the completion callback may re-issue directly.
  std::function<void(int)> issue = [&](int c) {
    auto& count = issued_count[static_cast<std::size_t>(c)];
    if (count == msgs_per_client) return;
    ++count;
    std::vector<GroupId> dst;
    if (rng.next_bool(global_fraction)) {
      const auto a = static_cast<std::int32_t>(rng.next_below(3));
      const auto b = static_cast<std::int32_t>(rng.next_below(2));
      dst = {GroupId{a}, GroupId{b < a ? b : b + 1}};
    } else {
      dst = {GroupId{static_cast<std::int32_t>(rng.next_below(3))}};
    }
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time) {
          done.fetch_add(1);
          issue(c);
        });
  };

  cluster.client_node().env().post([&] {
    for (int c = 0; c < n_clients; ++c) issue(c);
  });

  const auto deadline = std::chrono::steady_clock::now() + 120s;
  bool mid_run_fired = false;
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    if (!mid_run_fired && mid_run && done.load() >= total / 3) {
      mid_run_fired = true;
      mid_run();
    }
    std::this_thread::sleep_for(2ms);
  }

  WorkloadResult result;
  result.completed = done.load();
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (std::size_t k = 0; k < issued[c].size(); ++k) {
      result.sent.push_back(core::SentMessage{
          MessageId{clients[c]->id(), static_cast<std::uint64_t>(k)},
          issued[c][k]});
    }
  }
  return result;
}

/// Completion needs only f+1 replies per group; a straggler replica may
/// still be catching up via anti-entropy state transfer, which is driven by
/// the liveness timer (leader_timeout/2 = 1s here) and rate-limited to one
/// request per 500ms. The stability window must exceed that cadence, or we
/// declare the run over before the designed self-healing has had its turn.
void wait_quiescent(const InProcessCluster& cluster) {
  std::uint64_t last = cluster.total_deliveries();
  auto stable_since = std::chrono::steady_clock::now();
  const auto deadline = stable_since + 60s;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
    const std::uint64_t now = cluster.total_deliveries();
    if (now != last) {
      last = now;
      stable_since = std::chrono::steady_clock::now();
    } else if (std::chrono::steady_clock::now() - stable_since > 2500ms) {
      return;
    }
  }
}

TEST(InProcessClusterTest, MixedWorkloadSatisfiesProperties) {
  InProcessCluster cluster(three_group_config());
  std::vector<core::Client*> clients{&cluster.add_client("c0"),
                                     &cluster.add_client("c1")};
  cluster.start();

  const WorkloadResult r =
      run_workload(cluster, clients, /*msgs_per_client=*/25,
                   /*global_fraction=*/0.5);
  EXPECT_EQ(r.completed, 50);
  wait_quiescent(cluster);
  cluster.stop();

  const core::PropertyResult verdict = cluster.check_properties(r.sent);
  EXPECT_TRUE(verdict.ok) << verdict.error;
  EXPECT_EQ(cluster.total_monitor_violations(), 0u);
  // Every delivery a correct replica logged really happened over TCP or a
  // local hop; zero counted drops is the "nothing was silently lost" cross
  // check on top of the property verdict.
  EXPECT_GT(cluster.total_deliveries(), 0u);
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 4; ++i) {
      auto& node = cluster.replica_node(GroupId{g}, i);
      const auto& ts = node.env().transport().stats();
      EXPECT_EQ(ts.dropped_decode, 0u) << node.node_name();
      EXPECT_EQ(ts.inbound_resets, 0u) << node.node_name();
      EXPECT_EQ(node.env().stats().no_actor_drops, 0u) << node.node_name();
      EXPECT_EQ(node.env().stats().ghost_send_drops, 0u) << node.node_name();
    }
  }
}

TEST(InProcessClusterTest, SurvivesKillingOneReplicaMidRun) {
  InProcessCluster cluster(three_group_config());
  std::vector<core::Client*> clients{&cluster.add_client("c0")};
  cluster.start();

  const WorkloadResult r = run_workload(
      cluster, clients, /*msgs_per_client=*/30, /*global_fraction=*/0.5,
      /*mid_run=*/[&] { cluster.kill_replica(GroupId{1}, 3); });
  // f=1: with one of g1's four replicas dead, the remaining three still
  // form quorums and give the client its f+1 matching replies.
  EXPECT_EQ(r.completed, 30);
  wait_quiescent(cluster);
  cluster.stop();

  // The killed seat is excluded from the correct set; everyone else must
  // still agree on a single per-group total order.
  const core::PropertyResult verdict = cluster.check_properties(r.sent);
  EXPECT_TRUE(verdict.ok) << verdict.error;
  EXPECT_EQ(cluster.total_monitor_violations(), 0u);
}

}  // namespace
}  // namespace byzcast::net
