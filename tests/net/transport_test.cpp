// EventLoop and Transport over real localhost TCP: framed delivery, HELLO
// route learning, reconnect-with-backoff after a peer dies, no-route and
// bounded-send-queue drops, and the artificial WAN delay hook.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "sim/wire.hpp"

namespace byzcast::net {
namespace {

using namespace std::chrono_literals;

sim::WireMessage make_message(std::int32_t from, std::int32_t to,
                              std::size_t payload_size = 32) {
  sim::WireMessage m;
  m.from = ProcessId{from};
  m.to = ProcessId{to};
  m.payload = Buffer(Bytes(payload_size, std::uint8_t{0xcd}));
  m.mac[0] = 0x11;
  return m;
}

/// One transport on its own loop thread; wiring happens pre-run.
struct Node {
  EventLoop loop;
  Transport transport;
  std::thread thread;
  std::mutex mu;
  std::vector<sim::WireMessage> received;
  std::vector<Time> received_at;

  explicit Node(TransportOptions opts = {}) : transport(loop, opts) {
    transport.set_handler([this](sim::WireMessage m) {
      const std::lock_guard<std::mutex> lock(mu);
      received_at.push_back(loop.now());
      received.push_back(std::move(m));
    });
  }
  ~Node() { stop(); }

  void start() {
    thread = std::thread([this] { loop.run(); });
  }
  void stop() {
    loop.request_stop();
    if (thread.joinable()) thread.join();
  }
  void send(const sim::WireMessage& m) {
    loop.post([this, m] { transport.send(m); });
  }
  std::size_t received_count() {
    const std::lock_guard<std::mutex> lock(mu);
    return received.size();
  }
};

bool wait_until(const std::function<bool()>& cond,
                std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

TEST(EventLoop, TimersFireInDeadlineOrderAndPostIsThreadSafe) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(20 * kMillisecond, [&] { order.push_back(2); });
  loop.schedule(5 * kMillisecond, [&] {
    order.push_back(1);
    loop.schedule(30 * kMillisecond, [&] {
      order.push_back(3);
      loop.request_stop();
    });
  });
  std::thread outside([&] {
    std::this_thread::sleep_for(5ms);
    loop.post([&] { order.push_back(0); });
  });
  loop.run();
  outside.join();
  ASSERT_EQ(order.size(), 4u);
  // Post lands between the timers (exact slot depends on timing); the
  // timers themselves must be in deadline order.
  std::vector<int> timers;
  for (const int v : order) {
    if (v != 0) timers.push_back(v);
  }
  EXPECT_EQ(timers, (std::vector<int>{1, 2, 3}));
}

TEST(Transport, DeliversFramesAndLearnsHelloRoutes) {
  Node server;
  std::string error;
  ASSERT_TRUE(server.transport.listen("127.0.0.1", 0, &error)) << error;
  const std::uint16_t port = server.transport.listen_port();

  Node client;
  client.transport.set_local_pids({ProcessId{100}});
  client.transport.add_peer("127.0.0.1", port, {ProcessId{1}});

  server.start();
  client.start();
  client.loop.post([&] { client.transport.connect_all(); });
  ASSERT_TRUE(
      wait_until([&] { return client.transport.all_peers_connected(); }));

  // Static route: client -> pid 1 at the server.
  client.send(make_message(100, 1));
  ASSERT_TRUE(wait_until([&] { return server.received_count() == 1; }));
  {
    const std::lock_guard<std::mutex> lock(server.mu);
    EXPECT_EQ(server.received[0].from.value, 100);
    EXPECT_EQ(server.received[0].to.value, 1);
    EXPECT_EQ(server.received[0].payload.size(), 32u);
  }

  // Learned route: the HELLO taught the server where pid 100 lives, so the
  // reply flows back over the inbound connection.
  server.loop.post([&] { server.transport.send(make_message(1, 100)); });
  ASSERT_TRUE(wait_until([&] { return client.received_count() == 1; }));
  EXPECT_EQ(client.transport.stats().messages_sent, 1u);
  EXPECT_EQ(server.transport.stats().messages_sent, 1u);
  EXPECT_EQ(server.transport.stats().inbound_accepted, 1u);
}

TEST(Transport, DropsWithoutRouteAndCountsIt) {
  Node node;
  node.start();
  node.send(make_message(0, 42));
  ASSERT_TRUE(wait_until(
      [&] { return node.transport.stats().dropped_no_route == 1; }));
  EXPECT_EQ(node.transport.stats().messages_sent, 0u);
}

TEST(Transport, ReconnectsAfterPeerDeathWithBackoff) {
  auto server = std::make_unique<Node>();
  std::string error;
  ASSERT_TRUE(server->transport.listen("127.0.0.1", 0, &error)) << error;
  const std::uint16_t port = server->transport.listen_port();

  TransportOptions fast;
  fast.reconnect_backoff_min = 10 * kMillisecond;
  fast.reconnect_backoff_max = 50 * kMillisecond;
  Node client(fast);
  client.transport.add_peer("127.0.0.1", port, {ProcessId{1}});

  server->start();
  client.start();
  client.loop.post([&] { client.transport.connect_all(); });
  ASSERT_TRUE(
      wait_until([&] { return client.transport.all_peers_connected(); }));

  // Kill the server; the client must notice and start retrying.
  server->loop.post([&] { server->transport.shutdown(); });
  ASSERT_TRUE(wait_until(
      [&] { return !client.transport.all_peers_connected(); }));
  ASSERT_TRUE(wait_until(
      [&] { return client.transport.stats().reconnects >= 2; }));

  // Resurrect a listener on the same port; the client's retry loop finds
  // it and traffic flows again.
  server->stop();
  server = std::make_unique<Node>();
  ASSERT_TRUE(server->transport.listen("127.0.0.1", port, &error)) << error;
  server->start();
  ASSERT_TRUE(
      wait_until([&] { return client.transport.all_peers_connected(); }));
  client.send(make_message(100, 1));
  ASSERT_TRUE(wait_until([&] { return server->received_count() == 1; }));
}

TEST(Transport, OverflowingSendQueueDropsWholeFrames) {
  Node server;
  std::string error;
  ASSERT_TRUE(server.transport.listen("127.0.0.1", 0, &error)) << error;

  TransportOptions tiny;
  tiny.send_queue_max_bytes = 256;  // one big frame cannot fit
  Node client(tiny);
  client.transport.add_peer("127.0.0.1", server.transport.listen_port(),
                            {ProcessId{1}});
  server.start();
  client.start();
  client.loop.post([&] { client.transport.connect_all(); });
  ASSERT_TRUE(
      wait_until([&] { return client.transport.all_peers_connected(); }));

  client.send(make_message(100, 1, /*payload_size=*/4096));
  ASSERT_TRUE(wait_until(
      [&] { return client.transport.stats().dropped_queue_full == 1; }));
  // A frame that fits still goes through: drops are per-frame, and a drop
  // never desynchronizes the stream.
  client.send(make_message(100, 1, /*payload_size=*/16));
  ASSERT_TRUE(wait_until([&] { return server.received_count() == 1; }));
  EXPECT_EQ(server.received[0].payload.size(), 16u);
}

TEST(Transport, DelayFnHoldsFramesBack) {
  Node server;
  std::string error;
  ASSERT_TRUE(server.transport.listen("127.0.0.1", 0, &error)) << error;

  Node client;
  client.transport.add_peer("127.0.0.1", server.transport.listen_port(),
                            {ProcessId{1}});
  constexpr Time kDelay = 60 * kMillisecond;
  client.transport.set_delay_fn([](ProcessId) { return kDelay; });
  server.start();
  client.start();
  client.loop.post([&] { client.transport.connect_all(); });
  ASSERT_TRUE(
      wait_until([&] { return client.transport.all_peers_connected(); }));

  const Time sent_at = client.loop.now();
  client.send(make_message(100, 1));
  ASSERT_TRUE(wait_until([&] { return server.received_count() == 1; }));
  // The frame left the client no earlier than the configured one-way
  // delay after the send (clocks are per-loop; use the sender's).
  EXPECT_GE(client.loop.now() - sent_at, kDelay);
}

TEST(Transport, FramingViolationResetsInboundConnection) {
  Node server;
  std::string error;
  ASSERT_TRUE(server.transport.listen("127.0.0.1", 0, &error)) << error;
  server.start();

  // A raw socket speaking garbage: the server must reset it, count it, and
  // keep serving (no crash, no misdelivery).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.transport.listen_port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const char junk[] = "this is not a BZC1 frame at all................";
  ASSERT_GT(::write(fd, junk, sizeof junk), 0);
  ASSERT_TRUE(wait_until(
      [&] { return server.transport.stats().inbound_resets == 1; }));
  EXPECT_EQ(server.received_count(), 0u);
  ::close(fd);
}

}  // namespace
}  // namespace byzcast::net
