// Run-artifact dumps: JSON round trips for delivery/sent dumps, atomic file
// write/read, and check_cluster_dumps() — the offline cross-process property
// checker that merges per-daemon artifacts and re-runs the five §II-B
// checkers (plus the summed online-monitor verdict) over the whole run.
#include "net/dump.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "net/config.hpp"

namespace byzcast::net {
namespace {

ClusterConfig two_group_config() {
  std::string err;
  auto cfg = ClusterConfig::parse(
      R"({"name": "d", "f": 1, "groups": [
        {"id": 0, "parent": null, "replicas": [
          {"host": "h", "port": 1}, {"host": "h", "port": 2},
          {"host": "h", "port": 3}, {"host": "h", "port": 4}]},
        {"id": 1, "parent": 0, "replicas": [
          {"host": "h", "port": 5}, {"host": "h", "port": 6},
          {"host": "h", "port": 7}, {"host": "h", "port": 8}]}
      ]})",
      &err);
  BZC_EXPECTS(cfg.has_value());
  return *cfg;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "bzc_dump_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// One global message (origin 100, seq 0, dst {g0, g1}) delivered by every
/// replica, unless its pid is in `skip`; plus the matching sent dump.
void write_run(const ClusterConfig& cfg, const std::string& dir,
               const std::vector<std::int32_t>& skip = {},
               std::uint64_t monitor_violations = 0) {
  const MessageId id{ProcessId{100}, 0};
  std::string err;
  for (const GroupSpec& g : cfg.groups) {
    for (int i = 0; i < cfg.replicas_per_group(); ++i) {
      const ProcessId pid = cfg.pid_of(g.id, i);
      DeliveryDump dump;
      dump.node = "g" + std::to_string(g.id.value) + "_r" + std::to_string(i);
      if (g.id.value == 0 && i == 0) {
        dump.monitor_violations = monitor_violations;
      }
      const bool skipped =
          std::find(skip.begin(), skip.end(), pid.value) != skip.end();
      if (!skipped) {
        dump.records.push_back(
            core::DeliveryRecord{g.id, pid, id, /*when=*/1000});
      }
      ASSERT_TRUE(write_json_file(dir + "/delivery_" + dump.node + ".json",
                                  delivery_dump_to_json(dump), &err))
          << err;
    }
  }
  SentDump sent;
  sent.node = "client";
  sent.sent.push_back(core::SentMessage{id, {GroupId{0}, GroupId{1}}});
  ASSERT_TRUE(write_json_file(dir + "/sent_client.json",
                              sent_dump_to_json(sent), &err))
      << err;
}

TEST(Dump, DeliveryDumpJsonRoundTrip) {
  DeliveryDump dump;
  dump.node = "g1_r2";
  dump.monitor_violations = 3;
  dump.records.push_back(core::DeliveryRecord{
      GroupId{1}, ProcessId{6}, MessageId{ProcessId{100}, 7}, 123456});
  dump.records.push_back(core::DeliveryRecord{
      GroupId{1}, ProcessId{6}, MessageId{ProcessId{101}, 0}, 123999});

  std::string err;
  const auto back = delivery_dump_from_json(delivery_dump_to_json(dump), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->node, dump.node);
  EXPECT_EQ(back->monitor_violations, 3u);
  ASSERT_EQ(back->records.size(), 2u);
  EXPECT_EQ(back->records[0].msg.origin.value, 100);
  EXPECT_EQ(back->records[0].msg.seq, 7u);
  EXPECT_EQ(back->records[1].when, 123999);

  // Wrong schema is rejected with prose, not a crash.
  EXPECT_FALSE(delivery_dump_from_json(Json::object(), &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Dump, SentDumpJsonRoundTrip) {
  SentDump dump;
  dump.node = "client";
  dump.sent.push_back(
      core::SentMessage{MessageId{ProcessId{100}, 0}, {GroupId{2}}});
  dump.sent.push_back(core::SentMessage{MessageId{ProcessId{100}, 1},
                                        {GroupId{0}, GroupId{2}}});
  std::string err;
  const auto back = sent_dump_from_json(sent_dump_to_json(dump), &err);
  ASSERT_TRUE(back.has_value()) << err;
  ASSERT_EQ(back->sent.size(), 2u);
  EXPECT_EQ(back->sent[1].dst,
            (std::vector<GroupId>{GroupId{0}, GroupId{2}}));
  EXPECT_FALSE(sent_dump_from_json(Json::object(), &err).has_value());
}

TEST(Dump, WriteAndReadJsonFile) {
  const std::string dir = fresh_dir("io");
  Json j = Json::object();
  j.set("k", Json::number(7));
  std::string err;
  ASSERT_TRUE(write_json_file(dir + "/x.json", j, &err)) << err;
  // The tmp file is gone after the rename.
  EXPECT_FALSE(std::filesystem::exists(dir + "/x.json.tmp"));
  const auto back = read_json_file(dir + "/x.json", &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, j);
  EXPECT_FALSE(read_json_file(dir + "/missing.json", &err).has_value());
  EXPECT_NE(err.find("missing.json"), std::string::npos);
}

TEST(Dump, CheckPassesOnCompleteConsistentRun) {
  const ClusterConfig cfg = two_group_config();
  const std::string dir = fresh_dir("pass");
  write_run(cfg, dir);
  const DumpCheckResult result = check_cluster_dumps(cfg, dir);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.delivery_files, 8u);
  EXPECT_EQ(result.sent_files, 1u);
  EXPECT_EQ(result.deliveries, 8u);
  EXPECT_EQ(result.sent_messages, 1u);
  EXPECT_EQ(result.monitor_violations, 0u);
}

TEST(Dump, CheckFailsWhenACorrectReplicaMissesADelivery) {
  const ClusterConfig cfg = two_group_config();
  const std::string dir = fresh_dir("missing");
  // pid 6 = g1 replica 2 never delivers: agreement/validity must trip.
  write_run(cfg, dir, /*skip=*/{6});
  const DumpCheckResult result = check_cluster_dumps(cfg, dir);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(Dump, ExcludedSeatImposesNoObligations) {
  const ClusterConfig cfg = two_group_config();
  const std::string dir = fresh_dir("excluded");
  write_run(cfg, dir, /*skip=*/{6});
  const DumpCheckResult result =
      check_cluster_dumps(cfg, dir, /*excluded=*/{{1, 2}});
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Dump, OnlineMonitorViolationsFailTheCheck) {
  const ClusterConfig cfg = two_group_config();
  const std::string dir = fresh_dir("monitor");
  write_run(cfg, dir, /*skip=*/{}, /*monitor_violations=*/2);
  const DumpCheckResult result = check_cluster_dumps(cfg, dir);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.monitor_violations, 2u);
  EXPECT_NE(result.error.find("monitor"), std::string::npos);
}

TEST(Dump, MalformedDumpFileIsAnError) {
  const ClusterConfig cfg = two_group_config();
  const std::string dir = fresh_dir("malformed");
  write_run(cfg, dir);
  std::ofstream bad(dir + "/delivery_zz.json");
  bad << "{not json";
  bad.close();
  const DumpCheckResult result = check_cluster_dumps(cfg, dir);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("delivery_zz.json"), std::string::npos);
}

}  // namespace
}  // namespace byzcast::net
