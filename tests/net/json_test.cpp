// The hand-rolled JSON layer under the cluster config: parse/dump round
// trips, escape handling, and — critically — graceful rejection of malformed
// input (configs are operator-supplied, so the parser must never abort).
#include "net/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace byzcast::net {
namespace {

TEST(Json, ParsesScalars) {
  std::string err;
  EXPECT_TRUE(Json::parse("null", &err)->is_null());
  EXPECT_TRUE(Json::parse("true", &err)->as_bool());
  EXPECT_FALSE(Json::parse("false", &err)->as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.25", &err)->as_double(), 3.25);
  EXPECT_EQ(Json::parse("-17", &err)->as_int(), -17);
  EXPECT_EQ(Json::parse("\"hi\"", &err)->as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  std::string err;
  const auto j = Json::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})", &err);
  ASSERT_TRUE(j.has_value()) << err;
  EXPECT_EQ(j->get("a").size(), 3u);
  EXPECT_EQ(j->get("a").at(2).get("b").as_string(), "c");
  EXPECT_TRUE(j->get("d").get("e").is_null());
  EXPECT_TRUE(j->get("f").as_bool());
  EXPECT_TRUE(j->get("missing").is_null());  // sentinel, no throw
}

TEST(Json, StringEscapes) {
  std::string err;
  const auto j = Json::parse(R"("line\nquote\"slash\\u:\u0041")", &err);
  ASSERT_TRUE(j.has_value()) << err;
  EXPECT_EQ(j->as_string(), "line\nquote\"slash\\u:A");
}

TEST(Json, DumpParseRoundTrip) {
  Json obj = Json::object();
  obj.set("name", Json::string("x\"y"));
  obj.set("n", Json::number(42));
  obj.set("pi", Json::number(3.5));
  obj.set("flag", Json::boolean(true));
  Json arr = Json::array();
  arr.push_back(Json::number(1));
  arr.push_back(Json::null());
  obj.set("arr", std::move(arr));

  std::string err;
  const auto back = Json::parse(obj.dump(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(*back, obj);
  EXPECT_EQ(back->get("n").as_int(), 42);
}

TEST(Json, IntegersDumpWithoutFraction) {
  Json j = Json::number(7400);
  EXPECT_EQ(j.dump(), "7400\n");
}

TEST(Json, RejectsMalformedInput) {
  const char* bad[] = {
      "",
      "{",
      "[1, 2",
      "{\"a\": }",
      "{\"a\" 1}",
      "{'a': 1}",
      "[1,]",
      "tru",
      "\"unterminated",
      "\"bad \\x escape\"",
      "1e999",          // not finite
      "{\"a\": 1} x",   // trailing garbage
      "\x01\x02\x03",
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(Json::parse(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  std::string err;
  EXPECT_FALSE(Json::parse(deep, &err).has_value());
}

TEST(Json, AccessorsAreTotalOnMismatch) {
  const Json j = Json::string("s");
  EXPECT_EQ(j.as_int(), 0);
  EXPECT_FALSE(j.as_bool());
  EXPECT_EQ(j.size(), 0u);
  EXPECT_TRUE(j.get("k").is_null());
}

}  // namespace
}  // namespace byzcast::net
