// Unit tests of the property checkers themselves: they must accept
// conforming logs and reject violating ones.
#include "support/properties.hpp"

#include <gtest/gtest.h>

namespace byzcast::testing {
namespace {

const GroupId kG0{0};
const GroupId kG1{1};
const ProcessId kP0{100};
const ProcessId kP1{101};
const ProcessId kClient{7};

MessageId msg(std::uint64_t seq) { return MessageId{kClient, seq}; }

struct Fixture {
  core::DeliveryLog log;
  PropertyInput input() {
    PropertyInput in;
    in.log = &log;
    in.sent = sent;
    in.correct_replicas = {{kG0, {kP0}}, {kG1, {kP1}}};
    return in;
  }
  std::vector<SentMessage> sent;
};

TEST(Checkers, CleanRunPasses) {
  Fixture f;
  f.sent = {{msg(0), {kG0, kG1}}, {msg(1), {kG0}}};
  f.log.record(kG0, kP0, msg(0), 10);
  f.log.record(kG0, kP0, msg(1), 20);
  f.log.record(kG1, kP1, msg(0), 15);
  EXPECT_TRUE(check_integrity(f.input()));
  EXPECT_TRUE(check_validity_agreement(f.input()));
  EXPECT_TRUE(check_prefix_order(f.input()));
  EXPECT_TRUE(check_acyclic_order(f.input()));
}

TEST(Checkers, DoubleDeliveryViolatesIntegrity) {
  Fixture f;
  f.sent = {{msg(0), {kG0}}};
  f.log.record(kG0, kP0, msg(0), 10);
  f.log.record(kG0, kP0, msg(0), 20);
  EXPECT_FALSE(check_integrity(f.input()));
}

TEST(Checkers, FabricatedDeliveryViolatesIntegrity) {
  Fixture f;
  f.log.record(kG0, kP0, msg(99), 10);  // never sent
  EXPECT_FALSE(check_integrity(f.input()));
}

TEST(Checkers, WrongGroupDeliveryViolatesIntegrity) {
  Fixture f;
  f.sent = {{msg(0), {kG1}}};
  f.log.record(kG0, kP0, msg(0), 10);  // g0 not in dst
  EXPECT_FALSE(check_integrity(f.input()));
}

TEST(Checkers, MissingDeliveryViolatesValidity) {
  Fixture f;
  f.sent = {{msg(0), {kG0, kG1}}};
  f.log.record(kG0, kP0, msg(0), 10);  // kP1 never delivers
  EXPECT_FALSE(check_validity_agreement(f.input()));
}

TEST(Checkers, SwappedOrderViolatesPrefixOrder) {
  Fixture f;
  f.sent = {{msg(0), {kG0, kG1}}, {msg(1), {kG0, kG1}}};
  f.log.record(kG0, kP0, msg(0), 10);
  f.log.record(kG0, kP0, msg(1), 20);
  f.log.record(kG1, kP1, msg(1), 10);
  f.log.record(kG1, kP1, msg(0), 20);
  EXPECT_FALSE(check_prefix_order(f.input()));
  // A two-message swap is also a cycle.
  EXPECT_FALSE(check_acyclic_order(f.input()));
}

TEST(Checkers, ThreeWayCycleDetected) {
  // p0: a < b;  p1: b < c;  p2: c < a  — pairwise prefix order holds (no
  // two replicas share two messages), but the relation has a cycle.
  Fixture f;
  const ProcessId p2{102};
  const GroupId g2{2};
  f.sent = {{msg(0), {kG0, kG1, g2}},
            {msg(1), {kG0, kG1, g2}},
            {msg(2), {kG0, kG1, g2}}};
  f.log.record(kG0, kP0, msg(0), 1);
  f.log.record(kG0, kP0, msg(1), 2);
  f.log.record(kG1, kP1, msg(1), 1);
  f.log.record(kG1, kP1, msg(2), 2);
  f.log.record(g2, p2, msg(2), 1);
  f.log.record(g2, p2, msg(0), 2);
  PropertyInput in = f.input();
  in.correct_replicas[g2] = {p2};
  in.sent = f.sent;
  EXPECT_TRUE(check_prefix_order(in));
  EXPECT_FALSE(check_acyclic_order(in));
}

TEST(Checkers, FaultyReplicaDeliveriesIgnored) {
  // Deliveries by replicas not listed as correct carry no guarantees.
  Fixture f;
  const ProcessId byzantine{999};
  f.sent = {{msg(0), {kG0}}};
  f.log.record(kG0, kP0, msg(0), 10);
  f.log.record(kG0, byzantine, msg(55), 1);  // fabricated, but not correct
  EXPECT_TRUE(check_integrity(f.input()));
  EXPECT_TRUE(check_acyclic_order(f.input()));
}

}  // namespace
}  // namespace byzcast::testing
