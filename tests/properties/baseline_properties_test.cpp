// The non-genuine Baseline must satisfy the same atomic multicast
// properties (it trades genuineness for simplicity, not correctness).
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "support/byzcast_harness.hpp"

namespace byzcast::baseline {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;
using ::byzcast::testing::TreeKind;

class BaselineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineSweep, RandomWorkloadSatisfiesProperties) {
  HarnessConfig cfg;
  cfg.tree = TreeKind::kTwoLevel;
  cfg.num_targets = 4;
  cfg.routing = core::Routing::kViaRoot;
  cfg.seed = GetParam();
  ByzCastHarness h(cfg);
  h.run_tracked(6, 10, [](int, int, Rng& rng) {
    if (rng.next_bool(0.6)) {
      return std::vector<GroupId>{
          GroupId{static_cast<std::int32_t>(rng.next_below(4))}};
    }
    const auto a = static_cast<std::int32_t>(rng.next_below(4));
    auto b = static_cast<std::int32_t>(rng.next_below(3));
    if (b >= a) ++b;
    return std::vector<GroupId>{GroupId{a}, GroupId{b}};
  });
  EXPECT_EQ(h.completions, 60);
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSweep,
                         ::testing::Values(11, 12, 13, 14));

TEST(BaselineSystem, WrapperAssemblesTwoLevelViaRootSystem) {
  sim::Simulation sim(1, sim::Profile::lan());
  const std::vector<GroupId> targets = {GroupId{0}, GroupId{1}};
  BaselineSystem base(sim, targets, GroupId{9}, 1);
  EXPECT_EQ(base.tree().root(), GroupId{9});
  EXPECT_EQ(base.tree().target_groups().size(), 2u);

  auto client = base.make_client("c");
  bool done = false;
  client->a_multicast({GroupId{0}}, to_bytes("x"),
                      [&done](const core::MulticastMessage&, Time) {
                        done = true;
                      });
  sim.run_until(30 * kSecond);
  EXPECT_TRUE(done);
  // Local message went through the root: the root group ran consensus.
  EXPECT_GE(base.group(GroupId{9}).replica(0).decided_instances(), 1u);
}

TEST(BaselineSystem, RootOrdersEverything) {
  sim::Simulation sim(2, sim::Profile::lan());
  const std::vector<GroupId> targets = {GroupId{0}, GroupId{1}, GroupId{2}};
  BaselineSystem base(sim, targets, GroupId{9}, 1);
  auto c0 = base.make_client("c0");
  auto c1 = base.make_client("c1");
  int done = 0;
  for (int k = 0; k < 5; ++k) {
    // Issue closed-loop alternating local/global messages on both clients.
  }
  std::function<void(core::Client&, int)> issue = [&](core::Client& c,
                                                      int left) {
    if (left == 0) return;
    std::vector<GroupId> dst =
        left % 2 == 0 ? std::vector<GroupId>{GroupId{0}}
                      : std::vector<GroupId>{GroupId{1}, GroupId{2}};
    c.a_multicast(dst, to_bytes("op"),
                  [&issue, &c, left, &done](const core::MulticastMessage&,
                                            Time) {
                    ++done;
                    issue(c, left - 1);
                  });
  };
  issue(*c0, 6);
  issue(*c1, 6);
  sim.run_until(60 * kSecond);
  EXPECT_EQ(done, 12);
  // Every one of the 12 messages was handled by the root.
  std::uint64_t handled = static_cast<core::ByzCastNode&>(
                              base.group(GroupId{9}).replica(0).application())
                              .handled_count();
  EXPECT_EQ(handled, 12u);
}

}  // namespace
}  // namespace byzcast::baseline
