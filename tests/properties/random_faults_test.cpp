// Randomized fault schedules: for each seed, every group independently
// draws at most f Byzantine replicas with random behaviours from the fault
// vocabulary, the workload mixes local/global traffic randomly, and all
// §II-B properties must hold at quiescence. This is the repo's fuzzing
// lever: bump kSeeds for a deeper soak.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;
using ::byzcast::testing::TreeKind;

bft::FaultSpec random_fault(Rng& rng) {
  bft::FaultSpec spec;
  switch (rng.next_below(5)) {
    case 0: spec.silent = true; break;
    case 1: spec.silent_after = static_cast<Time>(
                rng.next_in(1, 8)) * kSecond;
            break;
    case 2: spec.fabricate_relay = true; break;
    case 3: spec.drop_relays = true; break;
    default: spec.corrupt_replies = true; break;
  }
  return spec;
}

class RandomFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFaultSweep, PropertiesHoldUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  Rng meta(seed * 2654435761ULL + 1);

  HarnessConfig cfg;
  cfg.tree = meta.next_bool(0.5) ? TreeKind::kTwoLevel : TreeKind::kThreeLevel;
  cfg.num_targets = static_cast<int>(meta.next_in(2, 4));
  if (cfg.tree == TreeKind::kThreeLevel) cfg.num_targets = 4;
  cfg.seed = seed;

  // Each group independently gets 0 or 1 Byzantine replica (f = 1).
  const int aux_count = cfg.tree == TreeKind::kThreeLevel ? 3 : 1;
  for (int a = 0; a < aux_count; ++a) {
    if (!meta.next_bool(0.7)) continue;
    std::vector<bft::FaultSpec> faults(4);
    faults[static_cast<std::size_t>(meta.next_in(1, 3))] = random_fault(meta);
    cfg.faults.by_group[GroupId{byzcast::testing::kAuxBase + a}] = faults;
  }
  for (int g = 0; g < cfg.num_targets; ++g) {
    if (!meta.next_bool(0.5)) continue;
    std::vector<bft::FaultSpec> faults(4);
    // Target-group leaders may also be faulty (index 0): exercises view
    // changes under multicast traffic.
    faults[static_cast<std::size_t>(meta.next_in(0, 3))] = random_fault(meta);
    cfg.faults.by_group[GroupId{g}] = faults;
  }

  ByzCastHarness h(cfg);
  const int n = cfg.num_targets;
  h.run_tracked(5, 8,
                [n](int, int, Rng& rng) {
                  if (rng.next_bool(0.5)) {
                    return std::vector<GroupId>{GroupId{
                        static_cast<std::int32_t>(rng.next_below(
                            static_cast<std::uint64_t>(n)))}};
                  }
                  const auto a = static_cast<std::int32_t>(
                      rng.next_below(static_cast<std::uint64_t>(n)));
                  auto b = static_cast<std::int32_t>(
                      rng.next_below(static_cast<std::uint64_t>(n - 1)));
                  if (b >= a) ++b;
                  return std::vector<GroupId>{GroupId{a}, GroupId{b}};
                },
                /*horizon=*/300 * kSecond);

  EXPECT_EQ(h.completions, 40) << "liveness under fault schedule " << seed;
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
  for (const auto& rec : h.system.delivery_log().records()) {
    EXPECT_LT(rec.msg.origin.value, kFabricatedOriginBase);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFaultSweep,
                         ::testing::Range<std::uint64_t>(9000, 9012));

}  // namespace
}  // namespace byzcast::core
