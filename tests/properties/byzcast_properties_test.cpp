// Parameterized property sweep: random workloads over varying tree shapes,
// group counts and fault plans; every run must satisfy all §II-B properties
// at quiescence.
#include <gtest/gtest.h>

#include "support/byzcast_harness.hpp"

namespace byzcast::core {
namespace {

using ::byzcast::testing::ByzCastHarness;
using ::byzcast::testing::HarnessConfig;
using ::byzcast::testing::TreeKind;

struct SweepParam {
  TreeKind tree;
  int num_targets;
  std::uint64_t seed;
  bool inject_faults;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << p.label << "_seed" << p.seed;
}

class ByzCastPropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ByzCastPropertySweep, RandomWorkloadSatisfiesProperties) {
  const SweepParam param = GetParam();
  HarnessConfig cfg;
  cfg.tree = param.tree;
  cfg.num_targets = param.num_targets;
  cfg.seed = param.seed;

  if (param.inject_faults) {
    // One Byzantine replica per auxiliary group (rotating behaviour) and a
    // crashed replica in the first target group.
    int kind = 0;
    for (int a = 0; a < (param.tree == TreeKind::kThreeLevel ? 3 : 1); ++a) {
      std::vector<bft::FaultSpec> faults(4);
      switch (kind++ % 3) {
        case 0: faults[1].fabricate_relay = true; break;
        case 1: faults[2].drop_relays = true; break;
        default: faults[3] = bft::FaultSpec::crashed(); break;
      }
      cfg.faults.by_group[GroupId{byzcast::testing::kAuxBase + a}] = faults;
    }
    std::vector<bft::FaultSpec> target_faults(4);
    target_faults[3] = bft::FaultSpec::crashed();
    cfg.faults.by_group[GroupId{0}] = target_faults;
  }

  ByzCastHarness h(cfg);
  const int n = param.num_targets;
  h.run_tracked(6, 10, [n](int c, int k, Rng& rng) {
    const double roll = rng.next_double();
    if (roll < 0.5 || n == 1) {
      return std::vector<GroupId>{
          GroupId{static_cast<std::int32_t>(rng.next_below(
              static_cast<std::uint64_t>(n)))}};
    }
    if (roll < 0.85 || n == 2) {
      const auto a = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      auto b = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n - 1)));
      if (b >= a) ++b;
      return std::vector<GroupId>{GroupId{a}, GroupId{b}};
    }
    // Wide destination: 3..n groups.
    std::vector<GroupId> dst;
    for (int g = 0; g < n; ++g) {
      if (rng.next_bool(0.6)) dst.push_back(GroupId{g});
    }
    while (dst.size() < 3) {
      dst.push_back(GroupId{static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)))});
    }
    (void)c;
    (void)k;
    return dst;
  });

  EXPECT_EQ(h.completions, 60);
  byzcast::testing::expect_atomic_multicast_properties(h.property_input());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ByzCastPropertySweep,
    ::testing::Values(
        SweepParam{TreeKind::kTwoLevel, 2, 1001, false, "twoLevel2g"},
        SweepParam{TreeKind::kTwoLevel, 2, 1002, false, "twoLevel2g"},
        SweepParam{TreeKind::kTwoLevel, 4, 1003, false, "twoLevel4g"},
        SweepParam{TreeKind::kTwoLevel, 4, 1004, false, "twoLevel4g"},
        SweepParam{TreeKind::kTwoLevel, 8, 1005, false, "twoLevel8g"},
        SweepParam{TreeKind::kThreeLevel, 4, 2001, false, "threeLevel4g"},
        SweepParam{TreeKind::kThreeLevel, 4, 2002, false, "threeLevel4g"},
        SweepParam{TreeKind::kThreeLevel, 6, 2003, false, "threeLevel6g"},
        SweepParam{TreeKind::kTwoLevel, 3, 3001, true, "faulty2L3g"},
        SweepParam{TreeKind::kTwoLevel, 4, 3002, true, "faulty2L4g"},
        SweepParam{TreeKind::kThreeLevel, 4, 3003, true, "faulty3L4g"},
        SweepParam{TreeKind::kThreeLevel, 4, 3004, true, "faulty3L4g"}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(info.param.label) + "_" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace byzcast::core
