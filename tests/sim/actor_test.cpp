#include "sim/actor.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace byzcast::sim {
namespace {

/// An actor whose message handling occupies the CPU for a fixed time.
class BusyServer final : public Actor {
 public:
  BusyServer(Simulation& sim, Time cost)
      : Actor(sim, "server"), cost_(cost) {}

  std::vector<Time> handled_at;

 protected:
  Time service_cost(const WireMessage&) const override { return cost_; }
  void on_message(const WireMessage&) override { handled_at.push_back(now()); }

 private:
  Time cost_;
};

class Pinger final : public Actor {
 public:
  explicit Pinger(Simulation& sim) : Actor(sim, "pinger") {}
  void ping(ProcessId to, int n) {
    for (int i = 0; i < n; ++i) send(to, Bytes{1});
  }

 protected:
  void on_message(const WireMessage&) override {}
};

TEST(Actor, ServiceTimeSerializesProcessing) {
  Profile p = Profile::lan();
  p.net_jitter_mean = 0;  // deterministic arrival
  Simulation sim(1, p);
  BusyServer server(sim, 10 * kMillisecond);
  Pinger pinger(sim);
  pinger.ping(server.id(), 3);  // all arrive ~simultaneously
  sim.run_until(10 * kSecond);

  ASSERT_EQ(server.handled_at.size(), 3u);
  // Each message occupies the CPU for 10 ms: completions are spaced apart.
  EXPECT_GE(server.handled_at[1] - server.handled_at[0], 10 * kMillisecond);
  EXPECT_GE(server.handled_at[2] - server.handled_at[1], 10 * kMillisecond);
}

TEST(Actor, QueueDrainsInArrivalOrder) {
  Profile p = Profile::lan();
  p.net_jitter_mean = 0;
  Simulation sim(1, p);

  class Tagger final : public Actor {
   public:
    explicit Tagger(Simulation& sim) : Actor(sim, "tagger") {}
    std::vector<std::uint8_t> seen;

   protected:
    Time service_cost(const WireMessage&) const override {
      return kMillisecond;
    }
    void on_message(const WireMessage& msg) override {
      seen.push_back(msg.payload[0]);
    }
  };

  Tagger tagger(sim);
  class Sender final : public Actor {
   public:
    explicit Sender(Simulation& sim) : Actor(sim, "sender") {}
    void emit(ProcessId to) {
      for (std::uint8_t i = 0; i < 5; ++i) send(to, Bytes{i});
    }

   protected:
    void on_message(const WireMessage&) override {}
  };
  Sender sender(sim);
  sender.emit(tagger.id());
  sim.run_until(kSecond);
  EXPECT_EQ(tagger.seen, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(Actor, CrashStopsProcessing) {
  Simulation sim(1, Profile::lan());
  BusyServer server(sim, kMillisecond);
  Pinger pinger(sim);
  pinger.ping(server.id(), 1);
  sim.run_until(kSecond);
  EXPECT_EQ(server.handled_at.size(), 1u);
  server.crash();
  pinger.ping(server.id(), 5);
  sim.run_until(2 * kSecond);
  EXPECT_EQ(server.handled_at.size(), 1u);
}

TEST(Actor, UniqueProcessIds) {
  Simulation sim(1, Profile::lan());
  Pinger a(sim);
  Pinger b(sim);
  BusyServer c(sim, 0);
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(b.id(), c.id());
}

}  // namespace
}  // namespace byzcast::sim
