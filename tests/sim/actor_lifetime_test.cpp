// Regression tests for actor teardown vs. deferred work: timers armed with
// schedule_in and drain continuations already in the scheduler must become
// no-ops when the actor is destroyed first (alive-token check at fire time).
#include <gtest/gtest.h>

#include <memory>

#include "sim/actor.hpp"
#include "sim/simulation.hpp"

namespace byzcast::sim {
namespace {

class TimerActor final : public Actor {
 public:
  TimerActor(Simulation& sim, int* fired)
      : Actor(sim, "timer"), fired_(fired) {}

  void arm(Time delay) {
    schedule_in(delay, [this] { ++*fired_; });
  }

 protected:
  void on_message(const WireMessage&) override {}

 private:
  int* fired_;
};

class BusyServer final : public Actor {
 public:
  BusyServer(Simulation& sim, Time cost, int* handled)
      : Actor(sim, "server"), cost_(cost), handled_(handled) {}

 protected:
  Time service_cost(const WireMessage&) const override { return cost_; }
  void on_message(const WireMessage&) override { ++*handled_; }

 private:
  Time cost_;
  int* handled_;
};

class Pinger final : public Actor {
 public:
  explicit Pinger(Simulation& sim) : Actor(sim, "pinger") {}
  void ping(ProcessId to, int n) {
    for (int i = 0; i < n; ++i) send(to, Bytes{1});
  }

 protected:
  void on_message(const WireMessage&) override {}
};

TEST(ActorLifetime, TimerFiresWhileActorAlive) {
  Simulation sim(1, Profile::lan());
  int fired = 0;
  TimerActor actor(sim, &fired);
  actor.arm(10 * kMillisecond);
  sim.run_until(kSecond);
  EXPECT_EQ(fired, 1);
}

TEST(ActorLifetime, TimerArmedBeforeDestructionNeverFires) {
  Simulation sim(1, Profile::lan());
  int fired = 0;
  {
    TimerActor actor(sim, &fired);
    actor.arm(10 * kMillisecond);
  }  // actor gone; the scheduler still holds the timer event
  sim.run_until(kSecond);
  EXPECT_EQ(fired, 0);
}

TEST(ActorLifetime, DestructionMidServiceDropsDrainContinuation) {
  Simulation sim(1, Profile::lan());
  int handled = 0;
  auto server =
      std::make_unique<BusyServer>(sim, 10 * kMillisecond, &handled);
  Pinger pinger(sim);
  pinger.ping(server->id(), 3);
  // The messages arrive within ~a hundred microseconds; the first is then in
  // service until ~10 ms. Tear the server down in the middle: the pending
  // drain continuation and the two queued messages must all evaporate.
  sim.scheduler().schedule_after(5 * kMillisecond,
                                 [&server] { server.reset(); });
  sim.run_until(kSecond);
  EXPECT_EQ(handled, 0);
}

TEST(ActorLifetime, MessageInFlightToDestroyedActorCountsAsDrop) {
  Simulation sim(1, Profile::lan());
  int fired = 0;
  Pinger pinger(sim);
  auto target = std::make_unique<TimerActor>(sim, &fired);
  pinger.ping(target->id(), 1);
  const std::uint64_t dropped_before = sim.network().messages_dropped();
  target.reset();  // destroyed while the message is still on the wire
  sim.run_until(kSecond);
  EXPECT_EQ(sim.network().messages_dropped(), dropped_before + 1);
}

}  // namespace
}  // namespace byzcast::sim
