#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

namespace byzcast::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NestedScheduling) {
  Scheduler s;
  std::vector<Time> fired;
  s.schedule_at(10, [&] {
    fired.push_back(s.now());
    s.schedule_after(5, [&] { fired.push_back(s.now()); });
  });
  s.run_all();
  EXPECT_EQ(fired, (std::vector<Time>{10, 15}));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(30, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  s.run_until(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.now(), 100);  // clock advances to the deadline
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, CountsExecutedEvents) {
  Scheduler s;
  for (int i = 0; i < 42; ++i) s.schedule_at(i, [] {});
  s.run_all();
  EXPECT_EQ(s.events_executed(), 42u);
}

TEST(SchedulerDeathTest, SchedulingInThePastAborts) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run_all();
  EXPECT_DEATH(s.schedule_at(50, [] {}), "Precondition");
}

}  // namespace
}  // namespace byzcast::sim
