#include "sim/profile.hpp"

#include <gtest/gtest.h>

namespace byzcast::sim {
namespace {

TEST(Profile, LanPresetSanity) {
  const Profile p = Profile::lan();
  // RTT 0.1 ms as in the paper's cluster.
  EXPECT_EQ(2 * p.net_one_way, 100 * kMicrosecond);
  EXPECT_GT(p.batch_max, 1u);
  EXPECT_GT(p.leader_timeout, 100 * kMillisecond);
  EXPECT_FALSE(p.fast_macs);
}

TEST(Profile, WanPresetWidensTimeouts) {
  const Profile lan = Profile::lan();
  const Profile wan = Profile::wan();
  EXPECT_GT(wan.leader_timeout, lan.leader_timeout);
  // Hop latency comes from the region matrix in the WAN.
  EXPECT_EQ(wan.net_one_way, 0);
  EXPECT_GT(wan.net_jitter_mean, lan.net_jitter_mean);
}

TEST(Profile, CostOrderingMakesSense) {
  const Profile p = Profile::lan();
  // Fixed per-instance costs dominate per-message marginals: that is what
  // makes batching pay off.
  EXPECT_GT(p.cpu_propose_fixed, 10 * p.cpu_propose_per_msg);
  EXPECT_GT(p.cpu_validate_fixed, 10 * p.cpu_validate_per_msg);
  // Duplicate relay copies are cheaper than executions.
  EXPECT_LT(p.cpu_duplicate_copy, p.cpu_execute_per_msg);
}

}  // namespace
}  // namespace byzcast::sim
