// Probabilistic message loss: the network drops messages independently;
// the protocol stack (client retransmission, view change, frontier gossip,
// state transfer) must still complete every request and keep replicas
// consistent.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::sim {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(MessageLoss, FaultsDropExpectedFraction) {
  Simulation sim(801, Profile::lan());
  sim.network().faults().set_loss_probability(0.25);

  class Sink final : public Actor {
   public:
    explicit Sink(Simulation& sim) : Actor(sim, "sink") {}
    int received = 0;

   protected:
    void on_message(const WireMessage&) override { ++received; }
  };
  class Source final : public Actor {
   public:
    explicit Source(Simulation& sim) : Actor(sim, "source") {}
    void blast(ProcessId to, int n) {
      for (int i = 0; i < n; ++i) send(to, Bytes{1});
    }

   protected:
    void on_message(const WireMessage&) override {}
  };

  Sink sink(sim);
  Source source(sim);
  source.blast(sink.id(), 4000);
  sim.run_until(10 * kSecond);
  EXPECT_NEAR(sink.received, 3000, 150);  // ~75% of 4000
  EXPECT_NEAR(static_cast<double>(sim.network().messages_dropped()), 1000,
              150);
}

TEST(MessageLoss, BroadcastSurvivesLightLoss) {
  Simulation sim(802, Profile::lan());
  sim.network().faults().set_loss_probability(0.005);  // 0.5% per message

  std::map<int, ExecutionTrace> traces;
  bft::Group group(sim, GroupId{0}, 1, recording_factory(traces));
  bft::ClientProxy client(sim, group.info(), "client");
  int done = 0;
  int remaining = 40;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("op" + std::to_string(remaining)),
                  [&](const Bytes&, Time) {
                    ++done;
                    issue();
                  });
  };
  issue();
  // Lost votes stall an instance until the liveness machinery (view change
  // + SYNC re-proposal + state transfer) recovers it: allow generous time.
  sim.run_until(600 * kSecond);
  EXPECT_EQ(done, 40);

  // Correct replicas converge despite the losses.
  const Digest d0 = group.replica(0).history_digest();
  int converged = 0;
  for (int i = 0; i < 4; ++i) {
    if (group.replica(i).history_digest() == d0) ++converged;
  }
  EXPECT_GE(converged, 3);  // 2f+1 replicas carry the service
}

TEST(MessageLoss, ByzCastGlobalSurvivesLightLoss) {
  Simulation sim(803, Profile::lan());
  sim.network().faults().set_loss_probability(0.003);

  core::ByzCastSystem system(
      sim, core::OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{9}),
      1);
  auto client = system.make_client("c");
  int done = 0;
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("m"),
                        [&, left](const core::MulticastMessage&, Time) {
                          ++done;
                          issue(left - 1);
                        });
  };
  issue(15);
  sim.run_until(600 * kSecond);
  EXPECT_EQ(done, 15);
}

}  // namespace
}  // namespace byzcast::sim
