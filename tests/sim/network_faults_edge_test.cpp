// Edge cases of sim::NetworkFaults: the partition heal boundary is
// inclusive (a send at exactly heal_at goes through), partitions cut both
// directions while same-side traffic flows, and probabilistic loss is a
// deterministic function of the simulation seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/actor.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

namespace byzcast::sim {
namespace {

class Recorder final : public Actor {
 public:
  Recorder(Simulation& sim, std::string name) : Actor(sim, std::move(name)) {}

  void say(ProcessId to, const std::string& text) {
    send(to, to_bytes(text));
  }

  std::vector<std::string> received;

 protected:
  void on_message(const WireMessage& msg) override {
    if (!verify(msg)) return;
    received.push_back(to_text(msg.payload));
  }
};

TEST(NetworkFaultsEdge, PartitionHealBoundaryIsInclusive) {
  Simulation sim(1, Profile::lan());
  Recorder a(sim, "a");
  Recorder b(sim, "b");
  const Time heal_at = 100 * kMillisecond;
  sim.network().faults().partition({a.id()}, {b.id()}, heal_at);
  // One send one nanosecond before the heal instant, one exactly at it:
  // should_drop treats now >= heal_at as healed, so only the first is lost.
  sim.scheduler().schedule_after(heal_at - kNanosecond,
                                 [&] { a.say(b.id(), "pre-heal"); });
  sim.scheduler().schedule_after(heal_at,
                                 [&] { a.say(b.id(), "at-heal"); });
  sim.run_until(kSecond);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0], "at-heal");
}

TEST(NetworkFaultsEdge, PartitionCutsBothWaysButNotWithinASide) {
  Simulation sim(1, Profile::lan());
  Recorder a1(sim, "a1");
  Recorder a2(sim, "a2");
  Recorder b1(sim, "b1");
  sim.network().faults().partition({a1.id(), a2.id()}, {b1.id()},
                                   /*heal_at=*/kSecond);
  a1.say(b1.id(), "cross-ab");
  b1.say(a1.id(), "cross-ba");
  a1.say(a2.id(), "same-side");
  sim.run_until(500 * kMillisecond);
  EXPECT_TRUE(b1.received.empty());
  EXPECT_TRUE(a1.received.empty());
  ASSERT_EQ(a2.received.size(), 1u);
  EXPECT_EQ(a2.received[0], "same-side");
}

TEST(NetworkFaultsEdge, DropLinkIsAsymmetricAndComposesWithPartialLoss) {
  Simulation sim(1, Profile::lan());
  Recorder a(sim, "a");
  Recorder b(sim, "b");
  sim.network().faults().drop_link(a.id(), b.id());
  for (int i = 0; i < 5; ++i) {
    a.say(b.id(), "down");   // severed direction: always dropped
    b.say(a.id(), "up" + std::to_string(i));  // reverse: untouched
  }
  sim.run_until(kSecond);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(a.received.size(), 5u);
}

// Runs `count` sends through a lossy network and reports which arrived.
std::vector<std::string> lossy_run(std::uint64_t seed, int count) {
  Simulation sim(seed, Profile::lan());
  Recorder a(sim, "a");
  Recorder b(sim, "b");
  sim.network().faults().set_loss_probability(0.5);
  for (int i = 0; i < count; ++i) a.say(b.id(), "m" + std::to_string(i));
  sim.run_until(kSecond);
  return b.received;
}

TEST(NetworkFaultsEdge, LossPatternIsDeterministicUnderFixedSeed) {
  const auto first = lossy_run(42, 64);
  const auto second = lossy_run(42, 64);
  EXPECT_EQ(first, second);  // byte-identical replay
  // Sanity on the probability: with p=0.5 over 64 trials, losing none or
  // all has probability 2^-63 — treat either as a wiring bug.
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 64u);

  const auto other_seed = lossy_run(43, 64);
  EXPECT_NE(first, other_seed) << "seed does not influence the loss pattern";
}

}  // namespace
}  // namespace byzcast::sim
