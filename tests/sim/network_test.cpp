#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "sim/actor.hpp"
#include "sim/simulation.hpp"

namespace byzcast::sim {
namespace {

/// Records every authenticated message it receives.
class Recorder final : public Actor {
 public:
  Recorder(Simulation& sim, std::string name) : Actor(sim, std::move(name)) {}

  void say(ProcessId to, const std::string& text) {
    send(to, to_bytes(text));
  }

  std::vector<std::pair<ProcessId, std::string>> received;
  std::vector<Time> arrival_times;

 protected:
  void on_message(const WireMessage& msg) override {
    if (!verify(msg)) return;
    received.emplace_back(msg.from, to_text(msg.payload));
    arrival_times.push_back(now());
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  Simulation sim{1, Profile::lan()};
  Recorder a{sim, "a"};
  Recorder b{sim, "b"};
  Recorder c{sim, "c"};
};

TEST_F(NetworkTest, DeliversAuthenticatedMessages) {
  a.say(b.id(), "hello");
  sim.run_until(kSecond);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, a.id());
  EXPECT_EQ(b.received[0].second, "hello");
  EXPECT_GE(b.arrival_times[0], sim.profile().net_one_way);
}

TEST_F(NetworkTest, UnknownDestinationDroppedSilently) {
  a.say(ProcessId{424242}, "void");
  sim.run_until(kSecond);
  EXPECT_EQ(sim.network().messages_dropped(), 1u);
}

TEST_F(NetworkTest, DropLinkIsOneDirectional) {
  sim.network().faults().drop_link(a.id(), b.id());
  a.say(b.id(), "blocked");
  b.say(a.id(), "open");
  sim.run_until(kSecond);
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].second, "open");
}

TEST_F(NetworkTest, ExtraDelayPostponesDelivery) {
  sim.network().faults().add_delay(a.id(), b.id(), 100 * kMillisecond);
  a.say(b.id(), "slow");
  a.say(c.id(), "fast");
  sim.run_until(kSecond);
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_GE(b.arrival_times[0], 100 * kMillisecond);
  EXPECT_LT(c.arrival_times[0], 10 * kMillisecond);
}

TEST_F(NetworkTest, PartitionHeals) {
  sim.network().faults().partition({a.id()}, {b.id()}, 500 * kMillisecond);
  a.say(b.id(), "during");
  sim.run_until(600 * kMillisecond);
  EXPECT_TRUE(b.received.empty());
  a.say(b.id(), "after");
  sim.run_until(kSecond);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, "after");
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  sim.network().faults().partition({a.id()}, {b.id(), c.id()},
                                   500 * kMillisecond);
  a.say(b.id(), "x");
  b.say(a.id(), "y");
  c.say(b.id(), "same side");
  sim.run_until(100 * kMillisecond);
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(b.received.size(), 1u);  // c -> b unaffected
}

TEST_F(NetworkTest, CountsTraffic) {
  a.say(b.id(), "12345");
  a.say(c.id(), "12345");
  sim.run_until(kSecond);
  EXPECT_EQ(sim.network().messages_sent(), 2u);
  EXPECT_EQ(sim.network().bytes_sent(), 10u);
}

TEST_F(NetworkTest, CrashedActorIgnoresDelivery) {
  b.crash();
  a.say(b.id(), "anyone home?");
  sim.run_until(kSecond);
  EXPECT_TRUE(b.received.empty());
}

}  // namespace
}  // namespace byzcast::sim
