#include "sim/latency.hpp"

#include <gtest/gtest.h>

namespace byzcast::sim {
namespace {

TEST(LanLatency, WithinExpectedRange) {
  const Profile p = Profile::lan();
  LanLatency lan(p);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Time t = lan.sample(ProcessId{0}, ProcessId{1}, 64, rng);
    EXPECT_GE(t, p.net_one_way);
    EXPECT_LT(t, p.net_one_way + 50 * p.net_jitter_mean);
  }
}

TEST(LanLatency, LoopbackIsFast) {
  LanLatency lan(Profile::lan());
  Rng rng(1);
  EXPECT_LE(lan.sample(ProcessId{3}, ProcessId{3}, 64, rng),
            2 * kMicrosecond);
}

TEST(LanLatency, LargeMessagesPaySerializationDelay) {
  Profile p = Profile::lan();
  p.net_jitter_mean = 0;
  LanLatency lan(p);
  Rng rng(1);
  const Time small = lan.sample(ProcessId{0}, ProcessId{1}, 0, rng);
  const Time large = lan.sample(ProcessId{0}, ProcessId{1}, 1'000'000, rng);
  EXPECT_EQ(large - small, 1'000'000 * p.net_per_byte);
}

TEST(WanLatency, MatchesTableOne) {
  // The paper's Table I RTTs (ms): CA-VA 70, CA-EU 165, CA-JP 112,
  // VA-EU 88, VA-JP 175, EU-JP 239. One-way = RTT/2.
  const Profile p = Profile::wan();
  const WanLatency wan = WanLatency::ec2_four_regions(p);
  const auto ca = RegionId{0};
  const auto va = RegionId{1};
  const auto eu = RegionId{2};
  const auto jp = RegionId{3};
  EXPECT_EQ(2 * wan.region_latency(ca, va), 70 * kMillisecond);
  EXPECT_EQ(2 * wan.region_latency(ca, eu), 165 * kMillisecond);
  EXPECT_EQ(2 * wan.region_latency(ca, jp), 112 * kMillisecond);
  EXPECT_EQ(2 * wan.region_latency(va, eu), 88 * kMillisecond);
  EXPECT_EQ(2 * wan.region_latency(va, jp), 175 * kMillisecond);
  EXPECT_EQ(2 * wan.region_latency(eu, jp), 239 * kMillisecond);
}

TEST(WanLatency, SymmetricMatrix) {
  const WanLatency wan = WanLatency::ec2_four_regions(Profile::wan());
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(wan.region_latency(RegionId{a}, RegionId{b}),
                wan.region_latency(RegionId{b}, RegionId{a}));
    }
  }
}

TEST(WanLatency, SampleUsesRegionAssignment) {
  Profile p = Profile::wan();
  p.net_jitter_mean = 0;
  p.net_per_byte = 0;
  WanLatency wan = WanLatency::ec2_four_regions(p);
  wan.assign(ProcessId{10}, RegionId{0});  // CA
  wan.assign(ProcessId{11}, RegionId{3});  // JP
  wan.assign(ProcessId{12}, RegionId{0});  // CA
  Rng rng(1);
  EXPECT_EQ(wan.sample(ProcessId{10}, ProcessId{11}, 0, rng),
            56 * kMillisecond);
  // Same region: intra-datacenter latency, far below cross-region.
  EXPECT_LT(wan.sample(ProcessId{10}, ProcessId{12}, 0, rng),
            kMillisecond);
}

TEST(WanLatency, FourRegionNames) {
  const auto& names = WanLatency::ec2_region_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "CA");
  EXPECT_EQ(names[3], "JP");
}

}  // namespace
}  // namespace byzcast::sim
