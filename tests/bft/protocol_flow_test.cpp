// White-box protocol-flow tests using the network tap: the message pattern
// of one consensus instance matches Mod-SMaRt (1 batched PROPOSE broadcast,
// all-to-all WRITE and ACCEPT, per-replica replies), and the paper's §VI
// message-complexity discussion: a local ByzCast message costs one ordering
// while a global one costs one ordering per involved group plus relays.
#include <gtest/gtest.h>

#include <map>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(ProtocolFlow, SingleInstanceMessagePattern) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(601, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  auto counts = std::make_shared<std::map<MsgType, int>>();
  sim.network().set_tap([counts](const sim::WireMessage& msg) {
    if (!msg.payload.empty()) ++(*counts)[peek_type(msg.payload)];
  });

  ClientProxy client(sim, group.info(), "client");
  bool done = false;
  client.invoke(to_bytes("one"), [&](const Bytes&, Time) { done = true; });
  sim.run_until(10 * kSecond);
  ASSERT_TRUE(done);

  // Client request to all 4 replicas.
  EXPECT_EQ((*counts)[MsgType::kRequest], 4);
  // Leader's PROPOSE to the 3 peers.
  EXPECT_EQ((*counts)[MsgType::kPropose], 3);
  // WRITE and ACCEPT: every replica to its 3 peers.
  EXPECT_EQ((*counts)[MsgType::kWrite], 4 * 3);
  EXPECT_EQ((*counts)[MsgType::kAccept], 4 * 3);
  // One reply per replica.
  EXPECT_EQ((*counts)[MsgType::kReply], 4);
  // No view changes or transfers in a clean run.
  EXPECT_EQ((*counts)[MsgType::kStop], 0);
  EXPECT_EQ((*counts)[MsgType::kStateRequest], 0);
}

TEST(ProtocolFlow, LocalMulticastTouchesOnlyItsGroup) {
  sim::Simulation sim(602, sim::Profile::lan());
  core::ByzCastSystem system(
      sim, core::OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{9}),
      1);

  // Count wire messages per destination process group.
  std::map<GroupId, int> to_group;
  const auto& registry = system.registry();
  auto lookup = [&registry](ProcessId p) -> GroupId {
    for (const auto& [g, info] : registry) {
      if (info.is_member(p)) return g;
    }
    return GroupId{-1};
  };
  sim.network().set_tap([&](const sim::WireMessage& msg) {
    ++to_group[lookup(msg.to)];
  });

  auto client = system.make_client("c");
  bool done = false;
  client->a_multicast({GroupId{0}}, to_bytes("local"),
                      [&](const core::MulticastMessage&, Time) {
                        done = true;
                      });
  sim.run_until(10 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_GT(to_group[GroupId{0}], 0);
  EXPECT_EQ(to_group[GroupId{1}], 0);  // genuine: g1 untouched
  EXPECT_EQ(to_group[GroupId{9}], 0);  // auxiliary untouched
}

TEST(ProtocolFlow, GlobalMulticastCostsOneOrderingPerInvolvedGroup) {
  sim::Simulation sim(603, sim::Profile::lan());
  core::ByzCastSystem system(
      sim, core::OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{9}),
      1);

  auto counts = std::make_shared<std::map<MsgType, int>>();
  sim.network().set_tap([counts](const sim::WireMessage& msg) {
    if (!msg.payload.empty()) ++(*counts)[peek_type(msg.payload)];
  });

  auto client = system.make_client("c");
  bool done = false;
  client->a_multicast({GroupId{0}, GroupId{1}}, to_bytes("global"),
                      [&](const core::MulticastMessage&, Time) {
                        done = true;
                      });
  sim.run_until(10 * kSecond);
  ASSERT_TRUE(done);

  // Three orderings (aux, g0, g1): 3 PROPOSE broadcasts of 3 messages each
  // (relay copies batch into one instance per group thanks to batching).
  EXPECT_EQ((*counts)[MsgType::kPropose], 3 * 3);
  EXPECT_EQ((*counts)[MsgType::kWrite], 3 * 12);
  EXPECT_EQ((*counts)[MsgType::kAccept], 3 * 12);
  // Requests: client->4 aux replicas + 4 aux relaying to 2 groups x 4.
  EXPECT_EQ((*counts)[MsgType::kRequest], 4 + 4 * 8);
  // Replies from both destination groups (4 replicas each).
  EXPECT_EQ((*counts)[MsgType::kReply], 8);
}

TEST(ProtocolFlow, BaselinePaysDoubleOrderingForLocalMessages) {
  sim::Simulation sim(604, sim::Profile::lan());
  core::ByzCastSystem system(
      sim, core::OverlayTree::two_level({GroupId{0}, GroupId{1}}, GroupId{9}),
      1, {}, core::Routing::kViaRoot);

  auto counts = std::make_shared<std::map<MsgType, int>>();
  sim.network().set_tap([counts](const sim::WireMessage& msg) {
    if (!msg.payload.empty()) ++(*counts)[peek_type(msg.payload)];
  });

  auto client = system.make_client("c");
  bool done = false;
  client->a_multicast({GroupId{0}}, to_bytes("local-via-root"),
                      [&](const core::MulticastMessage&, Time) {
                        done = true;
                      });
  sim.run_until(10 * kSecond);
  ASSERT_TRUE(done);
  // Two orderings: the root and the destination group.
  EXPECT_EQ((*counts)[MsgType::kPropose], 2 * 3);
  EXPECT_EQ((*counts)[MsgType::kWrite], 2 * 12);
}

}  // namespace
}  // namespace byzcast::bft
