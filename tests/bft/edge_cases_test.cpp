// Edge cases of the broadcast engine: duplicate client requests, stale
// votes, empty groups of traffic, large payloads, and zero-length ops.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(EdgeCases, DuplicateClientTransmissionExecutesOnce) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(701, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  // Send the exact same (origin, seq) request three times directly.
  class Dup final : public sim::Actor {
   public:
    Dup(sim::Simulation& sim, GroupInfo info)
        : Actor(sim, "dup"), info_(std::move(info)) {}
    void fire() {
      Request req;
      req.group = info_.id;
      req.origin = id();
      req.seq = 0;
      req.op = to_bytes("only-once");
      const Bytes encoded = encode_request(req);
      for (int k = 0; k < 3; ++k) {
        for (const ProcessId r : info_.replicas()) send(r, encoded);
      }
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo info_;
  };
  Dup dup(sim, group.info());
  dup.fire();
  sim.run_until(20 * kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(traces[i].size(), 1u) << "replica " << i;
  }
}

TEST(EdgeCases, RetransmissionAfterDecisionIsHarmless) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(702, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "client");
  bool done = false;
  client.invoke(to_bytes("x"), [&](const Bytes&, Time) { done = true; });
  sim.run_until(5 * kSecond);
  ASSERT_TRUE(done);
  // Force many retry periods to elapse: nothing re-executes.
  sim.run_until(60 * kSecond);
  EXPECT_EQ(group.replica(0).executed_requests(), 1u);
}

TEST(EdgeCases, EmptyOpIsLegal) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(703, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "client");
  bool done = false;
  client.invoke(Bytes{}, [&](const Bytes&, Time) { done = true; });
  sim.run_until(10 * kSecond);
  EXPECT_TRUE(done);
  ASSERT_EQ(traces[0].size(), 1u);
  EXPECT_TRUE(traces[0][0].op.empty());
}

TEST(EdgeCases, LargePayloadsOrdered) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(704, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "client");
  int done = 0;
  const Bytes big(64 * 1024, 0x5A);  // 64 KiB
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client.invoke(big, [&, left](const Bytes&, Time) {
      ++done;
      issue(left - 1);
    });
  };
  issue(3);
  sim.run_until(30 * kSecond);
  EXPECT_EQ(done, 3);
  ASSERT_EQ(traces[0].size(), 3u);
  EXPECT_EQ(traces[0][0].op.size(), 64u * 1024u);
}

TEST(EdgeCases, StaleVotesAfterDecisionIgnored) {
  // A peer re-sending WRITE/ACCEPT for long-decided instances must not
  // disturb the replica (exercises the stale-vote guard).
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(705, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "client");
  int done = 0;
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client.invoke(to_bytes("op"), [&, left](const Bytes&, Time) {
      ++done;
      issue(left - 1);
    });
  };
  issue(5);
  sim.run_until(30 * kSecond);
  ASSERT_EQ(done, 5);
  const auto executed_before = group.replica(1).executed_requests();

  // Replay stale votes from a member-lookalike: craft votes for instance 0.
  class Replayer final : public sim::Actor {
   public:
    Replayer(sim::Simulation& sim, GroupInfo info)
        : Actor(sim, "replayer"), info_(std::move(info)) {}
    void replay() {
      Vote v;
      v.phase = MsgType::kAccept;
      v.view = 0;
      v.instance = 0;
      v.digest = Sha256::hash(to_bytes("whatever"));
      for (const ProcessId r : info_.replicas()) send(r, v.encode());
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo info_;
  };
  Replayer replayer(sim, group.info());
  replayer.replay();
  sim.run_until(sim.now() + 10 * kSecond);
  EXPECT_EQ(group.replica(1).executed_requests(), executed_before);
  EXPECT_EQ(group.replica(1).view(), 0u);
}

TEST(EdgeCases, TwoGroupsShareOneSimulationIndependently) {
  std::map<int, ExecutionTrace> traces_a;
  std::map<int, ExecutionTrace> traces_b;
  sim::Simulation sim(706, sim::Profile::lan());
  Group ga(sim, GroupId{0}, 1, recording_factory(traces_a));
  Group gb(sim, GroupId{1}, 1, recording_factory(traces_b));

  ClientProxy ca(sim, ga.info(), "ca");
  ClientProxy cb(sim, gb.info(), "cb");
  int done = 0;
  ca.invoke(to_bytes("for-a"), [&](const Bytes&, Time) { ++done; });
  cb.invoke(to_bytes("for-b"), [&](const Bytes&, Time) { ++done; });
  sim.run_until(10 * kSecond);
  EXPECT_EQ(done, 2);
  ASSERT_EQ(traces_a[0].size(), 1u);
  ASSERT_EQ(traces_b[0].size(), 1u);
  EXPECT_EQ(to_text(traces_a[0][0].op), "for-a");
  EXPECT_EQ(to_text(traces_b[0][0].op), "for-b");
}

}  // namespace
}  // namespace byzcast::bft
