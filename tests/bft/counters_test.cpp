// Protocol-event counters: quiet runs install no views, leader crashes do,
// rejected requests are counted, and checkpoints fire on schedule.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

int run_ops(sim::Simulation& sim, Group& group, int count, Time horizon) {
  ClientProxy client(sim, group.info(), "client");
  int done = 0;
  int remaining = count;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("op" + std::to_string(remaining)),
                  [&](const Bytes&, Time) {
                    ++done;
                    issue();
                  });
  };
  issue();
  sim.run_until(horizon);
  return done;
}

TEST(Counters, QuietRunInstallsNoViews) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(201, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  EXPECT_EQ(run_ops(sim, group, 25, 60 * kSecond), 25);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(group.replica(i).counters().views_installed, 0u);
    EXPECT_EQ(group.replica(i).counters().state_transfers, 0u);
  }
  // Only the leader proposes in view 0.
  EXPECT_GT(group.replica(0).counters().proposals_made, 0u);
  EXPECT_EQ(group.replica(1).counters().proposals_made, 0u);
}

TEST(Counters, LeaderCrashInstallsViews) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(202, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[0] = FaultSpec::crashed();
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);
  EXPECT_EQ(run_ops(sim, group, 10, 60 * kSecond), 10);
  for (const int i : group.correct_indices()) {
    EXPECT_GE(group.replica(i).counters().views_installed, 1u);
  }
  // The view-1 leader proposed.
  EXPECT_GT(group.replica(1).counters().proposals_made, 0u);
}

TEST(Counters, RejectedRequestsCounted) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(203, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  class Spoofer final : public sim::Actor {
   public:
    Spoofer(sim::Simulation& sim, GroupInfo info)
        : Actor(sim, "spoofer"), info_(std::move(info)) {}
    void attack() {
      Request req;
      req.group = info_.id;
      req.origin = ProcessId{9999};  // impersonation
      req.seq = 0;
      req.op = to_bytes("x");
      send(info_.replicas()[0], encode_request(req));
      // Wrong group id.
      Request wrong;
      wrong.group = GroupId{42};
      wrong.origin = id();
      wrong.seq = 0;
      wrong.op = to_bytes("y");
      send(info_.replicas()[0], encode_request(wrong));
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo info_;
  };
  Spoofer spoofer(sim, group.info());
  spoofer.attack();
  sim.run_until(5 * kSecond);
  EXPECT_EQ(group.replica(0).counters().rejected_requests, 2u);
  EXPECT_EQ(group.replica(0).executed_requests(), 0u);
}

TEST(Counters, CheckpointsFollowPeriod) {
  sim::Profile profile = sim::Profile::lan();
  profile.checkpoint_period = 3;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(204, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  EXPECT_EQ(run_ops(sim, group, 20, 120 * kSecond), 20);
  // 20 sequential ops from one closed-loop client = 20 instances -> at
  // least 20/3 checkpoints.
  EXPECT_GE(group.replica(0).counters().checkpoints_taken, 5u);
}

}  // namespace
}  // namespace byzcast::bft
