// ExecBarrier: replies produced by exec shards must leave in per-origin
// delivery order no matter how adversarially the shards' completions
// interleave (§II-B FIFO on the reply path).
#include "bft/exec_barrier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace byzcast::bft {
namespace {

Buffer payload_of(int n) { return Buffer(to_bytes(std::to_string(n))); }

int payload_to_int(const Buffer& b) {
  return std::stoi(std::string(b.view().begin(), b.view().end()));
}

TEST(ExecBarrierTest, AdversarialCompletionOrderReleasesFifo) {
  // Shard A finishes the origin's batch n+1 work before shard B finishes
  // batch n: complete tickets in exactly reversed order. Releases must still
  // come out 0, 1, 2, ...
  std::vector<int> released;
  ExecBarrier barrier([&](ProcessId to, Buffer p) {
    EXPECT_EQ(to.value, 7);
    released.push_back(payload_to_int(p));
  });
  const ProcessId origin{7};
  constexpr int kTickets = 16;
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < kTickets; ++i) tickets.push_back(barrier.open(origin));

  for (int i = kTickets - 1; i >= 0; --i) {
    barrier.complete(origin, tickets[static_cast<std::size_t>(i)],
                     {{origin, payload_of(i)}});
  }
  ASSERT_EQ(released.size(), static_cast<std::size_t>(kTickets));
  for (int i = 0; i < kTickets; ++i) {
    EXPECT_EQ(released[static_cast<std::size_t>(i)], i);
  }
  EXPECT_TRUE(barrier.idle());
  // All but the last-opened ticket completed while an earlier one was
  // outstanding.
  EXPECT_EQ(barrier.reordered(), static_cast<std::uint64_t>(kTickets - 1));
}

TEST(ExecBarrierTest, OriginsAreIndependentStreams) {
  // A stalled ticket of one origin must not hold back another origin.
  std::vector<std::pair<int, int>> released;  // (origin, seq)
  ExecBarrier barrier([&](ProcessId to, Buffer p) {
    released.emplace_back(to.value, payload_to_int(p));
  });
  const ProcessId a{1};
  const ProcessId b{2};
  const auto ta0 = barrier.open(a);
  const auto tb0 = barrier.open(b);
  const auto ta1 = barrier.open(a);

  barrier.complete(a, ta1, {{a, payload_of(1)}});  // blocked behind ta0
  EXPECT_TRUE(released.empty());
  barrier.complete(b, tb0, {{b, payload_of(0)}});  // independent: releases
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], std::make_pair(2, 0));
  barrier.complete(a, ta0, {{a, payload_of(0)}});  // unblocks ta0 then ta1
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[1], std::make_pair(1, 0));
  EXPECT_EQ(released[2], std::make_pair(1, 1));
  EXPECT_TRUE(barrier.idle());
}

TEST(ExecBarrierTest, TicketWithNoSendsStillAdvancesTheStream) {
  // Deferred work that produces no reply (e.g. a suppressed duplicate) must
  // not wedge later tickets of the same origin.
  std::vector<int> released;
  ExecBarrier barrier(
      [&](ProcessId, Buffer p) { released.push_back(payload_to_int(p)); });
  const ProcessId origin{3};
  const auto t0 = barrier.open(origin);
  const auto t1 = barrier.open(origin);
  barrier.complete(origin, t1, {{origin, payload_of(1)}});
  barrier.complete(origin, t0, {});
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 1);
  EXPECT_TRUE(barrier.idle());
}

TEST(ExecBarrierTest, ConcurrentCompletersPreserveOrderPerOrigin) {
  // Real threads racing complete() for interleaved origins: per-origin
  // release order must match ticket order exactly. Run under TSan in CI.
  constexpr int kOrigins = 4;
  constexpr int kPerOrigin = 200;
  std::vector<std::vector<int>> released(kOrigins);
  std::mutex released_mu;
  ExecBarrier barrier([&](ProcessId to, Buffer p) {
    // The barrier calls releases under its own lock, but guard anyway: the
    // test asserts ordering, not lock-holding.
    const std::lock_guard<std::mutex> lock(released_mu);
    released[static_cast<std::size_t>(to.value)].push_back(payload_to_int(p));
  });

  struct Job {
    ProcessId origin;
    std::uint64_t ticket;
    int seq;
  };
  std::vector<Job> jobs;
  for (int s = 0; s < kPerOrigin; ++s) {
    for (int o = 0; o < kOrigins; ++o) {
      const ProcessId origin{o};
      jobs.push_back(Job{origin, barrier.open(origin), s});
    }
  }
  // Shuffle completion order deterministically and fan the jobs to threads.
  std::mt19937 rng(12345);
  std::shuffle(jobs.begin(), jobs.end(), rng);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= jobs.size()) return;
        const Job& j = jobs[i];
        barrier.complete(j.origin, j.ticket, {{j.origin, payload_of(j.seq)}});
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_TRUE(barrier.idle());
  for (int o = 0; o < kOrigins; ++o) {
    const auto& seq = released[static_cast<std::size_t>(o)];
    ASSERT_EQ(seq.size(), static_cast<std::size_t>(kPerOrigin));
    for (int s = 0; s < kPerOrigin; ++s) {
      ASSERT_EQ(seq[static_cast<std::size_t>(s)], s)
          << "origin " << o << " released out of order";
    }
  }
}

}  // namespace
}  // namespace byzcast::bft
