// Proves the encode-once fan-out invariant end to end: when a leader
// broadcasts a PROPOSE to its group, every wire copy carries the *same*
// backing allocation (one serialization, N ref bumps), observed through the
// simulator's network tap on a real protocol run. Also checks that client
// request retransmission fan-out shares one buffer across the 3f+1 replicas.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "bft/message.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

struct TappedWire {
  ProcessId from;
  ProcessId to;
  const std::uint8_t* data;
  std::size_t size;
  Bytes content;
};

TEST(FanoutBuffer, ProposeCopiesShareOneBackingAllocation) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(/*seed=*/1, sim::Profile::lan());
  Group group(sim, GroupId{0}, /*f=*/1, recording_factory(traces));

  std::vector<TappedWire> proposes;
  sim.network().set_tap([&proposes](const sim::WireMessage& msg) {
    if (msg.payload.empty() || peek_type(msg.payload) != MsgType::kPropose) {
      return;
    }
    proposes.push_back(TappedWire{msg.from, msg.to, msg.payload.data(),
                                  msg.payload.size(),
                                  Bytes(msg.payload.data(),
                                        msg.payload.data() +
                                            msg.payload.size())});
  });

  ClientProxy client(sim, group.info(), "client0");
  int completions = 0;
  std::function<void()> issue = [&client, &completions, &issue] {
    if (completions == 5) return;
    client.invoke(to_bytes("op-" + std::to_string(completions)),
                  [&completions, &issue](const Bytes&, Time) {
                    ++completions;
                    issue();
                  });
  };
  issue();
  sim.run_until(30 * kSecond);
  ASSERT_EQ(completions, 5);
  ASSERT_FALSE(proposes.empty());

  // Group the tapped PROPOSEs by (sender, wire bytes): one logical broadcast.
  // Encode-once means each logical broadcast uses exactly one distinct
  // data pointer, and that pointer reaches all n-1 peer replicas.
  std::map<std::pair<std::int32_t, Bytes>, std::set<const std::uint8_t*>>
      pointers;
  std::map<std::pair<std::int32_t, Bytes>, std::set<std::int32_t>> recipients;
  for (const TappedWire& w : proposes) {
    const auto key = std::make_pair(w.from.value, w.content);
    pointers[key].insert(w.data);
    recipients[key].insert(w.to.value);
  }
  const std::size_t replicas = group.info().replicas().size();
  ASSERT_EQ(replicas, 4u);  // 3f+1 with f=1
  for (const auto& [key, ptrs] : pointers) {
    EXPECT_EQ(ptrs.size(), 1u)
        << "PROPOSE from " << key.first
        << " was serialized more than once for its fan-out";
    EXPECT_EQ(recipients[key].size(), replicas - 1)
        << "PROPOSE from " << key.first
        << " did not reach every peer replica";
  }
}

TEST(FanoutBuffer, ClientRequestFanOutSharesOneBuffer) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(/*seed=*/3, sim::Profile::lan());
  Group group(sim, GroupId{0}, /*f=*/1, recording_factory(traces));

  // Client request wire messages (kRequest) grouped the same way.
  std::map<std::pair<std::int32_t, Bytes>, std::set<const std::uint8_t*>>
      pointers;
  sim.network().set_tap([&pointers](const sim::WireMessage& msg) {
    if (msg.payload.empty() || peek_type(msg.payload) != MsgType::kRequest) {
      return;
    }
    pointers[{msg.from.value, Bytes(msg.payload.data(),
                                    msg.payload.data() + msg.payload.size())}]
        .insert(msg.payload.data());
  });

  ClientProxy client(sim, group.info(), "client0");
  int completions = 0;
  client.invoke(to_bytes("single-op"),
                [&completions](const Bytes&, Time) { ++completions; });
  sim.run_until(10 * kSecond);
  ASSERT_EQ(completions, 1);
  ASSERT_FALSE(pointers.empty());
  for (const auto& [key, ptrs] : pointers) {
    EXPECT_EQ(ptrs.size(), 1u)
        << "request from " << key.first
        << " was re-serialized within one transmission fan-out";
  }
}

}  // namespace
}  // namespace byzcast::bft
