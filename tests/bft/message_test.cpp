#include "bft/message.hpp"

#include <gtest/gtest.h>

namespace byzcast::bft {
namespace {

Request make_request(int origin, std::uint64_t seq, const char* op) {
  Request r;
  r.group = GroupId{1};
  r.origin = ProcessId{origin};
  r.seq = seq;
  r.op = to_bytes(op);
  return r;
}

TEST(BftMessage, RequestRoundTrip) {
  const Request req = make_request(5, 42, "op-payload");
  const Bytes encoded = encode_request(req);
  EXPECT_EQ(peek_type(encoded), MsgType::kRequest);
  Reader r(encoded);
  (void)r.u8();
  EXPECT_EQ(decode_request(r), req);
}

TEST(BftMessage, RequestId) {
  const Request req = make_request(5, 42, "x");
  EXPECT_EQ(req.id(), (MessageId{ProcessId{5}, 42}));
}

TEST(BftMessage, ProposeRoundTrip) {
  Propose p;
  p.view = 3;
  p.instance = 17;
  p.batch = {make_request(1, 0, "a"), make_request(2, 9, "b")};
  const Bytes encoded = p.encode();
  EXPECT_EQ(peek_type(encoded), MsgType::kPropose);
  EXPECT_EQ(peek_propose_count(encoded), 2u);
  Reader r(encoded);
  (void)r.u8();
  const Propose q = Propose::decode(r);
  EXPECT_EQ(q.view, 3u);
  EXPECT_EQ(q.instance, 17u);
  EXPECT_EQ(q.batch, p.batch);
}

TEST(BftMessage, EmptyProposeCount) {
  Propose p;
  EXPECT_EQ(peek_propose_count(p.encode()), 0u);
}

TEST(BftMessage, BatchDigestSensitivity) {
  const Batch a = {make_request(1, 0, "a"), make_request(2, 0, "b")};
  Batch reordered = {a[1], a[0]};
  Batch tampered = a;
  Bytes raw(tampered[0].op.data(),
            tampered[0].op.data() + tampered[0].op.size());
  raw.push_back(0xFF);
  tampered[0].op = Buffer(std::move(raw));
  EXPECT_NE(batch_digest(a), batch_digest(reordered));
  EXPECT_NE(batch_digest(a), batch_digest(tampered));
  EXPECT_EQ(batch_digest(a), batch_digest(Batch{a}));
}

TEST(BftMessage, VoteRoundTrip) {
  for (const MsgType phase : {MsgType::kWrite, MsgType::kAccept}) {
    Vote v;
    v.phase = phase;
    v.view = 7;
    v.instance = 123;
    v.digest = Sha256::hash(to_bytes("batch"));
    const Bytes encoded = v.encode();
    EXPECT_EQ(peek_type(encoded), phase);
    Reader r(encoded);
    const auto type = static_cast<MsgType>(r.u8());
    const Vote w = Vote::decode(type, r);
    EXPECT_EQ(w.phase, phase);
    EXPECT_EQ(w.view, 7u);
    EXPECT_EQ(w.instance, 123u);
    EXPECT_EQ(w.digest, v.digest);
  }
}

TEST(BftMessage, ReplyRoundTrip) {
  Reply rep;
  rep.group = GroupId{4};
  rep.seq = 77;
  rep.result = to_bytes("ack");
  const Bytes encoded = rep.encode();
  Reader r(encoded);
  (void)r.u8();
  const Reply out = Reply::decode(r);
  EXPECT_EQ(out.group, GroupId{4});
  EXPECT_EQ(out.seq, 77u);
  EXPECT_EQ(out.result, to_bytes("ack"));
}

TEST(BftMessage, StopAndStopDataRoundTrip) {
  const Bytes stop_encoded = Stop{9}.encode();
  Reader sr(stop_encoded);
  (void)sr.u8();
  EXPECT_EQ(Stop::decode(sr).next_view, 9u);

  StopData sd;
  sd.next_view = 9;
  sd.next_instance = 100;
  sd.values = {OpenValue{100, 8, {make_request(1, 2, "v")}},
               OpenValue{102, 9, {make_request(1, 3, "w")}}};
  const Bytes sd_encoded = sd.encode();
  Reader r(sd_encoded);
  (void)r.u8();
  const StopData out = StopData::decode(r);
  EXPECT_EQ(out.next_view, 9u);
  EXPECT_EQ(out.next_instance, 100u);
  ASSERT_EQ(out.values.size(), 2u);
  EXPECT_EQ(out.values[0].instance, 100u);
  EXPECT_EQ(out.values[0].value_view, 8u);
  EXPECT_EQ(out.values[0].value, sd.values[0].value);
  EXPECT_EQ(out.values[1].instance, 102u);
  EXPECT_EQ(out.values[1].value, sd.values[1].value);
}

TEST(BftMessage, SyncRoundTrip) {
  Sync s;
  s.next_view = 2;
  s.instance = 55;
  s.open_from = 56;  // batches[0] is decided history, the rest re-propose
  s.batches = {{make_request(3, 4, "w")}, {}, {make_request(3, 5, "x")}};
  const Bytes s_encoded = s.encode();
  Reader r(s_encoded);
  (void)r.u8();
  const Sync out = Sync::decode(r);
  EXPECT_EQ(out.next_view, 2u);
  EXPECT_EQ(out.instance, 55u);
  EXPECT_EQ(out.open_from, 56u);
  ASSERT_EQ(out.batches.size(), 3u);
  EXPECT_EQ(out.batches[0], s.batches[0]);
  EXPECT_TRUE(out.batches[1].empty());
  EXPECT_EQ(out.batches[2], s.batches[2]);
}

TEST(BftMessage, ReplyBatchRoundTrip) {
  ReplyBatch b;
  b.replies = {Reply{GroupId{4}, 77, to_bytes("ack")},
               Reply{GroupId{4}, 78, to_bytes("ack2")}};
  const Bytes encoded = b.encode();
  EXPECT_EQ(peek_type(encoded), MsgType::kReplyBatch);
  Reader r(encoded);
  (void)r.u8();
  const ReplyBatch out = ReplyBatch::decode(r);
  ASSERT_EQ(out.replies.size(), 2u);
  EXPECT_EQ(out.replies[0].group, GroupId{4});
  EXPECT_EQ(out.replies[0].seq, 77u);
  EXPECT_EQ(out.replies[0].result, to_bytes("ack"));
  EXPECT_EQ(out.replies[1].seq, 78u);
  EXPECT_EQ(out.replies[1].result, to_bytes("ack2"));
}

TEST(BftMessage, StateTransferRoundTrip) {
  const Bytes sr_encoded = StateRequest{31}.encode();
  Reader rr(sr_encoded);
  (void)rr.u8();
  EXPECT_EQ(StateRequest::decode(rr).from_instance, 31u);

  StateResponse resp;
  resp.first_instance = 31;
  resp.batches = {{make_request(1, 1, "a")}, {}, {make_request(2, 2, "b")}};
  resp.has_snapshot = true;
  resp.snapshot_instance = 31;
  resp.snapshot = to_bytes("snapshot-bytes");
  const Bytes resp_encoded = resp.encode();
  Reader r(resp_encoded);
  (void)r.u8();
  const StateResponse out = StateResponse::decode(r);
  EXPECT_EQ(out.first_instance, 31u);
  ASSERT_EQ(out.batches.size(), 3u);
  EXPECT_EQ(out.batches[0], resp.batches[0]);
  EXPECT_TRUE(out.batches[1].empty());
  EXPECT_TRUE(out.has_snapshot);
  EXPECT_EQ(out.snapshot, to_bytes("snapshot-bytes"));
}

}  // namespace
}  // namespace byzcast::bft
