// Group reconfiguration (the BFT-SMaRt capability cited in §IV): an ordered
// membership change replaces a replica with a standby; the standby
// bootstraps via state transfer and participates; the removed replica
// retires; unauthorized reconfigurations are rejected.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

/// Submits reconfiguration requests as the authorized administrator.
class Admin final : public sim::Actor {
 public:
  Admin(sim::Simulation& sim, GroupInfo group)
      : Actor(sim, "admin"), group_(std::move(group)) {}

  void reconfigure(const std::vector<ProcessId>& new_membership) {
    Request req;
    req.group = group_.id;
    req.origin = id();
    req.seq = next_seq_++;
    req.reconfig = true;
    req.op = encode_membership(new_membership);
    const Bytes encoded = encode_request(req);
    for (const ProcessId r : group_.replicas()) send(r, encoded);
  }

 protected:
  void on_message(const sim::WireMessage&) override {}

 private:
  GroupInfo group_;
  std::uint64_t next_seq_ = 0;
};

struct ReconfigHarness {
  explicit ReconfigHarness(std::uint64_t seed = 501)
      : sim(seed, sim::Profile::lan()),
        group(sim, GroupId{0}, 1, recording_factory(traces)),
        admin(sim, group.info()) {
    group.set_admin(admin.id());
    standby_index = group.add_standby(
        sim, std::make_unique<byzcast::testing::RecordingApp>(
                 &traces[100], /*reply=*/true));
  }

  /// Runs `count` closed-loop ops; returns completions.
  int run_ops(int count, Time horizon) {
    ClientProxy client(sim, group.info(), "client");
    int done = 0;
    int remaining = count;
    std::function<void()> issue = [&] {
      if (remaining-- == 0) return;
      client.invoke(to_bytes("op" + std::to_string(total_ops_++)),
                    [&](const Bytes&, Time) {
                      ++done;
                      issue();
                    });
    };
    issue();
    sim.run_until(sim.now() + horizon);
    return done;
  }

  std::vector<ProcessId> swapped_membership(int out_index) {
    std::vector<ProcessId> next = group.info().replicas();
    next[static_cast<std::size_t>(out_index)] =
        group.replica(standby_index).id();
    return next;
  }

  std::map<int, ExecutionTrace> traces;  // standby records under key 100
  sim::Simulation sim;
  Group group;
  Admin admin;
  int standby_index = -1;
  int total_ops_ = 0;
};

TEST(Reconfig, StandbyReplacesBackupReplica) {
  ReconfigHarness h;
  EXPECT_EQ(h.run_ops(10, 60 * kSecond), 10);

  h.admin.reconfigure(h.swapped_membership(/*out_index=*/3));
  h.sim.run_until(h.sim.now() + 10 * kSecond);

  // Members applied the change.
  for (const int i : {0, 1, 2}) {
    EXPECT_TRUE(h.group.replica(i).current_membership().is_member(
        h.group.replica(h.standby_index).id()))
        << "replica " << i;
  }
  // The removed replica retired.
  EXPECT_TRUE(h.group.replica(3).removed());

  // Traffic continues; the standby participates and catches up on history.
  EXPECT_EQ(h.run_ops(10, 120 * kSecond), 10);
  Replica& standby = h.group.replica(h.standby_index);
  EXPECT_EQ(standby.history_digest(), h.group.replica(0).history_digest());
  EXPECT_EQ(standby.executed_requests(),
            h.group.replica(0).executed_requests());
}

TEST(Reconfig, UnauthorizedReconfigurationRejected) {
  ReconfigHarness h;
  // A non-admin actor attempts the same change.
  Admin mallory(h.sim, h.group.info());
  mallory.reconfigure(h.swapped_membership(3));
  h.sim.run_until(10 * kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(h.group.replica(i).current_membership().is_member(
        h.group.replica(h.standby_index).id()))
        << "replica " << i;
    EXPECT_GE(h.group.replica(i).counters().rejected_requests, 1u);
  }
  EXPECT_FALSE(h.group.replica(3).removed());
  // The group still works.
  EXPECT_EQ(h.run_ops(5, 30 * kSecond), 5);
}

TEST(Reconfig, ReplacedLeaderTriggersViewChange) {
  ReconfigHarness h;
  EXPECT_EQ(h.run_ops(5, 30 * kSecond), 5);
  // Swap out replica 0, the leader of view 0. The remaining members elect
  // a new leader once progress stalls.
  h.admin.reconfigure(h.swapped_membership(/*out_index=*/0));
  h.sim.run_until(h.sim.now() + 10 * kSecond);
  EXPECT_TRUE(h.group.replica(0).removed());

  EXPECT_EQ(h.run_ops(8, 180 * kSecond), 8);
  EXPECT_EQ(h.group.replica(h.standby_index).history_digest(),
            h.group.replica(1).history_digest());
}

TEST(Reconfig, HistoryDigestCoversMembershipChanges) {
  // Two runs, one with a reconfiguration, one without: the executed
  // histories must differ (membership changes are part of the total order).
  ReconfigHarness with_reconfig(601);
  EXPECT_EQ(with_reconfig.run_ops(4, 30 * kSecond), 4);
  with_reconfig.admin.reconfigure(with_reconfig.swapped_membership(3));
  with_reconfig.sim.run_until(with_reconfig.sim.now() + 10 * kSecond);

  ReconfigHarness without(601);
  EXPECT_EQ(without.run_ops(4, 30 * kSecond), 4);

  EXPECT_NE(with_reconfig.group.replica(0).history_digest(),
            without.group.replica(0).history_digest());
}

}  // namespace
}  // namespace byzcast::bft
