// Batching behaviour of the sequential consensus: the proposal-assembly
// window merges concurrent requests, batches respect batch_max, and
// throughput under load is far above the one-instance-per-request bound.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(Batching, ConcurrentRequestsShareInstances) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(81, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  // 30 clients, 10 ops each, closed loop.
  std::vector<std::unique_ptr<ClientProxy>> clients;
  std::vector<int> left(30, 10);
  for (int c = 0; c < 30; ++c) {
    clients.push_back(std::make_unique<ClientProxy>(
        sim, group.info(), "c" + std::to_string(c)));
  }
  std::function<void(std::size_t)> issue = [&](std::size_t c) {
    if (left[c]-- == 0) return;
    clients[c]->invoke(to_bytes("x"),
                       [&issue, c](const Bytes&, Time) { issue(c); });
  };
  for (std::size_t c = 0; c < clients.size(); ++c) issue(c);
  sim.run_until(60 * kSecond);

  const auto executed = group.replica(0).executed_requests();
  const auto instances = group.replica(0).decided_instances();
  EXPECT_EQ(executed, 300u);
  // The assembly window (~cpu_propose_fixed) collects all closed-loop
  // clients: expect average batch size near the client count.
  EXPECT_LE(instances, 40u);
  EXPECT_GE(static_cast<double>(executed) / static_cast<double>(instances),
            8.0);
}

TEST(Batching, BatchMaxIsRespected) {
  sim::Profile profile = sim::Profile::lan();
  profile.batch_max = 5;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(82, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces, /*reply=*/false));

  // Open-loop burst of 50 requests from one sender: with batch_max = 5 at
  // least 10 instances are needed.
  class Burst final : public sim::Actor {
   public:
    Burst(sim::Simulation& sim, GroupInfo info)
        : Actor(sim, "burst"), info_(std::move(info)) {}
    void fire(int n) {
      for (int i = 0; i < n; ++i) {
        Request req;
        req.group = info_.id;
        req.origin = id();
        req.seq = static_cast<std::uint64_t>(i);
        req.op = to_bytes("b" + std::to_string(i));
        const Bytes encoded = encode_request(req);
        for (const ProcessId r : info_.replicas()) send(r, encoded);
      }
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo info_;
  };

  Burst burst(sim, group.info());
  burst.fire(50);
  sim.run_until(60 * kSecond);
  EXPECT_EQ(group.replica(0).executed_requests(), 50u);
  EXPECT_GE(group.replica(0).decided_instances(), 10u);
}

TEST(Batching, AdaptiveTargetShrinksUnderLightLoad) {
  // Control for the freeze test below: with adaptation on, a trickle of
  // closed-loop clients keeps every assembly window underfull, so the
  // target decays from batch_max toward the observed backlog.
  sim::Profile profile = sim::Profile::lan();
  profile.batch_max = 32;
  profile.batch_min = 1;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(84, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "light");
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client.invoke(to_bytes("x"),
                  [&issue, left](const Bytes&, Time) { issue(left - 1); });
  };
  issue(40);
  sim.run_until(60 * kSecond);
  EXPECT_EQ(group.replica(0).executed_requests(), 40u);
  EXPECT_LT(group.replica(0).batch_target(), 32u);
}

TEST(Batching, BatchAdaptOffFreezesTargetAtMax) {
  // The batch_adapt_off ablation (workload engine, per-optimization
  // sweeps): the same underfull trickle must leave the target pinned at
  // batch_max — fixed batching, every cut waits out the full window.
  sim::Profile profile = sim::Profile::lan();
  profile.batch_max = 32;
  profile.batch_min = 1;
  profile.batch_adapt_off = true;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(84, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "light");
  std::function<void(int)> issue = [&](int left) {
    if (left == 0) return;
    client.invoke(to_bytes("x"),
                  [&issue, left](const Bytes&, Time) { issue(left - 1); });
  };
  issue(40);
  sim.run_until(60 * kSecond);
  EXPECT_EQ(group.replica(0).executed_requests(), 40u);
  EXPECT_EQ(group.replica(0).batch_target(), 32u);
}

TEST(Batching, SingleRequestStillDecidesPromptly) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(83, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "solo");
  Time latency = -1;
  client.invoke(to_bytes("solo"),
                [&](const Bytes&, Time l) { latency = l; });
  sim.run_until(10 * kSecond);
  ASSERT_GE(latency, 0);
  // One assembly window + one consensus round, single-digit milliseconds.
  EXPECT_LT(latency, 10 * kMillisecond);
  EXPECT_EQ(group.replica(0).decided_instances(), 1u);
}

}  // namespace
}  // namespace byzcast::bft
