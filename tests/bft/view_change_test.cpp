// Leader failure: the synchronization phase (STOP/STOPDATA/SYNC) elects a
// new leader and the group keeps ordering; replicas agree on the final
// history in every scenario.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

std::vector<FaultSpec> faults_with(int index, FaultSpec spec, int n = 4) {
  std::vector<FaultSpec> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(index)] = spec;
  return out;
}

struct Harness {
  Harness(std::vector<FaultSpec> faults, std::uint64_t seed = 21)
      : sim(seed, sim::Profile::lan()),
        group(sim, GroupId{0}, 1, recording_factory(traces), faults) {}

  int run_ops(int count, Time horizon) {
    ClientProxy client(sim, group.info(), "client");
    int completions = 0;
    int remaining = count;
    std::function<void()> issue = [&] {
      if (remaining-- == 0) return;
      client.invoke(to_bytes("op" + std::to_string(remaining)),
                    [&](const Bytes&, Time) {
                      ++completions;
                      issue();
                    });
    };
    issue();
    sim.run_until(horizon);
    return completions;
  }

  void expect_correct_replicas_agree() {
    const auto correct = group.correct_indices();
    ASSERT_GE(correct.size(), 3u);
    const auto& reference = traces[correct.front()];
    for (const int i : correct) {
      ASSERT_EQ(traces[i].size(), reference.size()) << "replica " << i;
      for (std::size_t k = 0; k < reference.size(); ++k) {
        EXPECT_EQ(traces[i][k].op, reference[k].op);
      }
    }
  }

  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim;
  Group group;
};

TEST(ViewChange, CrashedInitialLeaderIsReplaced) {
  // Replica 0 leads view 0 and is silent from the start.
  Harness h(faults_with(0, FaultSpec::crashed()));
  const int done = h.run_ops(20, 60 * kSecond);
  EXPECT_EQ(done, 20);
  h.expect_correct_replicas_agree();
  for (const int i : h.group.correct_indices()) {
    EXPECT_GE(h.group.replica(i).view(), 1u) << "replica " << i;
  }
}

TEST(ViewChange, LeaderCrashMidStream) {
  FaultSpec spec;
  spec.silent_after = 3 * kSecond;
  Harness h(faults_with(0, spec));
  const int done = h.run_ops(200, 120 * kSecond);
  EXPECT_EQ(done, 200);
  h.expect_correct_replicas_agree();
}

TEST(ViewChange, CascadedLeaderCrashes) {
  // Replicas 0 and... only f=1 tolerated, so crash just one; but crash it
  // exactly when it becomes leader again is impossible with one view bump —
  // instead check two consecutive view changes by crashing the view-1
  // leader mid-run after the view-0 leader died at the start.
  std::vector<FaultSpec> faults(4);
  faults[0] = FaultSpec::crashed();  // exceeds nothing: one Byzantine
  Harness h(faults);
  int done = h.run_ops(10, 40 * kSecond);
  EXPECT_EQ(done, 10);
  // System reached view >= 1 with replica 1 leading; all correct agree.
  h.expect_correct_replicas_agree();
}

TEST(ViewChange, NoFalseSuspicionUnderLoad) {
  // A live leader under sustained load must not be deposed: suspicion
  // resets on progress.
  Harness h(std::vector<FaultSpec>(4));
  const int done = h.run_ops(500, 120 * kSecond);
  EXPECT_EQ(done, 500);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(h.group.replica(i).view(), 0u) << "replica " << i;
  }
}

TEST(ViewChange, IdleGroupStaysQuiet) {
  // With no pending requests there is nothing to suspect: no view change.
  Harness h(std::vector<FaultSpec>(4));
  h.sim.run_until(30 * kSecond);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(h.group.replica(i).view(), 0u);
    EXPECT_EQ(h.group.replica(i).decided_instances(), 0u);
  }
}

}  // namespace
}  // namespace byzcast::bft
