// The BFT client rule: a result counts only once f+1 replicas report the
// same bytes. Corrupt replies from up to f replicas are harmless; the
// accepted result is always the correct one.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(Replies, CorruptRepliesFromOneReplicaAreOutvoted) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(51, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[2].corrupt_replies = true;
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);

  ClientProxy client(sim, group.info(), "client");
  Bytes accepted;
  int completions = 0;
  int remaining = 20;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("op"), [&](const Bytes& result, Time) {
      accepted = result;
      ++completions;
      issue();
    });
  };
  issue();
  sim.run_until(60 * kSecond);

  EXPECT_EQ(completions, 20);
  // The accepted result equals what the echo app computes (a digest
  // prefix), not the attacker's garbage.
  const Digest d = Sha256::hash(to_bytes("op"));
  EXPECT_EQ(accepted, Bytes(d.begin(), d.begin() + 8));
}

TEST(Replies, CorruptRepliesFromTwoReplicasExceedF) {
  // With 2 > f corrupters the client may never see f+1 matching correct
  // replies... but n=4, f=1: the 2 correct replicas still produce f+1 = 2
  // matching replies, so the request completes correctly anyway.
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(52, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[2].corrupt_replies = true;
  faults[3].corrupt_replies = true;
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);

  ClientProxy client(sim, group.info(), "client");
  bool done = false;
  Bytes accepted;
  client.invoke(to_bytes("x"), [&](const Bytes& result, Time) {
    accepted = result;
    done = true;
  });
  sim.run_until(30 * kSecond);
  ASSERT_TRUE(done);
  const Digest d = Sha256::hash(to_bytes("x"));
  EXPECT_EQ(accepted, Bytes(d.begin(), d.begin() + 8));
}

TEST(Replies, ClientIgnoresRepliesFromNonMembers) {
  sim::Simulation sim(53, sim::Profile::lan());
  std::map<int, ExecutionTrace> traces;
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  // An outsider floods the client with plausible-looking replies for the
  // next sequence number; the client must not accept them.
  class ReplySpoofer final : public sim::Actor {
   public:
    ReplySpoofer(sim::Simulation& sim, GroupId group)
        : Actor(sim, "spoofer"), group_(group) {}
    void attack(ProcessId client) {
      const Reply rep{group_, 0, to_bytes("fake-result")};
      for (int i = 0; i < 4; ++i) send(client, rep.encode());
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupId group_;
  };

  ClientProxy client(sim, group.info(), "client");
  ReplySpoofer spoofer(sim, GroupId{0});

  Bytes accepted;
  bool done = false;
  client.invoke(to_bytes("real-op"), [&](const Bytes& result, Time) {
    accepted = result;
    done = true;
  });
  spoofer.attack(client.id());
  sim.run_until(30 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_NE(accepted, to_bytes("fake-result"));
}

TEST(Replies, RetransmissionSurvivesMessageLoss) {
  sim::Simulation sim(54, sim::Profile::lan());
  std::map<int, ExecutionTrace> traces;
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "client");

  // Cut the client off from the whole group for a while: the initial send
  // is lost in both directions; the retry timer must recover it.
  sim.network().faults().partition({client.id()}, group.info().replicas(),
                                   6 * kSecond);
  bool done = false;
  client.invoke(to_bytes("persistent-op"),
                [&](const Bytes&, Time) { done = true; });
  sim.run_until(5 * kSecond);
  EXPECT_FALSE(done);
  sim.run_until(60 * kSecond);
  EXPECT_TRUE(done);
  ASSERT_EQ(traces[0].size(), 1u);
  EXPECT_EQ(to_text(traces[0][0].op), "persistent-op");
}

}  // namespace
}  // namespace byzcast::bft
