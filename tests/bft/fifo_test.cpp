// FIFO atomic broadcast: per-origin delivery respects the origin's send
// order even when the leader batches requests out of order, and the
// hold-back layer releases buffered requests once gaps fill.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/actor.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

/// Fires a burst of requests without waiting for replies (open loop), so
/// many same-origin requests are in flight at once.
class BurstSender final : public sim::Actor {
 public:
  BurstSender(sim::Simulation& sim, GroupInfo group)
      : Actor(sim, "burst"), group_(std::move(group)) {}

  void burst(int count) {
    for (int i = 0; i < count; ++i) {
      Request req;
      req.group = group_.id;
      req.origin = id();
      req.seq = next_seq_++;
      req.op = to_bytes("burst-" + std::to_string(req.seq));
      const Bytes encoded = encode_request(req);
      for (const ProcessId replica : group_.replicas()) send(replica, encoded);
    }
  }

 protected:
  void on_message(const sim::WireMessage&) override {}

 private:
  GroupInfo group_;
  std::uint64_t next_seq_ = 0;
};

TEST(Fifo, PerOriginOrderPreservedUnderConcurrency) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(3, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces, /*reply=*/false));

  BurstSender s1(sim, group.info());
  BurstSender s2(sim, group.info());
  s1.burst(100);
  s2.burst(100);
  sim.run_until(20 * kSecond);

  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(traces[i].size(), 200u) << "replica " << i;
    std::map<std::int32_t, std::uint64_t> next;
    for (const auto& rec : traces[i]) {
      auto it = next.find(rec.origin.value);
      const std::uint64_t expected = it == next.end() ? 0 : it->second;
      EXPECT_EQ(rec.seq, expected)
          << "replica " << i << " origin " << rec.origin.value;
      next[rec.origin.value] = expected + 1;
    }
  }
}

TEST(Fifo, InterleavedOriginsSameTotalOrder) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(7, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces, /*reply=*/false));

  std::vector<std::unique_ptr<BurstSender>> senders;
  for (int s = 0; s < 5; ++s) {
    senders.push_back(std::make_unique<BurstSender>(sim, group.info()));
    senders.back()->burst(40);
  }
  sim.run_until(30 * kSecond);

  ASSERT_EQ(traces[0].size(), 200u);
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(traces[i].size(), 200u);
    for (std::size_t k = 0; k < 200; ++k) {
      EXPECT_EQ(traces[i][k].origin, traces[0][k].origin);
      EXPECT_EQ(traces[i][k].seq, traces[0][k].seq);
    }
  }
}

TEST(Fifo, ClosedLoopClientIsTriviallyFifo) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(11, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  ClientProxy client(sim, group.info(), "client");
  int remaining = 30;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("x"), [&](const Bytes&, Time) { issue(); });
  };
  issue();
  sim.run_until(30 * kSecond);

  ASSERT_EQ(traces[0].size(), 30u);
  for (std::size_t k = 0; k < 30; ++k) EXPECT_EQ(traces[0][k].seq, k);
}

}  // namespace
}  // namespace byzcast::bft
