// State transfer: a replica cut off from the group catches up after the
// partition heals — through the decided-log tail, and through a checkpoint
// snapshot once the log has been truncated.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

struct PartitionHarness {
  explicit PartitionHarness(std::uint32_t checkpoint_period,
                            std::uint64_t seed = 41)
      : profile([&] {
          sim::Profile p = sim::Profile::lan();
          p.checkpoint_period = checkpoint_period;
          return p;
        }()),
        sim(seed, profile),
        group(sim, GroupId{0}, 1, recording_factory(traces)) {}

  void isolate_replica(int index, Time heal_at) {
    std::vector<ProcessId> others;
    for (int i = 0; i < 4; ++i) {
      if (i != index) others.push_back(group.info().replicas()[i]);
    }
    sim.network().faults().partition({group.info().replicas()[index]}, others,
                                     heal_at);
  }

  int run_ops(int count, Time horizon) {
    ClientProxy client(sim, group.info(), "client");
    int completions = 0;
    int remaining = count;
    std::function<void()> issue = [&] {
      if (remaining-- == 0) return;
      client.invoke(to_bytes("op" + std::to_string(remaining)),
                    [&](const Bytes&, Time) {
                      ++completions;
                      issue();
                    });
    };
    issue();
    sim.run_until(horizon);
    return completions;
  }

  std::map<int, ExecutionTrace> traces;
  sim::Profile profile;
  sim::Simulation sim;
  Group group;
};

TEST(StateTransfer, LaggardCatchesUpFromLogTail) {
  // Large checkpoint period: the log is never truncated, so the laggard
  // recovers purely from the decided-log tail.
  PartitionHarness h(/*checkpoint_period=*/1'000'000);
  h.isolate_replica(3, /*heal_at=*/10 * kSecond);
  const int done = h.run_ops(60, 90 * kSecond);
  EXPECT_EQ(done, 60);

  ASSERT_EQ(h.traces[3].size(), 60u) << "laggard did not catch up";
  for (std::size_t k = 0; k < 60; ++k) {
    EXPECT_EQ(h.traces[3][k].op, h.traces[0][k].op);
  }
  EXPECT_EQ(h.group.replica(3).history_digest(),
            h.group.replica(0).history_digest());
}

TEST(StateTransfer, LaggardRestoresFromSnapshotAfterTruncation) {
  // Tiny checkpoint period: by heal time the log below the checkpoint is
  // gone and recovery must go through the snapshot. The laggard's
  // executed-history digest must still converge (it skips re-executing the
  // snapshotted prefix, so its trace is shorter, but replica state agrees).
  PartitionHarness h(/*checkpoint_period=*/4);
  h.isolate_replica(3, /*heal_at=*/20 * kSecond);
  const int done = h.run_ops(120, 150 * kSecond);
  EXPECT_EQ(done, 120);

  EXPECT_EQ(h.group.replica(3).history_digest(),
            h.group.replica(0).history_digest());
  EXPECT_EQ(h.group.replica(3).executed_requests(),
            h.group.replica(0).executed_requests());
}

TEST(StateTransfer, IsolatedLeaderDeposedThenCatchesUp) {
  PartitionHarness h(/*checkpoint_period=*/1'000'000);
  h.isolate_replica(0, /*heal_at=*/15 * kSecond);  // view-0 leader
  const int done = h.run_ops(40, 120 * kSecond);
  EXPECT_EQ(done, 40);
  // The group moved past view 0 while its leader was isolated.
  EXPECT_GE(h.group.replica(1).view(), 1u);
  // After healing, the old leader converges on the same history.
  EXPECT_EQ(h.group.replica(0).history_digest(),
            h.group.replica(1).history_digest());
}

}  // namespace
}  // namespace byzcast::bft
