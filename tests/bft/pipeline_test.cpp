// Consensus pipelining: up to pipeline_depth instances run WRITE/ACCEPT
// concurrently, decisions apply strictly in instance order, the adaptive
// batch target cuts full batches early (stale assembly timers are dropped),
// and a leader crash with a window of open instances recovers every one of
// them through the multi-instance STOPDATA/SYNC path without gaps,
// duplicates or FIFO violations.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

/// Open-loop sender: fires `n` requests at the group in one burst, so the
/// leader's backlog stays deep enough to keep the pipeline full.
class Burst final : public sim::Actor {
 public:
  Burst(sim::Simulation& sim, GroupInfo info)
      : Actor(sim, "burst"), info_(std::move(info)) {}

  void fire(int n) {
    for (int i = 0; i < n; ++i) {
      Request req;
      req.group = info_.id;
      req.origin = id();
      req.seq = static_cast<std::uint64_t>(i);
      req.op = to_bytes("b" + std::to_string(i));
      const Bytes encoded = encode_request(req);
      for (const ProcessId r : info_.replicas()) send(r, encoded);
    }
  }

 protected:
  void on_message(const sim::WireMessage&) override {}

 private:
  GroupInfo info_;
};

/// Per-origin FIFO + no duplicates over one replica's execution trace.
void expect_fifo_no_duplicates(const ExecutionTrace& trace) {
  std::map<ProcessId, std::uint64_t> next_seq;
  for (const auto& rec : trace) {
    const auto it = next_seq.emplace(rec.origin, 0).first;
    EXPECT_EQ(rec.seq, it->second)
        << "origin " << to_string(rec.origin) << " out of FIFO order";
    ++it->second;
  }
}

void expect_traces_agree(const Group& group,
                         std::map<int, ExecutionTrace>& traces) {
  const auto correct = group.correct_indices();
  ASSERT_GE(correct.size(), 3u);
  const auto& reference = traces[correct.front()];
  for (const int i : correct) {
    ASSERT_EQ(traces[i].size(), reference.size()) << "replica " << i;
    for (std::size_t k = 0; k < reference.size(); ++k) {
      EXPECT_EQ(traces[i][k].origin, reference[k].origin) << "pos " << k;
      EXPECT_EQ(traces[i][k].seq, reference[k].seq) << "pos " << k;
      EXPECT_EQ(traces[i][k].op, reference[k].op) << "pos " << k;
    }
  }
}

TEST(Pipeline, OverlappingInstancesUnderBurst) {
  sim::Profile profile = sim::Profile::lan();
  profile.batch_max = 10;
  profile.pipeline_depth = 4;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(91, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces, /*reply=*/false));

  Burst burst(sim, group.info());
  burst.fire(200);
  sim.run_until(60 * kSecond);

  const Replica& leader = group.replica(0);
  EXPECT_EQ(leader.executed_requests(), 200u);
  // The backlog outpaces decisions, so several instances must have been in
  // flight at once — the sequential protocol caps this at 1.
  EXPECT_GE(leader.pipeline_high_water(), 2u);
  // Full backlog + batch_max=10: every cut is a full early cut, 20 exactly.
  // If a superseded assembly timer ever fired (the pre-guard bug), it would
  // cut an extra partial batch and this count would exceed 20.
  EXPECT_EQ(leader.decided_instances(), 20u);
  EXPECT_GE(leader.counters().early_batch_cuts, 19u);
  // Every early cut supersedes an armed assembly window whose timer later
  // fires into a bumped epoch and must be dropped.
  EXPECT_GE(leader.counters().stale_window_drops, 1u);
  expect_traces_agree(group, traces);
  for (const int i : group.correct_indices()) {
    expect_fifo_no_duplicates(traces[i]);
  }
}

TEST(Pipeline, DepthOneReproducesSequentialProtocol) {
  sim::Profile profile = sim::Profile::lan();
  profile.batch_max = 10;
  profile.pipeline_depth = 1;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(92, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces, /*reply=*/false));

  Burst burst(sim, group.info());
  burst.fire(200);
  sim.run_until(60 * kSecond);

  const Replica& leader = group.replica(0);
  EXPECT_EQ(leader.executed_requests(), 200u);
  EXPECT_EQ(leader.pipeline_high_water(), 1u);
  // One instance at a time: quorums can never complete out of order.
  EXPECT_EQ(leader.counters().buffered_decisions, 0u);
  EXPECT_EQ(leader.decided_instances(), 20u);
  expect_traces_agree(group, traces);
}

TEST(Pipeline, StaleTimerQuietWithoutEarlyCuts) {
  // A lone request never fills the batch target, so the only cut is the
  // assembly timer's own — no window is ever superseded and the stale-drop
  // counter must stay at zero (the guard is inert on the slow path).
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(93, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));
  ClientProxy client(sim, group.info(), "solo");
  Time latency = -1;
  client.invoke(to_bytes("solo"), [&](const Bytes&, Time l) { latency = l; });
  sim.run_until(10 * kSecond);
  ASSERT_GE(latency, 0);
  const Replica& leader = group.replica(0);
  EXPECT_EQ(leader.counters().stale_window_drops, 0u);
  EXPECT_GE(leader.counters().timer_batch_cuts, 1u);
  EXPECT_EQ(leader.counters().early_batch_cuts, 0u);
}

TEST(Pipeline, BatchTimeoutCutsPartialBatchSooner) {
  // With batch_timeout well under cpu_propose_fixed, a lone request decides
  // measurably faster than under the default window.
  Time latency_default = -1;
  Time latency_fast = -1;
  for (const bool fast : {false, true}) {
    sim::Profile profile = sim::Profile::lan();
    if (fast) profile.batch_timeout = 200 * kMicrosecond;
    std::map<int, ExecutionTrace> traces;
    sim::Simulation sim(94, profile);
    Group group(sim, GroupId{0}, 1, recording_factory(traces));
    ClientProxy client(sim, group.info(), "solo");
    client.invoke(to_bytes("solo"), [&](const Bytes&, Time l) {
      (fast ? latency_fast : latency_default) = l;
    });
    sim.run_until(10 * kSecond);
  }
  ASSERT_GE(latency_default, 0);
  ASSERT_GE(latency_fast, 0);
  // The shorter assembly window shaves most of cpu_propose_fixed off the
  // wait (the proposal CPU itself is still paid).
  EXPECT_LT(latency_fast, latency_default);
}

TEST(Pipeline, LeaderCrashMidPipelineReproposesOpenWindow) {
  // Crash the leader while several instances are in flight. A partition
  // between replicas 2 and 3 (healed shortly after) keeps the last proposals
  // from reaching an ACCEPT quorum, so the new leader inherits genuinely
  // open instances and must re-propose them through the multi-instance
  // STOPDATA/SYNC path — in order, without gaps or duplicates.
  for (const Time crash_at : {3 * kMillisecond, 4 * kMillisecond,
                              5 * kMillisecond}) {
    sim::Profile profile = sim::Profile::lan();
    profile.batch_max = 5;
    profile.pipeline_depth = 4;
    std::vector<FaultSpec> faults(4);
    faults[0].silent_after = crash_at;
    std::map<int, ExecutionTrace> traces;
    sim::Simulation sim(95, profile);
    Group group(sim, GroupId{0}, 1,
                recording_factory(traces, /*reply=*/false), faults);
    const auto replicas = group.info().replicas();
    sim.network().faults().partition({replicas[2]}, {replicas[3]},
                                     /*heal_at=*/crash_at +
                                         100 * kMillisecond);

    Burst burst(sim, group.info());
    burst.fire(40);
    sim.run_until(120 * kSecond);

    for (const int i : group.correct_indices()) {
      EXPECT_EQ(traces[i].size(), 40u)
          << "replica " << i << " crash_at " << crash_at;
      EXPECT_GE(group.replica(i).counters().views_installed, 1u)
          << "replica " << i;
      expect_fifo_no_duplicates(traces[i]);
    }
    expect_traces_agree(group, traces);
  }
}

TEST(Pipeline, CutBatchSizingMatchesAcrossPaths) {
  // Satellite regression for the extracted cut_batch(): the view-change
  // re-propose path must cut batches with exactly the same sizing rule as
  // do_propose. A leader crash with a deep backlog forces the new leader to
  // cut its first post-crash batch on the SYNC path; every decided batch —
  // whichever path cut it — must respect batch_max.
  sim::Profile profile = sim::Profile::lan();
  profile.batch_max = 5;
  profile.pipeline_depth = 1;
  std::vector<FaultSpec> faults(4);
  faults[0].silent_after = 4 * kMillisecond;
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(96, profile);
  Group group(sim, GroupId{0}, 1, recording_factory(traces, /*reply=*/false),
              faults);

  Burst burst(sim, group.info());
  burst.fire(23);
  sim.run_until(120 * kSecond);

  for (const int i : group.correct_indices()) {
    const Replica& rep = group.replica(i);
    ASSERT_EQ(traces[i].size(), 23u) << "replica " << i;
    EXPECT_GE(rep.counters().views_installed, 1u) << "replica " << i;
    // If the re-propose path skipped the shared helper, the crashed leader's
    // 18-request leftover backlog would surface as one oversized batch.
    EXPECT_LE(rep.max_decided_batch(), 5u) << "replica " << i;
    expect_fifo_no_duplicates(traces[i]);
  }
  expect_traces_agree(group, traces);
}

}  // namespace
}  // namespace byzcast::bft
