// End-to-end tests of one atomic broadcast group in the failure-free case:
// total order, agreement, integrity, client replies.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

struct Harness {
  explicit Harness(int f = 1, std::uint64_t seed = 1)
      : sim(seed, sim::Profile::lan()),
        group(sim, GroupId{0}, f, recording_factory(traces)) {}

  /// Runs `per_client` closed-loop operations on `num_clients` clients.
  void run_clients(int num_clients, int per_client,
                   Time horizon = 30 * kSecond) {
    std::vector<std::unique_ptr<ClientProxy>> clients;
    std::vector<int> remaining(static_cast<std::size_t>(num_clients),
                               per_client);
    for (int c = 0; c < num_clients; ++c) {
      clients.push_back(std::make_unique<ClientProxy>(
          sim, group.info(), "client" + std::to_string(c)));
    }
    std::function<void(std::size_t)> issue = [&](std::size_t c) {
      if (remaining[c] == 0) return;
      --remaining[c];
      const std::string op = "op-" + std::to_string(c) + "-" +
                             std::to_string(remaining[c]);
      clients[c]->invoke(to_bytes(op), [&, c](const Bytes&, Time) {
        ++completions;
        issue(c);
      });
    };
    for (std::size_t c = 0; c < clients.size(); ++c) issue(c);
    sim.run_until(horizon);
  }

  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim;
  Group group;
  int completions = 0;
};

TEST(Broadcast, SingleClientSingleOp) {
  Harness h;
  h.run_clients(1, 1, 5 * kSecond);
  EXPECT_EQ(h.completions, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(h.traces[i].size(), 1u) << "replica " << i;
    EXPECT_EQ(to_text(h.traces[i][0].op), "op-0-0");
  }
}

TEST(Broadcast, AllReplicasExecuteSameSequence) {
  Harness h;
  h.run_clients(5, 20);
  EXPECT_EQ(h.completions, 100);
  ASSERT_EQ(h.traces[0].size(), 100u);
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(h.traces[i].size(), 100u);
    for (std::size_t k = 0; k < 100; ++k) {
      EXPECT_EQ(h.traces[i][k].origin, h.traces[0][k].origin);
      EXPECT_EQ(h.traces[i][k].seq, h.traces[0][k].seq);
      EXPECT_EQ(h.traces[i][k].op, h.traces[0][k].op);
    }
  }
}

TEST(Broadcast, HistoryDigestsAgree) {
  Harness h;
  h.run_clients(4, 25);
  const Digest d0 = h.group.replica(0).history_digest();
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(h.group.replica(i).history_digest(), d0);
  }
  EXPECT_NE(d0, Digest{});
}

TEST(Broadcast, IntegrityEachRequestExecutedOnce) {
  Harness h;
  h.run_clients(3, 30);
  for (int i = 0; i < 4; ++i) {
    std::set<std::pair<std::int32_t, std::uint64_t>> seen;
    for (const auto& rec : h.traces[i]) {
      EXPECT_TRUE(seen.emplace(rec.origin.value, rec.seq).second)
          << "duplicate execution at replica " << i;
    }
  }
}

TEST(Broadcast, BatchingMergesConcurrentRequests) {
  Harness h;
  h.run_clients(50, 4);
  EXPECT_EQ(h.completions, 200);
  // 200 requests from 50 concurrent clients must take far fewer consensus
  // instances than requests (Mod-SMaRt batching).
  EXPECT_LT(h.group.replica(0).decided_instances(), 150u);
  EXPECT_GE(h.group.replica(0).executed_requests(), 200u);
}

TEST(Broadcast, WorksWithLargerGroups) {
  Harness h(/*f=*/2);
  ASSERT_EQ(h.group.n(), 7);
  h.run_clients(3, 10);
  EXPECT_EQ(h.completions, 30);
  const Digest d0 = h.group.replica(0).history_digest();
  for (int i = 1; i < 7; ++i) {
    EXPECT_EQ(h.group.replica(i).history_digest(), d0);
  }
}

TEST(Broadcast, SingleClientLatencyIsMilliseconds) {
  // Sanity-check the LAN calibration: a single client in an idle group
  // completes in single-digit milliseconds (paper Fig. 7: ~4 ms).
  Harness h;
  Time measured = -1;
  ClientProxy client(h.sim, h.group.info(), "solo");
  client.invoke(to_bytes("ping"),
                [&measured](const Bytes&, Time latency) {
                  measured = latency;
                });
  h.sim.run_until(5 * kSecond);
  ASSERT_GE(measured, 0);
  EXPECT_LT(measured, 20 * kMillisecond);
  EXPECT_GT(measured, 200 * kMicrosecond);
}

}  // namespace
}  // namespace byzcast::bft
