// Byzantine behaviours inside one group: equivocating leaders cannot split
// the decision, impersonated requests are rejected, forged MACs are dropped,
// and the group stays live with f silent replicas.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "common/auth.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(Byzantine, EquivocatingLeaderCannotSplitHistory) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(31, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[0].equivocate_propose = true;  // replica 0 leads view 0
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);

  ClientProxy client(sim, group.info(), "client");
  int completions = 0;
  int remaining = 50;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("op" + std::to_string(remaining)),
                  [&](const Bytes&, Time) {
                    ++completions;
                    issue();
                  });
  };
  issue();
  sim.run_until(180 * kSecond);

  // Liveness: every request eventually completes (possibly after view
  // changes depose the equivocator).
  EXPECT_EQ(completions, 50);

  // Safety: all correct replicas executed the same history.
  const auto correct = group.correct_indices();
  const auto& ref = traces[correct.front()];
  for (const int i : correct) {
    ASSERT_EQ(traces[i].size(), ref.size()) << "replica " << i;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(traces[i][k].op, ref[k].op) << "replica " << i << " pos " << k;
    }
  }
}

TEST(Byzantine, ImpersonatedRequestRejected) {
  // An actor claims another process as the request origin: replicas must
  // not admit it (wire sender != claimed origin).
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(32, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  class Impersonator final : public sim::Actor {
   public:
    Impersonator(sim::Simulation& sim, GroupInfo group)
        : Actor(sim, "mallory"), group_(std::move(group)) {}
    void attack() {
      Request req;
      req.group = group_.id;
      req.origin = ProcessId{123456};  // not us
      req.seq = 0;
      req.op = to_bytes("forged");
      const Bytes encoded = encode_request(req);
      for (const ProcessId r : group_.replicas()) send(r, encoded);
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo group_;
  };

  Impersonator mallory(sim, group.info());
  mallory.attack();
  sim.run_until(10 * kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(traces[i].empty());
}

TEST(Byzantine, ForgedMacDropped) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(33, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  // Inject a wire message with a garbage MAC directly into the network,
  // claiming to come from a group member.
  Request req;
  req.group = group.info().id;
  req.origin = group.info().replicas()[1];
  req.seq = 0;
  req.op = to_bytes("spoof");
  sim::WireMessage msg;
  msg.from = group.info().replicas()[1];
  msg.to = group.info().replicas()[0];
  msg.payload = encode_request(req);
  msg.mac = Digest{};  // invalid
  sim.network().send(std::move(msg));
  sim.run_until(10 * kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(traces[i].empty());
}

TEST(Byzantine, ProposeWithTrailingBytesIgnored) {
  // A Byzantine leader appends garbage past the encoded batch. Receivers
  // recover the batch digest by hashing the wire slice after the fixed
  // header, so accepting trailing bytes would make them vote a digest that
  // no canonical re-encoding (STOPDATA, state transfer) can reproduce. The
  // PROPOSE must be dropped wholesale: nothing decides, nothing executes.
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(36, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  const ProcessId leader = group.info().replicas()[0];  // leads view 0
  Request req;
  req.group = group.info().id;
  req.origin = leader;
  req.seq = 0;
  req.op = to_bytes("smuggled");
  Bytes wire = Propose{0, 0, Batch{req}}.encode();
  wire.push_back(0xEE);  // trailing garbage past the encoded batch

  // Sign as the leader: the simulation's KeyStore doubles as the oracle a
  // compromised leader would hold.
  const Authenticator leader_auth(sim.keys(), leader);
  for (std::size_t i = 1; i < group.info().replicas().size(); ++i) {
    sim::WireMessage msg;
    msg.from = leader;
    msg.to = group.info().replicas()[i];
    msg.payload = wire;
    msg.mac = leader_auth.sign(msg.to, wire);
    sim.network().send(std::move(msg));
  }
  sim.run_until(10 * kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(traces[i].empty());
}

TEST(Byzantine, LiveWithFSilentReplicas) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(34, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[3] = FaultSpec::crashed();  // non-leader silent replica
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);

  ClientProxy client(sim, group.info(), "client");
  int completions = 0;
  int remaining = 40;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("x"), [&](const Bytes&, Time) {
      ++completions;
      issue();
    });
  };
  issue();
  sim.run_until(60 * kSecond);
  EXPECT_EQ(completions, 40);
  EXPECT_EQ(traces[3].size(), 0u);  // the crashed replica did nothing
  EXPECT_EQ(traces[0].size(), 40u);
}

TEST(Byzantine, NonMemberVotesIgnored) {
  // A non-member flooding WRITE/ACCEPT votes must not let a bogus batch
  // decide or disturb the group.
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(35, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  class VoteFlooder final : public sim::Actor {
   public:
    VoteFlooder(sim::Simulation& sim, GroupInfo group)
        : Actor(sim, "flooder"), group_(std::move(group)) {}
    void attack() {
      Vote v;
      v.phase = MsgType::kWrite;
      v.view = 0;
      v.instance = 0;
      v.digest = Sha256::hash(to_bytes("bogus"));
      for (int k = 0; k < 10; ++k) {
        for (const ProcessId r : group_.replicas()) send(r, v.encode());
      }
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo group_;
  };

  VoteFlooder flooder(sim, group.info());
  flooder.attack();

  ClientProxy client(sim, group.info(), "client");
  bool done = false;
  client.invoke(to_bytes("real"), [&](const Bytes&, Time) { done = true; });
  sim.run_until(10 * kSecond);
  EXPECT_TRUE(done);
  ASSERT_EQ(traces[0].size(), 1u);
  EXPECT_EQ(to_text(traces[0][0].op), "real");
}

}  // namespace
}  // namespace byzcast::bft
