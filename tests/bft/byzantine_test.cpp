// Byzantine behaviours inside one group: equivocating leaders cannot split
// the decision, impersonated requests are rejected, forged MACs are dropped,
// and the group stays live with f silent replicas.
#include <gtest/gtest.h>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"
#include "support/recording_app.hpp"

namespace byzcast::bft {
namespace {

using ::byzcast::testing::ExecutionTrace;
using ::byzcast::testing::recording_factory;

TEST(Byzantine, EquivocatingLeaderCannotSplitHistory) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(31, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[0].equivocate_propose = true;  // replica 0 leads view 0
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);

  ClientProxy client(sim, group.info(), "client");
  int completions = 0;
  int remaining = 50;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("op" + std::to_string(remaining)),
                  [&](const Bytes&, Time) {
                    ++completions;
                    issue();
                  });
  };
  issue();
  sim.run_until(180 * kSecond);

  // Liveness: every request eventually completes (possibly after view
  // changes depose the equivocator).
  EXPECT_EQ(completions, 50);

  // Safety: all correct replicas executed the same history.
  const auto correct = group.correct_indices();
  const auto& ref = traces[correct.front()];
  for (const int i : correct) {
    ASSERT_EQ(traces[i].size(), ref.size()) << "replica " << i;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(traces[i][k].op, ref[k].op) << "replica " << i << " pos " << k;
    }
  }
}

TEST(Byzantine, ImpersonatedRequestRejected) {
  // An actor claims another process as the request origin: replicas must
  // not admit it (wire sender != claimed origin).
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(32, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  class Impersonator final : public sim::Actor {
   public:
    Impersonator(sim::Simulation& sim, GroupInfo group)
        : Actor(sim, "mallory"), group_(std::move(group)) {}
    void attack() {
      Request req;
      req.group = group_.id;
      req.origin = ProcessId{123456};  // not us
      req.seq = 0;
      req.op = to_bytes("forged");
      const Bytes encoded = encode_request(req);
      for (const ProcessId r : group_.replicas) send(r, encoded);
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo group_;
  };

  Impersonator mallory(sim, group.info());
  mallory.attack();
  sim.run_until(10 * kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(traces[i].empty());
}

TEST(Byzantine, ForgedMacDropped) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(33, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  // Inject a wire message with a garbage MAC directly into the network,
  // claiming to come from a group member.
  Request req;
  req.group = group.info().id;
  req.origin = group.info().replicas[1];
  req.seq = 0;
  req.op = to_bytes("spoof");
  sim::WireMessage msg;
  msg.from = group.info().replicas[1];
  msg.to = group.info().replicas[0];
  msg.payload = encode_request(req);
  msg.mac = Digest{};  // invalid
  sim.network().send(std::move(msg));
  sim.run_until(10 * kSecond);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(traces[i].empty());
}

TEST(Byzantine, LiveWithFSilentReplicas) {
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(34, sim::Profile::lan());
  std::vector<FaultSpec> faults(4);
  faults[3] = FaultSpec::crashed();  // non-leader silent replica
  Group group(sim, GroupId{0}, 1, recording_factory(traces), faults);

  ClientProxy client(sim, group.info(), "client");
  int completions = 0;
  int remaining = 40;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("x"), [&](const Bytes&, Time) {
      ++completions;
      issue();
    });
  };
  issue();
  sim.run_until(60 * kSecond);
  EXPECT_EQ(completions, 40);
  EXPECT_EQ(traces[3].size(), 0u);  // the crashed replica did nothing
  EXPECT_EQ(traces[0].size(), 40u);
}

TEST(Byzantine, NonMemberVotesIgnored) {
  // A non-member flooding WRITE/ACCEPT votes must not let a bogus batch
  // decide or disturb the group.
  std::map<int, ExecutionTrace> traces;
  sim::Simulation sim(35, sim::Profile::lan());
  Group group(sim, GroupId{0}, 1, recording_factory(traces));

  class VoteFlooder final : public sim::Actor {
   public:
    VoteFlooder(sim::Simulation& sim, GroupInfo group)
        : Actor(sim, "flooder"), group_(std::move(group)) {}
    void attack() {
      Vote v;
      v.phase = MsgType::kWrite;
      v.view = 0;
      v.instance = 0;
      v.digest = Sha256::hash(to_bytes("bogus"));
      for (int k = 0; k < 10; ++k) {
        for (const ProcessId r : group_.replicas) send(r, v.encode());
      }
    }

   protected:
    void on_message(const sim::WireMessage&) override {}

   private:
    GroupInfo group_;
  };

  VoteFlooder flooder(sim, group.info());
  flooder.attack();

  ClientProxy client(sim, group.info(), "client");
  bool done = false;
  client.invoke(to_bytes("real"), [&](const Bytes&, Time) { done = true; });
  sim.run_until(10 * kSecond);
  EXPECT_TRUE(done);
  ASSERT_EQ(traces[0].size(), 1u);
  EXPECT_EQ(to_text(traces[0][0].op), "real");
}

}  // namespace
}  // namespace byzcast::bft
