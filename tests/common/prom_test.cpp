// Prometheus exposition writer: the /metrics endpoint is scraped mid-run by
// external tooling, so the text must be legal exposition format 0.0.4 —
// sanitized names, escaped label values, cumulative monotone buckets with
// le="+Inf" equal to _count, and deterministic ordering so two scrapes of
// the same state are byte-identical.
#include "common/prom.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"

namespace byzcast {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Prom, MetricNameSanitization) {
  EXPECT_EQ(prometheus_metric_name("node.a_deliver.g0"),
            "node_a_deliver_g0");
  EXPECT_EQ(prometheus_metric_name("actor.cpu-busy.g1.r2"),
            "actor_cpu_busy_g1_r2");
  // Colons are legal (recording-rule convention) and survive.
  EXPECT_EQ(prometheus_metric_name("byzcast:edge:p99"), "byzcast:edge:p99");
  // A leading digit is illegal; the conventional fix is a '_' prefix.
  EXPECT_EQ(prometheus_metric_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_metric_name(""), "");
}

TEST(Prom, LabelValueEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(prometheus_escape_label("quo\"te"), "quo\\\"te");
  EXPECT_EQ(prometheus_escape_label("new\nline"), "new\\nline");
  // All three at once, in order.
  EXPECT_EQ(prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Prom, CountersGetTotalSuffixAndConstLabels) {
  MetricsRegistry reg;
  reg.counter("node.a_deliver.g0").inc(41);
  reg.counter("node.a_deliver.g0").inc();
  const std::string text =
      prometheus_text(reg, {{"node", "g1_r2"}, {"odd", "a\"b"}});
  EXPECT_NE(text.find("# TYPE node_a_deliver_g0_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("node_a_deliver_g0_total{node=\"g1_r2\",odd=\"a\\\"b\"} 42\n"),
      std::string::npos);
}

TEST(Prom, GaugesCarryValueWithoutSuffix) {
  MetricsRegistry reg;
  reg.gauge("net.clock.offset_ns").set(-1500.5);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE net_clock_offset_ns gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("net_clock_offset_ns -1500.5\n"), std::string::npos);
  EXPECT_EQ(text.find("_total"), std::string::npos);
}

TEST(Prom, HistogramBucketsAreCumulativeAndInfEqualsCount) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat.ms", {1.0, 5.0, 10.0});
  h.observe(0.5);   // bucket le=1
  h.observe(0.9);   // bucket le=1
  h.observe(4.0);   // bucket le=5
  h.observe(10.0);  // bucket le=10 (boundary is inclusive)
  h.observe(99.0);  // overflow -> only +Inf
  const std::string text = prometheus_text(reg);

  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"5\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 5\n"), std::string::npos);

  // Invariants stated generically: buckets monotone nondecreasing in le
  // order, and the +Inf bucket equals _count.
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("lat_ms_bucket", 0) == 0) {
      cumulative.push_back(std::stoull(line.substr(line.rfind(' ') + 1)));
    } else if (line.rfind("lat_ms_count", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(cumulative.size(), 4u);
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_EQ(cumulative.back(), count);
}

TEST(Prom, HistogramLabelsComposeWithLe) {
  MetricsRegistry reg;
  reg.histogram("lat.ms", {2.0}).observe(1.0);
  const std::string text = prometheus_text(reg, {{"node", "g0_r1"}});
  EXPECT_NE(text.find("lat_ms_bucket{node=\"g0_r1\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{node=\"g0_r1\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum{node=\"g0_r1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count{node=\"g0_r1\"} 1\n"), std::string::npos);
}

TEST(Prom, OrderIsDeterministicCountersThenGaugesThenHistograms) {
  MetricsRegistry reg;
  // Registered deliberately out of lexical order and out of kind order.
  reg.histogram("zz.hist", {1.0}).observe(0.5);
  reg.gauge("mm.gauge").set(7);
  reg.counter("bb.counter").inc();
  reg.counter("aa.counter").inc();

  const std::string first = prometheus_text(reg);
  const std::string second = prometheus_text(reg);
  EXPECT_EQ(first, second);  // byte-identical across scrapes of same state

  const auto pos_aa = first.find("aa_counter_total");
  const auto pos_bb = first.find("bb_counter_total");
  const auto pos_gauge = first.find("mm_gauge");
  const auto pos_hist = first.find("zz_hist_bucket");
  ASSERT_NE(pos_aa, std::string::npos);
  ASSERT_NE(pos_bb, std::string::npos);
  ASSERT_NE(pos_gauge, std::string::npos);
  ASSERT_NE(pos_hist, std::string::npos);
  EXPECT_LT(pos_aa, pos_bb);     // sorted by name within a kind
  EXPECT_LT(pos_bb, pos_gauge);  // counters before gauges
  EXPECT_LT(pos_gauge, pos_hist);  // gauges before histograms
}

TEST(Prom, TimeseriesStayJsonOnly) {
  MetricsRegistry reg;
  reg.timeseries("tput.series").append(Time{1000}, 3.0);
  reg.counter("real.metric").inc();
  const std::string text = prometheus_text(reg);
  EXPECT_EQ(text.find("tput"), std::string::npos);
  EXPECT_NE(text.find("real_metric_total 1\n"), std::string::npos);
}

}  // namespace
}  // namespace byzcast
