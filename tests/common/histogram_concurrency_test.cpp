// Concurrency test of the lock-free Histogram: concurrent observe() calls
// from many threads must lose no counts and converge the CAS-maintained sum
// (every observed value here is exactly representable, so double addition
// is associative and the final sum is exact regardless of interleaving).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace byzcast {
namespace {

TEST(HistogramConcurrency, NoLostCountsOrSum) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Cycle through all four buckets; values are small integers (and
        // 0.5), all exactly representable in a double.
        switch ((t + i) % 4) {
          case 0: h.observe(0.5); break;
          case 1: h.observe(2.0); break;
          case 2: h.observe(50.0); break;
          default: h.observe(1000.0); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), kTotal);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  std::uint64_t bucket_sum = 0;
  for (const auto c : counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, kTotal);
  // Every (t + i) % 4 class is hit exactly kTotal / 4 times overall.
  for (const auto c : counts) EXPECT_EQ(c, kTotal / 4);
  EXPECT_DOUBLE_EQ(h.sum(), kTotal / 4 * (0.5 + 2.0 + 50.0 + 1000.0));
}

TEST(HistogramConcurrency, ReadersDuringWritesSeeConsistentMonotonicCount) {
  Histogram h({10.0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 100000 && !stop.load(); ++i) h.observe(1.0);
    stop.store(true);
  });
  std::uint64_t last = 0;
  while (!stop.load()) {
    const std::uint64_t now = h.count();
    EXPECT_GE(now, last);
    last = now;
  }
  writer.join();
  EXPECT_EQ(h.count(), 100000u);
}

}  // namespace
}  // namespace byzcast
