// Unit tests of the streaming invariant monitors: each check is tripped by
// a synthetic faulty observation sequence and stays silent on clean ones.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "common/monitor.hpp"

namespace byzcast {
namespace {

MessageId msg(std::int32_t origin, std::uint64_t seq) {
  return MessageId{ProcessId{origin}, seq};
}

constexpr GroupId kG0{0};
constexpr GroupId kG1{1};
constexpr GroupId kEntry{100};
constexpr ProcessId kR0{10};
constexpr ProcessId kR1{11};
constexpr ProcessId kR2{20};

TEST(MonitorHub, CleanStreamReportsNothing) {
  MonitorHub hub;
  for (std::uint64_t s = 0; s < 8; ++s) {
    hub.on_a_deliver(kG0, kR0, msg(1, s), kEntry, Time{100} * (s + 1));
    hub.on_a_deliver(kG0, kR1, msg(1, s), kEntry, Time{110} * (s + 1));
  }
  EXPECT_EQ(hub.total_violations(), 0u);
  EXPECT_TRUE(hub.detailed_violations().empty());
}

TEST(MonitorHub, FifoRegressionTrips) {
  MonitorHub hub;
  hub.on_a_deliver(kG0, kR0, msg(1, 0), kEntry, 100);
  hub.on_a_deliver(kG0, kR0, msg(1, 2), kEntry, 200);
  EXPECT_EQ(hub.total_violations(), 0u) << "gaps are fine (other entry)";
  // Delivering seq 1 after seq 2 of the same (origin, entry) stream is an
  // ordering fault.
  hub.on_a_deliver(kG0, kR0, msg(1, 1), kEntry, 300);
  EXPECT_EQ(hub.violations("fifo"), 1u);
  // A different entry group is a different stream: no violation.
  hub.on_a_deliver(kG0, kR0, msg(1, 0), GroupId{101}, 400);
  EXPECT_EQ(hub.violations("fifo"), 1u);
}

TEST(MonitorHub, FifoStreamsAreIndependentPerOrigin) {
  MonitorHub hub;
  hub.on_a_deliver(kG0, kR0, msg(1, 5), kEntry, 100);
  hub.on_a_deliver(kG0, kR0, msg(2, 0), kEntry, 200);
  hub.on_a_deliver(kG0, kR0, msg(1, 6), kEntry, 300);
  hub.on_a_deliver(kG0, kR0, msg(2, 1), kEntry, 400);
  EXPECT_EQ(hub.total_violations(), 0u);
}

TEST(MonitorHub, GroupDisagreementTrips) {
  MonitorHub hub;
  // Both replicas of g0 must deliver the same k-th message.
  hub.on_a_deliver(kG0, kR0, msg(1, 0), kEntry, 100);
  hub.on_a_deliver(kG0, kR0, msg(2, 0), kEntry, 200);
  hub.on_a_deliver(kG0, kR1, msg(1, 0), kEntry, 150);
  hub.on_a_deliver(kG0, kR1, msg(3, 0), kEntry, 250);  // != msg(2, 0)
  EXPECT_EQ(hub.violations("group_agreement"), 1u);
  const auto detailed = hub.detailed_violations();
  ASSERT_FALSE(detailed.empty());
  EXPECT_EQ(detailed.back().monitor, "group_agreement");
  EXPECT_EQ(detailed.back().replica, kR1);
}

TEST(MonitorHub, CrossGroupOrderInversionTrips) {
  MonitorHub hub;
  const MessageId a = msg(1, 0);
  const MessageId b = msg(2, 0);
  // g0's replica delivers a then b; g1's replica delivers b then a — the
  // union of the two orders has the cycle a -> b -> a.
  hub.on_a_deliver(kG0, kR0, a, kEntry, 100);
  hub.on_a_deliver(kG0, kR0, b, kEntry, 200);
  hub.on_a_deliver(kG1, kR2, b, kEntry, 150);
  EXPECT_EQ(hub.violations("acyclic_order"), 0u);
  hub.on_a_deliver(kG1, kR2, a, kEntry, 250);
  EXPECT_EQ(hub.violations("acyclic_order"), 1u);
}

TEST(MonitorHub, LongerCycleIsDetected) {
  MonitorHub hub;
  const MessageId a = msg(1, 0);
  const MessageId b = msg(2, 0);
  const MessageId c = msg(3, 0);
  // Three replicas of three groups: a<b, b<c, c<a.
  hub.on_a_deliver(kG0, kR0, a, kEntry, 100);
  hub.on_a_deliver(kG0, kR0, b, kEntry, 200);
  hub.on_a_deliver(kG1, kR2, b, kEntry, 100);
  hub.on_a_deliver(kG1, kR2, c, kEntry, 200);
  hub.on_a_deliver(GroupId{2}, ProcessId{30}, c, kEntry, 100);
  EXPECT_EQ(hub.total_violations(), 0u);
  hub.on_a_deliver(GroupId{2}, ProcessId{30}, a, kEntry, 200);
  EXPECT_EQ(hub.violations("acyclic_order"), 1u);
}

TEST(MonitorHub, BoundedPendingTrips) {
  MonitorHub hub;
  hub.set_pending_bound(4);
  hub.on_pending_copies(kG0, kR0, 4, 100);
  EXPECT_EQ(hub.total_violations(), 0u);
  hub.on_pending_copies(kG0, kR0, 5, 200);
  EXPECT_EQ(hub.violations("bounded_pending"), 1u);
}

TEST(MonitorHub, PendingBoundDisabledByDefault) {
  MonitorHub hub;
  hub.on_pending_copies(kG0, kR0, 1 << 20, 100);
  EXPECT_EQ(hub.total_violations(), 0u);
}

TEST(MonitorHub, ViolationsMirrorIntoMetrics) {
  MetricsRegistry reg;
  MonitorHub hub;
  hub.attach_metrics(&reg);
  hub.on_a_deliver(kG0, kR0, msg(1, 3), kEntry, 100);
  hub.on_a_deliver(kG0, kR0, msg(1, 1), kEntry, 200);
  EXPECT_EQ(reg.counter("monitor.violations.fifo").value(), 1u);
}

TEST(MonitorHub, DetailedViolationsAreCapped) {
  MonitorHub hub;
  for (std::uint64_t s = 0; s < 100; ++s) {
    hub.on_a_deliver(kG0, kR0, msg(1, 100 - s), kEntry, 100);
  }
  EXPECT_EQ(hub.violations("fifo"), 99u);
  EXPECT_LE(hub.detailed_violations().size(),
            MonitorHub::kMaxDetailedViolations);
}

}  // namespace
}  // namespace byzcast
