#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace byzcast {
namespace {

TEST(LatencyRecorder, MeanAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.record(/*when=*/i, /*latency=*/i * kMillisecond);
  }
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.mean_ms(), 50.5, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(0), 1.0, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(100), 100.0, 1e-9);
  EXPECT_NEAR(rec.median_ms(), 50.5, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(95), 95.05, 0.1);
}

TEST(LatencyRecorder, WarmupExcluded) {
  LatencyRecorder rec;
  rec.set_warmup(10 * kSecond);
  rec.record(1 * kSecond, 999 * kMillisecond);   // warm-up, excluded
  rec.record(11 * kSecond, 5 * kMillisecond);
  rec.record(12 * kSecond, 15 * kMillisecond);
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_NEAR(rec.mean_ms(), 10.0, 1e-9);
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.mean_ms(), 0.0);
  EXPECT_EQ(rec.percentile_ms(99), 0.0);
  EXPECT_TRUE(rec.cdf().empty());
}

TEST(LatencyRecorder, CdfMonotone) {
  LatencyRecorder rec;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    rec.record(i, static_cast<Time>(rng.next_below(50)) * kMillisecond);
  }
  const auto points = rec.cdf(50);
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(ThroughputMeter, RateOverWindow) {
  ThroughputMeter meter;
  // 100 events in the first second, 200 in the second.
  for (int i = 0; i < 100; ++i) meter.record(i * 10 * kMillisecond);
  for (int i = 0; i < 200; ++i) {
    meter.record(kSecond + i * 5 * kMillisecond);
  }
  EXPECT_NEAR(meter.rate_per_sec(0, kSecond), 100.0, 1e-9);
  EXPECT_NEAR(meter.rate_per_sec(kSecond, 2 * kSecond), 200.0, 1e-9);
  EXPECT_NEAR(meter.rate_per_sec(0, 2 * kSecond), 150.0, 1e-9);
  EXPECT_EQ(meter.total(), 300u);
}

TEST(ThroughputMeter, EmptyWindow) {
  ThroughputMeter meter;
  meter.record(5 * kSecond);
  EXPECT_EQ(meter.rate_per_sec(0, kSecond), 0.0);
}

// Regression for the sorted-view cache: interleaving record() calls with
// percentile queries must yield exactly what a fresh recorder (fed the same
// samples, queried once) computes — the cache may never serve stale data.
TEST(LatencyRecorder, CachedPercentilesMatchFreshAfterInterleavedRecords) {
  LatencyRecorder cached;
  Rng rng(42);
  std::vector<Time> latencies;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      const Time lat = static_cast<Time>(1 + rng.next_below(500)) *
                       kMillisecond;
      latencies.push_back(lat);
      cached.record(/*when=*/round * kSecond + i, lat);
    }
    // Query between batches so the cache is rebuilt, then dirtied again.
    LatencyRecorder fresh;
    for (std::size_t i = 0; i < latencies.size(); ++i) {
      fresh.record(static_cast<Time>(i), latencies[i]);
    }
    for (const double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(cached.percentile_ms(p), fresh.percentile_ms(p))
          << "round " << round << " p" << p;
    }
    EXPECT_DOUBLE_EQ(cached.mean_ms(), fresh.mean_ms()) << "round " << round;
    EXPECT_EQ(cached.summary(), fresh.summary()) << "round " << round;
  }
}

TEST(LatencyRecorder, CacheInvalidatedByWarmupChange) {
  LatencyRecorder rec;
  rec.record(1 * kSecond, 100 * kMillisecond);
  rec.record(11 * kSecond, 10 * kMillisecond);
  EXPECT_NEAR(rec.mean_ms(), 55.0, 1e-9);  // builds the cache over both
  rec.set_warmup(10 * kSecond);            // must invalidate it
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_NEAR(rec.mean_ms(), 10.0, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(50), 10.0, 1e-9);
}

TEST(ThroughputMeter, WindowBoundariesAreHalfOpen) {
  ThroughputMeter meter;
  meter.record(0);
  meter.record(kSecond);          // exactly on the upper bound: excluded
  meter.record(kSecond);
  meter.record(2 * kSecond - 1);  // just inside
  EXPECT_NEAR(meter.rate_per_sec(0, kSecond), 1.0, 1e-9);
  EXPECT_NEAR(meter.rate_per_sec(kSecond, 2 * kSecond), 3.0, 1e-9);
}

TEST(ThroughputMeter, TimeseriesBucketsAndPartialTail) {
  ThroughputMeter meter;
  // 10 events in [0s,1s), 20 in [1s,2s), 5 in the half-width tail [2s,2.5s).
  for (int i = 0; i < 10; ++i) meter.record(i * 100 * kMillisecond);
  for (int i = 0; i < 20; ++i) meter.record(kSecond + i * 50 * kMillisecond);
  for (int i = 0; i < 5; ++i) {
    meter.record(2 * kSecond + i * 100 * kMillisecond);
  }
  const auto series = meter.timeseries(0, 2500 * kMillisecond, kSecond);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].first, 0);
  EXPECT_NEAR(series[0].second, 10.0, 1e-9);
  EXPECT_EQ(series[1].first, kSecond);
  EXPECT_NEAR(series[1].second, 20.0, 1e-9);
  EXPECT_EQ(series[2].first, 2 * kSecond);
  // Partial 0.5 s bucket holding 5 events still reads 10 events/sec.
  EXPECT_NEAR(series[2].second, 10.0, 1e-9);
}

TEST(ThroughputMeter, TimeseriesMatchesWindowQueries) {
  ThroughputMeter meter;
  Rng rng(7);
  Time t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += static_cast<Time>(rng.next_below(3)) * kMillisecond;
    meter.record(t);
  }
  const Time horizon = t + kMillisecond;
  const auto series = meter.timeseries(0, horizon, 500 * kMillisecond);
  for (const auto& [start, rate] : series) {
    const Time end = std::min(start + 500 * kMillisecond, horizon);
    EXPECT_NEAR(rate, meter.rate_per_sec(start, end), 1e-9);
  }
}

// Sweep-scale capacity regression: a bounded recorder fed past its cap must
// keep exactly max_samples observations, count the rest in overflow(), and
// still answer percentile queries from the retained prefix — never grow
// silently and never go quietly wrong.
TEST(LatencyRecorder, MillionSampleCapOverflowsLoudly) {
  LatencyRecorder rec;
  rec.reserve(1'000'000);
  rec.set_max_samples(1'000'000);
  for (std::uint64_t i = 0; i < 1'200'000; ++i) {
    rec.record(static_cast<Time>(i),
               static_cast<Time>(i % 1000 + 1) * kMillisecond);
  }
  EXPECT_EQ(rec.count(), 1'000'000u);
  EXPECT_EQ(rec.overflow(), 200'000u);
  // The retained prefix cycles uniformly through 1..1000 ms.
  EXPECT_NEAR(rec.median_ms(), 500.0, 2.0);
  EXPECT_NEAR(rec.percentile_ms(99), 990.0, 2.0);

  LatencyRecorder unbounded;
  for (std::uint64_t i = 0; i < 1'200'000; ++i) {
    unbounded.record(static_cast<Time>(i),
                     static_cast<Time>(i % 1000 + 1) * kMillisecond);
  }
  EXPECT_EQ(unbounded.count(), 1'200'000u);
  EXPECT_EQ(unbounded.overflow(), 0u);
}

TEST(ThroughputMeter, MillionEventCapKeepsTotalHonest) {
  ThroughputMeter meter;
  meter.reserve(1'000'000);
  meter.set_max_events(1'000'000);
  // 1.2M events, one per microsecond: the last 200k are dropped from
  // window queries but stay visible in total() and overflow().
  for (std::uint64_t i = 0; i < 1'200'000; ++i) {
    meter.record(static_cast<Time>(i) * 1000);
  }
  EXPECT_EQ(meter.total(), 1'200'000u);
  EXPECT_EQ(meter.overflow(), 200'000u);
  // The first second (1M microseconds) is fully stored...
  EXPECT_NEAR(meter.rate_per_sec(0, kSecond), 1e6, 1e-6);
  // ...and the dropped tail reads as zero rate, not fabricated events.
  EXPECT_NEAR(meter.rate_per_sec(kSecond, 2 * kSecond), 0.0, 1e-9);
}

}  // namespace
}  // namespace byzcast
