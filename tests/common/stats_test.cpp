#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace byzcast {
namespace {

TEST(LatencyRecorder, MeanAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.record(/*when=*/i, /*latency=*/i * kMillisecond);
  }
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.mean_ms(), 50.5, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(0), 1.0, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(100), 100.0, 1e-9);
  EXPECT_NEAR(rec.median_ms(), 50.5, 1e-9);
  EXPECT_NEAR(rec.percentile_ms(95), 95.05, 0.1);
}

TEST(LatencyRecorder, WarmupExcluded) {
  LatencyRecorder rec;
  rec.set_warmup(10 * kSecond);
  rec.record(1 * kSecond, 999 * kMillisecond);   // warm-up, excluded
  rec.record(11 * kSecond, 5 * kMillisecond);
  rec.record(12 * kSecond, 15 * kMillisecond);
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_NEAR(rec.mean_ms(), 10.0, 1e-9);
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.mean_ms(), 0.0);
  EXPECT_EQ(rec.percentile_ms(99), 0.0);
  EXPECT_TRUE(rec.cdf().empty());
}

TEST(LatencyRecorder, CdfMonotone) {
  LatencyRecorder rec;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    rec.record(i, static_cast<Time>(rng.next_below(50)) * kMillisecond);
  }
  const auto points = rec.cdf(50);
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(ThroughputMeter, RateOverWindow) {
  ThroughputMeter meter;
  // 100 events in the first second, 200 in the second.
  for (int i = 0; i < 100; ++i) meter.record(i * 10 * kMillisecond);
  for (int i = 0; i < 200; ++i) {
    meter.record(kSecond + i * 5 * kMillisecond);
  }
  EXPECT_NEAR(meter.rate_per_sec(0, kSecond), 100.0, 1e-9);
  EXPECT_NEAR(meter.rate_per_sec(kSecond, 2 * kSecond), 200.0, 1e-9);
  EXPECT_NEAR(meter.rate_per_sec(0, 2 * kSecond), 150.0, 1e-9);
  EXPECT_EQ(meter.total(), 300u);
}

TEST(ThroughputMeter, EmptyWindow) {
  ThroughputMeter meter;
  meter.record(5 * kSecond);
  EXPECT_EQ(meter.rate_per_sec(0, kSecond), 0.0);
}

}  // namespace
}  // namespace byzcast
