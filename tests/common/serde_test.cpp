#include "common/serde.hpp"

#include <gtest/gtest.h>

namespace byzcast {
namespace {

TEST(Serde, PrimitiveRoundTrip) {
  Writer w;
  w.u8(0xfe);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xfe);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, IdsRoundTrip) {
  Writer w;
  w.process_id(ProcessId{7});
  w.group_id(GroupId{3});
  w.message_id(MessageId{ProcessId{11}, 99});

  Reader r(w.data());
  EXPECT_EQ(r.process_id(), ProcessId{7});
  EXPECT_EQ(r.group_id(), GroupId{3});
  EXPECT_EQ(r.message_id(), (MessageId{ProcessId{11}, 99}));
}

TEST(Serde, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, VectorRoundTrip) {
  const std::vector<std::uint64_t> values = {1, 2, 3, 5, 8, 13};
  Writer w;
  w.vec(values, [](Writer& ww, std::uint64_t v) { ww.u64(v); });

  Reader r(w.data());
  const auto decoded =
      r.vec<std::uint64_t>([](Reader& rr) { return rr.u64(); });
  EXPECT_EQ(decoded, values);
}

TEST(Serde, NestedStructures) {
  Writer w;
  const std::vector<std::string> names = {"alpha", "beta", ""};
  w.vec(names, [](Writer& ww, const std::string& s) { ww.str(s); });
  w.u32(7);

  Reader r(w.data());
  const auto decoded = r.vec<std::string>([](Reader& rr) { return rr.str(); });
  EXPECT_EQ(decoded, names);
  EXPECT_EQ(r.u32(), 7u);
}

TEST(Serde, RemainingTracksPosition) {
  Writer w;
  w.u32(1);
  w.u32(2);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(SerdeDeathTest, ShortReadAborts) {
  Writer w;
  w.u8(1);
  EXPECT_DEATH(
      {
        Reader r(w.data());
        (void)r.u64();
      },
      "Precondition");
}

}  // namespace
}  // namespace byzcast
