#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace byzcast {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff};
  EXPECT_EQ(to_hex(data), "00017f80ff");
  EXPECT_EQ(from_hex("00017f80ff"), data);
}

TEST(Bytes, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, TextRoundTrip) {
  const Bytes b = to_bytes("hello byzcast");
  EXPECT_EQ(to_text(b), "hello byzcast");
}

}  // namespace
}  // namespace byzcast
