// Thread-safety of the Authenticator's memoized verification (stage
// pipeline: verify-stage workers probe one replica's memo concurrently).
// Run under TSan in CI: the per-slot try-lock must keep racing verifiers
// from ever observing a torn slot, on the same slot and across slots.
#include "common/auth.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/bytes.hpp"

namespace byzcast {
namespace {

class AuthConcurrencyTest : public ::testing::Test {
 protected:
  std::shared_ptr<KeyStore> keys = std::make_shared<KeyStore>(20260807);
  ProcessId alice{1};
  ProcessId bob{2};
};

TEST_F(AuthConcurrencyTest, RacingVerifiersSameSlot) {
  // One slot: every verification contends for the same try-lock. Correctness
  // must hold whether a prober wins the lock (memo answer) or loses it
  // (full HMAC); hits are opportunistic, answers are not.
  Authenticator a(keys, alice);
  Authenticator b(keys, bob, /*cache_slots=*/1);
  const Bytes good = to_bytes("payment: 100 to bob");
  const Digest mac = a.sign(bob, good);
  Bytes forged = good;
  forged[0] ^= 0x01;

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if ((i + t) % 3 == 0) {
          if (b.verify(alice, forged, mac)) wrong.fetch_add(1);
        } else {
          if (!b.verify(alice, good, mac)) wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST_F(AuthConcurrencyTest, RacingVerifiersAcrossSlots) {
  // Distinct payloads spread over the default slot table: threads verify a
  // shared working set while the memo warms up underneath them.
  Authenticator a(keys, alice);
  Authenticator b(keys, bob);
  struct Item {
    Bytes payload;
    Digest mac;
  };
  std::vector<Item> items;
  for (int i = 0; i < 64; ++i) {
    Item it;
    it.payload = to_bytes("req-" + std::to_string(i));
    it.mac = a.sign(bob, it.payload);
    items.push_back(std::move(it));
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const Item& it = items[static_cast<std::size_t>(i * 7 + t) %
                               items.size()];
        if (!b.verify(alice, it.payload, it.mac)) wrong.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  // The working set is tiny relative to the table; once warm, most probes
  // hit. Exact counts depend on the race, but a healthy cache serves many.
  EXPECT_GT(b.verify_cache_hits(), 0u);
}

TEST_F(AuthConcurrencyTest, ConcurrentSignersShareNoState) {
  // sign() is advertised thread-safe (exec shards sign replies while the
  // order stage signs protocol traffic); racing signers must produce the
  // same MACs a serial signer would.
  Authenticator a(keys, alice);
  const Bytes msg = to_bytes("stable bytes");
  const Digest expected = a.sign(bob, msg);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (a.sign(bob, msg) != expected) wrong.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace byzcast
