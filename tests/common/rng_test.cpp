#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace byzcast {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[static_cast<std::size_t>(rng.next_below(10))];
  }
  for (const int count : seen) EXPECT_GT(count, 700);  // ~1000 each
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximation) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(250.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 250.0, 10.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Parent and child streams differ.
  Rng c(42);
  Rng fc = c.fork();
  EXPECT_NE(fc.next_u64(), c.next_u64());
}

}  // namespace
}  // namespace byzcast
