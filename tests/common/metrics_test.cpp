#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace byzcast {
namespace {

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  reg.counter("a").inc();
  reg.counter("a").inc(3);
  reg.counter("b").inc();
  reg.gauge("g").set(0.75);
  EXPECT_EQ(reg.counter("a").value(), 4u);
  EXPECT_EQ(reg.counter("b").value(), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.75);
}

TEST(Metrics, ReferencesAreStableAcrossInsertions) {
  MetricsRegistry reg;
  Counter& a = reg.counter("hot.path");
  // Force many more map insertions; the cached reference must stay valid.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i)).inc();
  }
  a.inc(7);
  EXPECT_EQ(reg.counter("hot.path").value(), 7u);
}

TEST(Metrics, HistogramBucketing) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bounds are inclusive upper edges)
  h.observe(5.0);    // <= 10
  h.observe(50.0);   // <= 100
  h.observe(500.0);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
  // Second lookup with different bounds returns the existing histogram.
  EXPECT_EQ(&reg.histogram("lat", {42.0}), &h);
}

TEST(Metrics, JsonExportIsDeterministicAndWellFormed) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("busy").set(0.5);
  reg.histogram("batch", {1.0, 2.0}).observe(1.5);
  reg.timeseries("depth").append(kMillisecond, 3.0);
  reg.timeseries("depth").append(2 * kMillisecond, 4.0);

  const std::string json = reg.to_json();
  // Map iteration order: names sorted, so a.first precedes z.last.
  EXPECT_LT(json.find("\"a.first\":1"), json.find("\"z.last\":2"));
  EXPECT_NE(json.find("\"busy\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[0,1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":[[1,3],[2,4]]"), std::string::npos);
  // Byte-identical across calls (determinism for sidecar diffs).
  EXPECT_EQ(json, reg.to_json());
  // Balanced braces/brackets as a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Metrics, EmptyRegistryExports) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},"
            "\"timeseries\":{}}");
}

}  // namespace
}  // namespace byzcast
