#include "common/hmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace byzcast {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Bytes data = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes data = to_bytes("payload");
  EXPECT_NE(hmac_sha256(to_bytes("k1"), data),
            hmac_sha256(to_bytes("k2"), data));
}

TEST(Hmac, DifferentDataDifferentMacs) {
  const Bytes key = to_bytes("key");
  EXPECT_NE(hmac_sha256(key, to_bytes("m1")),
            hmac_sha256(key, to_bytes("m2")));
}

}  // namespace
}  // namespace byzcast
