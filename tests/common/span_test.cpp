// SpanLog unit tests: per-message indexing, capacity-bounded dropping, the
// end>=begin clamp, the actor-span gate, and the Chrome trace-event export.
#include <gtest/gtest.h>

#include "common/span.hpp"
#include "common/span_export.hpp"

namespace byzcast {
namespace {

Span make_span(std::int32_t origin, std::uint64_t seq, SpanKind kind,
               Time begin, Time end) {
  Span s;
  s.msg = MessageId{ProcessId{origin}, seq};
  s.kind = kind;
  s.group = GroupId{0};
  s.where = ProcessId{7};
  s.begin = begin;
  s.end = end;
  return s;
}

TEST(SpanLog, IndexesSpansByMessage) {
  SpanLog log;
  log.record(make_span(1, 0, SpanKind::kNetTransit, 10, 20));
  log.record(make_span(2, 0, SpanKind::kNetTransit, 15, 25));
  log.record(make_span(1, 0, SpanKind::kCpuService, 20, 30));
  const auto spans = log.of(MessageId{ProcessId{1}, 0});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kNetTransit);
  EXPECT_EQ(spans[1].kind, SpanKind::kCpuService);
  EXPECT_TRUE(log.of(MessageId{ProcessId{9}, 0}).empty());
  EXPECT_EQ(log.traced_messages().size(), 2u);
}

TEST(SpanLog, ClampsInvertedIntervals) {
  SpanLog log;
  // A Byzantine replica can stamp garbage wire times; the log never stores
  // end < begin.
  log.record(make_span(1, 0, SpanKind::kNetTransit, 100, 50));
  ASSERT_EQ(log.spans().size(), 1u);
  EXPECT_EQ(log.spans()[0].end, log.spans()[0].begin);
}

TEST(SpanLog, DropsAtCapacity) {
  SpanLog log(/*capacity=*/4);
  for (std::uint64_t s = 0; s < 10; ++s) {
    log.record(make_span(1, s, SpanKind::kExecute, 10, 20));
  }
  EXPECT_EQ(log.spans().size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
}

TEST(SpanLog, ActorSpansGateDefaultsOff) {
  SpanLog log;
  EXPECT_FALSE(log.actor_spans());
  log.set_actor_spans(true);
  EXPECT_TRUE(log.actor_spans());
}

TEST(SpanExport, ChromeTraceShape) {
  SpanLog log;
  log.record(make_span(1, 0, SpanKind::kNetTransit, 1000, 3500));
  log.record(make_span(1, 0, SpanKind::kADeliver, 3500, 3500));  // instant
  const std::string json = chrome_trace_json(log);
  // Top-level object with the documented keys.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Metadata rows name the group's process and the replica's thread.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // The timed span is a complete event with microsecond ts/dur; 2500 ns
  // becomes 2.500 us.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.500"), std::string::npos);
  // The a-deliver is an instant.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(SpanExport, DeterministicForSameLog) {
  const auto build = [] {
    SpanLog log;
    for (std::uint64_t s = 0; s < 50; ++s) {
      log.record(make_span(static_cast<std::int32_t>(s % 3), s,
                           SpanKind::kCpuService, 10 * s, 10 * s + 5));
    }
    return chrome_trace_json(log);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace byzcast
