#include "common/auth.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace byzcast {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  std::shared_ptr<KeyStore> keys = std::make_shared<KeyStore>(777);
  ProcessId alice{1};
  ProcessId bob{2};
  ProcessId mallory{3};
};

TEST_F(AuthTest, SignVerifyRoundTrip) {
  Authenticator a(keys, alice);
  Authenticator b(keys, bob);
  const Bytes msg = to_bytes("transfer 100");
  const Digest mac = a.sign(bob, msg);
  EXPECT_TRUE(b.verify(alice, msg, mac));
}

TEST_F(AuthTest, TamperedPayloadRejected) {
  Authenticator a(keys, alice);
  Authenticator b(keys, bob);
  const Digest mac = a.sign(bob, to_bytes("transfer 100"));
  EXPECT_FALSE(b.verify(alice, to_bytes("transfer 900"), mac));
}

TEST_F(AuthTest, ImpersonationRejected) {
  // Mallory signs with her own keys but claims to be Alice.
  Authenticator m(keys, mallory);
  Authenticator b(keys, bob);
  const Bytes msg = to_bytes("i am alice, honest");
  const Digest mac = m.sign(bob, msg);
  EXPECT_FALSE(b.verify(alice, msg, mac));
}

TEST_F(AuthTest, MacIsChannelBound) {
  // A MAC for channel alice->bob must not verify on alice->mallory.
  Authenticator a(keys, alice);
  Authenticator m(keys, mallory);
  const Bytes msg = to_bytes("hello");
  const Digest mac = a.sign(bob, msg);
  EXPECT_FALSE(m.verify(alice, msg, mac));
}

TEST_F(AuthTest, PairKeySymmetric) {
  EXPECT_EQ(keys->pair_key(alice, bob), keys->pair_key(bob, alice));
  EXPECT_NE(keys->pair_key(alice, bob), keys->pair_key(alice, mallory));
}

TEST_F(AuthTest, DifferentMasterSeedsDifferentKeys) {
  KeyStore other(778);
  EXPECT_NE(keys->pair_key(alice, bob), other.pair_key(alice, bob));
}

}  // namespace
}  // namespace byzcast
