#include "common/auth.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace byzcast {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  std::shared_ptr<KeyStore> keys = std::make_shared<KeyStore>(777);
  ProcessId alice{1};
  ProcessId bob{2};
  ProcessId mallory{3};
};

TEST_F(AuthTest, SignVerifyRoundTrip) {
  Authenticator a(keys, alice);
  Authenticator b(keys, bob);
  const Bytes msg = to_bytes("transfer 100");
  const Digest mac = a.sign(bob, msg);
  EXPECT_TRUE(b.verify(alice, msg, mac));
}

TEST_F(AuthTest, TamperedPayloadRejected) {
  Authenticator a(keys, alice);
  Authenticator b(keys, bob);
  const Digest mac = a.sign(bob, to_bytes("transfer 100"));
  EXPECT_FALSE(b.verify(alice, to_bytes("transfer 900"), mac));
}

TEST_F(AuthTest, ImpersonationRejected) {
  // Mallory signs with her own keys but claims to be Alice.
  Authenticator m(keys, mallory);
  Authenticator b(keys, bob);
  const Bytes msg = to_bytes("i am alice, honest");
  const Digest mac = m.sign(bob, msg);
  EXPECT_FALSE(b.verify(alice, msg, mac));
}

TEST_F(AuthTest, MacIsChannelBound) {
  // A MAC for channel alice->bob must not verify on alice->mallory.
  Authenticator a(keys, alice);
  Authenticator m(keys, mallory);
  const Bytes msg = to_bytes("hello");
  const Digest mac = a.sign(bob, msg);
  EXPECT_FALSE(m.verify(alice, msg, mac));
}

TEST_F(AuthTest, PairKeySymmetric) {
  EXPECT_EQ(keys->pair_key(alice, bob), keys->pair_key(bob, alice));
  EXPECT_NE(keys->pair_key(alice, bob), keys->pair_key(alice, mallory));
}

TEST_F(AuthTest, DifferentMasterSeedsDifferentKeys) {
  KeyStore other(778);
  EXPECT_NE(keys->pair_key(alice, bob), other.pair_key(alice, bob));
}

TEST_F(AuthTest, MemoServesOnlyExactPayload) {
  Authenticator a(keys, alice);
  Authenticator b(keys, bob);
  const Bytes msg = to_bytes("transfer 100");
  const Digest mac = a.sign(bob, msg);
  ASSERT_TRUE(b.verify(alice, msg, mac));  // warms the memo slot
  ASSERT_TRUE(b.verify(alice, msg, mac));  // answered from the memo
  EXPECT_EQ(b.verify_cache_hits(), 1u);
  // Same sender, same length, same MAC, different bytes: the memo matches
  // on the payload's full SHA-256, so this must fall through to the real
  // HMAC and be rejected — a warm slot is never a forgery oracle.
  Bytes forged = msg;
  forged[0] ^= 0x01;
  EXPECT_FALSE(b.verify(alice, forged, mac));
  EXPECT_EQ(b.verify_cache_hits(), 1u);
  // The failed attempt must not evict or poison the honest entry.
  EXPECT_TRUE(b.verify(alice, msg, mac));
  EXPECT_EQ(b.verify_cache_hits(), 2u);
}

TEST_F(AuthTest, VerifyMemoGateDisablesTheCache) {
  // The mac_memo_off ablation: a KeyStore constructed with the memo gated
  // off must answer every verification with the full HMAC — zero hits even
  // for byte-identical repeats — while still accepting and rejecting
  // exactly what the memoized path does.
  auto gated = std::make_shared<KeyStore>(777, MacMode::kHmac,
                                          /*verify_memo=*/false);
  Authenticator a(gated, alice);
  Authenticator b(gated, bob);
  const Bytes msg = to_bytes("transfer 100");
  const Digest mac = a.sign(bob, msg);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(b.verify(alice, msg, mac));
  EXPECT_EQ(b.verify_cache_hits(), 0u);
  Bytes forged = msg;
  forged[0] ^= 0x01;
  EXPECT_FALSE(b.verify(alice, forged, mac));
}

}  // namespace
}  // namespace byzcast
