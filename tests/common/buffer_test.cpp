// Buffer semantics: wrap/copy materialization counting, aliasing across
// copies and slices, slice lifetime past the parent's release, equality.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/buffer.hpp"

namespace byzcast {
namespace {

Bytes make_bytes(std::size_t n, std::uint8_t base = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(base + i);
  }
  return b;
}

TEST(Buffer, DefaultIsEmptyAndCountsNothing) {
  const std::uint64_t before = Buffer::materializations();
  const Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(Buffer::materializations(), before);
}

TEST(Buffer, WrappingBytesMaterializesExactlyOnce) {
  const std::uint64_t before = Buffer::materializations();
  const Buffer b{make_bytes(32)};
  EXPECT_EQ(Buffer::materializations(), before + 1);
  ASSERT_EQ(b.size(), 32u);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[31], 31);
}

TEST(Buffer, CopiesAreRefBumpsNotMaterializations) {
  const Buffer original{make_bytes(64)};
  const std::uint64_t before = Buffer::materializations();
  const Buffer a = original;            // NOLINT(performance-unnecessary-copy-initialization)
  const Buffer c = a;                   // NOLINT(performance-unnecessary-copy-initialization)
  std::vector<Buffer> fanout(10, original);
  EXPECT_EQ(Buffer::materializations(), before);
  EXPECT_TRUE(a.aliases(original));
  EXPECT_TRUE(c.aliases(original));
  for (const Buffer& f : fanout) {
    EXPECT_EQ(f.data(), original.data());
    EXPECT_EQ(f.size(), original.size());
  }
}

TEST(Buffer, CopyOfDeepCopiesIntoFreshStorage) {
  const Buffer original{make_bytes(16)};
  const std::uint64_t before = Buffer::materializations();
  const Buffer copy = Buffer::copy_of(original.view());
  EXPECT_EQ(Buffer::materializations(), before + 1);
  EXPECT_FALSE(copy.aliases(original));
  EXPECT_NE(copy.data(), original.data());
  EXPECT_EQ(copy, original);  // same content, different storage
}

TEST(Buffer, SliceAliasesParentStorage) {
  const Buffer parent{make_bytes(100)};
  const Buffer mid = parent.slice(10, 20);
  ASSERT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data(), parent.data() + 10);
  EXPECT_EQ(mid[0], 10);
  EXPECT_EQ(mid[19], 29);

  const Buffer tail = parent.slice(90);
  ASSERT_EQ(tail.size(), 10u);
  EXPECT_EQ(tail.data(), parent.data() + 90);

  // Slicing a slice stays within the same backing allocation.
  const Buffer inner = mid.slice(5, 5);
  EXPECT_EQ(inner.data(), parent.data() + 15);
}

TEST(Buffer, SliceOutlivesParentBuffer) {
  const std::uint64_t before = Buffer::materializations();
  Buffer slice;
  const std::uint8_t* parent_data = nullptr;
  {
    const Buffer parent{make_bytes(64, 100)};
    parent_data = parent.data();
    slice = parent.slice(8, 16);
  }  // every full-range handle is gone; the slice must keep storage alive
  ASSERT_EQ(slice.size(), 16u);
  EXPECT_EQ(slice.data(), parent_data + 8);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i], static_cast<std::uint8_t>(100 + 8 + i));
  }
  // Keeping the parent alive through the slice costs no extra buffer.
  EXPECT_EQ(Buffer::materializations(), before + 1);
}

TEST(Buffer, FullRangeSliceAliasesButZeroLengthDoesNotCrash) {
  const Buffer parent{make_bytes(8)};
  EXPECT_TRUE(parent.slice(0, 8).aliases(parent));
  const Buffer empty = parent.slice(8);
  EXPECT_TRUE(empty.empty());
}

TEST(Buffer, EqualityIsContentBased) {
  const Buffer a{make_bytes(24, 7)};
  const Buffer b{make_bytes(24, 7)};   // same content, separate storage
  const Buffer c{make_bytes(24, 9)};   // different content
  const Buffer d{make_bytes(23, 7)};   // different length
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.aliases(b));
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_EQ(a, a);  // aliasing short-circuit
  EXPECT_EQ(Buffer{}, Buffer{});
}

TEST(Buffer, ConvertsToBytesView) {
  const Buffer b{make_bytes(12)};
  const BytesView v = b;
  EXPECT_EQ(v.data(), b.data());
  EXPECT_EQ(v.size(), b.size());
  EXPECT_EQ(b.view().size(), 12u);
}

TEST(Buffer, MoveLeavesContentReachableThroughTarget) {
  Buffer src{make_bytes(40)};
  const std::uint8_t* data = src.data();
  const Buffer dst = std::move(src);
  EXPECT_EQ(dst.data(), data);
  EXPECT_EQ(dst.size(), 40u);
}

}  // namespace
}  // namespace byzcast
