#include "common/sha256.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace byzcast {
namespace {

std::string hash_hex(std::string_view s) {
  return to_hex(Sha256::hash(to_bytes(s)));
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  Sha256 ctx;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ctx.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(ctx.finish(), Sha256::hash(data));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding at block boundaries: 55, 56, 63, 64, 65 bytes.
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes data(n, 'x');
    Sha256 incremental;
    incremental.update(BytesView(data.data(), n / 2));
    incremental.update(BytesView(data.data() + n / 2, n - n / 2));
    EXPECT_EQ(incremental.finish(), Sha256::hash(data)) << "n=" << n;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash(to_bytes("a")), Sha256::hash(to_bytes("b")));
}

}  // namespace
}  // namespace byzcast
