#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace byzcast {
namespace {

TEST(Types, StrongIdsDoNotCrossCompare) {
  // Compile-time property: ProcessId and GroupId are distinct types.
  static_assert(!std::is_convertible_v<ProcessId, GroupId>);
  static_assert(!std::is_convertible_v<GroupId, ProcessId>);
  static_assert(!std::is_convertible_v<int, ProcessId>);
}

TEST(Types, IdOrderingAndValidity) {
  EXPECT_LT(ProcessId{1}, ProcessId{2});
  EXPECT_EQ(GroupId{3}, GroupId{3});
  EXPECT_TRUE(ProcessId{0}.valid());
  EXPECT_FALSE(ProcessId{}.valid());
  EXPECT_FALSE(ProcessId{-1}.valid());
}

TEST(Types, MessageIdOrdering) {
  const MessageId a{ProcessId{1}, 5};
  const MessageId b{ProcessId{1}, 6};
  const MessageId c{ProcessId{2}, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (MessageId{ProcessId{1}, 5}));
}

TEST(Types, HashingWorksInContainers) {
  std::unordered_set<ProcessId> pids = {ProcessId{1}, ProcessId{2}};
  EXPECT_TRUE(pids.contains(ProcessId{1}));
  EXPECT_FALSE(pids.contains(ProcessId{3}));

  std::unordered_set<MessageId> mids;
  for (int p = 0; p < 10; ++p) {
    for (std::uint64_t s = 0; s < 10; ++s) {
      mids.insert(MessageId{ProcessId{p}, s});
    }
  }
  EXPECT_EQ(mids.size(), 100u);
}

TEST(Types, TimeUnitsCompose) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_DOUBLE_EQ(to_ms(1500 * kMicrosecond), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(250 * kMillisecond), 0.25);
}

TEST(Types, ToStringFormats) {
  EXPECT_EQ(to_string(ProcessId{7}), "p7");
  EXPECT_EQ(to_string(GroupId{3}), "g3");
  EXPECT_EQ(to_string(MessageId{ProcessId{7}, 42}), "p7:42");
}

}  // namespace
}  // namespace byzcast
