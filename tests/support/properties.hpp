// Checkers for the five atomic multicast properties of §II-B, evaluated over
// a run's DeliveryLog. Tests supply which replicas are correct and which
// messages were a-multicast by correct clients.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/delivery_log.hpp"
#include "core/multicast.hpp"

namespace byzcast::testing {

struct SentMessage {
  MessageId id;
  std::vector<GroupId> dst;  // canonical
};

struct PropertyInput {
  const core::DeliveryLog* log = nullptr;
  /// Messages a-multicast by correct clients (completed or not).
  std::vector<SentMessage> sent;
  /// Correct replicas per *target* group.
  std::map<GroupId, std::vector<ProcessId>> correct_replicas;
};

namespace detail {

inline std::map<MessageId, SentMessage> index_sent(const PropertyInput& in) {
  std::map<MessageId, SentMessage> out;
  for (const auto& s : in.sent) out[s.id] = s;
  return out;
}

inline std::map<ProcessId, GroupId> replica_groups(const PropertyInput& in) {
  std::map<ProcessId, GroupId> out;
  for (const auto& [g, replicas] : in.correct_replicas) {
    for (const ProcessId p : replicas) out[p] = g;
  }
  return out;
}

}  // namespace detail

/// Integrity: a correct replica a-delivers a message at most once, only if
/// its group is in m.dst, and only if m was a-multicast (no fabricated ids).
inline ::testing::AssertionResult check_integrity(const PropertyInput& in) {
  const auto sent = detail::index_sent(in);
  const auto groups = detail::replica_groups(in);
  std::set<std::pair<ProcessId, MessageId>> seen;
  for (const auto& rec : in.log->records()) {
    const auto git = groups.find(rec.replica);
    if (git == groups.end()) continue;  // faulty replica: no guarantees
    if (!seen.emplace(rec.replica, rec.msg).second) {
      return ::testing::AssertionFailure()
             << "replica " << to_string(rec.replica) << " a-delivered "
             << to_string(rec.msg) << " twice";
    }
    const auto sit = sent.find(rec.msg);
    if (sit == sent.end()) {
      return ::testing::AssertionFailure()
             << "message " << to_string(rec.msg)
             << " a-delivered but never a-multicast by a correct client";
    }
    const auto& dst = sit->second.dst;
    if (std::find(dst.begin(), dst.end(), git->second) == dst.end()) {
      return ::testing::AssertionFailure()
             << "replica " << to_string(rec.replica) << " of group "
             << to_string(git->second) << " a-delivered "
             << to_string(rec.msg) << " not addressed to its group";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Validity + agreement at quiescence: every sent message is a-delivered by
/// every correct replica of every destination group.
inline ::testing::AssertionResult check_validity_agreement(
    const PropertyInput& in) {
  std::set<std::pair<ProcessId, MessageId>> delivered;
  for (const auto& rec : in.log->records()) {
    delivered.emplace(rec.replica, rec.msg);
  }
  for (const auto& s : in.sent) {
    for (const GroupId g : s.dst) {
      const auto it = in.correct_replicas.find(g);
      if (it == in.correct_replicas.end()) continue;
      for (const ProcessId p : it->second) {
        if (!delivered.contains({p, s.id})) {
          return ::testing::AssertionFailure()
                 << "correct replica " << to_string(p) << " of group "
                 << to_string(g) << " never a-delivered "
                 << to_string(s.id);
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Prefix order: two correct replicas never a-deliver two common messages in
/// different relative orders.
inline ::testing::AssertionResult check_prefix_order(
    const PropertyInput& in) {
  const auto groups = detail::replica_groups(in);
  std::vector<ProcessId> replicas;
  for (const auto& [p, g] : groups) replicas.push_back(p);

  std::map<ProcessId, std::unordered_map<MessageId, std::size_t>> position;
  for (const ProcessId p : replicas) {
    const auto& seq = in.log->sequence(p);
    for (std::size_t i = 0; i < seq.size(); ++i) position[p][seq[i]] = i;
  }

  for (std::size_t a = 0; a < replicas.size(); ++a) {
    for (std::size_t b = a + 1; b < replicas.size(); ++b) {
      const ProcessId p = replicas[a];
      const ProcessId q = replicas[b];
      const auto& ppos = position[p];
      const auto& qpos = position[q];
      // Common messages in p's order must have increasing q positions.
      std::vector<std::pair<std::size_t, std::size_t>> common;
      for (const auto& [msg, pi] : ppos) {
        const auto qit = qpos.find(msg);
        if (qit != qpos.end()) common.emplace_back(pi, qit->second);
      }
      std::sort(common.begin(), common.end());
      for (std::size_t i = 1; i < common.size(); ++i) {
        if (common[i].second < common[i - 1].second) {
          return ::testing::AssertionFailure()
                 << "prefix order violated between " << to_string(p)
                 << " and " << to_string(q);
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Acyclic order: the union of the correct replicas' delivery orders is a
/// DAG (checked over consecutive-delivery edges; each replica's order is a
/// path, so any cycle in < appears as a cycle here).
inline ::testing::AssertionResult check_acyclic_order(
    const PropertyInput& in) {
  const auto groups = detail::replica_groups(in);
  std::map<MessageId, std::set<MessageId>> edges;
  std::set<MessageId> nodes;
  for (const auto& [p, g] : groups) {
    const auto& seq = in.log->sequence(p);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      nodes.insert(seq[i]);
      if (i > 0 && !(seq[i - 1] == seq[i])) {
        edges[seq[i - 1]].insert(seq[i]);
      }
    }
  }
  // Kahn's algorithm.
  std::map<MessageId, std::size_t> indegree;
  for (const auto& n : nodes) indegree[n] = 0;
  for (const auto& [from, tos] : edges) {
    for (const auto& to : tos) ++indegree[to];
  }
  std::queue<MessageId> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.push(n);
  }
  std::size_t emitted = 0;
  while (!ready.empty()) {
    const MessageId n = ready.front();
    ready.pop();
    ++emitted;
    const auto it = edges.find(n);
    if (it == edges.end()) continue;
    for (const auto& to : it->second) {
      if (--indegree[to] == 0) ready.push(to);
    }
  }
  if (emitted != nodes.size()) {
    return ::testing::AssertionFailure()
           << "a-delivery precedence relation contains a cycle ("
           << nodes.size() - emitted << " messages involved)";
  }
  return ::testing::AssertionSuccess();
}

/// Runs all five property checks (validity and agreement are combined).
inline void expect_atomic_multicast_properties(const PropertyInput& in) {
  EXPECT_TRUE(check_integrity(in));
  EXPECT_TRUE(check_validity_agreement(in));
  EXPECT_TRUE(check_prefix_order(in));
  EXPECT_TRUE(check_acyclic_order(in));
}

}  // namespace byzcast::testing
