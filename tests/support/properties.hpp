// gtest adapter over the atomic-multicast property checkers. The checking
// logic lives in src/core/properties.hpp (gtest-free) so the benchmark
// harness can validate runs too; this wrapper converts PropertyResult into
// ::testing::AssertionResult for EXPECT_TRUE ergonomics.
#pragma once

#include <gtest/gtest.h>

#include "core/properties.hpp"

namespace byzcast::testing {

using SentMessage = core::SentMessage;

/// Distinct type (not an alias): ADL on it finds these gtest wrappers from
/// any test namespace, and passing the derived type makes the wrappers an
/// exact match, so they beat the core:: checkers instead of colliding with
/// them. Slices cleanly — the checkers only read the base's fields.
struct PropertyInput : core::PropertyInput {};

namespace detail {

inline ::testing::AssertionResult to_assertion(const core::PropertyResult& r) {
  if (r.ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << r.error;
}

}  // namespace detail

inline ::testing::AssertionResult check_integrity(const PropertyInput& in) {
  return detail::to_assertion(core::check_integrity(in));
}

inline ::testing::AssertionResult check_validity_agreement(
    const PropertyInput& in) {
  return detail::to_assertion(core::check_validity_agreement(in));
}

inline ::testing::AssertionResult check_prefix_order(const PropertyInput& in) {
  return detail::to_assertion(core::check_prefix_order(in));
}

inline ::testing::AssertionResult check_acyclic_order(const PropertyInput& in) {
  return detail::to_assertion(core::check_acyclic_order(in));
}

/// Runs all five property checks (validity and agreement are combined).
inline void expect_atomic_multicast_properties(const PropertyInput& in) {
  EXPECT_TRUE(check_integrity(in));
  EXPECT_TRUE(check_validity_agreement(in));
  EXPECT_TRUE(check_prefix_order(in));
  EXPECT_TRUE(check_acyclic_order(in));
}

}  // namespace byzcast::testing
