// Shared end-to-end harness for ByzCast/Baseline tests: builds a system over
// a canned tree, drives closed-loop clients with caller-chosen destination
// schedules, tracks every a-multicast message, and assembles the
// PropertyInput for the §II-B checkers.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "sim/simulation.hpp"
#include "support/properties.hpp"

namespace byzcast::testing {

enum class TreeKind { kSingle, kTwoLevel, kThreeLevel };

struct HarnessConfig {
  TreeKind tree = TreeKind::kTwoLevel;
  int num_targets = 2;
  int f = 1;
  core::Routing routing = core::Routing::kGenuine;
  core::FaultPlan faults;
  std::uint64_t seed = 1;
  /// Optional metric/trace sinks, shared by every node; must outlive the
  /// harness when set.
  Observability obs;
  /// When obs.spans is set, clients trace every n-th message (0 = none).
  std::uint32_t trace_sample_every = 0;
  /// Cost-model/protocol knobs for the simulation (batch sizing, pipeline
  /// depth, ...).
  sim::Profile profile = sim::Profile::lan();
};

/// Auxiliary group ids start at 100 to stay visually distinct from targets.
constexpr std::int32_t kAuxBase = 100;

inline core::OverlayTree make_tree(TreeKind kind, int num_targets) {
  std::vector<GroupId> targets;
  for (int i = 0; i < num_targets; ++i) targets.push_back(GroupId{i});
  switch (kind) {
    case TreeKind::kSingle:
      return core::OverlayTree::single(targets.at(0));
    case TreeKind::kTwoLevel:
      return core::OverlayTree::two_level(targets, GroupId{kAuxBase});
    case TreeKind::kThreeLevel:
      return core::OverlayTree::three_level(targets, GroupId{kAuxBase},
                                            GroupId{kAuxBase + 1},
                                            GroupId{kAuxBase + 2});
  }
  BZC_ASSERT(false);
  return core::OverlayTree::single(targets.at(0));
}

class ByzCastHarness {
 public:
  /// Picks the destination set for client `c`'s `k`-th message.
  using DstPicker = std::function<std::vector<GroupId>(int c, int k, Rng&)>;

  explicit ByzCastHarness(const HarnessConfig& config)
      : config_(config),
        sim(config.seed, config.profile),
        system(sim, make_tree(config.tree, config.num_targets), config.f,
               config.faults, config.routing, config.obs) {}

  [[nodiscard]] std::vector<GroupId> targets() const {
    return system.tree().target_groups();
  }

  /// Runs `msgs_per_client` closed-loop messages on each of `num_clients`
  /// clients, then lets the system drain until `horizon`.
  void run(int num_clients, int msgs_per_client, const DstPicker& pick_dst,
           Time horizon = 120 * kSecond) {
    std::vector<int> sent_count(static_cast<std::size_t>(num_clients), 0);
    Rng rng(config_.seed ^ 0xabcdef);
    for (int c = 0; c < num_clients; ++c) {
      clients.push_back(system.make_client("client" + std::to_string(c)));
      if (config_.trace_sample_every > 0) {
        clients.back()->set_trace_sample_every(config_.trace_sample_every);
      }
    }
    std::function<void(int)> issue = [&, msgs_per_client](int c) {
      auto& count = sent_count[static_cast<std::size_t>(c)];
      if (count == msgs_per_client) return;
      ++count;
      core::Client& client = *clients[static_cast<std::size_t>(c)];
      std::vector<GroupId> dst = pick_dst(c, count - 1, rng);
      Bytes payload = to_bytes("m-" + std::to_string(c) + "-" +
                               std::to_string(count - 1));
      client.a_multicast(std::move(dst), std::move(payload),
                         [this, &issue, c](const core::MulticastMessage&,
                                           Time) {
                           ++completions;
                           issue(c);
                         });
      // a_multicast canonicalized the dst; read it back from the client's
      // view by reconstructing: the id is (client pid, uid = count-1).
    };
    for (int c = 0; c < num_clients; ++c) issue(c);
    sim.run_until(horizon);

    // Reconstruct the sent-message list from the delivery-log-independent
    // knowledge we have: ids are (client, 0..count-1). Destinations were
    // produced by pick_dst; re-derive them with a cloned RNG stream is not
    // possible (shared stream), so instead capture them at issue time.
    // (Populated in `sent` by the wrapper below.)
  }

  /// Like run(), but also records every message into `sent` for the
  /// property checkers.
  void run_tracked(int num_clients, int msgs_per_client,
                   const DstPicker& pick_dst, Time horizon = 120 * kSecond) {
    const DstPicker wrapped = [this, &pick_dst](int c, int k, Rng& rng) {
      std::vector<GroupId> dst = pick_dst(c, k, rng);
      core::MulticastMessage canon;
      canon.dst = dst;
      canon.canonicalize();
      sent.push_back(SentMessage{
          MessageId{clients[static_cast<std::size_t>(c)]->id(),
                    static_cast<std::uint64_t>(k)},
          canon.dst});
      return dst;
    };
    run(num_clients, msgs_per_client, wrapped, horizon);
  }

  /// Correct replicas of every target group, derived from the fault plan.
  [[nodiscard]] std::map<GroupId, std::vector<ProcessId>> correct_replicas() {
    std::map<GroupId, std::vector<ProcessId>> out;
    for (const GroupId g : system.tree().target_groups()) {
      auto& grp = system.group(g);
      for (const int i : grp.correct_indices()) {
        out[g].push_back(grp.replica(i).id());
      }
    }
    return out;
  }

  [[nodiscard]] PropertyInput property_input() {
    PropertyInput in;
    in.log = &system.delivery_log();
    in.sent = sent;
    in.correct_replicas = correct_replicas();
    return in;
  }

  HarnessConfig config_;
  sim::Simulation sim;
  core::ByzCastSystem system;
  std::vector<std::unique_ptr<core::Client>> clients;
  std::vector<SentMessage> sent;
  int completions = 0;
};

}  // namespace byzcast::testing
