// Test application that records the execution sequence of each hosting
// replica into caller-owned storage, so tests can compare total order, FIFO
// order and content across replicas.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "bft/application.hpp"

namespace byzcast::testing {

struct ExecutionRecord {
  ProcessId origin;
  std::uint64_t seq;
  Bytes op;
  Time when;
};

using ExecutionTrace = std::vector<ExecutionRecord>;

class RecordingApp final : public bft::Application {
 public:
  explicit RecordingApp(ExecutionTrace* trace, bool reply = true)
      : trace_(trace), reply_(reply) {}

  void execute(const bft::Request& req) override {
    trace_->push_back(ExecutionRecord{
        req.origin, req.seq,
        Bytes(req.op.data(), req.op.data() + req.op.size()), ctx_->now()});
    if (reply_) {
      const Digest d = Sha256::hash(req.op);
      ctx_->send_reply(req, Bytes(d.begin(), d.begin() + 8));
    }
  }

 private:
  ExecutionTrace* trace_;  // non-owning, caller outlives the simulation
  bool reply_;
};

/// App factory producing RecordingApps backed by `traces[replica_index]`.
inline bft::AppFactory recording_factory(
    std::map<int, ExecutionTrace>& traces, bool reply = true) {
  return [&traces, reply](int index) {
    return std::make_unique<RecordingApp>(&traces[index], reply);
  };
}

}  // namespace byzcast::testing
