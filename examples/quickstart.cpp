// Quickstart: assemble a ByzCast deployment with two target groups under
// one auxiliary group, atomically multicast a local and a global message,
// and print what each group a-delivered.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/system.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace byzcast;

  // 1. A deterministic simulated LAN.
  sim::Simulation simulation(/*seed=*/42, sim::Profile::lan());

  // 2. The overlay tree: targets g0, g1 under auxiliary group h (id 100).
  //    Every group gets 3f+1 = 4 replicas running FIFO atomic broadcast.
  const std::vector<GroupId> targets = {GroupId{0}, GroupId{1}};
  core::ByzCastSystem system(
      simulation, core::OverlayTree::two_level(targets, GroupId{100}),
      /*f=*/1);

  // 3. A client. a_multicast() broadcasts in lca(dst) and completes once
  //    f+1 matching replies arrived from every destination group.
  auto client = system.make_client("alice");

  int done = 0;
  client->a_multicast(
      {GroupId{0}}, to_bytes("hello g0 (local message)"),
      [&](const core::MulticastMessage& m, Time latency) {
        std::printf("local  message %s delivered in %.2f ms\n",
                    to_string(m.id).c_str(), to_ms(latency));
        ++done;
        // 4. Chain a global message: ordered by the auxiliary group first,
        //    then by both destination groups (Algorithm 1).
        client->a_multicast(
            {GroupId{0}, GroupId{1}}, to_bytes("hello g0+g1 (global)"),
            [&](const core::MulticastMessage& m2, Time latency2) {
              std::printf("global message %s delivered in %.2f ms\n",
                          to_string(m2.id).c_str(), to_ms(latency2));
              ++done;
            });
      });

  simulation.run_until(10 * kSecond);

  // 5. Inspect the delivery log: who a-delivered what, in which order.
  std::printf("\na-deliveries (%zu records):\n",
              system.delivery_log().records().size());
  for (const auto& rec : system.delivery_log().records()) {
    std::printf("  t=%7.2f ms  group g%d  replica %-4s  message %s\n",
                to_ms(rec.when), rec.group.value,
                to_string(rec.replica).c_str(), to_string(rec.msg).c_str());
  }
  std::printf("\ncompleted %d/2 messages; local involved only g0's replicas,"
              "\nglobal was ordered by the auxiliary group then by g0 and g1."
              "\n",
              done);
  return done == 2 ? 0 : 1;
}
