// Reconfiguration demo: a group serves traffic, the administrator swaps a
// replica for a standby (ordered membership change), the standby bootstraps
// through state transfer and the group keeps serving — including when the
// replaced replica is the current leader.
//
//   $ ./examples/reconfiguration_demo
#include <cstdio>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace byzcast;

/// Tiny replicated counter so state transfer has real state to move.
class CounterApp final : public bft::Application {
 public:
  void execute(const bft::Request& req) override {
    ++count_;
    ctx_->send_reply(req, to_bytes(std::to_string(count_)));
  }
  Bytes snapshot() const override {
    return to_bytes(std::to_string(count_));
  }
  void restore(BytesView raw) override {
    count_ = std::stol(to_text(raw));
  }
  [[nodiscard]] long count() const { return count_; }

 private:
  long count_ = 0;
};

class Admin final : public sim::Actor {
 public:
  Admin(sim::Simulation& sim, bft::GroupInfo group)
      : Actor(sim, "admin"), group_(std::move(group)) {}

  void reconfigure(const std::vector<ProcessId>& membership) {
    bft::Request req;
    req.group = group_.id;
    req.origin = id();
    req.seq = next_seq_++;
    req.reconfig = true;
    req.op = bft::encode_membership(membership);
    const Bytes encoded = bft::encode_request(req);
    for (const ProcessId r : group_.replicas()) send(r, encoded);
  }

 protected:
  void on_message(const sim::WireMessage&) override {}

 private:
  bft::GroupInfo group_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace

int main() {
  sim::Simulation simulation(9, sim::Profile::lan());

  std::vector<CounterApp*> apps;
  const bft::AppFactory factory = [&apps](int) {
    auto app = std::make_unique<CounterApp>();
    apps.push_back(app.get());
    return app;
  };
  bft::Group group(simulation, GroupId{0}, /*f=*/1, factory);

  Admin admin(simulation, group.info());
  group.set_admin(admin.id());
  const int standby = group.add_standby(
      simulation, [&apps] {
        auto app = std::make_unique<CounterApp>();
        apps.push_back(app.get());
        return app;
      }());
  std::printf("group: 4 members + 1 standby (%s), admin %s\n",
              to_string(group.replica(standby).id()).c_str(),
              to_string(admin.id()).c_str());

  bft::ClientProxy client(simulation, group.info(), "client");
  int completed = 0;
  int remaining = 30;
  std::function<void()> issue = [&] {
    if (remaining-- == 0) return;
    client.invoke(to_bytes("inc"), [&](const Bytes& result, Time) {
      ++completed;
      if (completed == 10) {
        std::printf("after %2d ops: swapping out replica 3 (backup)...\n",
                    completed);
        std::vector<ProcessId> next = group.info().replicas();
        next[3] = group.replica(standby).id();
        admin.reconfigure(next);
      }
      if (completed == 30) {
        std::printf("after %2d ops: counter result = %s\n", completed,
                    to_text(result).c_str());
      }
      issue();
    });
  };
  issue();
  simulation.run_until(120 * kSecond);

  std::printf("\ncompleted %d/30 operations across the reconfiguration\n",
              completed);
  std::printf("replica 3 removed: %s\n",
              group.replica(3).removed() ? "yes" : "no");
  std::printf("standby executed %llu requests, history digest %s the "
              "group's\n",
              static_cast<unsigned long long>(
                  group.replica(standby).executed_requests()),
              group.replica(standby).history_digest() ==
                      group.replica(0).history_digest()
                  ? "MATCHES"
                  : "DIFFERS FROM");
  const bool ok =
      completed == 30 && group.replica(3).removed() &&
      group.replica(standby).history_digest() ==
          group.replica(0).history_digest();
  return ok ? 0 : 1;
}
