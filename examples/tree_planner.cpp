// Tree planner: feed a workload description (destination sets, rates, group
// capacities) to the §III-C optimizer and print the chosen overlay tree.
// Demonstrates how deployments adapt the tree to traffic skew.
//
//   $ ./examples/tree_planner
#include <cstdio>
#include <string>

#include "optimizer/search.hpp"

namespace {

using namespace byzcast;

std::string name_of(GroupId g) {
  return g.value >= 10 ? "h" + std::to_string(g.value - 10)
                       : "g" + std::to_string(g.value);
}

void render(const core::OverlayTree& tree, GroupId node, int indent) {
  std::printf("%*s%s%s\n", indent, "", name_of(node).c_str(),
              tree.is_target(node) ? " (target)" : " (auxiliary)");
  for (const GroupId child : tree.children(node)) {
    render(tree, child, indent + 4);
  }
}

void plan(const char* title, const optimizer::WorkloadSpec& spec,
          const std::vector<GroupId>& targets,
          const std::vector<GroupId>& aux) {
  std::printf("=== %s ===\n", title);
  for (const auto& d : spec.destinations) {
    std::string dst;
    for (const GroupId g : d) dst += name_of(g) + " ";
    std::printf("  %.0f msg/s -> %s\n", spec.load_of(d), dst.c_str());
  }
  const auto result = optimizer::optimize_tree(targets, aux, spec);
  if (!result) {
    std::printf("  no feasible tree: the workload exceeds every layout's "
                "capacity.\n\n");
    return;
  }
  std::printf("  best tree (sum of heights %d, %zu candidates searched):\n",
              result->evaluation.sum_heights,
              result->candidates_considered);
  render(result->tree, result->tree.root(), 4);
  for (const auto& [g, load] : result->evaluation.load) {
    if (!result->tree.is_target(g)) {
      std::printf("    load on %s: %.0f msg/s (capacity %.0f)\n",
                  name_of(g).c_str(), load, spec.capacity_of(g));
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::vector<GroupId> targets = {GroupId{1}, GroupId{2}, GroupId{3},
                                        GroupId{4}};
  const std::vector<GroupId> aux = {GroupId{11}, GroupId{12}, GroupId{13}};

  // Scenario 1: the paper's uniform workload — a flat 2-level tree wins.
  optimizer::WorkloadSpec uniform =
      optimizer::uniform_pairs_workload(targets, 1200.0);
  for (const GroupId h : aux) uniform.capacity[h] = 9500.0;
  plan("uniform pairs @1200 msg/s (paper Table II)", uniform, targets, aux);

  // Scenario 2: the paper's skewed workload — the root would melt; the
  // optimizer splits the two hot pairs across two auxiliaries.
  optimizer::WorkloadSpec skewed =
      optimizer::skewed_pairs_workload(targets, 9000.0);
  for (const GroupId h : aux) skewed.capacity[h] = 9500.0;
  plan("skewed pairs @9000 msg/s (paper Table II)", skewed, targets, aux);

  // Scenario 3: one scorching pair plus background traffic — a custom
  // workload beyond the paper's tables.
  optimizer::WorkloadSpec custom;
  custom.add(optimizer::make_destination({targets[0], targets[1]}), 8000.0);
  custom.add(optimizer::make_destination({targets[2], targets[3]}), 500.0);
  custom.add(optimizer::make_destination({targets[1], targets[2]}), 500.0);
  for (const GroupId h : aux) custom.capacity[h] = 9500.0;
  plan("one hot pair + background traffic", custom, targets, aux);

  // Scenario 4: infeasible — a single destination pair hotter than any
  // group can sustain.
  optimizer::WorkloadSpec impossible;
  impossible.add(optimizer::make_destination({targets[0], targets[1]}),
                 50000.0);
  for (const GroupId h : aux) impossible.capacity[h] = 9500.0;
  plan("infeasible: 50k msg/s on one pair", impossible, targets, aux);

  return 0;
}
