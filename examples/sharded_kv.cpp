// Sharded replicated key-value store on ByzCast — the paper's motivating
// use case (§II-D): each shard is a BFT replicated state machine; requests
// touching one shard are multicast to that shard only (local), cross-shard
// transfers are multicast to both shards (global) and executed in acyclic
// order everywhere.
//
// Operations (encoded as text payloads):
//   PUT <key> <value>          -> shard_of(key)
//   GET <key>                  -> shard_of(key)
//   TRANSFER <from> <to> <amt> -> both shards, atomically
//
//   $ ./examples/sharded_kv
#include <cstdio>
#include <map>
#include <sstream>

#include "core/system.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace byzcast;

constexpr int kNumShards = 2;

GroupId shard_of(const std::string& key) {
  return GroupId{static_cast<std::int32_t>(
      std::hash<std::string>{}(key) % kNumShards)};
}

/// One replica's copy of one shard: an integer-account store. Deterministic:
/// every correct replica of the shard applies the same deliveries in the
/// same order and returns identical replies (f+1 of which the client needs).
class KvShard final : public core::ShardApplication {
 public:
  Bytes apply(GroupId shard, const core::MulticastMessage& m) override {
    std::istringstream in(to_text(m.payload));
    std::string op;
    in >> op;
    if (op == "PUT") {
      std::string key;
      long value = 0;
      in >> key >> value;
      data_[key] = value;
      return to_bytes("OK");
    }
    if (op == "GET") {
      std::string key;
      in >> key;
      const auto it = data_.find(key);
      return to_bytes(it == data_.end() ? "NIL" : std::to_string(it->second));
    }
    if (op == "TRANSFER") {
      // Both shards deliver this message in acyclic order; each applies the
      // side that belongs to it. Balances never go negative because both
      // shards evaluate the same deterministic rule on the same op.
      std::string from, to;
      long amount = 0;
      in >> from >> to >> amount;
      if (shard_of(from) == shard) {
        data_[from] -= amount;
      }
      if (shard_of(to) == shard) {
        data_[to] += amount;
      }
      return to_bytes("XFER-OK");
    }
    return to_bytes("ERR");
  }

  [[nodiscard]] long value(const std::string& key) const {
    const auto it = data_.find(key);
    return it == data_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, long> data_;
};

}  // namespace

int main() {
  sim::Simulation simulation(7, sim::Profile::lan());

  std::vector<GroupId> shards;
  for (int s = 0; s < kNumShards; ++s) shards.push_back(GroupId{s});
  core::ByzCastSystem system(
      simulation, core::OverlayTree::two_level(shards, GroupId{100}),
      /*f=*/1);

  // One KvShard instance per replica of each shard group (replicas must not
  // share state — that is the whole point of replication).
  std::map<std::pair<int, int>, KvShard> stores;
  for (const GroupId g : shards) {
    for (int i = 0; i < 4; ++i) {
      system.node(g, i).set_shard_application(&stores[{g.value, i}]);
    }
  }

  auto client = system.make_client("teller");

  // Sequential script driven through completion callbacks (closed loop).
  const std::vector<std::pair<std::vector<std::string>, std::string>> script =
      {
          {{"alice"}, "PUT alice 100"},
          {{"bob"}, "PUT bob 50"},
          {{"alice", "bob"}, "TRANSFER alice bob 30"},
          {{"alice"}, "GET alice"},
          {{"bob"}, "GET bob"},
      };

  std::size_t step = 0;
  std::function<void()> next = [&] {
    if (step == script.size()) return;
    const auto& [keys, op] = script[step++];
    std::vector<GroupId> dst;
    for (const auto& key : keys) dst.push_back(shard_of(key));
    client->a_multicast(dst, to_bytes(op),
                        [&, op = op](const core::MulticastMessage&,
                                     Time latency) {
                          std::printf("%-26s -> done in %5.2f ms\n",
                                      op.c_str(), to_ms(latency));
                          next();
                        });
  };
  next();
  simulation.run_until(30 * kSecond);

  std::printf("\nfinal balances (replica 0 of each shard):\n");
  const long alice = stores[{shard_of("alice").value, 0}].value("alice");
  const long bob = stores[{shard_of("bob").value, 0}].value("bob");
  std::printf("  alice = %ld (expected 70)\n", alice);
  std::printf("  bob   = %ld (expected 80)\n", bob);

  // All replicas of a shard hold identical state.
  for (const GroupId g : shards) {
    for (int i = 1; i < 4; ++i) {
      for (const auto& key : {"alice", "bob"}) {
        if (stores[{g.value, i}].value(key) !=
            stores[{g.value, 0}].value(key)) {
          std::printf("REPLICA DIVERGENCE at shard %d replica %d\n", g.value,
                      i);
          return 1;
        }
      }
    }
  }
  std::printf("  all replicas of each shard agree.\n");
  return (alice == 70 && bob == 80 && step == script.size()) ? 0 : 1;
}
