// Command-line experiment runner: compose any §V-style experiment without
// writing code. All paper scenarios are expressible.
//
//   $ ./examples/run_experiment --protocol byzcast2 --groups 4
//       --clients 40 --pattern mixed --env lan --duration 4 --seed 7
//   $ ./examples/run_experiment --protocol baseline --pattern global
//       --env wan --open-loop 9000
//
// Flags (defaults in brackets):
//   --protocol byzcast2|byzcast3|baseline|bftsmart   [byzcast2]
//   --groups N          target groups                [4]
//   --clients N         clients per group            [20]
//   --pattern local|global|skewed|mixed              [mixed]
//   --env lan|wan                                    [lan]
//   --open-loop RATE    aggregate msgs/s, 0 = closed loop [0]
//   --duration SECONDS  measurement window           [4]
//   --warmup SECONDS                                 [1]
//   --seed N                                         [42]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;
using namespace byzcast::workload;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s\nsee the header of run_experiment.cpp\n",
               msg);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::kByzCast2Level;
  cfg.num_groups = 4;
  cfg.clients_per_group = 20;
  cfg.workload.pattern = Pattern::kMixed;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 4 * kSecond;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--protocol") {
      const std::string v = next();
      if (v == "byzcast2") cfg.protocol = Protocol::kByzCast2Level;
      else if (v == "byzcast3") cfg.protocol = Protocol::kByzCast3Level;
      else if (v == "baseline") cfg.protocol = Protocol::kBaseline;
      else if (v == "bftsmart") cfg.protocol = Protocol::kBftSmart;
      else usage("unknown protocol");
    } else if (flag == "--groups") {
      cfg.num_groups = std::atoi(next().c_str());
    } else if (flag == "--clients") {
      cfg.clients_per_group = std::atoi(next().c_str());
    } else if (flag == "--pattern") {
      const std::string v = next();
      if (v == "local") cfg.workload.pattern = Pattern::kLocalOnly;
      else if (v == "global") cfg.workload.pattern = Pattern::kGlobalUniformPairs;
      else if (v == "skewed") cfg.workload.pattern = Pattern::kGlobalSkewedPairs;
      else if (v == "mixed") cfg.workload.pattern = Pattern::kMixed;
      else usage("unknown pattern");
    } else if (flag == "--env") {
      const std::string v = next();
      if (v == "lan") cfg.environment = Environment::kLan;
      else if (v == "wan") cfg.environment = Environment::kWan;
      else usage("unknown env");
    } else if (flag == "--open-loop") {
      cfg.open_loop_total_rate = std::atof(next().c_str());
    } else if (flag == "--duration") {
      cfg.duration = static_cast<Time>(std::atof(next().c_str()) * kSecond);
    } else if (flag == "--warmup") {
      cfg.warmup = static_cast<Time>(std::atof(next().c_str()) * kSecond);
    } else if (flag == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  if (cfg.num_groups < 1) usage("--groups must be >= 1");
  if (cfg.clients_per_group < 1) usage("--clients must be >= 1");

  const std::string load_mode =
      cfg.open_loop_total_rate > 0
          ? "open-loop " + fmt(cfg.open_loop_total_rate, 0) + " msg/s"
          : "closed-loop";
  std::printf("protocol=%s env=%s groups=%d clients/group=%d %s seed=%llu\n",
              to_string(cfg.protocol), to_string(cfg.environment),
              cfg.num_groups, cfg.clients_per_group, load_mode.c_str(),
              static_cast<unsigned long long>(cfg.seed));

  const ExperimentResult res = run_experiment(cfg);

  print_header("results");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"throughput total", fmt(res.throughput, 0) + " msg/s"});
  rows.push_back({"throughput local", fmt(res.throughput_local, 0) + " msg/s"});
  rows.push_back(
      {"throughput global", fmt(res.throughput_global, 0) + " msg/s"});
  rows.push_back({"completed (run)", std::to_string(res.completed)});
  rows.push_back({"a-deliveries (window)", std::to_string(res.a_deliveries)});
  rows.push_back({"wire messages", std::to_string(res.wire_messages)});
  rows.push_back({"latency", res.latency_all.summary()});
  if (res.latency_local.count() > 0) {
    rows.push_back({"latency local", res.latency_local.summary()});
  }
  if (res.latency_global.count() > 0) {
    rows.push_back({"latency global", res.latency_global.summary()});
  }
  print_table({"metric", "value"}, rows);
  if (res.latency_all.count() > 0) print_cdf("overall", res.latency_all);
  return 0;
}
