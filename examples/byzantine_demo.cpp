// Byzantine-fault demo: the auxiliary group contains one replica that
// fabricates multicast messages and another deployment where the auxiliary
// leader crashes mid-run. Shows (a) the f+1 copy rule filtering forged
// messages and (b) the view change restoring progress.
//
//   $ ./examples/byzantine_demo
#include <cstdio>

#include "core/system.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace byzcast;

int run_fabrication_demo() {
  std::printf("--- demo 1: fabricated relays are filtered by the f+1 rule ---\n");
  sim::Simulation simulation(1, sim::Profile::lan());
  const std::vector<GroupId> targets = {GroupId{0}, GroupId{1}};

  core::FaultPlan plan;
  std::vector<bft::FaultSpec> aux_faults(4);
  aux_faults[2].fabricate_relay = true;  // one lying auxiliary replica
  plan.by_group[GroupId{100}] = aux_faults;

  core::ByzCastSystem system(
      simulation, core::OverlayTree::two_level(targets, GroupId{100}),
      /*f=*/1, plan);

  auto client = system.make_client("honest-client");
  int done = 0;
  std::function<void()> next = [&] {
    if (done == 10) return;
    client->a_multicast({GroupId{0}, GroupId{1}},
                        to_bytes("real-" + std::to_string(done)),
                        [&](const core::MulticastMessage&, Time) {
                          ++done;
                          next();
                        });
  };
  next();
  simulation.run_until(30 * kSecond);

  int forged_delivered = 0;
  for (const auto& rec : system.delivery_log().records()) {
    if (rec.msg.origin.value >= core::kFabricatedOriginBase) {
      ++forged_delivered;
    }
  }
  std::printf("  honest messages completed : %d/10\n", done);
  std::printf("  forged messages delivered : %d (the Byzantine replica "
              "injected one every 3 handled messages)\n",
              forged_delivered);
  std::printf("  => a single Byzantine relay cannot fake the f+1 distinct "
              "copies a child group requires.\n\n");
  return (done == 10 && forged_delivered == 0) ? 0 : 1;
}

int run_leader_crash_demo() {
  std::printf("--- demo 2: auxiliary leader crashes; view change recovers ---\n");
  sim::Simulation simulation(2, sim::Profile::lan());
  const std::vector<GroupId> targets = {GroupId{0}, GroupId{1}};

  core::FaultPlan plan;
  std::vector<bft::FaultSpec> aux_faults(4);
  aux_faults[0].silent_after = 2 * kSecond;  // leader of view 0 dies at t=2s
  plan.by_group[GroupId{100}] = aux_faults;

  core::ByzCastSystem system(
      simulation, core::OverlayTree::two_level(targets, GroupId{100}),
      /*f=*/1, plan);

  auto client = system.make_client("client");
  int done = 0;
  Time slowest = 0;
  std::function<void()> next = [&] {
    if (done == 30) return;
    client->a_multicast({GroupId{0}, GroupId{1}},
                        to_bytes("op-" + std::to_string(done)),
                        [&](const core::MulticastMessage&, Time latency) {
                          slowest = std::max(slowest, latency);
                          ++done;
                          next();
                        });
  };
  next();
  simulation.run_until(120 * kSecond);

  const auto& aux = system.group(GroupId{100});
  std::printf("  messages completed        : %d/30\n", done);
  std::printf("  auxiliary group view now  : %llu (0 before the crash)\n",
              static_cast<unsigned long long>(aux.replica(1).view()));
  std::printf("  slowest message latency   : %.0f ms (the one that waited "
              "out the leader timeout)\n",
              to_ms(slowest));
  std::printf("  => ordering stalls for ~one leader timeout, then the "
              "synchronization phase elects a new leader.\n");
  return (done == 30 && aux.replica(1).view() >= 1) ? 0 : 1;
}

}  // namespace

int main() {
  const int rc1 = run_fabrication_demo();
  const int rc2 = run_leader_crash_demo();
  return rc1 == 0 && rc2 == 0 ? 0 : 1;
}
