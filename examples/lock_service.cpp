// Sharded lock service on ByzCast: locks are partitioned across two shard
// groups; ACQUIRE of several locks at once is multicast to all owning
// shards. Because atomic multicast delivers in acyclic order, every shard
// resolves contending multi-lock requests in the SAME order — the classic
// deadlock (client 1 holds A waits for B, client 2 holds B waits for A)
// cannot occur.
//
//   $ ./examples/lock_service
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "core/system.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace byzcast;

constexpr int kNumShards = 2;

GroupId shard_of(const std::string& lock) {
  return GroupId{static_cast<std::int32_t>(
      std::hash<std::string>{}(lock) % kNumShards)};
}

/// One replica's lock table. Ops:
///   ACQUIRE <client> <lock> [lock...]  -> GRANTED | QUEUED
///   RELEASE <client> <lock> [lock...]  -> RELEASED
/// Deterministic: grants strictly follow a-delivery order.
class LockShard final : public core::ShardApplication {
 public:
  Bytes apply(GroupId shard, const core::MulticastMessage& m) override {
    std::istringstream in(to_text(m.payload));
    std::string op, client;
    in >> op >> client;
    std::vector<std::string> locks;
    for (std::string lock; in >> lock;) {
      if (shard_of(lock) == shard) locks.push_back(lock);
    }
    if (op == "ACQUIRE") {
      bool all_free = true;
      for (const auto& lock : locks) {
        if (holder_.contains(lock) && holder_[lock] != client) {
          all_free = false;
        }
      }
      if (all_free) {
        for (const auto& lock : locks) holder_[lock] = client;
        return to_bytes("GRANTED");
      }
      for (const auto& lock : locks) queue_[lock].push_back(client);
      return to_bytes("QUEUED");
    }
    if (op == "RELEASE") {
      for (const auto& lock : locks) {
        if (holder_[lock] == client) {
          holder_.erase(lock);
          // Grant to the first queued waiter, if any.
          auto& waiters = queue_[lock];
          if (!waiters.empty()) {
            holder_[lock] = waiters.front();
            waiters.erase(waiters.begin());
          }
        }
      }
      return to_bytes("RELEASED");
    }
    return to_bytes("ERR");
  }

  [[nodiscard]] std::string holder(const std::string& lock) const {
    const auto it = holder_.find(lock);
    return it == holder_.end() ? "(free)" : it->second;
  }

 private:
  std::map<std::string, std::string> holder_;
  std::map<std::string, std::vector<std::string>> queue_;
};

}  // namespace

int main() {
  sim::Simulation simulation(21, sim::Profile::lan());
  std::vector<GroupId> shards;
  for (int s = 0; s < kNumShards; ++s) shards.push_back(GroupId{s});
  core::ByzCastSystem system(
      simulation, core::OverlayTree::two_level(shards, GroupId{100}),
      /*f=*/1);

  std::map<std::pair<int, int>, LockShard> tables;
  for (const GroupId g : shards) {
    for (int i = 0; i < 4; ++i) {
      system.node(g, i).set_shard_application(&tables[{g.value, i}]);
    }
  }

  // Locks "alpha" and "beta" land on different shards (verify; else rename).
  std::string a = "alpha";
  std::string b = "beta";
  if (shard_of(a) == shard_of(b)) b = "gamma";
  if (shard_of(a) == shard_of(b)) b = "delta";
  std::printf("lock '%s' on shard g%d, lock '%s' on shard g%d\n", a.c_str(),
              shard_of(a).value, b.c_str(), shard_of(b).value);

  // Two clients race to atomically acquire BOTH locks — the deadlock-prone
  // pattern under plain per-shard locking.
  auto c1 = system.make_client("client1");
  auto c2 = system.make_client("client2");
  const std::vector<GroupId> both = {shard_of(a), shard_of(b)};

  std::map<std::string, std::string> outcome;
  c1->a_multicast(both, to_bytes("ACQUIRE client1 " + a + " " + b),
                  [&](const core::MulticastMessage&, Time) {
                    outcome["client1"] =
                        tables[{shard_of(a).value, 0}].holder(a);
                  });
  c2->a_multicast(both, to_bytes("ACQUIRE client2 " + a + " " + b),
                  [&](const core::MulticastMessage&, Time) {
                    outcome["client2"] =
                        tables[{shard_of(a).value, 0}].holder(a);
                  });
  simulation.run_until(10 * kSecond);

  const std::string holder_a = tables[{shard_of(a).value, 0}].holder(a);
  const std::string holder_b = tables[{shard_of(b).value, 0}].holder(b);
  std::printf("after the race: '%s' held by %s, '%s' held by %s\n", a.c_str(),
              holder_a.c_str(), b.c_str(), holder_b.c_str());

  // The SAME client holds both locks on every replica of both shards: the
  // acyclic delivery order picked one winner globally (no deadlock, no
  // split ownership).
  bool consistent = holder_a == holder_b && holder_a != "(free)";
  for (const GroupId g : shards) {
    for (int i = 1; i < 4; ++i) {
      for (const auto& lock : {a, b}) {
        if (shard_of(lock) != g) continue;
        if (tables[{g.value, i}].holder(lock) !=
            tables[{g.value, 0}].holder(lock)) {
          consistent = false;
        }
      }
    }
  }
  std::printf("ownership consistent across replicas and shards: %s\n",
              consistent ? "yes" : "NO");

  // Winner releases; the loser's queued request is granted deterministically.
  auto c3 = system.make_client("janitor");
  bool released = false;
  c3->a_multicast(both,
                  to_bytes("RELEASE " + holder_a + " " + a + " " + b),
                  [&](const core::MulticastMessage&, Time) {
                    released = true;
                  });
  simulation.run_until(20 * kSecond);
  std::printf("after release: '%s' held by %s, '%s' held by %s\n", a.c_str(),
              tables[{shard_of(a).value, 0}].holder(a).c_str(), b.c_str(),
              tables[{shard_of(b).value, 0}].holder(b).c_str());

  return (consistent && released) ? 0 : 1;
}
