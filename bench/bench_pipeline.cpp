// Consensus pipelining / adaptive batching sweep. A WAN group's consensus
// round is network-bound (inter-region RTTs dwarf the leader's CPU), so the
// sequential protocol caps at one batch_max batch per round trip — here
// ~2.9k msg/s — no matter the offered load. The sweep drives a 2-level
// mixed open-loop workload at 6k msg/s (twice the sequential ceiling)
// through pipeline depths 1/2/4/8 (depth 1 = the sequential
// one-instance-at-a-time ablation) under both the default assembly window
// (batch_timeout 0 = the cpu_propose_fixed window) and a short 400us cut.
// Span tracing is on for every run, so the critical-path decomposition
// shows *where* a deeper window buys its throughput: the queueing component
// (mailbox + batch-assembly backlog) collapses against the saturated
// depth-1 ablation, while cpu and network stay put.
//
// (The LAN preset is the wrong place to look for this win: its calibrated
// cost model is leader-CPU-bound — every extra instance pays the fixed
// propose/validate cost, so at saturation the deepest batches, i.e. depth
// 1, are optimal. That is BFT-SMaRt's own observation; pipelining is a
// geo-replication lever.)
//
// Writes BENCH_pipeline.json and enforces, in-process (the simulation is
// deterministic, so these are stable gates, not flaky wall-clock
// comparisons):
//
//  * every configuration completes and its invariant monitors are clean;
//  * at the default window, the best depth > 1 beats the depth-1
//    ablation's mixed throughput by at least 20%;
//  * the global-class queueing p50 at the best depth does not exceed the
//    depth-1 ablation's.
//
// CI runs this binary in the perf-smoke job; tools/plot_benches.py picks up
// the JSON for the summary.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/critical_path.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

constexpr std::uint32_t kDepths[] = {1, 2, 4, 8};
constexpr Time kTimeouts[] = {0, 400 * kMicrosecond};  // 0 = preset window
constexpr double kOfferedRate = 6000.0;  // ~2x the depth-1 WAN ceiling

struct RunResult {
  std::uint32_t depth = 0;
  Time batch_timeout = 0;
  double throughput = 0.0;
  double throughput_global = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  core::ClassAggregate local;
  core::ClassAggregate global;
  std::uint64_t violations = 0;
  std::uint64_t completed = 0;
};

RunResult run_one(std::uint32_t depth, Time batch_timeout) {
  workload::ExperimentConfig config;
  config.protocol = workload::Protocol::kByzCast2Level;
  config.environment = workload::Environment::kWan;
  config.num_groups = 2;
  config.f = 1;
  config.clients_per_group = 100;
  config.workload.pattern = workload::Pattern::kMixed;
  config.open_loop_total_rate = kOfferedRate;
  config.payload_size = 64;
  config.warmup = 5 * kSecond;
  config.duration = 10 * kSecond;
  config.seed = 42;
  config.span_tracing = true;
  config.span_sample_every = 32;
  config.monitors = true;
  // The saturated depth-1 ablation queues tens of thousands of admitted
  // requests by design; leave the pending-copies bound off and keep the
  // ordering/agreement monitors armed.
  config.monitor_pending_bound = 0;
  config.pipeline_depth = depth;
  config.batch_timeout = batch_timeout;

  const workload::ExperimentResult result = workload::run_experiment(config);

  RunResult r;
  r.depth = depth;
  r.batch_timeout = batch_timeout;
  r.throughput = result.throughput;
  r.throughput_global = result.throughput_global;
  r.p50_ms = result.latency_all.percentile_ms(50.0);
  r.p99_ms = result.latency_all.percentile_ms(99.0);
  r.completed = result.completed;
  r.violations = result.monitors->total_violations();
  core::CriticalPathAnalyzer analyzer(
      *result.spans, core::CriticalPathAnalyzer::Options{config.f});
  r.local = analyzer.aggregate(/*global=*/false);
  r.global = analyzer.aggregate(/*global=*/true);
  return r;
}

double ms(Time t) { return static_cast<double>(t) / 1e6; }

void emit_aggregate(std::ofstream& out, const char* name,
                    const core::ClassAggregate& agg) {
  out << "\"" << name << "\":{\"n\":" << agg.n
      << ",\"end_to_end_p50_ns\":" << agg.end_to_end.p50
      << ",\"queueing_p50_ns\":" << agg.queueing.p50
      << ",\"cpu_p50_ns\":" << agg.cpu.p50
      << ",\"network_p50_ns\":" << agg.network.p50
      << ",\"quorum_wait_p50_ns\":" << agg.quorum_wait.p50 << "}";
}

}  // namespace

int main() {
  using workload::fmt;
  workload::print_header(
      "Pipelining sweep: ByzCast-2L WAN, 2 groups mixed 10:1, f=1, "
      "open-loop 6k msg/s, depth x batch-timeout (depth 1 = sequential "
      "ablation)");

  std::vector<RunResult> runs;
  for (const Time timeout : kTimeouts) {
    for (const std::uint32_t depth : kDepths) {
      runs.push_back(run_one(depth, timeout));
      const RunResult& r = runs.back();
      std::printf("depth=%u timeout=%lldus: %.0f msg/s (completed %llu)\n",
                  r.depth,
                  static_cast<long long>(r.batch_timeout / kMicrosecond),
                  r.throughput, static_cast<unsigned long long>(r.completed));
    }
  }

  std::vector<std::vector<std::string>> rows;
  for (const RunResult& r : runs) {
    rows.push_back(
        {std::to_string(r.depth),
         r.batch_timeout == 0
             ? "preset"
             : std::to_string(r.batch_timeout / kMicrosecond) + "us",
         fmt(r.throughput, 0), fmt(r.p50_ms, 2), fmt(r.p99_ms, 2),
         fmt(ms(r.global.queueing.p50), 2),
         fmt(ms(r.global.quorum_wait.p50), 2),
         std::to_string(r.violations)});
  }
  workload::print_table({"depth", "window", "msgs/s", "p50 ms", "p99 ms",
                         "glob queue p50", "glob quorum p50", "violations"},
                        rows);

  // Depth-1 ablation vs the best deeper window, at the default assembly
  // window (timeout row 0 holds runs 0..3 in kDepths order).
  const RunResult& ablation = runs[0];
  const RunResult* best = &ablation;
  for (std::size_t i = 1; i < 4; ++i) {
    if (runs[i].throughput > best->throughput) best = &runs[i];
  }
  std::printf(
      "\nbest depth %u: %.0f msg/s vs depth-1 ablation %.0f msg/s "
      "(%+.1f%%); global queueing p50 %.2f -> %.2f ms\n",
      best->depth, best->throughput, ablation.throughput,
      ablation.throughput > 0.0
          ? 100.0 * (best->throughput - ablation.throughput) /
                ablation.throughput
          : 0.0,
      ms(ablation.global.queueing.p50), ms(best->global.queueing.p50));

  std::ofstream out("BENCH_pipeline.json");
  if (out) {
    out << "{\"bench\":\"pipeline\",\"backend\":\"sim\",\"environment\":"
        << "\"wan\",\"protocol\":\"byzcast-2l\",\"groups\":2,\"f\":1,"
        << "\"pattern\":\"mixed\",\"clients_per_group\":100,"
        << "\"open_loop_rate_msgs_s\":" << kOfferedRate << ","
        << "\"knobs\":\"Profile::pipeline_depth x Profile::batch_timeout "
        << "(0 = cpu_propose_fixed window); depth 1 = sequential ablation\","
        << "\"configs\":[";
    bool first = true;
    for (const RunResult& r : runs) {
      if (!first) out << ",";
      first = false;
      out << "{\"pipeline_depth\":" << r.depth
          << ",\"batch_timeout_us\":" << r.batch_timeout / kMicrosecond
          << ",\"throughput_msgs_s\":" << r.throughput
          << ",\"throughput_global_msgs_s\":" << r.throughput_global
          << ",\"latency_p50_ms\":" << r.p50_ms << ",\"latency_p99_ms\":"
          << r.p99_ms << ",\"monitor_violations\":" << r.violations << ",";
      emit_aggregate(out, "local", r.local);
      out << ",";
      emit_aggregate(out, "global", r.global);
      out << "}";
    }
    out << "]}\n";
  }

  int failures = 0;
  for (const RunResult& r : runs) {
    if (r.completed == 0 || r.throughput <= 0.0) {
      std::printf("FAIL: depth=%u timeout=%lld did not complete\n", r.depth,
                  static_cast<long long>(r.batch_timeout));
      ++failures;
    }
    if (r.violations != 0) {
      std::printf("FAIL: depth=%u timeout=%lld tripped %llu invariant "
                  "violations\n",
                  r.depth, static_cast<long long>(r.batch_timeout),
                  static_cast<unsigned long long>(r.violations));
      ++failures;
    }
  }
  if (best->throughput < 1.2 * ablation.throughput) {
    std::printf("FAIL: best depth %.0f msg/s is not >= 1.2x the depth-1 "
                "ablation (%.0f msg/s)\n",
                best->throughput, ablation.throughput);
    ++failures;
  }
  if (best->global.queueing.p50 > ablation.global.queueing.p50) {
    std::printf("FAIL: global queueing p50 grew against the ablation "
                "(%.2f -> %.2f ms)\n",
                ms(ablation.global.queueing.p50),
                ms(best->global.queueing.p50));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
