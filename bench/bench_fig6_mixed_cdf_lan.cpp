// Figure 6: latency CDF with a mixed workload (10:1 local:global) in a LAN,
// 4 target groups. Expected shapes: Baseline's local and global latencies
// are similar (everything is ordered by the root); ByzCast's local latency
// is much lower than its global latency and matches the local-only workload
// (no convoy effect).
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

int main() {
  using namespace byzcast;
  using namespace byzcast::workload;

  print_header("Figure 6: latency CDF, mixed 10:1 workload, LAN, 4 groups");

  const auto run = [](Protocol protocol, Pattern pattern) {
    ExperimentConfig cfg;
    cfg.protocol = protocol;
    cfg.num_groups = 4;
    cfg.clients_per_group = 40;  // paper: 160 clients over 4 groups
    cfg.workload.pattern = pattern;
    cfg.warmup = 1 * kSecond;
    cfg.duration = 3 * kSecond;
    cfg.seed = 17;
    return run_experiment(cfg);
  };

  const ExperimentResult base = run(Protocol::kBaseline, Pattern::kMixed);
  const ExperimentResult byz = run(Protocol::kByzCast2Level, Pattern::kMixed);
  // Reference: ByzCast under 100% local traffic (for the no-convoy check).
  const ExperimentResult local_only =
      run(Protocol::kByzCast2Level, Pattern::kLocalOnly);

  std::printf("\n(a) Baseline\n");
  print_cdf("  local", base.latency_local);
  print_cdf("  global", base.latency_global);

  std::printf("\n(b) ByzCast\n");
  print_cdf("  local", byz.latency_local);
  print_cdf("  global", byz.latency_global);

  write_cdf_csv("bench_csv/fig6_baseline_local.csv", base.latency_local);
  write_cdf_csv("bench_csv/fig6_baseline_global.csv", base.latency_global);
  write_cdf_csv("bench_csv/fig6_byzcast_local.csv", byz.latency_local);
  write_cdf_csv("bench_csv/fig6_byzcast_global.csv", byz.latency_global);
  write_metrics_sidecar("bench_csv/fig6_metrics.json", byz);

  std::printf("\nConvoy-effect check (ByzCast local latency, median):\n");
  std::printf("  with 10%% global traffic : %.2f ms\n",
              byz.latency_local.median_ms());
  std::printf("  with 100%% local traffic: %.2f ms\n",
              local_only.latency_local.median_ms());

  std::printf(
      "\nPaper Fig. 6: Baseline local ~= global; ByzCast local far below "
      "global up to the 99.5th percentile, and unaffected by the global "
      "traffic (no convoy effect).\n");
  return 0;
}
