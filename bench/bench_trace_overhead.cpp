// Tracing overhead on the wall-clock runtime backend: the same 4-group
// mixed closed-loop workload as bench_runtime_throughput, run with span
// tracing off, sampled (every 16th message per client) and full (every
// message), on real threads. Writes BENCH_trace.json with the measured
// throughput of each mode and the overhead relative to off.
//
// The knob is Client::set_trace_sample_every(n) — 0 disables tracing, n
// traces every n-th message of that client's stream (uid % n == 0) —
// surfaced as ExperimentConfig::span_sample_every for the simulator
// harness. The target for the sampled mode is <5% regression; each mode
// runs several times and the best throughput is kept, since single
// wall-clock runs on a shared host are noisy.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/span.hpp"
#include "core/multicast.hpp"
#include "core/tree.hpp"
#include "runtime/parallel_system.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

constexpr int kGroups = 4;
constexpr int kClients = 2;
constexpr int kMsgsPerClient = 150;
constexpr int kRepeats = 3;
constexpr std::size_t kPayload = 64;

struct ModeResult {
  std::string mode;
  std::uint32_t sample_every = 0;
  double throughput = 0.0;       // best over kRepeats
  std::uint64_t spans = 0;       // spans recorded in the best run
  std::uint64_t dropped = 0;
};

core::OverlayTree make_tree() {
  std::vector<GroupId> targets;
  for (int i = 0; i < kGroups; ++i) targets.push_back(GroupId{i});
  return core::OverlayTree::two_level(targets, GroupId{100});
}

double run_once(std::uint32_t sample_every, std::uint64_t* spans,
                std::uint64_t* dropped) {
  runtime::ParallelOptions opts;
  opts.runtime.seed = 97;
  SpanLog span_log;
  if (sample_every > 0) opts.obs.spans = &span_log;
  runtime::ParallelSystem system(make_tree(), /*f=*/1, opts);

  std::vector<core::Client*> clients;
  std::vector<Rng> rngs;
  for (int c = 0; c < kClients; ++c) {
    auto& client = system.add_client("client" + std::to_string(c));
    client.set_trace_sample_every(sample_every);
    clients.push_back(&client);
    rngs.push_back(system.env().fork_rng());
  }

  const Bytes payload(kPayload, std::uint8_t{0xab});
  const int total = kClients * kMsgsPerClient;
  std::vector<int> sent(kClients, 0);
  std::atomic<int> done{0};

  // Mixed workload: half the messages go to a random pair of distinct
  // groups, half to one random group (same shape as runtime_throughput).
  std::function<void(int)> issue = [&](int c) {
    auto& count = sent[static_cast<std::size_t>(c)];
    if (count == kMsgsPerClient) return;
    ++count;
    Rng& rng = rngs[static_cast<std::size_t>(c)];
    std::vector<GroupId> dst;
    if (rng.next_bool(0.5)) {
      const auto a = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(kGroups)));
      const auto b = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(kGroups - 1)));
      dst = {GroupId{a}, GroupId{b < a ? b : b + 1}};
    } else {
      dst = {GroupId{static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(kGroups)))}};
    }
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time) {
          done.fetch_add(1);
          issue(c);
        });
  };

  system.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    system.env().run_on(clients[static_cast<std::size_t>(c)]->id(),
                        [&issue, c] { issue(c); });
  }
  const auto deadline = t0 + std::chrono::minutes(5);
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t1 = std::chrono::steady_clock::now();
  system.stop();

  if (spans != nullptr) *spans = span_log.spans().size();
  if (dropped != nullptr) *dropped = span_log.dropped();
  const double elapsed_s =
      std::chrono::duration<double>(t1 - t0).count();
  return done.load() / elapsed_s;
}

ModeResult run_mode(const std::string& mode, std::uint32_t sample_every) {
  ModeResult r;
  r.mode = mode;
  r.sample_every = sample_every;
  for (int i = 0; i < kRepeats; ++i) {
    std::uint64_t spans = 0;
    std::uint64_t dropped = 0;
    const double thr = run_once(sample_every, &spans, &dropped);
    if (thr > r.throughput) {
      r.throughput = thr;
      r.spans = spans;
      r.dropped = dropped;
    }
  }
  return r;
}

}  // namespace

int main() {
  using workload::fmt;
  workload::print_header(
      "Tracing overhead: runtime backend, 4 groups mixed, f=1");

  const ModeResult off = run_mode("off", 0);
  const ModeResult sampled = run_mode("sampled", 16);
  const ModeResult full = run_mode("full", 1);

  const auto pct = [&off](const ModeResult& r) {
    return off.throughput > 0.0
               ? 100.0 * (off.throughput - r.throughput) / off.throughput
               : 0.0;
  };
  std::vector<std::vector<std::string>> rows;
  for (const ModeResult* r : {&off, &sampled, &full}) {
    rows.push_back({r->mode, std::to_string(r->sample_every),
                    fmt(r->throughput, 0),
                    r == &off ? "-" : fmt(pct(*r), 1),
                    std::to_string(r->spans)});
  }
  workload::print_table(
      {"mode", "sample_every", "msgs/s", "overhead %", "spans"}, rows);
  std::printf(
      "\nknob: Client::set_trace_sample_every / "
      "ExperimentConfig::span_sample_every (0 = off). Target: sampled "
      "overhead < 5%%.\n");

  std::ofstream out("BENCH_trace.json");
  if (out) {
    out << "{\"bench\":\"trace_overhead\",\"backend\":\"runtime\",\"f\":1,"
        << "\"groups\":" << kGroups << ",\"pattern\":\"mixed\",\"clients\":"
        << kClients << ",\"msgs_per_client\":" << kMsgsPerClient
        << ",\"repeats\":" << kRepeats
        << ",\"knob\":\"Client::set_trace_sample_every "
           "(ExperimentConfig::span_sample_every); 0 = off\""
        << ",\"target_sampled_overhead_pct\":5,\"configs\":[";
    bool first = true;
    for (const ModeResult* r : {&off, &sampled, &full}) {
      if (!first) out << ",";
      first = false;
      out << "{\"mode\":\"" << r->mode << "\",\"sample_every\":"
          << r->sample_every << ",\"throughput_msgs_s\":" << r->throughput;
      if (r != &off) out << ",\"overhead_pct\":" << pct(*r);
      out << ",\"spans_recorded\":" << r->spans << ",\"spans_dropped\":"
          << r->dropped << "}";
    }
    out << "]}\n";
  }

  // Completion is the only hard gate; overhead numbers are host-dependent.
  int failures = 0;
  for (const ModeResult* r : {&off, &sampled, &full}) {
    if (r->throughput <= 0.0) {
      std::printf("FAIL: %s mode did not complete\n", r->mode.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
