// Ablations of design choices (not in the paper's figures, but backing its
// §IV/§VI discussion):
//   1. Batching window: Mod-SMaRt's proposal assembly delay trades single-
//      client latency for saturated throughput.
//   2. Fault threshold f: BFT protocols lose throughput as groups grow
//      (3f+1 replicas, quadratic vote traffic) — the fault-scalability
//      argument of §VI-B, and the reason ByzCast scales by adding groups
//      rather than growing one group.
#include <cstdio>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "common/stats.hpp"
#include "sim/simulation.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

struct Result {
  double throughput;
  double median_ms;
};

/// Saturated single-group run with `clients` closed-loop clients.
Result run_group(const sim::Profile& profile, int f, int clients,
                 Time warmup = kSecond, Time duration = 3 * kSecond) {
  sim::Simulation sim(5, profile);
  const bft::AppFactory factory = [](int) {
    return std::make_unique<bft::EchoApplication>();
  };
  bft::Group group(sim, GroupId{0}, f, factory);

  ThroughputMeter meter;
  LatencyRecorder latency;
  latency.set_warmup(warmup);
  std::vector<std::unique_ptr<bft::ClientProxy>> proxies;
  for (int c = 0; c < clients; ++c) {
    proxies.push_back(std::make_unique<bft::ClientProxy>(
        sim, group.info(), "c" + std::to_string(c)));
  }
  const Time horizon = warmup + duration;
  std::function<void(std::size_t)> issue = [&](std::size_t c) {
    if (sim.now() >= horizon) return;
    proxies[c]->invoke(Bytes(64, 0xAB), [&, c](const Bytes&, Time l) {
      meter.record(sim.now());
      latency.record(sim.now(), l);
      issue(c);
    });
  };
  for (std::size_t c = 0; c < proxies.size(); ++c) issue(c);
  sim.run_until(horizon);
  return Result{meter.rate_per_sec(warmup, horizon), latency.median_ms()};
}

}  // namespace

int main() {
  using namespace byzcast::workload;

  print_header("Ablation 1: proposal batching window (f=1, 120 clients)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const Time window :
         {100 * kMicrosecond, 400 * kMicrosecond, 1600 * kMicrosecond,
          6400 * kMicrosecond}) {
      sim::Profile p = sim::Profile::lan();
      p.fast_macs = true;
      p.cpu_propose_fixed = window;
      const Result saturated = run_group(p, 1, 120);
      const Result solo = run_group(p, 1, 1);
      rows.push_back({fmt(to_ms(window), 1) + " ms",
                      fmt(saturated.throughput, 0),
                      fmt(saturated.median_ms, 1),
                      fmt(solo.median_ms, 1)});
    }
    print_table({"window", "sat. throughput msg/s", "sat. median ms",
                 "1-client median ms"},
                rows);
    std::printf(
        "Expected: longer windows -> larger batches (throughput holds or "
        "rises) but single-client latency grows linearly.\n");
  }

  print_header("Ablation 2: batch size cap (f=1, 120 clients)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const std::uint32_t cap : {1u, 8u, 64u, 400u}) {
      sim::Profile p = sim::Profile::lan();
      p.fast_macs = true;
      p.batch_max = cap;
      const Result r = run_group(p, 1, 120);
      rows.push_back({std::to_string(cap), fmt(r.throughput, 0),
                      fmt(r.median_ms, 1)});
    }
    print_table({"batch_max", "throughput msg/s", "median ms"}, rows);
    std::printf(
        "Expected: cap 1 collapses throughput (one consensus per request); "
        "large caps amortize the per-instance fixed costs.\n");
  }

  print_header("Ablation 3: fault threshold f (saturated group)");
  {
    std::vector<std::vector<std::string>> rows;
    for (const int f : {1, 2, 3}) {
      sim::Profile p = sim::Profile::lan();
      p.fast_macs = true;
      const Result r = run_group(p, f, 120);
      rows.push_back({std::to_string(f), std::to_string(3 * f + 1),
                      fmt(r.throughput, 0), fmt(r.median_ms, 1)});
    }
    print_table({"f", "replicas", "throughput msg/s", "median ms"}, rows);
    std::printf(
        "Expected: throughput drops as the group grows (quadratic vote "
        "traffic) — why ByzCast scales with more groups, not bigger ones "
        "(paper §VI-B).\n");
  }
  return 0;
}
