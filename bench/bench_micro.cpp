// Microbenchmarks (google-benchmark) of the building blocks: crypto, codec,
// scheduler, tree operations and the optimizer search. These quantify the
// per-message costs underlying the simulation's calibrated constants.
#include <benchmark/benchmark.h>

#include "common/auth.hpp"
#include "common/hmac.hpp"
#include "common/serde.hpp"
#include "common/sha256.hpp"
#include "core/tree.hpp"
#include "optimizer/search.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace byzcast;

void BM_Sha256_64B(benchmark::State& state) {
  const Bytes data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  const Bytes data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_4KiB);

void BM_HmacSha256_64B(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256_64B);

void BM_AuthenticatorSignVerify(benchmark::State& state) {
  const auto keys = std::make_shared<KeyStore>(1);
  const Authenticator alice(keys, ProcessId{1});
  const Authenticator bob(keys, ProcessId{2});
  const Bytes data(100, 0x42);
  for (auto _ : state) {
    const Digest mac = alice.sign(ProcessId{2}, data);
    benchmark::DoNotOptimize(bob.verify(ProcessId{1}, data, mac));
  }
}
BENCHMARK(BM_AuthenticatorSignVerify);

void BM_CodecRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Writer w;
    w.message_id(MessageId{ProcessId{7}, 42});
    w.u64(123456789);
    w.bytes(Bytes(64, 0xCD));
    const Bytes encoded = w.take();
    Reader r(encoded);
    benchmark::DoNotOptimize(r.message_id());
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.bytes());
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_at(i, [] {});
    }
    scheduler.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_TreeLca(benchmark::State& state) {
  std::vector<GroupId> targets;
  for (int i = 0; i < 8; ++i) targets.push_back(GroupId{i});
  const core::OverlayTree tree = core::OverlayTree::three_level(
      targets, GroupId{100}, GroupId{101}, GroupId{102});
  const std::vector<GroupId> dst = {GroupId{0}, GroupId{7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.lca(dst));
  }
}
BENCHMARK(BM_TreeLca);

void BM_OptimizerSearch4Targets(benchmark::State& state) {
  std::vector<GroupId> targets = {GroupId{1}, GroupId{2}, GroupId{3},
                                  GroupId{4}};
  std::vector<GroupId> aux = {GroupId{11}, GroupId{12}, GroupId{13}};
  optimizer::WorkloadSpec spec =
      optimizer::uniform_pairs_workload(targets, 1200.0);
  for (const GroupId h : aux) spec.capacity[h] = 9500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer::optimize_tree(targets, aux, spec));
  }
}
BENCHMARK(BM_OptimizerSearch4Targets);

}  // namespace

BENCHMARK_MAIN();
