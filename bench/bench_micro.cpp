// Microbenchmarks (google-benchmark) of the building blocks: crypto, codec,
// scheduler, tree operations, the optimizer search, and the zero-copy wire
// fabric (shared-Buffer fan-out, encode-once batch digests, memoized MAC
// verification). These quantify the per-message costs underlying the
// simulation's calibrated constants.
//
// Before any benchmark runs, main() asserts the encode-once invariant on a
// live protocol instance: a leader's broadcast to its 3f+1-replica group
// performs exactly ONE payload serialization — every wire copy of a PROPOSE
// shares one backing allocation (checked via the network tap and the
// Buffer materialization counter). The process aborts if the invariant is
// broken, so a fan-out regression cannot produce numbers silently.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "bft/client_proxy.hpp"
#include "bft/group.hpp"
#include "bft/message.hpp"
#include "common/auth.hpp"
#include "common/buffer.hpp"
#include "common/hmac.hpp"
#include "common/serde.hpp"
#include "common/sha256.hpp"
#include "core/tree.hpp"
#include "optimizer/search.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace byzcast;

// ---------------------------------------------------------------------------
// Encode-once fan-out assertion (runs before the benchmarks).

void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "bench_micro: encode-once invariant violated: %s\n",
               what);
  std::abort();
}

/// Drives one real broadcast group (f=1, 3f+1 = 4 replicas) and checks that
/// every logical PROPOSE fan-out serialized its payload exactly once.
void assert_encode_once_fanout() {
  sim::Simulation sim(/*seed=*/1, sim::Profile::lan());
  bft::Group group(sim, GroupId{0}, /*f=*/1, [](int) {
    return std::make_unique<bft::EchoApplication>();
  });

  // Tap: group PROPOSE wire messages by (sender, content); each group is one
  // logical broadcast and must carry one distinct backing pointer.
  std::map<std::pair<std::int32_t, Bytes>, std::set<const std::uint8_t*>>
      pointers;
  std::map<std::pair<std::int32_t, Bytes>, std::set<std::int32_t>> recipients;
  sim.network().set_tap([&](const sim::WireMessage& msg) {
    if (msg.payload.empty() ||
        bft::peek_type(msg.payload) != bft::MsgType::kPropose) {
      return;
    }
    const auto key = std::make_pair(
        msg.from.value, Bytes(msg.payload.data(),
                              msg.payload.data() + msg.payload.size()));
    pointers[key].insert(msg.payload.data());
    recipients[key].insert(msg.to.value);
  });

  bft::ClientProxy client(sim, group.info(), "bench-client");
  constexpr int kOps = 8;
  int completions = 0;
  std::function<void()> issue = [&] {
    if (completions == kOps) return;
    client.invoke(Bytes(64, static_cast<std::uint8_t>(completions)),
                  [&](const Bytes&, Time) {
                    ++completions;
                    issue();
                  });
  };
  issue();
  sim.run_until(30 * kSecond);

  check(completions == kOps, "benchmark group did not complete its ops");
  check(!pointers.empty(), "no PROPOSE traffic observed");
  const std::size_t peers = group.info().replicas().size() - 1;  // 3f+1 - self
  for (const auto& [key, ptrs] : pointers) {
    check(ptrs.size() == 1,
          "a PROPOSE fan-out serialized its payload more than once");
    check(recipients[key].size() == peers,
          "a PROPOSE fan-out did not reach all 3f+1-1 peer replicas");
  }

  // Fabric-level counter check: fanning one payload to 3f+1 recipients
  // materializes exactly one buffer (the N sends are ref bumps).
  const std::uint64_t before = Buffer::materializations();
  const Buffer payload{Bytes(1024, 0xEE)};
  std::vector<sim::WireMessage> out(4);
  for (auto& m : out) m.payload = payload;
  check(Buffer::materializations() == before + 1,
        "fan-out of one payload to 3f+1 recipients materialized more than "
        "one buffer");
  for (const auto& m : out) {
    check(m.payload.data() == payload.data(),
          "a wire copy does not alias the broadcast payload");
  }
  std::fprintf(stderr,
               "bench_micro: encode-once fan-out verified (%zu logical "
               "broadcasts, 1 serialization each, %zu recipients)\n",
               pointers.size(), peers);
}

// ---------------------------------------------------------------------------
// Crypto / codec / infrastructure micro-costs.

void BM_Sha256_64B(benchmark::State& state) {
  const Bytes data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  const Bytes data(4096, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_4KiB);

void BM_HmacSha256_64B(benchmark::State& state) {
  const Bytes key(32, 0x11);
  const Bytes data(64, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256_64B);

void BM_AuthenticatorSignVerify(benchmark::State& state) {
  const auto keys = std::make_shared<KeyStore>(1);
  const Authenticator alice(keys, ProcessId{1});
  const Authenticator bob(keys, ProcessId{2});
  const Bytes data(100, 0x42);
  for (auto _ : state) {
    const Digest mac = alice.sign(ProcessId{2}, data);
    benchmark::DoNotOptimize(bob.verify(ProcessId{1}, data, mac));
  }
}
BENCHMARK(BM_AuthenticatorSignVerify);

// Repeated verification of the same (sender, payload, mac): after the first
// full HMAC pass every check is answered by the payload-digest memo (one
// unkeyed SHA-256 pass instead of the keyed HMAC). This is the tree relay
// pattern — a replica sees the same relayed request from f+1 parent
// replicas and across retransmits.
void BM_MacVerifyMemoized(benchmark::State& state) {
  const auto keys = std::make_shared<KeyStore>(1, MacMode::kHmac);
  const Authenticator alice(keys, ProcessId{1});
  const Authenticator bob(keys, ProcessId{2});
  const Bytes data(256, 0x42);
  const Digest mac = alice.sign(ProcessId{2}, data);
  (void)bob.verify(ProcessId{1}, data, mac);  // warm the slot
  for (auto _ : state) {
    benchmark::DoNotOptimize(bob.verify(ProcessId{1}, data, mac));
  }
  state.counters["cache_hits"] =
      static_cast<double>(bob.verify_cache_hits());
}
BENCHMARK(BM_MacVerifyMemoized);

// Verification of always-fresh payloads: every check runs the full HMAC
// (the memo cannot help). The gap to BM_MacVerifyMemoized is the per-message
// saving on the relay path.
void BM_MacVerifyCold(benchmark::State& state) {
  const auto keys = std::make_shared<KeyStore>(1, MacMode::kHmac);
  const Authenticator alice(keys, ProcessId{1});
  const Authenticator bob(keys, ProcessId{2});
  constexpr std::size_t kPool = 4096;  // > cache slots: mostly evictions
  std::vector<Bytes> payloads;
  std::vector<Digest> macs;
  payloads.reserve(kPool);
  macs.reserve(kPool);
  for (std::size_t i = 0; i < kPool; ++i) {
    Bytes d(256, 0x42);
    d[0] = static_cast<std::uint8_t>(i);
    d[1] = static_cast<std::uint8_t>(i >> 8);
    macs.push_back(alice.sign(ProcessId{2}, d));
    payloads.push_back(std::move(d));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bob.verify(ProcessId{1}, payloads[i], macs[i]));
    i = (i + 1) % kPool;
  }
}
BENCHMARK(BM_MacVerifyCold);

void BM_CodecRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    Writer w;
    w.message_id(MessageId{ProcessId{7}, 42});
    w.u64(123456789);
    w.bytes(Bytes(64, 0xCD));
    const Bytes encoded = w.take();
    Reader r(encoded);
    benchmark::DoNotOptimize(r.message_id());
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.bytes());
  }
}
BENCHMARK(BM_CodecRoundTrip);

// ---------------------------------------------------------------------------
// Wire fabric: deep-copy fan-out vs shared-Buffer fan-out.

/// The pre-zero-copy fabric: every recipient gets its own heap copy of the
/// payload bytes.
void BM_FanoutDeepCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bytes payload(1024, 0x5A);
  for (auto _ : state) {
    std::vector<Bytes> wires;
    wires.reserve(n);
    for (std::size_t i = 0; i < n; ++i) wires.push_back(payload);  // copy
    benchmark::DoNotOptimize(wires.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * payload.size()));
}
BENCHMARK(BM_FanoutDeepCopy)->Arg(4)->Arg(16);

/// The zero-copy fabric: one materialization, N ref bumps.
void BM_FanoutSharedBuffer(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bytes payload(1024, 0x5A);
  for (auto _ : state) {
    const Buffer shared{Bytes(payload)};  // the one materialization
    std::vector<Buffer> wires;
    wires.reserve(n);
    for (std::size_t i = 0; i < n; ++i) wires.push_back(shared);  // ref bump
    benchmark::DoNotOptimize(wires.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * payload.size()));
}
BENCHMARK(BM_FanoutSharedBuffer)->Arg(4)->Arg(16);

// ---------------------------------------------------------------------------
// Leader PROPOSE path: batch encoded twice (old) vs once (shared).

bft::Batch make_batch(std::size_t requests, std::size_t op_size) {
  bft::Batch batch;
  for (std::size_t i = 0; i < requests; ++i) {
    bft::Request req;
    req.group = GroupId{0};
    req.origin = ProcessId{static_cast<std::int32_t>(1000 + i)};
    req.seq = i;
    req.op = Bytes(op_size, static_cast<std::uint8_t>(i));
    batch.push_back(std::move(req));
  }
  return batch;
}

/// What do_propose used to cost: encode the batch for the digest, then
/// encode it again inside Propose::encode().
void BM_ProposeEncodeTwice(benchmark::State& state) {
  bft::Propose p;
  p.view = 3;
  p.instance = 17;
  p.batch = make_batch(8, 64);
  for (auto _ : state) {
    const Digest d = bft::batch_digest(p.batch);  // encode #1 + hash
    benchmark::DoNotOptimize(d);
    benchmark::DoNotOptimize(p.encode());         // encode #2
  }
}
BENCHMARK(BM_ProposeEncodeTwice);

/// The current path: one batch encode shared between the digest and the
/// wire message.
void BM_ProposeEncodeShared(benchmark::State& state) {
  const bft::Batch batch = make_batch(8, 64);
  for (auto _ : state) {
    const Bytes encoded = bft::encode_batch(batch);
    const Digest d = Sha256::hash(encoded);
    benchmark::DoNotOptimize(d);
    benchmark::DoNotOptimize(bft::Propose::encode_with(3, 17, encoded));
  }
}
BENCHMARK(BM_ProposeEncodeShared);

// ---------------------------------------------------------------------------
// Existing infrastructure benchmarks.

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler scheduler;
    for (int i = 0; i < 1000; ++i) {
      scheduler.schedule_at(i, [] {});
    }
    scheduler.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_TreeLca(benchmark::State& state) {
  std::vector<GroupId> targets;
  for (int i = 0; i < 8; ++i) targets.push_back(GroupId{i});
  const core::OverlayTree tree = core::OverlayTree::three_level(
      targets, GroupId{100}, GroupId{101}, GroupId{102});
  const std::vector<GroupId> dst = {GroupId{0}, GroupId{7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.lca(dst));
  }
}
BENCHMARK(BM_TreeLca);

void BM_OptimizerSearch4Targets(benchmark::State& state) {
  std::vector<GroupId> targets = {GroupId{1}, GroupId{2}, GroupId{3},
                                  GroupId{4}};
  std::vector<GroupId> aux = {GroupId{11}, GroupId{12}, GroupId{13}};
  optimizer::WorkloadSpec spec =
      optimizer::uniform_pairs_workload(targets, 1200.0);
  for (const GroupId h : aux) spec.capacity[h] = 9500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer::optimize_tree(targets, aux, spec));
  }
}
BENCHMARK(BM_OptimizerSearch4Targets);

}  // namespace

int main(int argc, char** argv) {
  assert_encode_once_fanout();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
