// Figure 3: ByzCast global-message throughput and latency CDF with 2-level
// and 3-level trees under the uniform and skewed workloads of Table II.
// Expected shapes (paper §V-C): uniform -> 2-level has lower average latency;
// skewed -> the 2-level root saturates and its latency blows up while the
// 3-level tree splits the load across h2/h3.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

int main() {
  using namespace byzcast;
  using namespace byzcast::workload;

  print_header("Figure 3: overlay tree versus workload (4 target groups)");

  struct Cell {
    const char* workload_name;
    Pattern pattern;
    double offered_rate;  // Table II: ΣF(d), open loop
    const char* tree_name;
    Protocol protocol;
  };
  // Table II uses uniform = 6 pairs x 1200 m/s and skewed = 2 pairs x
  // 9000 m/s, with the skewed per-pair rate chosen just under the group
  // capacity K(h) = 9500 m/s (~0.95 K). Our calibrated simulator's
  // effective per-branch capacity for relayed global traffic is lower, so
  // we preserve the paper's LOAD-TO-CAPACITY RATIOS instead of its absolute
  // rates: uniform well under capacity everywhere, skewed ~0.9x of one
  // branch (fine for the split 3-level tree, overload for the 2-level
  // root, which carries both pairs).
  const Cell cells[] = {
      {"uniform", Pattern::kGlobalUniformPairs, 5400.0, "2-level",
       Protocol::kByzCast2Level},
      {"uniform", Pattern::kGlobalUniformPairs, 5400.0, "3-level",
       Protocol::kByzCast3Level},
      {"skewed", Pattern::kGlobalSkewedPairs, 9600.0, "2-level",
       Protocol::kByzCast2Level},
      {"skewed", Pattern::kGlobalSkewedPairs, 9600.0, "3-level",
       Protocol::kByzCast3Level},
  };

  std::vector<std::vector<std::string>> rows;
  std::vector<std::pair<std::string, LatencyRecorder>> cdfs;
  ExperimentResult probe;  // one instrumented run for the metrics sidecar
  for (const Cell& cell : cells) {
    ExperimentConfig cfg;
    cfg.protocol = cell.protocol;
    cfg.num_groups = 4;
    // Open-loop offered load at the Table II rates: an overloaded layout
    // (the 2-level root under the skewed workload) shows queue growth and
    // a latency blow-up, exactly as in the paper.
    cfg.clients_per_group = 25;
    cfg.open_loop_total_rate = cell.offered_rate;
    cfg.workload.pattern = cell.pattern;
    cfg.warmup = 1 * kSecond;
    cfg.duration = 3 * kSecond;
    cfg.seed = 7;
    const ExperimentResult res = run_experiment(cfg);
    // The skewed/2-level cell is the interesting one observability-wise:
    // the saturated root's queue depth and CPU-busy fraction explain the
    // latency blow-up.
    if (cell.protocol == Protocol::kByzCast2Level) probe = res;
    rows.push_back({cell.workload_name, cell.tree_name,
                    fmt(res.throughput, 0) + " msg/s",
                    fmt(res.latency_global.mean_ms()) + " ms",
                    fmt(res.latency_global.median_ms()) + " ms",
                    fmt(res.latency_global.percentile_ms(95)) + " ms"});
    cdfs.emplace_back(std::string(cell.workload_name) + "/" + cell.tree_name,
                      res.latency_global);
  }
  print_table({"workload", "tree", "throughput", "mean", "p50", "p95"}, rows);

  std::printf("\n");
  for (const auto& [label, rec] : cdfs) {
    print_cdf(label, rec);
    std::string file = label;
    for (auto& c : file) {
      if (c == '/') c = '_';
    }
    write_cdf_csv("bench_csv/fig3_" + file + ".csv", rec);
  }
  write_series_csv("bench_csv/fig3_throughput.csv",
                   {"workload", "tree", "throughput", "mean_ms", "p50_ms",
                    "p95_ms"},
                   rows);
  write_metrics_sidecar("bench_csv/fig3_metrics.json", probe);

  std::printf(
      "\nPaper Fig. 3: uniform -> 2-level lower average latency; skewed -> "
      "2-level root overloaded (much higher latency), 3-level splits load "
      "across h2/h3.\n");
  return 0;
}
