// Figure 8: single-client latency in the 4-region EC2 WAN (Table I
// latencies), local and global messages. Expected shapes: ByzCast local ~=
// BFT-SMaRt; ByzCast global ~2x local (the message is totally ordered by
// the auxiliary group before reaching the targets); Baseline pays the double
// ordering even for local messages.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;
using namespace byzcast::workload;

ExperimentResult run(Protocol protocol, Pattern pattern) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.environment = Environment::kWan;
  cfg.num_groups = 4;
  cfg.clients_per_group = 1;  // one client per group, spread over regions
  cfg.workload.pattern = pattern;
  cfg.warmup = 5 * kSecond;
  cfg.duration = 60 * kSecond;
  cfg.seed = 29;
  return run_experiment(cfg);
}

}  // namespace

int main() {
  print_header(
      "Figure 8: single-client latency in WAN (4 groups, one replica per "
      "region CA/VA/EU/JP)");

  const auto bft = run(Protocol::kBftSmart, Pattern::kLocalOnly);
  const auto byz_local = run(Protocol::kByzCast2Level, Pattern::kLocalOnly);
  const auto byz_global =
      run(Protocol::kByzCast2Level, Pattern::kGlobalUniformPairs);
  const auto base_local = run(Protocol::kBaseline, Pattern::kLocalOnly);
  const auto base_global =
      run(Protocol::kBaseline, Pattern::kGlobalUniformPairs);

  std::vector<std::vector<std::string>> rows;
  const auto row = [](const char* name, const LatencyRecorder& rec) {
    return std::vector<std::string>{name, fmt(rec.median_ms(), 0) + " ms",
                                    fmt(rec.percentile_ms(95), 0) + " ms"};
  };
  rows.push_back(row("BFT-SMaRt", bft.latency_all));
  rows.push_back(row("ByzCast local", byz_local.latency_local));
  rows.push_back(row("ByzCast global", byz_global.latency_global));
  rows.push_back(row("Baseline local", base_local.latency_local));
  rows.push_back(row("Baseline global", base_global.latency_global));
  print_table({"protocol/class", "median", "p95"}, rows);

  const double ratio = byz_global.latency_global.median_ms() /
                       byz_local.latency_local.median_ms();
  std::printf("\nByzCast global/local median ratio: %.2fx\n", ratio);
  std::printf(
      "\nPaper Fig. 8: ByzCast local as good as BFT-SMaRt; global about "
      "twice the local value; Baseline pays double ordering for every "
      "message.\n");
  write_metrics_sidecar("bench_csv/fig8_metrics.json", byz_global);
  return 0;
}
