// Figure 7: single-client latency in a LAN (no contention / queueing),
// local and global messages, versus the number of groups. Expected shapes:
// ByzCast local ~= BFT-SMaRt regardless of group count; ByzCast global ~= 2x
// local, growing slightly with more destination groups to relay to.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;
using namespace byzcast::workload;

ExperimentResult run(Protocol protocol, Pattern pattern, int groups) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.num_groups = groups;
  cfg.clients_per_group = 1;
  // One client total: emulate by a single group of clients? The harness
  // creates clients_per_group * num_groups clients; restrict to 1 by using
  // a dedicated single-client config below.
  cfg.workload.pattern = pattern;
  cfg.warmup = 500 * kMillisecond;
  cfg.duration = 4 * kSecond;
  cfg.seed = 23;
  return run_experiment(cfg);
}

}  // namespace

int main() {
  print_header("Figure 7: single-client latency in LAN (median / p95, ms)");

  ExperimentResult probe;  // ByzCast global run, for the metrics sidecar
  std::vector<std::vector<std::string>> rows;
  for (const int groups : {1, 2, 4, 8}) {
    std::vector<std::string> row = {std::to_string(groups)};

    // BFT-SMaRt reference (single group, always).
    if (groups == 1) {
      const auto bft = run(Protocol::kBftSmart, Pattern::kLocalOnly, 1);
      row.push_back(fmt(bft.latency_all.median_ms()) + " / " +
                    fmt(bft.latency_all.percentile_ms(95)));
    } else {
      row.push_back("-");
    }

    if (groups >= 2) {
      const auto local = run(Protocol::kByzCast2Level, Pattern::kLocalOnly,
                             groups);
      const auto global = run(Protocol::kByzCast2Level,
                              Pattern::kGlobalUniformPairs, groups);
      probe = global;
      const auto base_local =
          run(Protocol::kBaseline, Pattern::kLocalOnly, groups);
      const auto base_global =
          run(Protocol::kBaseline, Pattern::kGlobalUniformPairs, groups);
      row.push_back(fmt(local.latency_local.median_ms()) + " / " +
                    fmt(local.latency_local.percentile_ms(95)));
      row.push_back(fmt(global.latency_global.median_ms()) + " / " +
                    fmt(global.latency_global.percentile_ms(95)));
      row.push_back(fmt(base_local.latency_local.median_ms()) + " / " +
                    fmt(base_local.latency_local.percentile_ms(95)));
      row.push_back(fmt(base_global.latency_global.median_ms()) + " / " +
                    fmt(base_global.latency_global.percentile_ms(95)));
    } else {
      row.insert(row.end(), {"-", "-", "-", "-"});
    }
    rows.push_back(row);
  }
  print_table({"groups", "BFT-SMaRt", "ByzCast local", "ByzCast global",
               "Baseline local", "Baseline global"},
              rows);

  std::printf(
      "\nPaper Fig. 7: local latency ~4 ms independent of group count and "
      "equal to BFT-SMaRt; global ~2x local (double ordering), rising "
      "slightly with more groups; Baseline pays the double ordering for "
      "local messages too.\n");
  write_metrics_sidecar("bench_csv/fig7_metrics.json", probe);
  return 0;
}
