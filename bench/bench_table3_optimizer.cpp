// Tables II and III: the two microbenchmark workloads and the optimization
// model outcomes for the 2-level (T2) and 3-level (T3) overlay trees,
// including the exhaustive search's choice.
#include <cstdio>

#include "optimizer/search.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;
using optimizer::Destination;
using optimizer::Evaluation;
using optimizer::WorkloadSpec;

std::string destination_name(const Destination& d) {
  std::string out = "{";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i > 0) out += ",";
    out += "g" + std::to_string(d[i].value);
  }
  return out + "}";
}

std::string group_name(GroupId g) {
  if (g.value >= 11) return "h" + std::to_string(g.value - 10);
  return "g" + std::to_string(g.value);
}

void print_eval(const char* tree_name, const core::OverlayTree& tree,
                const WorkloadSpec& spec) {
  const Evaluation ev = optimizer::evaluate(tree, spec);
  std::vector<std::vector<std::string>> rows;
  for (const GroupId h : tree.auxiliary_groups()) {
    std::string involved;
    for (const auto& d : ev.involved.at(h)) {
      involved += destination_name(d) + " ";
    }
    if (involved.empty()) involved = "(none)";
    rows.push_back({std::string(tree_name) + "," + group_name(h), involved,
                    workload::fmt(ev.load.at(h), 0) + " m/s"});
  }
  workload::print_table({"T(tree,x)", "destinations involving x", "L(tree,x)"},
                        rows);
  std::printf("  sum of heights = %d;  verdict: %s\n", ev.sum_heights,
              ev.feasible ? "viable" : "NOT viable (load exceeds capacity)");
}

void run_workload(const char* name, const WorkloadSpec& spec,
                  const std::vector<GroupId>& targets,
                  const std::vector<GroupId>& aux) {
  workload::print_header(std::string("Table III: ") + name);

  std::printf("Workload (Table II):\n");
  for (const auto& d : spec.destinations) {
    std::printf("  F(%s) = %.0f m/s\n", destination_name(d).c_str(),
                spec.load_of(d));
  }
  std::printf("Capacity: K(h_i) = 9500 m/s\n\n");

  const core::OverlayTree t2 = core::OverlayTree::two_level(targets, aux[0]);
  const core::OverlayTree t3 =
      core::OverlayTree::three_level(targets, aux[0], aux[1], aux[2]);
  print_eval("T2", t2, spec);
  std::printf("\n");
  print_eval("T3", t3, spec);

  const auto result = optimizer::optimize_tree(targets, aux, spec);
  if (result) {
    std::printf(
        "\nExhaustive search: best tree has sum-of-heights %d over %zu valid "
        "candidates (%zu considered); root %s with %zu children.\n",
        result->evaluation.sum_heights, result->candidates_valid,
        result->candidates_considered, group_name(result->tree.root()).c_str(),
        result->tree.children(result->tree.root()).size());
  } else {
    std::printf("\nExhaustive search: no feasible tree.\n");
  }
}

}  // namespace

int main() {
  std::vector<GroupId> targets = {GroupId{1}, GroupId{2}, GroupId{3},
                                  GroupId{4}};
  std::vector<GroupId> aux = {GroupId{11}, GroupId{12}, GroupId{13}};

  WorkloadSpec uniform = optimizer::uniform_pairs_workload(targets, 1200.0);
  WorkloadSpec skewed = optimizer::skewed_pairs_workload(targets, 9000.0);
  for (const GroupId h : aux) {
    uniform.capacity[h] = 9500.0;
    skewed.capacity[h] = 9500.0;
  }

  run_workload("uniform workload (paper: T2 best, 12 vs 16)", uniform,
               targets, aux);
  run_workload("skewed workload (paper: T2 not viable, T3 best)", skewed,
               targets, aux);

  std::printf(
      "\nPaper Table III: uniform -> T2 best (heights 12 < 16); skewed -> T2 "
      "not viable (18000 > 9500), T3 best (9000 per branch).\n");
  return 0;
}
