// Figure 4: LAN throughput versus number of groups.
// (a) local messages only — ByzCast scales ~linearly with groups, Baseline
//     saturates at one group's capacity, BFT-SMaRt (single group) is the
//     reference;
// (b) global messages only — ByzCast and Baseline behave alike at roughly
//     half of BFT-SMaRt's throughput.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;
using namespace byzcast::workload;

ExperimentResult g_probe;  // last ByzCast global run, for the sidecar

double run(Protocol protocol, Pattern pattern, int groups, int clients) {
  ExperimentConfig cfg;
  cfg.protocol = protocol;
  cfg.num_groups = groups;
  cfg.clients_per_group = clients;
  cfg.workload.pattern = pattern;
  cfg.warmup = 1 * kSecond;
  cfg.duration = 3 * kSecond;
  cfg.seed = 11;
  const ExperimentResult res = run_experiment(cfg);
  if (protocol == Protocol::kByzCast2Level &&
      pattern == Pattern::kGlobalUniformPairs) {
    g_probe = res;
  }
  return res.throughput;
}

void sweep(const char* title, Pattern pattern, const char* csv_name) {
  print_header(title);
  // Paper: 200 clients/group (100 at 8 groups). We scale client counts down
  // with the calibrated simulator; saturation is what matters.
  std::vector<std::vector<std::string>> rows;
  for (const int groups : {2, 4, 8}) {
    const int clients = groups == 8 ? 30 : 60;
    const double byz = run(Protocol::kByzCast2Level, pattern, groups, clients);
    const double base = run(Protocol::kBaseline, pattern, groups, clients);
    const double bft = run(Protocol::kBftSmart, pattern, groups, clients);
    rows.push_back({std::to_string(groups),
                    std::to_string(clients * groups), fmt(byz, 0),
                    fmt(base, 0), fmt(bft, 0)});
  }
  print_table({"groups", "clients", "ByzCast msg/s", "Baseline msg/s",
               "BFT-SMaRt msg/s"},
              rows);
  write_series_csv(std::string("bench_csv/") + csv_name + ".csv",
                   {"groups", "clients", "byzcast", "baseline", "bftsmart"},
                   rows);
}

}  // namespace

int main() {
  sweep("Figure 4(a): local messages, throughput vs #groups",
        Pattern::kLocalOnly, "fig4a_local");
  std::printf(
      "\nPaper: ByzCast scales linearly with groups (genuine for local "
      "messages); Baseline saturates near one group's capacity.\n");

  sweep("Figure 4(b): global messages, throughput vs #groups",
        Pattern::kGlobalUniformPairs, "fig4b_global");
  std::printf(
      "\nPaper: ByzCast and Baseline behave alike, at most ~half of "
      "BFT-SMaRt (9700 vs 19500 msg/s in the paper's testbed) — every "
      "global message is ordered twice.\n");
  write_metrics_sidecar("bench_csv/fig4_metrics.json", g_probe);
  return 0;
}
