// Intra-group vertical scaling: offered-load sweeps of one LAN group with
// the stage pipeline at increasing widths (the PR's headline artifact).
// Serial baseline = stage_pipeline_off ablation with the knobs SET (proving
// the ablation really disarms them); staged curves run verify_workers =
// exec_shards = w for w in {2, 4, 8}. The SweepDriver finds each curve's
// saturation knee; a span-traced fixed-rate pair (serial vs w=4, below both
// knees) decomposes end-to-end latency so the cpu component's drop is
// visible, not inferred. Results land in BENCH_vertical.json
// ("byzcast-vertical-v1", validated by tools/check_vertical.py, plotted by
// tools/plot_benches.py).
//
// Expected physics (LAN profile): the serial order stage pays ~43 us of CPU
// per message (admission 8 + validate 3 + execute 24 + batch-amortized
// propose/validate/vote), kneeing in the low-20k msg/s. Staging moves the
// MAC/digest shares to verify workers and refunds the execute makespan
// across shards, leaving ~13 us serial at w=4 — the knee moves past 26k
// offered (about 2x the serial ceiling on this grid).
//
// Usage: bench_vertical [--spec file.json] [--out file.json]
//                       [--workers 0,2,4,8]
//
// In-process gates (deterministic simulation, stable in CI):
//  * every measured point completes with zero invariant-monitor violations
//    and zero sample overflows;
//  * every curve knees inside the grid;
//  * no staged curve knees below the serial baseline;
//  * knee(w=4) >= 1.25 x knee(serial);
//  * the span-traced p50 cpu component shrinks at w=4 vs serial.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/critical_path.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

using namespace byzcast;

// One LAN group, local-only open-loop load: the vertical-scaling question is
// "how much can a single group carry", so no relays and no global traffic.
constexpr const char* kDefaultSpec = R"json({
  "name": "vertical-lan",
  "protocol": "byzcast-2l",
  "environment": "lan",
  "num_groups": 1,
  "f": 1,
  "clients_per_group": 100,
  "payload_size": 64,
  "warmup_ms": 500,
  "duration_ms": 2000,
  "seed": 42,
  "monitors": true,
  "workload": {"pattern": "local"},
  "rate": {
    "kind": "sweep",
    "rates": [8000, 14000, 20000, 26000, 34000, 44000, 56000, 72000,
              92000, 116000],
    "knee_p99_factor": 5.0,
    "knee_goodput_floor": 0.95,
    "bisect_iters": 2
  }
})json";

struct VerticalCurve {
  std::uint32_t workers = 0;  // 0 = serial (stage_pipeline_off)
  workload::SweepCurve curve;
};

Json point_to_json(const workload::SweepPoint& pt) {
  Json j = Json::object();
  j.set("offered", Json::number(pt.offered));
  j.set("throughput", Json::number(pt.throughput));
  j.set("goodput_ratio", Json::number(pt.goodput_ratio));
  j.set("p50_ms", Json::number(pt.p50_ms));
  j.set("p99_ms", Json::number(pt.p99_ms));
  j.set("completed", Json::number(pt.completed));
  j.set("monitor_violations", Json::number(pt.monitor_violations));
  j.set("sample_overflow", Json::number(pt.sample_overflow));
  j.set("saturated", Json::boolean(pt.saturated));
  return j;
}

Json components_to_json(const core::ClassAggregate& agg) {
  Json j = Json::object();
  j.set("n", Json::number(agg.n));
  j.set("end_to_end_p50_ms", Json::number(to_ms(agg.end_to_end.p50)));
  j.set("queueing_p50_ms", Json::number(to_ms(agg.queueing.p50)));
  j.set("cpu_p50_ms", Json::number(to_ms(agg.cpu.p50)));
  j.set("network_p50_ms", Json::number(to_ms(agg.network.p50)));
  j.set("quorum_wait_p50_ms", Json::number(to_ms(agg.quorum_wait.p50)));
  return j;
}

/// Applies the stage knobs for one curve: workers == 0 keeps the knobs SET
/// but arms the ablation, so the serial baseline doubles as proof that
/// stage_pipeline_off fully disarms the pipeline.
workload::ExperimentConfig config_for(const workload::ExperimentConfig& base,
                                      std::uint32_t workers) {
  workload::ExperimentConfig config = base;
  if (workers == 0) {
    config.verify_workers = 4;
    config.exec_shards = 4;
    config.stage_pipeline_off = true;
  } else {
    config.verify_workers = workers;
    config.exec_shards = workers;
    config.stage_pipeline_off = false;
  }
  return config;
}

std::string label_for(std::uint32_t workers) {
  return workers == 0 ? "serial(stage_pipeline_off)"
                      : "w" + std::to_string(workers);
}

/// Span-traced fixed-rate run; returns the local-class component breakdown
/// (one group, local-only traffic: everything is local).
core::ClassAggregate trace_components(const workload::ExperimentConfig& base,
                                      double rate) {
  workload::ExperimentConfig config = base;
  config.open_loop_total_rate = rate;
  config.monitors = false;  // isolate the trace; monitors ran in the sweep
  config.span_tracing = true;
  config.span_sample_every = 8;
  config.span_capacity = 1u << 20;
  const workload::ExperimentResult result = workload::run_experiment(config);
  if (!result.spans) return {};
  core::CriticalPathAnalyzer::Options opts;
  opts.f = config.f;
  const core::CriticalPathAnalyzer analyzer(*result.spans, opts);
  return analyzer.aggregate(/*global=*/false);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path = "BENCH_vertical.json";
  std::vector<std::uint32_t> workers{0, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers.clear();
      const std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        workers.push_back(
            static_cast<std::uint32_t>(std::strtoul(tok.c_str(), nullptr, 10)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_vertical [--spec file.json] [--out file.json]"
                   " [--workers 0,2,4,8]\n");
      return 2;
    }
  }
  if (workers.empty() || workers.front() != 0) {
    std::fprintf(stderr, "--workers must start with 0 (the serial curve is "
                         "every gate's baseline)\n");
    return 2;
  }

  std::string error;
  std::optional<workload::WorkloadSpec> spec;
  if (spec_path.empty()) {
    const auto doc = Json::parse(kDefaultSpec, &error);
    if (doc) spec = workload::parse_workload_spec(*doc, &error);
  } else {
    spec = workload::load_workload_spec(spec_path, &error);
  }
  if (!spec) {
    std::fprintf(stderr, "bad workload spec: %s\n", error.c_str());
    return 2;
  }

  workload::SweepSettings settings;
  settings.rates = spec->schedule.rates;
  settings.knee_p99_factor = spec->schedule.knee_p99_factor;
  settings.knee_goodput_floor = spec->schedule.knee_goodput_floor;
  settings.bisect_iters = spec->schedule.bisect_iters;

  workload::print_header(
      "Vertical scaling '" + spec->name + "': " +
      workload::to_string(spec->base.protocol) + " " +
      workload::to_string(spec->base.environment) + ", " +
      std::to_string(spec->base.num_groups) +
      " group(s), verify/exec stage width swept; serial baseline = "
      "stage_pipeline_off");

  std::vector<VerticalCurve> curves;
  for (const std::uint32_t w : workers) {
    VerticalCurve vc;
    vc.workers = w;
    vc.curve = workload::run_sweep(config_for(spec->base, w), settings,
                                   label_for(w));
    curves.push_back(std::move(vc));
  }

  using workload::fmt;
  for (const VerticalCurve& vc : curves) {
    std::printf("\ncurve: %s\n", vc.curve.label.c_str());
    std::vector<std::vector<std::string>> rows;
    for (const workload::SweepPoint& pt : vc.curve.points) {
      rows.push_back({fmt(pt.offered, 0), fmt(pt.throughput, 0),
                      fmt(100.0 * pt.goodput_ratio, 1), fmt(pt.p50_ms, 2),
                      fmt(pt.p99_ms, 2), pt.saturated ? "SAT" : "ok",
                      std::to_string(pt.monitor_violations)});
    }
    workload::print_table({"offered/s", "msgs/s", "goodput %", "p50 ms",
                           "p99 ms", "state", "violations"},
                          rows);
    if (vc.curve.knee_found) {
      std::printf("knee: %.0f msg/s offered (p50 %.2f ms, p99 %.2f ms)\n",
                  vc.curve.knee.offered, vc.curve.knee.p50_ms,
                  vc.curve.knee.p99_ms);
    } else {
      std::printf("no knee inside the grid (healthy through %.0f msg/s)\n",
                  vc.curve.max_unsaturated_rate);
    }
  }

  // Span-traced component pair: serial vs w=4 (or the widest staged curve
  // when 4 isn't in the set), at half the serial knee — healthy for both.
  const VerticalCurve& serial = curves.front();
  const VerticalCurve* staged = nullptr;
  for (const VerticalCurve& vc : curves) {
    if (vc.workers == 4) staged = &vc;
  }
  if (staged == nullptr && curves.size() > 1) staged = &curves.back();

  double trace_rate = 0.0;
  core::ClassAggregate serial_cpu;
  core::ClassAggregate staged_cpu;
  if (serial.curve.knee_found && staged != nullptr) {
    trace_rate = serial.curve.knee.offered * 0.5;
    serial_cpu = trace_components(config_for(spec->base, 0), trace_rate);
    staged_cpu =
        trace_components(config_for(spec->base, staged->workers), trace_rate);
    std::printf("\ncomponent p50 at %.0f msg/s (ms): serial cpu %.3f "
                "queue %.3f | %s cpu %.3f queue %.3f\n",
                trace_rate, to_ms(serial_cpu.cpu.p50),
                to_ms(serial_cpu.queueing.p50), staged->curve.label.c_str(),
                to_ms(staged_cpu.cpu.p50), to_ms(staged_cpu.queueing.p50));
  }

  Json doc = Json::object();
  doc.set("schema", Json::string("byzcast-vertical-v1"));
  doc.set("name", Json::string(spec->name));
  doc.set("protocol", Json::string(workload::to_string(spec->base.protocol)));
  doc.set("environment",
          Json::string(workload::to_string(spec->base.environment)));
  doc.set("num_groups", Json::number(spec->base.num_groups));
  doc.set("clients_per_group", Json::number(spec->base.clients_per_group));
  doc.set("payload_size", Json::number(spec->base.payload_size));
  doc.set("duration_ms", Json::number(to_ms(spec->base.duration)));
  Json jcurves = Json::array();
  for (const VerticalCurve& vc : curves) {
    Json j = Json::object();
    j.set("label", Json::string(vc.curve.label));
    j.set("workers", Json::number(vc.workers));
    j.set("stage_pipeline_off", Json::boolean(vc.workers == 0));
    Json points = Json::array();
    for (const workload::SweepPoint& pt : vc.curve.points) {
      points.push_back(point_to_json(pt));
    }
    j.set("points", std::move(points));
    j.set("knee_found", Json::boolean(vc.curve.knee_found));
    if (vc.curve.knee_found) j.set("knee", point_to_json(vc.curve.knee));
    j.set("max_unsaturated_rate",
          Json::number(vc.curve.max_unsaturated_rate));
    jcurves.push_back(std::move(j));
  }
  doc.set("curves", std::move(jcurves));
  if (trace_rate > 0.0) {
    Json jtrace = Json::object();
    jtrace.set("rate", Json::number(trace_rate));
    jtrace.set("serial", components_to_json(serial_cpu));
    jtrace.set("staged", components_to_json(staged_cpu));
    jtrace.set("staged_label", Json::string(staged->curve.label));
    doc.set("cpu_breakdown", std::move(jtrace));
  }
  std::ofstream out(out_path);
  if (out) out << doc.dump();

  int failures = 0;
  for (const VerticalCurve& vc : curves) {
    for (const workload::SweepPoint& pt : vc.curve.points) {
      if (pt.completed == 0) {
        std::printf("FAIL: %s @ %.0f msg/s completed nothing\n",
                    vc.curve.label.c_str(), pt.offered);
        ++failures;
      }
      if (pt.monitor_violations != 0) {
        std::printf("FAIL: %s @ %.0f msg/s tripped %llu invariant "
                    "violations\n",
                    vc.curve.label.c_str(), pt.offered,
                    static_cast<unsigned long long>(pt.monitor_violations));
        ++failures;
      }
      if (pt.sample_overflow != 0) {
        std::printf("FAIL: %s @ %.0f msg/s overflowed sample capacity\n",
                    vc.curve.label.c_str(), pt.offered);
        ++failures;
      }
    }
    if (!vc.curve.knee_found) {
      std::printf("FAIL: curve %s found no knee inside the grid\n",
                  vc.curve.label.c_str());
      ++failures;
    }
  }
  if (serial.curve.knee_found) {
    const double base_knee = serial.curve.knee.offered;
    for (std::size_t i = 1; i < curves.size(); ++i) {
      const VerticalCurve& vc = curves[i];
      if (!vc.curve.knee_found) continue;
      // Adding workers must never LOWER the ceiling (one bisection step of
      // measurement slack, as in bench_sweep's ablation gate).
      if (vc.curve.knee.offered < base_knee / 1.2) {
        std::printf("FAIL: %s knees at %.0f msg/s, below the serial "
                    "baseline's %.0f\n",
                    vc.curve.label.c_str(), vc.curve.knee.offered, base_knee);
        ++failures;
      }
    }
    if (staged != nullptr && staged->curve.knee_found) {
      const double ratio = staged->curve.knee.offered / base_knee;
      std::printf("\nknee(%s) / knee(serial) = %.0f / %.0f = %.2fx\n",
                  staged->curve.label.c_str(), staged->curve.knee.offered,
                  base_knee, ratio);
      if (ratio < 1.25) {
        std::printf("FAIL: vertical scaling gate needs >= 1.25x, got "
                    "%.2fx\n",
                    ratio);
        ++failures;
      }
    }
  }
  if (trace_rate > 0.0) {
    if (serial_cpu.n == 0 || staged_cpu.n == 0) {
      std::printf("FAIL: span-traced runs produced no complete breakdowns\n");
      ++failures;
    } else if (staged_cpu.cpu.p50 >= serial_cpu.cpu.p50) {
      std::printf("FAIL: p50 cpu component did not shrink (serial %.3f ms, "
                  "staged %.3f ms)\n",
                  to_ms(serial_cpu.cpu.p50), to_ms(staged_cpu.cpu.p50));
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
