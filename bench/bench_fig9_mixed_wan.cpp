// Figure 9: normalized throughput with the mixed 10:1 workload in the WAN
// (4 target groups, 1 auxiliary group, 40 clients per group spread over the
// four regions). Expected shape: ByzCast 2-3x the Baseline's throughput.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

int main() {
  using namespace byzcast;
  using namespace byzcast::workload;

  print_header(
      "Figure 9: normalized throughput, mixed 10:1 workload, WAN, 4 groups");

  const auto run = [](Protocol protocol) {
    ExperimentConfig cfg;
    cfg.protocol = protocol;
    cfg.environment = Environment::kWan;
    cfg.num_groups = 4;
    cfg.clients_per_group = 40;  // paper: 40 clients per target group
    cfg.workload.pattern = Pattern::kMixed;
    cfg.warmup = 10 * kSecond;
    cfg.duration = 40 * kSecond;
    cfg.seed = 31;
    return run_experiment(cfg);
  };

  const ExperimentResult byz = run(Protocol::kByzCast2Level);
  const ExperimentResult base = run(Protocol::kBaseline);

  const double norm = base.throughput > 0 ? byz.throughput / base.throughput
                                          : 0.0;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"ByzCast", fmt(byz.throughput, 0),
                  fmt(byz.throughput_local, 0), fmt(byz.throughput_global, 0),
                  fmt(norm, 2) + "x"});
  rows.push_back({"Baseline", fmt(base.throughput, 0),
                  fmt(base.throughput_local, 0),
                  fmt(base.throughput_global, 0), "1.00x"});
  print_table({"protocol", "total msg/s", "local msg/s", "global msg/s",
               "normalized"},
              rows);

  std::printf(
      "\nPaper Fig. 9: ByzCast 2x-3x faster than Baseline in throughput "
      "under the mixed workload.\n");
  write_metrics_sidecar("bench_csv/fig9_metrics.json", byz);
  return 0;
}
