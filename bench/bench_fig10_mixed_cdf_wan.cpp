// Figure 10: latency CDF with 40 clients per group and 10% global messages
// in the WAN. Expected shapes: ByzCast local latency 2x-4x below Baseline's;
// global latency similar for both; ByzCast local unaffected by global
// traffic (no convoy effect).
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

int main() {
  using namespace byzcast;
  using namespace byzcast::workload;

  print_header(
      "Figure 10: latency CDF, mixed 10:1 workload, WAN, 40 clients/group");

  const auto run = [](Protocol protocol, Pattern pattern) {
    ExperimentConfig cfg;
    cfg.protocol = protocol;
    cfg.environment = Environment::kWan;
    cfg.num_groups = 4;
    cfg.clients_per_group = 40;
    cfg.workload.pattern = pattern;
    cfg.warmup = 10 * kSecond;
    cfg.duration = 40 * kSecond;
    cfg.seed = 37;
    return run_experiment(cfg);
  };

  const ExperimentResult byz = run(Protocol::kByzCast2Level, Pattern::kMixed);
  const ExperimentResult base = run(Protocol::kBaseline, Pattern::kMixed);
  const ExperimentResult byz_local_only =
      run(Protocol::kByzCast2Level, Pattern::kLocalOnly);

  std::printf("\nByzCast:\n");
  print_cdf("  local", byz.latency_local);
  print_cdf("  global", byz.latency_global);
  std::printf("\nBaseline:\n");
  print_cdf("  local", base.latency_local);
  print_cdf("  global", base.latency_global);

  write_cdf_csv("bench_csv/fig10_byzcast_local.csv", byz.latency_local);
  write_cdf_csv("bench_csv/fig10_byzcast_global.csv", byz.latency_global);
  write_cdf_csv("bench_csv/fig10_baseline_local.csv", base.latency_local);
  write_cdf_csv("bench_csv/fig10_baseline_global.csv", base.latency_global);
  write_metrics_sidecar("bench_csv/fig10_metrics.json", byz);

  std::printf("\nMedians (ms):\n");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"ByzCast", fmt(byz.latency_local.median_ms(), 0),
                  fmt(byz.latency_global.median_ms(), 0)});
  rows.push_back({"Baseline", fmt(base.latency_local.median_ms(), 0),
                  fmt(base.latency_global.median_ms(), 0)});
  print_table({"protocol", "local median", "global median"}, rows);

  std::printf(
      "\nConvoy-effect check: ByzCast local median with 10%% globals = %.0f "
      "ms vs %.0f ms with 100%% local traffic.\n",
      byz.latency_local.median_ms(),
      byz_local_only.latency_local.median_ms());
  std::printf(
      "\nPaper Fig. 10: ByzCast local 2x-4x below Baseline; global similar "
      "for both; no convoy effect on ByzCast's local messages.\n");
  return 0;
}
