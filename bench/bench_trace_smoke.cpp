// Trace smoke run: a small 2-level-tree mixed workload with span tracing
// and the invariant monitors on. Emits the deterministic span sidecar
// (bench_csv/trace_spans.json, schema "byzcast-spans-v1") and the Chrome
// trace (bench_csv/trace_chrome.json, load in Perfetto), then enforces the
// observability acceptance criteria in-process:
//
//  * the invariant monitors report zero violations on a clean run;
//  * at least one complete local and one complete global breakdown exist;
//  * for every complete message the four-component decomposition sums to
//    the measured end-to-end latency exactly (the clamped telescoping in
//    core/critical_path.cpp makes this an identity, not an approximation).
//
// CI runs this binary and then tools/check_trace.py over the two files.
#include <cstdio>
#include <cstdlib>

#include "core/critical_path.hpp"
#include "workload/report.hpp"

int main() {
  using namespace byzcast;

  workload::ExperimentConfig config;
  config.protocol = workload::Protocol::kByzCast2Level;
  config.num_groups = 4;
  config.f = 1;
  config.clients_per_group = 4;
  config.workload.pattern = workload::Pattern::kMixed;
  config.payload_size = 64;
  config.warmup = 100 * kMillisecond;
  config.duration = 400 * kMillisecond;
  config.seed = 7;
  config.span_tracing = true;
  config.span_sample_every = 1;
  config.monitors = true;
  config.monitor_pending_bound = 4096;

  workload::print_header("trace smoke: ByzCast-2L, 4 groups, mixed 10:1");
  const workload::ExperimentResult result = workload::run_experiment(config);
  std::printf("completed=%llu a_deliveries=%llu spans=%zu (dropped %llu)\n",
              static_cast<unsigned long long>(result.completed),
              static_cast<unsigned long long>(result.a_deliveries),
              result.spans->spans().size(),
              static_cast<unsigned long long>(result.spans->dropped()));

  workload::write_span_sidecar("bench_csv/trace_spans.json", result,
                               config.f);
  workload::write_chrome_trace("bench_csv/trace_chrome.json", result);
  workload::print_latency_breakdown(result, config.f);

  int failures = 0;

  const auto violations = result.monitors->total_violations();
  if (violations != 0) {
    std::printf("FAIL: clean run tripped %llu invariant violations\n",
                static_cast<unsigned long long>(violations));
    for (const auto& v : result.monitors->detailed_violations()) {
      std::printf("  [%s] %s\n", v.monitor.c_str(), v.detail.c_str());
    }
    ++failures;
  }

  core::CriticalPathAnalyzer analyzer(
      *result.spans, core::CriticalPathAnalyzer::Options{config.f});
  std::size_t complete_local = 0;
  std::size_t complete_global = 0;
  for (const auto& m : analyzer.messages()) {
    if (!m.complete) continue;
    (m.is_global ? complete_global : complete_local) += 1;
    const Time sum = m.totals.total();
    const Time diff = sum > m.end_to_end ? sum - m.end_to_end
                                         : m.end_to_end - sum;
    if (diff > 1) {
      std::printf("FAIL: %s decomposition sum %lld != end-to-end %lld\n",
                  to_string(m.id).c_str(), static_cast<long long>(sum),
                  static_cast<long long>(m.end_to_end));
      ++failures;
    }
  }
  if (complete_local == 0 || complete_global == 0) {
    std::printf("FAIL: incomplete coverage (local=%zu global=%zu)\n",
                complete_local, complete_global);
    ++failures;
  } else {
    std::printf(
        "decomposition exact for %zu local + %zu global traced messages\n",
        complete_local, complete_global);
  }

  return failures == 0 ? 0 : 1;
}
