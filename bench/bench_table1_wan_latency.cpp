// Table I: latencies within the Amazon EC2 infrastructure (ms, RTT).
// Prints the latency matrix the WAN model is configured with, then verifies
// it by measuring ping-pong RTTs between simulated processes pinned to each
// region pair.
#include <cstdio>

#include "sim/actor.hpp"
#include "sim/simulation.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

/// Replies to every ping with a pong.
class Responder final : public sim::Actor {
 public:
  explicit Responder(sim::Simulation& sim) : Actor(sim, "responder") {}

 protected:
  void on_message(const sim::WireMessage& msg) override {
    if (!verify(msg)) return;
    send(msg.from, Bytes{1});
  }
};

/// Sends pings and records RTTs.
class Pinger final : public sim::Actor {
 public:
  explicit Pinger(sim::Simulation& sim) : Actor(sim, "pinger") {}

  void ping(ProcessId to) {
    sent_at_ = now();
    send(to, Bytes{0});
  }

  Time last_rtt = -1;

 protected:
  void on_message(const sim::WireMessage& msg) override {
    if (!verify(msg)) return;
    last_rtt = now() - sent_at_;
  }

 private:
  Time sent_at_ = 0;
};

}  // namespace

int main() {
  using namespace byzcast;
  workload::print_header("Table I: EC2 inter-region RTT (ms)");

  sim::Profile profile = sim::Profile::wan();
  profile.net_jitter_mean = 0;  // report the configured base latency
  auto wan_model = std::make_unique<sim::WanLatency>(
      sim::WanLatency::ec2_four_regions(profile));
  auto* wan = wan_model.get();
  sim::Simulation simulation(1, profile, std::move(wan_model));

  const auto& names = sim::WanLatency::ec2_region_names();

  std::printf("Configured matrix (paper Table I):\n");
  std::vector<std::vector<std::string>> rows;
  for (int a = 0; a < 4; ++a) {
    std::vector<std::string> row = {names[static_cast<std::size_t>(a)]};
    for (int b = 0; b < 4; ++b) {
      row.push_back(a == b ? "-"
                           : workload::fmt(to_ms(2 * wan->region_latency(
                                               RegionId{a}, RegionId{b})),
                                           0));
    }
    rows.push_back(row);
  }
  workload::print_table({"", "CA", "VA", "EU", "JP"}, rows);

  // Measured check: one pinger/responder pair per region pair.
  std::printf("\nMeasured ping-pong RTT in the simulator (ms):\n");
  rows.clear();
  for (int a = 0; a < 4; ++a) {
    std::vector<std::string> row = {names[static_cast<std::size_t>(a)]};
    for (int b = 0; b < 4; ++b) {
      if (a == b) {
        row.push_back("-");
        continue;
      }
      Pinger pinger(simulation);
      Responder responder(simulation);
      wan->assign(pinger.id(), RegionId{a});
      wan->assign(responder.id(), RegionId{b});
      pinger.ping(responder.id());
      simulation.run_until(simulation.now() + 2 * kSecond);
      row.push_back(workload::fmt(to_ms(pinger.last_rtt), 0));
    }
    rows.push_back(row);
  }
  workload::print_table({"", "CA", "VA", "EU", "JP"}, rows);
  std::printf(
      "\nPaper values: CA-VA 70, CA-EU 165, CA-JP 112, VA-EU 88, VA-JP 175, "
      "EU-JP 239 ms.\n");
  return 0;
}
