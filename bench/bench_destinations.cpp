// Destination-count microbenchmark (§V-B2: "we vary the number of groups
// and the number of message destinations"): throughput and latency of
// ByzCast as global messages address 2..8 of 8 target groups. Expected:
// latency rises mildly with fanout (the auxiliary group performs more
// relays; the client waits for f+1 replies from every destination) and
// system throughput in *deliveries* stays roughly flat while throughput in
// *messages* falls — each message costs |dst| deliveries.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

int main() {
  using namespace byzcast;
  using namespace byzcast::workload;

  print_header(
      "Destination fanout: ByzCast 2-level, 8 target groups, 20 clients/group");

  std::vector<std::vector<std::string>> rows;
  for (const int fanout : {1, 2, 4, 8}) {
    ExperimentConfig cfg;
    cfg.protocol = Protocol::kByzCast2Level;
    cfg.num_groups = 8;
    cfg.clients_per_group = 20;
    cfg.workload.pattern =
        fanout == 1 ? Pattern::kLocalOnly : Pattern::kGlobalFanout;
    cfg.workload.global_fanout = fanout;
    cfg.warmup = 1 * kSecond;
    cfg.duration = 3 * kSecond;
    cfg.seed = 43;
    const ExperimentResult res = run_experiment(cfg);
    const double deliveries_per_sec =
        static_cast<double>(res.a_deliveries) / to_sec(cfg.duration) / 4.0;
    rows.push_back({std::to_string(fanout), fmt(res.throughput, 0),
                    fmt(deliveries_per_sec, 0),
                    fmt(res.latency_all.median_ms()),
                    fmt(res.latency_all.percentile_ms(95))});
  }
  print_table({"destinations", "msg/s", "a-deliveries/s (per replica)",
               "median ms", "p95 ms"},
              rows);

  std::printf(
      "\nfanout 1 = local messages (genuine path, no auxiliary). As the "
      "fanout grows each message is ordered by the root plus every "
      "destination group: message throughput falls roughly as the "
      "per-group delivery work is multiplied, while latency grows "
      "moderately (relays fan out in parallel).\n");
  return 0;
}
