// Net backend vs runtime backend on the same workload: the cost of real TCP.
//
// Both backends run the identical 3-target-group tree (root g0 with children
// g1, g2 — the checked-in deployment shape), f=1, closed-loop clients, 50%
// global messages. The runtime backend is threads + in-process mailboxes;
// the net backend is an InProcessCluster — 12 replica processes' worth of
// ClusterNodes plus a client node, each on its own event loop, talking over
// real localhost sockets. The delta between the two columns is the wire:
// framing, syscalls, epoll wakeups.
//
// Emits BENCH_net.json with both backends' numbers, the net/runtime ratio,
// and the verdict of the five atomic-multicast property checkers per run (a
// throughput figure from a run that broke ordering would be meaningless).
// Exits nonzero on any incomplete workload or property violation.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/multicast.hpp"
#include "core/properties.hpp"
#include "net/cluster.hpp"
#include "net/config.hpp"
#include "runtime/parallel_system.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

constexpr int kClients = 2;
constexpr int kMsgsPerClient = 150;
constexpr std::size_t kPayload = 64;
constexpr double kGlobalFraction = 0.5;

struct BackendResult {
  std::string backend;
  int completed = 0;
  double elapsed_ms = 0.0;
  double throughput = 0.0;
  double latency_mean_ms = 0.0;
  double latency_p95_ms = 0.0;
  std::uint64_t deliveries = 0;
  bool properties_ok = false;
  std::string properties_error;
  // net only
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t reconnects = 0;
};

net::ClusterConfig cluster_config() {
  std::string text = R"({"name": "bench", "f": 1, "seed": 29, "groups": [)";
  for (int g = 0; g < 3; ++g) {
    if (g > 0) text += ",";
    text += R"({"id": )" + std::to_string(g) + R"(, "target": true,)";
    text += g == 0 ? R"( "parent": null,)" : R"( "parent": 0,)";
    text += R"( "replicas": [)";
    for (int r = 0; r < 4; ++r) {
      if (r > 0) text += ",";
      text += R"({"host": "127.0.0.1", "port": )" +
              std::to_string(11000 + g * 10 + r) + "}";
    }
    text += "]}";
  }
  text += "]}";
  std::string err;
  auto cfg = net::ClusterConfig::parse(text, &err);
  if (!cfg) {
    std::fprintf(stderr, "config: %s\n", err.c_str());
    std::abort();
  }
  return *cfg;
}

std::vector<GroupId> pick_dst(Rng& rng) {
  if (rng.next_bool(kGlobalFraction)) {
    const auto a = static_cast<std::int32_t>(rng.next_below(3));
    const auto b = static_cast<std::int32_t>(rng.next_below(2));
    return {GroupId{a}, GroupId{b < a ? b : b + 1}};
  }
  return {GroupId{static_cast<std::int32_t>(rng.next_below(3))}};
}

BackendResult run_runtime(const net::ClusterConfig& cfg) {
  runtime::ParallelOptions opts;
  opts.runtime.seed = cfg.seed;
  runtime::ParallelSystem system(cfg.tree(), cfg.f, opts);

  std::vector<core::Client*> clients;
  std::vector<Rng> rngs;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(&system.add_client("client" + std::to_string(c)));
    rngs.push_back(system.env().fork_rng());
  }

  const Bytes payload(kPayload, std::uint8_t{0xab});
  const int total = kClients * kMsgsPerClient;
  std::vector<int> sent(kClients, 0);
  std::vector<std::vector<std::vector<GroupId>>> issued(kClients);
  std::atomic<int> done{0};
  std::mutex lat_mu;
  LatencyRecorder latency;

  std::function<void(int)> issue = [&](int c) {
    auto& count = sent[static_cast<std::size_t>(c)];
    if (count == kMsgsPerClient) return;
    ++count;
    std::vector<GroupId> dst = pick_dst(rngs[static_cast<std::size_t>(c)]);
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time lat) {
          {
            const std::lock_guard<std::mutex> lock(lat_mu);
            latency.record(system.env().now(), lat);
          }
          done.fetch_add(1);
          issue(c);
        });
  };

  system.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    system.env().run_on(clients[static_cast<std::size_t>(c)]->id(),
                        [&issue, c] { issue(c); });
  }
  const auto deadline = t0 + std::chrono::minutes(5);
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t1 = std::chrono::steady_clock::now();
  system.stop();

  BackendResult r;
  r.backend = "runtime";
  r.completed = done.load();
  r.elapsed_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.throughput = r.completed / (r.elapsed_ms / 1000.0);
  r.latency_mean_ms = latency.mean_ms();
  r.latency_p95_ms = latency.percentile_ms(95);
  r.deliveries = system.delivery_log().total_deliveries();

  core::PropertyInput in;
  in.log = &system.delivery_log();
  for (int c = 0; c < kClients; ++c) {
    const auto& dsts = issued[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < dsts.size(); ++k) {
      in.sent.push_back(core::SentMessage{
          MessageId{clients[static_cast<std::size_t>(c)]->id(),
                    static_cast<std::uint64_t>(k)},
          dsts[k]});
    }
  }
  for (int g = 0; g < 3; ++g) {
    auto& grp = system.system().group(GroupId{g});
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[GroupId{g}].push_back(grp.replica(i).id());
    }
  }
  const core::PropertyResult verdict = core::check_all_properties(in);
  r.properties_ok = verdict.ok;
  r.properties_error = verdict.error;
  return r;
}

/// `trace_sample_every` = 0 runs untraced; N traces every Nth message per
/// client (the deployment default is 64). The throughput delta between the
/// two net rows is the tracing overhead at that sampling rate.
BackendResult run_net(const net::ClusterConfig& cfg,
                      std::uint32_t trace_sample_every,
                      const std::string& backend_name) {
  net::InProcessCluster cluster(cfg);
  std::vector<core::Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(&cluster.add_client("client" + std::to_string(c)));
    clients.back()->set_trace_sample_every(trace_sample_every);
  }
  cluster.start();

  const Bytes payload(kPayload, std::uint8_t{0xab});
  const int total = kClients * kMsgsPerClient;
  std::vector<int> sent(kClients, 0);
  std::vector<std::vector<std::vector<GroupId>>> issued(kClients);
  std::atomic<int> done{0};
  std::mutex lat_mu;
  LatencyRecorder latency;
  Rng rng(cfg.seed);

  // Runs on the client node's loop thread; re-issue from the completion.
  std::function<void(int)> issue = [&](int c) {
    auto& count = sent[static_cast<std::size_t>(c)];
    if (count == kMsgsPerClient) return;
    ++count;
    std::vector<GroupId> dst = pick_dst(rng);
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time lat) {
          {
            const std::lock_guard<std::mutex> lock(lat_mu);
            latency.record(cluster.client_node().env().now(), lat);
          }
          done.fetch_add(1);
          issue(c);
        });
  };

  const auto t0 = std::chrono::steady_clock::now();
  cluster.client_node().env().post([&] {
    for (int c = 0; c < kClients; ++c) issue(c);
  });
  const auto deadline = t0 + std::chrono::minutes(5);
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Stragglers catch up via anti-entropy (liveness cadence 1s, state
  // transfer rate limit 500ms): wait for cluster-wide delivery stability
  // longer than that cadence before reading the logs.
  std::uint64_t last = cluster.total_deliveries();
  auto stable_since = std::chrono::steady_clock::now();
  const auto drain_deadline = stable_since + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t now = cluster.total_deliveries();
    if (now != last) {
      last = now;
      stable_since = std::chrono::steady_clock::now();
    } else if (std::chrono::steady_clock::now() - stable_since >
               std::chrono::milliseconds(2500)) {
      break;
    }
  }

  BackendResult r;
  r.backend = backend_name;
  r.completed = done.load();
  r.elapsed_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.throughput = r.completed / (r.elapsed_ms / 1000.0);
  r.latency_mean_ms = latency.mean_ms();
  r.latency_p95_ms = latency.percentile_ms(95);
  r.deliveries = cluster.total_deliveries();
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 4; ++i) {
      const auto& ts =
          cluster.replica_node(GroupId{g}, i).env().transport().stats();
      r.wire_messages += ts.messages_sent;
      r.wire_bytes += ts.bytes_sent;
      r.reconnects += ts.reconnects;
    }
  }
  cluster.stop();

  std::vector<core::SentMessage> sent_msgs;
  for (std::size_t c = 0; c < clients.size(); ++c) {
    for (std::size_t k = 0; k < issued[c].size(); ++k) {
      sent_msgs.push_back(core::SentMessage{
          MessageId{clients[c]->id(), static_cast<std::uint64_t>(k)},
          issued[c][k]});
    }
  }
  core::PropertyResult verdict = cluster.check_properties(sent_msgs);
  if (verdict.ok && cluster.total_monitor_violations() > 0) {
    verdict.ok = false;
    verdict.error = "online monitor violations";
  }
  r.properties_ok = verdict.ok;
  r.properties_error = verdict.error;
  return r;
}

void write_bench_json(const std::vector<BackendResult>& results) {
  std::ofstream out("BENCH_net.json");
  if (!out) return;
  out << "{\"bench\":\"net_vs_runtime\",\"groups\":3,\"f\":1,"
      << "\"clients\":" << kClients
      << ",\"msgs_per_client\":" << kMsgsPerClient
      << ",\"global_fraction\":" << kGlobalFraction << ",\"backends\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BackendResult& r = results[i];
    if (i > 0) out << ",";
    out << "{\"backend\":\"" << r.backend << "\",\"completed\":" << r.completed
        << ",\"elapsed_ms\":" << r.elapsed_ms
        << ",\"throughput_msgs_s\":" << r.throughput
        << ",\"latency_mean_ms\":" << r.latency_mean_ms
        << ",\"latency_p95_ms\":" << r.latency_p95_ms
        << ",\"a_deliveries\":" << r.deliveries
        << ",\"properties_ok\":" << (r.properties_ok ? "true" : "false");
    if (!r.properties_ok) {
      out << ",\"properties_error\":\"" << r.properties_error << "\"";
    }
    if (r.backend != "runtime") {
      out << ",\"wire_messages\":" << r.wire_messages
          << ",\"wire_bytes\":" << r.wire_bytes
          << ",\"reconnects\":" << r.reconnects;
    }
    out << "}";
  }
  out << "]";
  const auto by_name = [&](const std::string& name) -> const BackendResult* {
    for (const BackendResult& r : results) {
      if (r.backend == name) return &r;
    }
    return nullptr;
  };
  const BackendResult* rt = by_name("runtime");
  const BackendResult* net = by_name("net");
  const BackendResult* traced = by_name("net_traced");
  if (rt != nullptr && net != nullptr && rt->throughput > 0.0) {
    out << ",\"net_vs_runtime_throughput_ratio\":"
        << net->throughput / rt->throughput;
  }
  if (net != nullptr && traced != nullptr && net->throughput > 0.0) {
    // < 1.0 means tracing cost throughput; 1 - ratio is the overhead
    // fraction at the default 1/64 sampling.
    out << ",\"traced_vs_untraced_throughput_ratio\":"
        << traced->throughput / net->throughput;
  }
  out << "}\n";
}

}  // namespace

int main() {
  using workload::fmt;
  workload::print_header(
      "Net backend (real TCP) vs runtime backend, 3 groups, f=1, mixed");

  const net::ClusterConfig cfg = cluster_config();
  std::vector<BackendResult> results;
  results.push_back(run_runtime(cfg));
  results.push_back(run_net(cfg, /*trace_sample_every=*/0, "net"));
  results.push_back(run_net(cfg, /*trace_sample_every=*/64, "net_traced"));

  std::vector<std::vector<std::string>> rows;
  for (const BackendResult& r : results) {
    rows.push_back({r.backend, std::to_string(r.completed), fmt(r.throughput, 0),
                    fmt(r.latency_mean_ms, 2), fmt(r.latency_p95_ms, 2),
                    r.properties_ok ? "ok" : "VIOLATED"});
  }
  workload::print_table(
      {"backend", "completed", "msgs/s", "mean ms", "p95 ms", "properties"},
      rows);
  const BackendResult& nr = results[1];
  std::printf(
      "\nnet run: %llu wire messages, %.1f MiB on the wire, %llu reconnects. "
      "Wall-clock numbers are host-dependent; the runtime/net delta is the "
      "cost of framing + syscalls + epoll.\n",
      (unsigned long long)nr.wire_messages,
      static_cast<double>(nr.wire_bytes) / (1024.0 * 1024.0),
      (unsigned long long)nr.reconnects);

  write_bench_json(results);

  int failures = 0;
  for (const BackendResult& r : results) {
    if (r.completed != kClients * kMsgsPerClient) {
      std::printf("FAIL: %s backend completed %d/%d\n", r.backend.c_str(),
                  r.completed, kClients * kMsgsPerClient);
      ++failures;
    }
    if (!r.properties_ok) {
      std::printf("FAIL: %s backend violates properties: %s\n",
                  r.backend.c_str(), r.properties_error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
