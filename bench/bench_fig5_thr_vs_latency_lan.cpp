// Figure 5: LAN throughput versus latency as the number of closed-loop
// clients grows. (a) local messages (ByzCast / Baseline, 2 and 4 groups,
// BFT-SMaRt reference); (b) global messages. Expected shapes: for local
// traffic ByzCast sustains ~2x+ the Baseline's throughput at comparable
// latency; for global traffic every protocol saturates below BFT-SMaRt.
#include <cstdio>

#include "workload/experiment.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;
using namespace byzcast::workload;

ExperimentResult g_probe;  // highest-load ByzCast global run, for the sidecar

void sweep(const char* title, Pattern pattern) {
  print_header(title);
  struct Curve {
    const char* name;
    Protocol protocol;
    int groups;
  };
  const Curve curves[] = {
      {"ByzCast-2g", Protocol::kByzCast2Level, 2},
      {"ByzCast-4g", Protocol::kByzCast2Level, 4},
      {"Baseline-2g", Protocol::kBaseline, 2},
      {"Baseline-4g", Protocol::kBaseline, 4},
      {"BFT-SMaRt", Protocol::kBftSmart, 1},
  };
  for (const Curve& curve : curves) {
    std::printf("\n%s:\n", curve.name);
    std::vector<std::vector<std::string>> rows;
    for (const int clients_per_group : {1, 8, 30, 80}) {
      ExperimentConfig cfg;
      cfg.protocol = curve.protocol;
      cfg.num_groups = curve.groups;
      cfg.clients_per_group = clients_per_group;
      cfg.workload.pattern = pattern;
      cfg.warmup = 1 * kSecond;
      cfg.duration = 2500 * kMillisecond;
      cfg.seed = 13;
      const ExperimentResult res = run_experiment(cfg);
      if (curve.protocol == Protocol::kByzCast2Level &&
          pattern == Pattern::kGlobalUniformPairs) {
        g_probe = res;
      }
      rows.push_back({std::to_string(clients_per_group * curve.groups),
                      fmt(res.throughput, 0),
                      fmt(res.latency_all.mean_ms()),
                      fmt(res.latency_all.percentile_ms(95))});
    }
    print_table({"clients", "throughput msg/s", "mean ms", "p95 ms"}, rows);
    write_series_csv(std::string("bench_csv/fig5_") +
                         (pattern == Pattern::kLocalOnly ? "local_"
                                                         : "global_") +
                         curve.name + ".csv",
                     {"clients", "throughput", "mean_ms", "p95_ms"}, rows);
  }
}

}  // namespace

int main() {
  sweep("Figure 5(a): throughput vs latency, LOCAL messages",
        Pattern::kLocalOnly);
  std::printf(
      "\nPaper: ByzCast is at least twice as fast as Baseline for local "
      "messages (half the latency even with 2 groups).\n");

  sweep("Figure 5(b): throughput vs latency, GLOBAL messages",
        Pattern::kGlobalUniformPairs);
  std::printf(
      "\nPaper: with global messages BFT-SMaRt always performs best; "
      "ByzCast and Baseline saturate below half its throughput.\n");
  write_metrics_sidecar("bench_csv/fig5_metrics.json", g_probe);
  return 0;
}
