// Wall-clock throughput of the runtime backend: real msgs/s sustained by
// closed-loop clients over 1..N target groups at f=1, local-only and mixed
// (50% global pairs) workloads, on real threads (thread-per-group + one
// client worker). The simulator's counterpart figures are Fig. 4/5; here the
// numbers are host-dependent wall-clock measurements, not simulated-time
// reproductions — the point is exercising the concurrent backend end to end
// and giving the optimizer a real-hardware reference curve.
//
// Emits bench_csv/runtime_throughput.csv (series), the standard metrics
// sidecar bench_csv/runtime_metrics.json (from the largest mixed config),
// BENCH_runtime.json (machine-readable summary of every config), and
// BENCH_wire.json (before/after comparison against the BENCH_runtime.json
// found at startup — i.e. the previous run's numbers — plus the verdict of
// the five atomic-multicast property checkers over each config's
// DeliveryLog; a throughput number from a run that broke ordering would be
// meaningless).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "core/multicast.hpp"
#include "core/properties.hpp"
#include "core/tree.hpp"
#include "runtime/parallel_system.hpp"
#include "workload/report.hpp"

namespace {

using namespace byzcast;

constexpr int kClients = 2;
constexpr int kMsgsPerClient = 150;
constexpr std::size_t kPayload = 64;

struct ConfigResult {
  int groups = 0;
  std::string pattern;
  std::size_t workers = 0;
  int completed = 0;
  double elapsed_ms = 0.0;
  double throughput = 0.0;  // client completions / wall second
  double latency_mean_ms = 0.0;
  double latency_p95_ms = 0.0;
  std::uint64_t deliveries = 0;
  std::uint64_t wire_messages = 0;
  bool properties_ok = false;
  std::string properties_error;
};

core::OverlayTree make_tree(int groups) {
  std::vector<GroupId> targets;
  for (int i = 0; i < groups; ++i) targets.push_back(GroupId{i});
  return groups == 1 ? core::OverlayTree::single(targets[0])
                     : core::OverlayTree::two_level(targets, GroupId{100});
}

/// Runs one closed-loop configuration; `global_fraction` of messages go to
/// a random pair of distinct groups, the rest to one random group. When
/// `sidecar` is non-null the run records observability into it.
ConfigResult run_config(int groups, double global_fraction,
                        workload::ExperimentResult* sidecar) {
  runtime::ParallelOptions opts;
  opts.runtime.seed = 97;
  if (sidecar != nullptr) {
    sidecar->metrics = std::make_shared<MetricsRegistry>();
    sidecar->trace = std::make_shared<TraceLog>();
    opts.obs = Observability{sidecar->metrics.get(), sidecar->trace.get()};
  }
  runtime::ParallelSystem system(make_tree(groups), /*f=*/1, opts);

  std::vector<core::Client*> clients;
  std::vector<Rng> rngs;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(&system.add_client("client" + std::to_string(c)));
    rngs.push_back(system.env().fork_rng());
  }

  const Bytes payload(kPayload, std::uint8_t{0xab});
  const int total = kClients * kMsgsPerClient;
  std::vector<int> sent(kClients, 0);  // each slot touched by one worker
  // Canonical destination of every issued message, recorded at issue time
  // for the property checkers (slot c only touched by client c's worker).
  std::vector<std::vector<std::vector<GroupId>>> issued(kClients);
  std::atomic<int> done{0};
  std::mutex lat_mu;
  LatencyRecorder latency;

  // issue(c) always runs on client c's worker, so the re-issue from the
  // completion callback may call a_multicast directly.
  std::function<void(int)> issue = [&](int c) {
    auto& count = sent[static_cast<std::size_t>(c)];
    if (count == kMsgsPerClient) return;
    ++count;
    Rng& rng = rngs[static_cast<std::size_t>(c)];
    std::vector<GroupId> dst;
    if (groups > 1 && rng.next_bool(global_fraction)) {
      const auto a = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(groups)));
      const auto b = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(groups - 1)));
      dst = {GroupId{a}, GroupId{b < a ? b : b + 1}};
    } else {
      dst = {GroupId{static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(groups)))}};
    }
    core::MulticastMessage canon;
    canon.dst = dst;
    canon.canonicalize();
    issued[static_cast<std::size_t>(c)].push_back(std::move(canon.dst));
    clients[static_cast<std::size_t>(c)]->a_multicast(
        std::move(dst), payload,
        [&, c](const core::MulticastMessage&, Time lat) {
          {
            const std::lock_guard<std::mutex> lock(lat_mu);
            latency.record(system.env().now(), lat);
          }
          done.fetch_add(1);
          issue(c);
        });
  };

  system.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    system.env().run_on(clients[static_cast<std::size_t>(c)]->id(),
                        [&issue, c] { issue(c); });
  }
  const auto deadline = t0 + std::chrono::minutes(5);
  while (done.load() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto t1 = std::chrono::steady_clock::now();
  system.stop();

  ConfigResult r;
  r.groups = groups;
  r.pattern = global_fraction > 0.0 ? "mixed" : "local";
  r.workers = system.env().executor().workers();
  r.completed = done.load();
  r.elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.throughput = r.completed / (r.elapsed_ms / 1000.0);
  r.latency_mean_ms = latency.mean_ms();
  r.latency_p95_ms = latency.percentile_ms(95);
  r.deliveries = system.delivery_log().total_deliveries();
  r.wire_messages = system.env().network().sent();

  // Validate the run's DeliveryLog against the §II-B properties (threads
  // have quiesced after stop(), so the structural readers are safe).
  core::PropertyInput in;
  in.log = &system.delivery_log();
  for (int c = 0; c < kClients; ++c) {
    const auto& dsts = issued[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < dsts.size(); ++k) {
      in.sent.push_back(core::SentMessage{
          MessageId{clients[static_cast<std::size_t>(c)]->id(),
                    static_cast<std::uint64_t>(k)},
          dsts[k]});
    }
  }
  for (int g = 0; g < groups; ++g) {
    auto& grp = system.system().group(GroupId{g});
    for (const int i : grp.correct_indices()) {
      in.correct_replicas[GroupId{g}].push_back(grp.replica(i).id());
    }
  }
  const core::PropertyResult verdict = core::check_all_properties(in);
  r.properties_ok = verdict.ok;
  r.properties_error = verdict.error;
  if (sidecar != nullptr) {
    sidecar->throughput = r.throughput;
    sidecar->completed = static_cast<std::uint64_t>(r.completed);
    sidecar->a_deliveries = r.deliveries;
    sidecar->wire_messages = r.wire_messages;
    sidecar->latency_all = latency;
  }
  return r;
}

/// Prior throughput per (groups, pattern), scraped from the
/// BENCH_runtime.json present at startup (the previous run of this binary —
/// e.g. the committed pre-zero-copy baseline). Empty when absent.
std::map<std::pair<int, std::string>, double> read_baseline() {
  std::map<std::pair<int, std::string>, double> out;
  std::ifstream file("BENCH_runtime.json");
  if (!file) return out;
  std::stringstream ss;
  ss << file.rdbuf();
  const std::string text = ss.str();
  // The file is machine-written by write_bench_json below, so a flat scan
  // for its fixed key order is sufficient — no JSON library needed.
  std::size_t pos = 0;
  while ((pos = text.find("{\"groups\":", pos)) != std::string::npos) {
    const std::size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    const std::string obj = text.substr(pos, end - pos);
    pos = end;
    const auto field = [&obj](const std::string& key) -> std::string {
      const std::size_t at = obj.find("\"" + key + "\":");
      if (at == std::string::npos) return {};
      std::size_t start = at + key.size() + 3;
      if (start < obj.size() && obj[start] == '"') {
        const std::size_t close = obj.find('"', start + 1);
        return obj.substr(start + 1, close - start - 1);
      }
      const std::size_t close = obj.find_first_of(",}", start);
      return obj.substr(start, close - start);
    };
    const std::string groups = field("groups");
    const std::string pattern = field("pattern");
    const std::string thr = field("throughput_msgs_s");
    if (groups.empty() || pattern.empty() || thr.empty()) continue;
    out[{std::stoi(groups), pattern}] = std::stod(thr);
  }
  return out;
}

/// Before/after record of the zero-copy wire fabric change: prior numbers
/// (when a baseline file existed), this run's numbers, the improvement, and
/// whether the run's DeliveryLog passed the atomic multicast checkers.
void write_wire_json(
    const std::vector<ConfigResult>& results,
    const std::map<std::pair<int, std::string>, double>& baseline) {
  std::ofstream out("BENCH_wire.json");
  if (!out) return;
  out << "{\"bench\":\"wire_fabric_before_after\",\"backend\":\"runtime\","
      << "\"f\":1,\"clients\":" << kClients
      << ",\"msgs_per_client\":" << kMsgsPerClient
      << ",\"baseline_source\":\""
      << (baseline.empty() ? "none" : "BENCH_runtime.json") << "\","
      << "\"configs\":[";
  bool first = true;
  for (const auto& r : results) {
    if (!first) out << ",";
    first = false;
    out << "{\"groups\":" << r.groups << ",\"pattern\":\"" << r.pattern
        << "\",\"throughput_after_msgs_s\":" << r.throughput;
    const auto it = baseline.find({r.groups, r.pattern});
    if (it != baseline.end() && it->second > 0.0) {
      const double pct = 100.0 * (r.throughput - it->second) / it->second;
      out << ",\"throughput_before_msgs_s\":" << it->second
          << ",\"improvement_pct\":" << pct;
    }
    out << ",\"latency_mean_ms\":" << r.latency_mean_ms
        << ",\"latency_p95_ms\":" << r.latency_p95_ms
        << ",\"properties_ok\":" << (r.properties_ok ? "true" : "false");
    if (!r.properties_ok) {
      out << ",\"properties_error\":\"" << r.properties_error << "\"";
    }
    out << "}";
  }
  out << "]}\n";
}

void write_bench_json(const std::vector<ConfigResult>& results) {
  std::ofstream out("BENCH_runtime.json");
  if (!out) return;
  out << "{\"bench\":\"runtime_throughput\",\"backend\":\"runtime\","
      << "\"f\":1,\"clients\":" << kClients
      << ",\"msgs_per_client\":" << kMsgsPerClient << ",\"configs\":[";
  bool first = true;
  for (const auto& r : results) {
    if (!first) out << ",";
    first = false;
    out << "{\"groups\":" << r.groups << ",\"pattern\":\"" << r.pattern
        << "\",\"workers\":" << r.workers << ",\"completed\":" << r.completed
        << ",\"elapsed_ms\":" << r.elapsed_ms
        << ",\"throughput_msgs_s\":" << r.throughput
        << ",\"latency_mean_ms\":" << r.latency_mean_ms
        << ",\"latency_p95_ms\":" << r.latency_p95_ms
        << ",\"a_deliveries\":" << r.deliveries
        << ",\"wire_messages\":" << r.wire_messages << "}";
  }
  out << "]}\n";
}

}  // namespace

int main() {
  using workload::fmt;
  workload::print_header(
      "Runtime backend: wall-clock throughput, 1..4 groups, f=1");

  // Prior numbers (if any) before this run overwrites BENCH_runtime.json.
  const auto baseline = read_baseline();

  std::vector<ConfigResult> results;
  workload::ExperimentResult probe;
  std::vector<std::vector<std::string>> rows;
  for (const int groups : {1, 2, 4}) {
    const auto local = run_config(groups, 0.0, nullptr);
    results.push_back(local);
    std::vector<std::string> row = {std::to_string(groups),
                                    fmt(local.throughput, 0)};
    if (groups > 1) {
      // The 4-group mixed run feeds the observability sidecar.
      const auto mixed =
          run_config(groups, 0.5, groups == 4 ? &probe : nullptr);
      results.push_back(mixed);
      row.push_back(fmt(mixed.throughput, 0));
    } else {
      row.push_back("-");
    }
    rows.push_back(row);
  }
  workload::print_table({"groups", "local msgs/s", "mixed msgs/s"}, rows);

  const auto& last = results.back();
  std::printf(
      "\n%d-group mixed run: %zu workers, %d msgs in %.0f ms "
      "(mean %.2f ms, p95 %.2f ms). Wall-clock numbers are host-dependent; "
      "compare shapes, not absolutes, against the simulated Fig. 4/5.\n",
      last.groups, last.workers, last.completed, last.elapsed_ms,
      last.latency_mean_ms, last.latency_p95_ms);

  workload::write_series_csv("bench_csv/runtime_throughput.csv",
                             {"groups", "local msgs/s", "mixed msgs/s"},
                             rows);
  workload::write_metrics_sidecar("bench_csv/runtime_metrics.json", probe);
  write_bench_json(results);
  write_wire_json(results, baseline);

  int failures = 0;
  for (const auto& r : results) {
    if (r.completed != kClients * kMsgsPerClient) {
      std::printf("WARN: %d-group %s run completed %d/%d\n", r.groups,
                  r.pattern.c_str(), r.completed, kClients * kMsgsPerClient);
      ++failures;
    }
    if (!r.properties_ok) {
      std::printf("FAIL: %d-group %s run violates properties: %s\n",
                  r.groups, r.pattern.c_str(), r.properties_error.c_str());
      ++failures;
    }
    const auto it = baseline.find({r.groups, r.pattern});
    if (it != baseline.end() && it->second > 0.0) {
      std::printf("%d-group %s: %.0f -> %.0f msgs/s (%+.1f%%)\n", r.groups,
                  r.pattern.c_str(), it->second, r.throughput,
                  100.0 * (r.throughput - it->second) / it->second);
    }
  }
  return failures == 0 ? 0 : 1;
}
