// Offered-load sweep with saturation-knee detection (the workload engine's
// flagship artifact). Default spec: ByzCast-2L on the WAN preset, 2 groups,
// mixed 10:1 open-loop load swept from well under the sequential ceiling to
// past the pipelined one, baseline (pipeline depth 4) next to the
// pipeline_off ablation (depth 1). The SweepDriver classifies each point
// against the low-load p99 plateau and goodput floor, bisects the knee, and
// the result lands in BENCH_sweep.json ("byzcast-sweep-v1", validated by
// tools/check_sweep.py, plotted by tools/plot_benches.py).
//
// Expected physics (calibrated by bench_pipeline): the depth-1 WAN group is
// network-bound at ~2.9k msg/s, so the pipeline_off curve knees around 3k
// offered, while the depth-4 baseline carries ~2x more before its knee —
// the sweep turns that ablation delta into a single number per curve.
//
// Usage: bench_sweep [--spec <file.json>] [--out <file.json>]
// Default spec: configs/workloads/wan_sweep.json schema, embedded below so
// the bench runs without a checkout-relative path.
//
// In-process gates (deterministic simulation, stable in CI):
//  * every measured point completes, with zero invariant-monitor violations
//    and zero sample-capacity overflows;
//  * every curve detects a knee inside the grid;
//  * each ablation curve's knee does not exceed the baseline's (removing an
//    optimization must not raise sustainable throughput).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

using namespace byzcast;

// Keep in sync with configs/workloads/wan_sweep.json (the file exists for
// cluster/CI use; the bench embeds a copy to stay path-independent).
constexpr const char* kDefaultSpec = R"json({
  "name": "wan-sweep",
  "protocol": "byzcast-2l",
  "environment": "wan",
  "num_groups": 2,
  "f": 1,
  "clients_per_group": 100,
  "payload_size": 64,
  "warmup_ms": 2000,
  "duration_ms": 6000,
  "seed": 42,
  "monitors": true,
  "workload": {"pattern": "mixed", "mixed_local": 10, "mixed_global": 1},
  "rate": {
    "kind": "sweep",
    "rates": [1500, 3000, 4500, 6000, 7500, 9000],
    "knee_p99_factor": 5.0,
    "knee_goodput_floor": 0.95,
    "bisect_iters": 3
  },
  "ablations": ["pipeline_off"]
})json";

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sweep [--spec file.json] [--out file.json]\n");
      return 2;
    }
  }

  std::string error;
  std::optional<workload::WorkloadSpec> spec;
  if (spec_path.empty()) {
    const auto doc = Json::parse(kDefaultSpec, &error);
    if (doc) spec = workload::parse_workload_spec(*doc, &error);
  } else {
    spec = workload::load_workload_spec(spec_path, &error);
  }
  if (!spec) {
    std::fprintf(stderr, "bad workload spec: %s\n", error.c_str());
    return 2;
  }

  workload::print_header(
      "Offered-load sweep '" + spec->name + "': " +
      workload::to_string(spec->base.protocol) + " " +
      workload::to_string(spec->base.environment) + ", " +
      std::to_string(spec->base.num_groups) + " groups, knee = first rate "
      "with p99 > plateau x factor or goodput < floor, bisected");

  const workload::WorkloadOutcome outcome = workload::run_workload(*spec);

  using workload::fmt;
  for (const workload::SweepCurve& curve : outcome.curves) {
    std::printf("\ncurve: %s\n", curve.label.c_str());
    std::vector<std::vector<std::string>> rows;
    for (const workload::SweepPoint& pt : curve.points) {
      rows.push_back({fmt(pt.offered, 0), fmt(pt.throughput, 0),
                      fmt(100.0 * pt.goodput_ratio, 1), fmt(pt.p50_ms, 2),
                      fmt(pt.p99_ms, 2), pt.saturated ? "SAT" : "ok",
                      std::to_string(pt.monitor_violations)});
    }
    workload::print_table({"offered/s", "msgs/s", "goodput %", "p50 ms",
                           "p99 ms", "state", "violations"},
                          rows);
    if (curve.knee_found) {
      std::printf("knee: %.0f msg/s offered (p50 %.2f ms, p99 %.2f ms); "
                  "max healthy rate %.0f msg/s\n",
                  curve.knee.offered, curve.knee.p50_ms, curve.knee.p99_ms,
                  curve.max_unsaturated_rate);
    } else {
      std::printf("no knee inside the grid (healthy through %.0f msg/s)\n",
                  curve.max_unsaturated_rate);
    }
  }

  std::ofstream out(out_path);
  if (out) out << workload::outcome_to_json(outcome).dump();

  int failures = 0;
  for (const workload::SweepCurve& curve : outcome.curves) {
    for (const workload::SweepPoint& pt : curve.points) {
      if (pt.completed == 0) {
        std::printf("FAIL: %s @ %.0f msg/s completed nothing\n",
                    curve.label.c_str(), pt.offered);
        ++failures;
      }
      if (pt.monitor_violations != 0) {
        std::printf("FAIL: %s @ %.0f msg/s tripped %llu invariant "
                    "violations\n",
                    curve.label.c_str(), pt.offered,
                    static_cast<unsigned long long>(pt.monitor_violations));
        ++failures;
      }
      if (pt.sample_overflow != 0) {
        std::printf("FAIL: %s @ %.0f msg/s overflowed sample capacity "
                    "(%llu dropped)\n",
                    curve.label.c_str(), pt.offered,
                    static_cast<unsigned long long>(pt.sample_overflow));
        ++failures;
      }
    }
    if (!curve.knee_found) {
      std::printf("FAIL: curve %s found no knee inside the grid\n",
                  curve.label.c_str());
      ++failures;
    }
  }
  // An optimization turned off must not RAISE the ceiling. Ablations that
  // don't move the knee at all (e.g. batch_adapt_off on the LAN, where the
  // global-relay path dominates) bisect independently per curve, so allow
  // one-bisection-step slack above the baseline before calling it a
  // regression.
  if (outcome.curves.size() >= 2 && outcome.curves.front().knee_found) {
    const double base_knee = outcome.curves.front().knee.offered;
    for (std::size_t i = 1; i < outcome.curves.size(); ++i) {
      const workload::SweepCurve& abl = outcome.curves[i];
      if (abl.knee_found && abl.knee.offered > base_knee * 1.2) {
        std::printf("FAIL: ablation %s knees at %.0f msg/s, above the "
                    "baseline's %.0f\n",
                    abl.label.c_str(), abl.knee.offered, base_knee);
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
