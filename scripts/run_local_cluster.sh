#!/usr/bin/env bash
# Boots a full ByzCast cluster as real OS processes on localhost (one
# byzcastd per replica seat — 12 daemons for the default 3-group f=1
# config), drives it with byzcast-loadgen, shuts the daemons down
# gracefully (SIGTERM -> drain -> dump), and verifies the merged per-process
# dumps against the five atomic-multicast properties with
# `byzcast-loadgen --check-dumps`.
#
# When the config carries introspection ports (configs/lan_local.json
# does), the run also exercises the live observability plane: byzcast-ctl
# scrapes every daemon's /metrics + /spans mid-run, and during the
# loadgen's --linger-s window (workload finished, client introspection
# still up) `byzcast-ctl merge` aligns every process's spans onto one
# timeline and writes cluster_spans.json + cluster_trace.json to the out
# dir, validated by tools/check_cluster_obs.py when python3 is present.
#
# Usage:
#   scripts/run_local_cluster.sh [BUILD_DIR] [--config FILE] [--out-dir DIR]
#       [--clients N] [--msgs N] [--global-fraction F] [--kill-one]
#       [--workload SPEC.json] [--linger-s S]
#
# --workload switches the loadgen to open-loop workload mode: arrivals are
# paced by the spec's rate schedule with the spec's destination pattern
# (Zipf skew, per-class local/global split) instead of the closed-loop
# --clients/--msgs knobs. See configs/workloads/.
#
# --kill-one additionally SIGKILLs one non-leader replica (g1:r3) mid-run
# and passes the seat to the checker as --exclude; with f=1 the run must
# still complete and the surviving seats must still satisfy the properties.
# The survivors get a SIGUSR1 right after the kill: each writes its
# artifacts on demand without exiting — the mid-run survivor snapshot.
#
# Exit 0 iff the loadgen completed every message, every daemon exited 0
# (killed seat excepted), the dump check passed, and (when introspection is
# configured) the mid-run scrape + merge + observability checks passed.
set -u

BUILD_DIR="build"
CONFIG="configs/lan_local.json"
OUT_DIR=""
CLIENTS=2
MSGS=50
GLOBAL_FRACTION=0.5
KILL_ONE=0
WORKLOAD=""
LINGER_S=8

if [ $# -ge 1 ] && [ "${1#--}" = "$1" ]; then
  BUILD_DIR="$1"
  shift
fi
while [ $# -gt 0 ]; do
  case "$1" in
    --config) CONFIG="$2"; shift 2 ;;
    --out-dir) OUT_DIR="$2"; shift 2 ;;
    --clients) CLIENTS="$2"; shift 2 ;;
    --msgs) MSGS="$2"; shift 2 ;;
    --global-fraction) GLOBAL_FRACTION="$2"; shift 2 ;;
    --workload) WORKLOAD="$2"; shift 2 ;;
    --linger-s) LINGER_S="$2"; shift 2 ;;
    --kill-one) KILL_ONE=1; shift ;;
    *) echo "run_local_cluster: unknown argument $1" >&2; exit 2 ;;
  esac
done

DAEMON="$BUILD_DIR/src/net/byzcastd"
LOADGEN="$BUILD_DIR/src/net/byzcast-loadgen"
CTL="$BUILD_DIR/src/net/byzcast-ctl"
for bin in "$DAEMON" "$LOADGEN" "$CTL"; do
  if [ ! -x "$bin" ]; then
    echo "run_local_cluster: missing binary $bin (build first)" >&2
    exit 2
  fi
done
if [ ! -f "$CONFIG" ]; then
  echo "run_local_cluster: missing config $CONFIG" >&2
  exit 2
fi

if [ -z "$OUT_DIR" ]; then
  OUT_DIR="$(mktemp -d "${TMPDIR:-/tmp}/byzcast_cluster.XXXXXX")"
fi
mkdir -p "$OUT_DIR"
echo "run_local_cluster: config=$CONFIG out=$OUT_DIR kill_one=$KILL_ONE"

# Group/replica counts straight from the config, so a different topology
# file needs no script edits.
GROUPS_N=$(grep -c '"replicas"' "$CONFIG")
REPLICAS_N=4  # 3f+1; f is fixed at 1 in the checked-in configs
if grep -q '"f": *2' "$CONFIG"; then REPLICAS_N=7; fi

declare -A DAEMON_PID=()
cleanup() {
  for key in "${!DAEMON_PID[@]}"; do
    kill -9 "${DAEMON_PID[$key]}" 2>/dev/null || true
  done
}
trap cleanup EXIT

# --- 1. launch every replica daemon -----------------------------------------
for ((g = 0; g < GROUPS_N; ++g)); do
  for ((r = 0; r < REPLICAS_N; ++r)); do
    "$DAEMON" --config "$CONFIG" --group "$g" --replica "$r" \
      --out-dir "$OUT_DIR" 2>"$OUT_DIR/byzcastd_g${g}_r${r}.log" &
    DAEMON_PID["g${g}_r${r}"]=$!
  done
done
echo "run_local_cluster: launched $((GROUPS_N * REPLICAS_N)) daemons"

# The live observability plane only exists when the config assigns
# introspection ports (configs/lan_local.json does).
HAVE_OBS=0
if grep -q '"introspect_port"' "$CONFIG"; then HAVE_OBS=1; fi

# --- 2. optionally schedule a mid-run kill ----------------------------------
EXCLUDE_ARGS=()
if [ "$KILL_ONE" -eq 1 ]; then
  VICTIM="g1_r3"
  (
    sleep 2
    kill -9 "${DAEMON_PID[$VICTIM]}" 2>/dev/null || true
    echo "run_local_cluster: killed $VICTIM" >&2
  ) &
  KILLER_PID=$!
  EXCLUDE_ARGS=(--exclude "g1:r3")
fi

# --- 3. drive the workload ---------------------------------------------------
# The loadgen runs in the background with a linger window: after the
# workload completes it keeps its process (and introspection endpoints)
# alive for $LINGER_S seconds so the collector can still scrape the
# client-side end-to-end spans.
LOADGEN_LOG="$OUT_DIR/loadgen.log"
if [ -n "$WORKLOAD" ]; then
  "$LOADGEN" --config "$CONFIG" --out-dir "$OUT_DIR" --workload "$WORKLOAD" \
    --linger-s "$LINGER_S" >"$LOADGEN_LOG" 2>&1 &
else
  "$LOADGEN" --config "$CONFIG" --out-dir "$OUT_DIR" \
    --clients "$CLIENTS" --msgs "$MSGS" --global-fraction "$GLOBAL_FRACTION" \
    --linger-s "$LINGER_S" >"$LOADGEN_LOG" 2>&1 &
fi
LOADGEN_PID=$!

# --- 3a. mid-run observability: scrape the live cluster ---------------------
SCRAPE_RC=0
if [ "$HAVE_OBS" -eq 1 ]; then
  sleep 3  # after the kill-one victim dies: scrape what a collector sees
  "$CTL" status --config "$CONFIG" || true
  "$CTL" scrape --config "$CONFIG" --out "$OUT_DIR"
  SCRAPE_RC=$?
fi
if [ "$KILL_ONE" -eq 1 ]; then
  # Survivor snapshot on demand: SIGUSR1 makes every live daemon write its
  # delivery dump + metrics sidecar mid-run without exiting.
  for key in "${!DAEMON_PID[@]}"; do
    [ "$key" = "$VICTIM" ] && continue
    kill -USR1 "${DAEMON_PID[$key]}" 2>/dev/null || true
  done
  echo "run_local_cluster: sent SIGUSR1 survivor-snapshot to live daemons"
fi

# --- 3b. wait for the workload, merge during the linger window --------------
MERGE_RC=0
OBS_RC=0
if [ "$HAVE_OBS" -eq 1 ]; then
  # The loadgen announces the linger window on stderr once the workload is
  # done; merging then captures complete client-side spans.
  for _ in $(seq 1 1200); do
    if grep -q "lingering" "$LOADGEN_LOG" 2>/dev/null; then break; fi
    if ! kill -0 "$LOADGEN_PID" 2>/dev/null; then break; fi
    sleep 0.1
  done
  "$CTL" merge --config "$CONFIG" --out "$OUT_DIR"
  MERGE_RC=$?
  if command -v python3 >/dev/null 2>&1; then
    OBS_CHECK_ARGS=(--spans "$OUT_DIR/cluster_spans.json" \
                    --expect-zero-violations)
    if [ "$KILL_ONE" -eq 0 ]; then
      # 12 daemons + the lingering loadgen.
      OBS_CHECK_ARGS+=(--expect-nodes $((GROUPS_N * REPLICAS_N + 1)))
    fi
    python3 tools/check_cluster_obs.py "${OBS_CHECK_ARGS[@]}" \
      "$OUT_DIR"/prom_*.txt
    OBS_RC=$?
  fi
fi

wait "$LOADGEN_PID"
LOADGEN_RC=$?
sed 's/^/    /' "$LOADGEN_LOG"
if [ "$KILL_ONE" -eq 1 ]; then wait "$KILLER_PID" 2>/dev/null || true; fi

# --- 4. graceful shutdown: SIGTERM, then wait for exit 0 --------------------
for key in "${!DAEMON_PID[@]}"; do
  kill -TERM "${DAEMON_PID[$key]}" 2>/dev/null || true
done
DAEMON_FAILURES=0
for key in "${!DAEMON_PID[@]}"; do
  wait "${DAEMON_PID[$key]}"
  rc=$?
  if [ "$KILL_ONE" -eq 1 ] && [ "$key" = "g1_r3" ]; then
    continue  # SIGKILLed on purpose; no exit-0 obligation
  fi
  if [ "$rc" -ne 0 ]; then
    echo "run_local_cluster: $key exited $rc" >&2
    sed 's/^/    /' "$OUT_DIR/byzcastd_${key}.log" >&2 || true
    DAEMON_FAILURES=$((DAEMON_FAILURES + 1))
  fi
done
DAEMON_PID=()  # all reaped; disarm the cleanup trap's kill -9

# --- 5. merge the dumps and check the properties ----------------------------
"$LOADGEN" --check-dumps --config "$CONFIG" --dir "$OUT_DIR" \
  ${EXCLUDE_ARGS[@]+"${EXCLUDE_ARGS[@]}"}
CHECK_RC=$?

echo "run_local_cluster: loadgen=$LOADGEN_RC daemons_failed=$DAEMON_FAILURES check=$CHECK_RC scrape=$SCRAPE_RC merge=$MERGE_RC obs=$OBS_RC (artifacts in $OUT_DIR)"
if [ "$LOADGEN_RC" -ne 0 ] || [ "$DAEMON_FAILURES" -ne 0 ] || \
   [ "$CHECK_RC" -ne 0 ] || [ "$SCRAPE_RC" -ne 0 ] || \
   [ "$MERGE_RC" -ne 0 ] || [ "$OBS_RC" -ne 0 ]; then
  exit 1
fi
exit 0
