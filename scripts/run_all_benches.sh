#!/usr/bin/env bash
# Runs every benchmark binary (one per paper table/figure, plus ablations
# and micro-benchmarks) and echoes the combined report. Fails loudly: a
# nonzero bench exit or a missing expected BENCH_*.json artifact fails the
# whole sweep instead of silently shrinking the report.
set -u
BUILD_DIR="${1:-build}"
FAILED=0
for b in "$BUILD_DIR"/bench/*; do
  if [ -x "$b" ] && [ ! -d "$b" ]; then
    case "$(basename "$b")" in
      # Live-cluster binaries need a running byzcastd deployment (or are the
      # deployment); they are driven by scripts/run_local_cluster.sh, not by
      # this sweep. bench_net_throughput IS self-contained (it builds its
      # own in-process cluster) and runs below like any other bench.
      byzcastd|byzcast-loadgen) continue ;;
    esac
    echo
    echo "########## $(basename "$b") ##########"
    if ! "$b"; then
      echo "FAILED: $(basename "$b")"
      FAILED=1
    fi
  fi
done

# Gate-carrying artifacts the benches above must have produced in the cwd.
for artifact in BENCH_sweep.json BENCH_vertical.json; do
  if [ ! -s "$artifact" ]; then
    echo "FAILED: expected artifact $artifact was not produced"
    FAILED=1
  fi
done
exit "$FAILED"
