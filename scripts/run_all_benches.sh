#!/usr/bin/env bash
# Runs every benchmark binary (one per paper table/figure, plus ablations
# and micro-benchmarks) and echoes the combined report.
set -u
BUILD_DIR="${1:-build}"
for b in "$BUILD_DIR"/bench/*; do
  if [ -x "$b" ] && [ ! -d "$b" ]; then
    case "$(basename "$b")" in
      # Live-cluster binaries need a running byzcastd deployment (or are the
      # deployment); they are driven by scripts/run_local_cluster.sh, not by
      # this sweep. bench_net_throughput IS self-contained (it builds its
      # own in-process cluster) and runs below like any other bench.
      byzcastd|byzcast-loadgen) continue ;;
    esac
    echo
    echo "########## $(basename "$b") ##########"
    "$b"
  fi
done
