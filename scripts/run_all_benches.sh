#!/usr/bin/env bash
# Runs every benchmark binary (one per paper table/figure, plus ablations
# and micro-benchmarks) and echoes the combined report.
set -u
BUILD_DIR="${1:-build}"
for b in "$BUILD_DIR"/bench/*; do
  if [ -x "$b" ] && [ ! -d "$b" ]; then
    echo
    echo "########## $(basename "$b") ##########"
    "$b"
  fi
done
