# Empty dependencies file for bench_fig4_scalability_lan.
# This may be replaced when dependencies are built.
