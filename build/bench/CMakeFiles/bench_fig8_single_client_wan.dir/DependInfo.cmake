
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_single_client_wan.cpp" "bench/CMakeFiles/bench_fig8_single_client_wan.dir/bench_fig8_single_client_wan.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_single_client_wan.dir/bench_fig8_single_client_wan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bzc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/bzc_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bzc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/bzc_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bzc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bzc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
