file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_single_client_wan.dir/bench_fig8_single_client_wan.cpp.o"
  "CMakeFiles/bench_fig8_single_client_wan.dir/bench_fig8_single_client_wan.cpp.o.d"
  "bench_fig8_single_client_wan"
  "bench_fig8_single_client_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_single_client_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
