# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig5_thr_vs_latency_lan.
