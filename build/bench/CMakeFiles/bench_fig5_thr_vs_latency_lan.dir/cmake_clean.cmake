file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_thr_vs_latency_lan.dir/bench_fig5_thr_vs_latency_lan.cpp.o"
  "CMakeFiles/bench_fig5_thr_vs_latency_lan.dir/bench_fig5_thr_vs_latency_lan.cpp.o.d"
  "bench_fig5_thr_vs_latency_lan"
  "bench_fig5_thr_vs_latency_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_thr_vs_latency_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
