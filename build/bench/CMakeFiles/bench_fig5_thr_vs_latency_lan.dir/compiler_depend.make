# Empty compiler generated dependencies file for bench_fig5_thr_vs_latency_lan.
# This may be replaced when dependencies are built.
