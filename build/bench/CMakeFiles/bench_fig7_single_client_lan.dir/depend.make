# Empty dependencies file for bench_fig7_single_client_lan.
# This may be replaced when dependencies are built.
