file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_optimizer.dir/bench_table3_optimizer.cpp.o"
  "CMakeFiles/bench_table3_optimizer.dir/bench_table3_optimizer.cpp.o.d"
  "bench_table3_optimizer"
  "bench_table3_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
