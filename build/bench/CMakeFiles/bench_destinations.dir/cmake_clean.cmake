file(REMOVE_RECURSE
  "CMakeFiles/bench_destinations.dir/bench_destinations.cpp.o"
  "CMakeFiles/bench_destinations.dir/bench_destinations.cpp.o.d"
  "bench_destinations"
  "bench_destinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_destinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
