# Empty dependencies file for bench_destinations.
# This may be replaced when dependencies are built.
