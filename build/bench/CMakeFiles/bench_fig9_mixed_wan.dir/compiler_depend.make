# Empty compiler generated dependencies file for bench_fig9_mixed_wan.
# This may be replaced when dependencies are built.
