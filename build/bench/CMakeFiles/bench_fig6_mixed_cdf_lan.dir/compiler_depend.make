# Empty compiler generated dependencies file for bench_fig6_mixed_cdf_lan.
# This may be replaced when dependencies are built.
