file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_mixed_cdf_lan.dir/bench_fig6_mixed_cdf_lan.cpp.o"
  "CMakeFiles/bench_fig6_mixed_cdf_lan.dir/bench_fig6_mixed_cdf_lan.cpp.o.d"
  "bench_fig6_mixed_cdf_lan"
  "bench_fig6_mixed_cdf_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_mixed_cdf_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
