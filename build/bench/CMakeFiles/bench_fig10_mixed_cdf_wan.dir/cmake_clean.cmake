file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mixed_cdf_wan.dir/bench_fig10_mixed_cdf_wan.cpp.o"
  "CMakeFiles/bench_fig10_mixed_cdf_wan.dir/bench_fig10_mixed_cdf_wan.cpp.o.d"
  "bench_fig10_mixed_cdf_wan"
  "bench_fig10_mixed_cdf_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mixed_cdf_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
