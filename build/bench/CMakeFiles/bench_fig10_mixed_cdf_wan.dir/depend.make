# Empty dependencies file for bench_fig10_mixed_cdf_wan.
# This may be replaced when dependencies are built.
