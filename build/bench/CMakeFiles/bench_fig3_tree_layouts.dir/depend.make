# Empty dependencies file for bench_fig3_tree_layouts.
# This may be replaced when dependencies are built.
