file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_tree_layouts.dir/bench_fig3_tree_layouts.cpp.o"
  "CMakeFiles/bench_fig3_tree_layouts.dir/bench_fig3_tree_layouts.cpp.o.d"
  "bench_fig3_tree_layouts"
  "bench_fig3_tree_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tree_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
