# Empty dependencies file for tree_planner.
# This may be replaced when dependencies are built.
