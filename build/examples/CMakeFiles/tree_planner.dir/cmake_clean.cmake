file(REMOVE_RECURSE
  "CMakeFiles/tree_planner.dir/tree_planner.cpp.o"
  "CMakeFiles/tree_planner.dir/tree_planner.cpp.o.d"
  "tree_planner"
  "tree_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
