# Empty compiler generated dependencies file for reconfiguration_demo.
# This may be replaced when dependencies are built.
