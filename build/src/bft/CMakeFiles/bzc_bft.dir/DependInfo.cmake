
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bft/client_proxy.cpp" "src/bft/CMakeFiles/bzc_bft.dir/client_proxy.cpp.o" "gcc" "src/bft/CMakeFiles/bzc_bft.dir/client_proxy.cpp.o.d"
  "/root/repo/src/bft/group.cpp" "src/bft/CMakeFiles/bzc_bft.dir/group.cpp.o" "gcc" "src/bft/CMakeFiles/bzc_bft.dir/group.cpp.o.d"
  "/root/repo/src/bft/message.cpp" "src/bft/CMakeFiles/bzc_bft.dir/message.cpp.o" "gcc" "src/bft/CMakeFiles/bzc_bft.dir/message.cpp.o.d"
  "/root/repo/src/bft/replica.cpp" "src/bft/CMakeFiles/bzc_bft.dir/replica.cpp.o" "gcc" "src/bft/CMakeFiles/bzc_bft.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bzc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bzc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
