file(REMOVE_RECURSE
  "libbzc_bft.a"
)
