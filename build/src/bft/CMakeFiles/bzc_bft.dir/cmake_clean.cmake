file(REMOVE_RECURSE
  "CMakeFiles/bzc_bft.dir/client_proxy.cpp.o"
  "CMakeFiles/bzc_bft.dir/client_proxy.cpp.o.d"
  "CMakeFiles/bzc_bft.dir/group.cpp.o"
  "CMakeFiles/bzc_bft.dir/group.cpp.o.d"
  "CMakeFiles/bzc_bft.dir/message.cpp.o"
  "CMakeFiles/bzc_bft.dir/message.cpp.o.d"
  "CMakeFiles/bzc_bft.dir/replica.cpp.o"
  "CMakeFiles/bzc_bft.dir/replica.cpp.o.d"
  "libbzc_bft.a"
  "libbzc_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzc_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
