# Empty dependencies file for bzc_bft.
# This may be replaced when dependencies are built.
