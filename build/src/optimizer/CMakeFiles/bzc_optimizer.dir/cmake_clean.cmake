file(REMOVE_RECURSE
  "CMakeFiles/bzc_optimizer.dir/evaluate.cpp.o"
  "CMakeFiles/bzc_optimizer.dir/evaluate.cpp.o.d"
  "CMakeFiles/bzc_optimizer.dir/search.cpp.o"
  "CMakeFiles/bzc_optimizer.dir/search.cpp.o.d"
  "libbzc_optimizer.a"
  "libbzc_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzc_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
