file(REMOVE_RECURSE
  "libbzc_optimizer.a"
)
