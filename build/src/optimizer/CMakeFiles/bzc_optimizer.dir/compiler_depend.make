# Empty compiler generated dependencies file for bzc_optimizer.
# This may be replaced when dependencies are built.
