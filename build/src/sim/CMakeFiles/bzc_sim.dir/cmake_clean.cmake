file(REMOVE_RECURSE
  "CMakeFiles/bzc_sim.dir/actor.cpp.o"
  "CMakeFiles/bzc_sim.dir/actor.cpp.o.d"
  "CMakeFiles/bzc_sim.dir/latency.cpp.o"
  "CMakeFiles/bzc_sim.dir/latency.cpp.o.d"
  "CMakeFiles/bzc_sim.dir/network.cpp.o"
  "CMakeFiles/bzc_sim.dir/network.cpp.o.d"
  "CMakeFiles/bzc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/bzc_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/bzc_sim.dir/simulation.cpp.o"
  "CMakeFiles/bzc_sim.dir/simulation.cpp.o.d"
  "libbzc_sim.a"
  "libbzc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
