file(REMOVE_RECURSE
  "libbzc_sim.a"
)
