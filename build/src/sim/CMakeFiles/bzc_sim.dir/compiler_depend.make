# Empty compiler generated dependencies file for bzc_sim.
# This may be replaced when dependencies are built.
