# Empty compiler generated dependencies file for bzc_common.
# This may be replaced when dependencies are built.
