file(REMOVE_RECURSE
  "CMakeFiles/bzc_common.dir/auth.cpp.o"
  "CMakeFiles/bzc_common.dir/auth.cpp.o.d"
  "CMakeFiles/bzc_common.dir/bytes.cpp.o"
  "CMakeFiles/bzc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/bzc_common.dir/hmac.cpp.o"
  "CMakeFiles/bzc_common.dir/hmac.cpp.o.d"
  "CMakeFiles/bzc_common.dir/log.cpp.o"
  "CMakeFiles/bzc_common.dir/log.cpp.o.d"
  "CMakeFiles/bzc_common.dir/rng.cpp.o"
  "CMakeFiles/bzc_common.dir/rng.cpp.o.d"
  "CMakeFiles/bzc_common.dir/sha256.cpp.o"
  "CMakeFiles/bzc_common.dir/sha256.cpp.o.d"
  "CMakeFiles/bzc_common.dir/stats.cpp.o"
  "CMakeFiles/bzc_common.dir/stats.cpp.o.d"
  "libbzc_common.a"
  "libbzc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
