file(REMOVE_RECURSE
  "libbzc_common.a"
)
