file(REMOVE_RECURSE
  "CMakeFiles/bzc_workload.dir/experiment.cpp.o"
  "CMakeFiles/bzc_workload.dir/experiment.cpp.o.d"
  "CMakeFiles/bzc_workload.dir/generator.cpp.o"
  "CMakeFiles/bzc_workload.dir/generator.cpp.o.d"
  "CMakeFiles/bzc_workload.dir/report.cpp.o"
  "CMakeFiles/bzc_workload.dir/report.cpp.o.d"
  "libbzc_workload.a"
  "libbzc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
