file(REMOVE_RECURSE
  "libbzc_workload.a"
)
