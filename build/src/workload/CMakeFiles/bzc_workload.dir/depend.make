# Empty dependencies file for bzc_workload.
# This may be replaced when dependencies are built.
