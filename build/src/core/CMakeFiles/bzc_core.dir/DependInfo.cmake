
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/bzc_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/bzc_core.dir/client.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/bzc_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/bzc_core.dir/node.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/bzc_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/bzc_core.dir/system.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/core/CMakeFiles/bzc_core.dir/tree.cpp.o" "gcc" "src/core/CMakeFiles/bzc_core.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bft/CMakeFiles/bzc_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bzc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bzc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
