# Empty compiler generated dependencies file for bzc_core.
# This may be replaced when dependencies are built.
