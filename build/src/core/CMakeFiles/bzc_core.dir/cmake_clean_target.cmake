file(REMOVE_RECURSE
  "libbzc_core.a"
)
