file(REMOVE_RECURSE
  "CMakeFiles/bzc_core.dir/client.cpp.o"
  "CMakeFiles/bzc_core.dir/client.cpp.o.d"
  "CMakeFiles/bzc_core.dir/node.cpp.o"
  "CMakeFiles/bzc_core.dir/node.cpp.o.d"
  "CMakeFiles/bzc_core.dir/system.cpp.o"
  "CMakeFiles/bzc_core.dir/system.cpp.o.d"
  "CMakeFiles/bzc_core.dir/tree.cpp.o"
  "CMakeFiles/bzc_core.dir/tree.cpp.o.d"
  "libbzc_core.a"
  "libbzc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
