
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bft/batching_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/batching_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/batching_test.cpp.o.d"
  "/root/repo/tests/bft/broadcast_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/broadcast_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/broadcast_test.cpp.o.d"
  "/root/repo/tests/bft/byzantine_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/byzantine_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/byzantine_test.cpp.o.d"
  "/root/repo/tests/bft/counters_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/counters_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/counters_test.cpp.o.d"
  "/root/repo/tests/bft/edge_cases_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/edge_cases_test.cpp.o.d"
  "/root/repo/tests/bft/fifo_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/fifo_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/fifo_test.cpp.o.d"
  "/root/repo/tests/bft/message_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/message_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/message_test.cpp.o.d"
  "/root/repo/tests/bft/protocol_flow_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/protocol_flow_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/protocol_flow_test.cpp.o.d"
  "/root/repo/tests/bft/reconfig_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/reconfig_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/reconfig_test.cpp.o.d"
  "/root/repo/tests/bft/reply_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/reply_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/reply_test.cpp.o.d"
  "/root/repo/tests/bft/state_transfer_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/state_transfer_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/state_transfer_test.cpp.o.d"
  "/root/repo/tests/bft/view_change_test.cpp" "tests/CMakeFiles/bft_tests.dir/bft/view_change_test.cpp.o" "gcc" "tests/CMakeFiles/bft_tests.dir/bft/view_change_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bzc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/bzc_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bzc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/bzc_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bzc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bzc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
