file(REMOVE_RECURSE
  "CMakeFiles/bft_tests.dir/bft/batching_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/batching_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/broadcast_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/broadcast_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/byzantine_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/byzantine_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/counters_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/counters_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/edge_cases_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/edge_cases_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/fifo_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/fifo_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/message_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/message_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/protocol_flow_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/protocol_flow_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/reconfig_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/reconfig_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/reply_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/reply_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/state_transfer_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/state_transfer_test.cpp.o.d"
  "CMakeFiles/bft_tests.dir/bft/view_change_test.cpp.o"
  "CMakeFiles/bft_tests.dir/bft/view_change_test.cpp.o.d"
  "bft_tests"
  "bft_tests.pdb"
  "bft_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
