
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/byzcast_basic_test.cpp" "tests/CMakeFiles/core_tests.dir/core/byzcast_basic_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/byzcast_basic_test.cpp.o.d"
  "/root/repo/tests/core/byzcast_fault_test.cpp" "tests/CMakeFiles/core_tests.dir/core/byzcast_fault_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/byzcast_fault_test.cpp.o.d"
  "/root/repo/tests/core/byzcast_order_test.cpp" "tests/CMakeFiles/core_tests.dir/core/byzcast_order_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/byzcast_order_test.cpp.o.d"
  "/root/repo/tests/core/deep_tree_test.cpp" "tests/CMakeFiles/core_tests.dir/core/deep_tree_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/deep_tree_test.cpp.o.d"
  "/root/repo/tests/core/delivery_log_test.cpp" "tests/CMakeFiles/core_tests.dir/core/delivery_log_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/delivery_log_test.cpp.o.d"
  "/root/repo/tests/core/determinism_test.cpp" "tests/CMakeFiles/core_tests.dir/core/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/determinism_test.cpp.o.d"
  "/root/repo/tests/core/front_running_test.cpp" "tests/CMakeFiles/core_tests.dir/core/front_running_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/front_running_test.cpp.o.d"
  "/root/repo/tests/core/inner_target_test.cpp" "tests/CMakeFiles/core_tests.dir/core/inner_target_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/inner_target_test.cpp.o.d"
  "/root/repo/tests/core/larger_f_test.cpp" "tests/CMakeFiles/core_tests.dir/core/larger_f_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/larger_f_test.cpp.o.d"
  "/root/repo/tests/core/linearizability_test.cpp" "tests/CMakeFiles/core_tests.dir/core/linearizability_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/linearizability_test.cpp.o.d"
  "/root/repo/tests/core/multicast_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multicast_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multicast_test.cpp.o.d"
  "/root/repo/tests/core/open_loop_client_test.cpp" "tests/CMakeFiles/core_tests.dir/core/open_loop_client_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/open_loop_client_test.cpp.o.d"
  "/root/repo/tests/core/shard_application_test.cpp" "tests/CMakeFiles/core_tests.dir/core/shard_application_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/shard_application_test.cpp.o.d"
  "/root/repo/tests/core/system_test.cpp" "tests/CMakeFiles/core_tests.dir/core/system_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_test.cpp.o.d"
  "/root/repo/tests/core/tree_property_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tree_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tree_property_test.cpp.o.d"
  "/root/repo/tests/core/tree_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tree_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tree_test.cpp.o.d"
  "/root/repo/tests/core/wan_test.cpp" "tests/CMakeFiles/core_tests.dir/core/wan_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/wan_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bzc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/bzc_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bzc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/bzc_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bzc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bzc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
