#include "optimizer/evaluate.hpp"

#include <algorithm>

namespace byzcast::optimizer {

Destination make_destination(std::vector<GroupId> groups) {
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  BZC_EXPECTS(!groups.empty());
  return groups;
}

WorkloadSpec uniform_pairs_workload(const std::vector<GroupId>& targets,
                                    double per_destination) {
  WorkloadSpec spec;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    for (std::size_t j = i + 1; j < targets.size(); ++j) {
      spec.add(make_destination({targets[i], targets[j]}), per_destination);
    }
  }
  return spec;
}

WorkloadSpec skewed_pairs_workload(const std::vector<GroupId>& targets,
                                   double per_destination) {
  BZC_EXPECTS(targets.size() >= 4);
  WorkloadSpec spec;
  spec.add(make_destination({targets[0], targets[1]}), per_destination);
  spec.add(make_destination({targets[2], targets[3]}), per_destination);
  return spec;
}

Evaluation evaluate(const core::OverlayTree& tree, const WorkloadSpec& spec) {
  Evaluation ev;
  for (const GroupId g : tree.all_groups()) {
    ev.load[g] = 0.0;
    ev.involved[g];
  }
  for (const auto& d : spec.destinations) {
    const GroupId top = tree.lca(d);
    ev.sum_heights += tree.height(top);
    const double f_d = spec.load_of(d);
    ev.weighted_heights += f_d * tree.height(top);
    for (const GroupId x : tree.path_groups(d)) {
      ev.load[x] += f_d;
      ev.involved[x].push_back(d);
    }
  }
  for (const auto& [g, l] : ev.load) {
    if (l > spec.capacity_of(g)) {
      ev.feasible = false;
      ev.overloaded.push_back(g);
    }
  }
  return ev;
}

bool better(const Evaluation& a, const Evaluation& b, Objective objective) {
  if (a.feasible != b.feasible) return a.feasible;
  if (objective == Objective::kLoadWeightedHeights) {
    return a.weighted_heights < b.weighted_heights;
  }
  return a.sum_heights < b.sum_heights;
}

}  // namespace byzcast::optimizer
