// Input of the overlay-tree optimization problem (§III-C): the destination
// sets D with their offered load F(d), and per-group capacity K(x).
#pragma once

#include <map>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace byzcast::optimizer {

/// A destination set d ∈ D, canonical (sorted, unique).
using Destination = std::vector<GroupId>;

[[nodiscard]] Destination make_destination(std::vector<GroupId> groups);

struct WorkloadSpec {
  /// D: the destination sets that occur in the workload.
  std::vector<Destination> destinations;
  /// F(d): offered load per destination set, messages/second.
  std::map<Destination, double> load;
  /// K(x): max messages/second group x sustains. Groups without an entry
  /// are treated as unconstrained.
  std::map<GroupId, double> capacity;

  void add(Destination d, double messages_per_sec) {
    BZC_EXPECTS(messages_per_sec >= 0.0);
    destinations.push_back(d);
    load[std::move(d)] = messages_per_sec;
  }

  [[nodiscard]] double load_of(const Destination& d) const {
    const auto it = load.find(d);
    return it == load.end() ? 0.0 : it->second;
  }

  [[nodiscard]] double capacity_of(GroupId g) const {
    const auto it = capacity.find(g);
    return it == capacity.end() ? 1e18 : it->second;
  }
};

/// The paper's Table II uniform workload: all pairs over `targets`, each at
/// `per_destination` messages/second (1200 m/s in the paper).
[[nodiscard]] WorkloadSpec uniform_pairs_workload(
    const std::vector<GroupId>& targets, double per_destination);

/// The paper's Table II skewed workload: {g1,g2} and {g3,g4} only, each at
/// `per_destination` messages/second (9000 m/s in the paper).
[[nodiscard]] WorkloadSpec skewed_pairs_workload(
    const std::vector<GroupId>& targets, double per_destination);

}  // namespace byzcast::optimizer
