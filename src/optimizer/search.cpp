#include "optimizer/search.hpp"

#include <algorithm>
#include <functional>

#include "common/contracts.hpp"

namespace byzcast::optimizer {

namespace {

/// One candidate parent assignment over auxiliary indices. -1 means "root"
/// for an auxiliary that is used; unused auxiliaries are dropped.
struct Assignment {
  std::vector<int> aux_parent;     // index into auxiliaries, or -1
  std::vector<int> target_parent;  // index into auxiliaries
};

/// Validates the assignment and builds the tree; returns nullopt when the
/// candidate is not a single rooted tree over the used groups.
std::optional<core::OverlayTree> build_candidate(
    const std::vector<GroupId>& targets,
    const std::vector<GroupId>& auxiliaries, const Assignment& a) {
  const int num_aux = static_cast<int>(auxiliaries.size());

  // Closure of auxiliaries used as ancestors of targets; cycle detection by
  // bounding the walk length.
  std::vector<bool> used(static_cast<std::size_t>(num_aux), false);
  for (const int tp : a.target_parent) {
    int cur = tp;
    int steps = 0;
    while (cur != -1) {
      if (++steps > num_aux + 1) return std::nullopt;  // cycle
      used[static_cast<std::size_t>(cur)] = true;
      cur = a.aux_parent[static_cast<std::size_t>(cur)];
    }
  }

  int roots = 0;
  for (int i = 0; i < num_aux; ++i) {
    if (!used[static_cast<std::size_t>(i)]) continue;
    const int p = a.aux_parent[static_cast<std::size_t>(i)];
    if (p == -1) {
      ++roots;
    } else if (!used[static_cast<std::size_t>(p)]) {
      return std::nullopt;  // parent outside the used set (unreachable)
    }
  }
  if (roots != 1) return std::nullopt;

  core::OverlayTree tree;
  for (int i = 0; i < num_aux; ++i) {
    if (used[static_cast<std::size_t>(i)]) {
      tree.add_group(auxiliaries[static_cast<std::size_t>(i)], false);
    }
  }
  for (const GroupId t : targets) tree.add_group(t, true);
  for (int i = 0; i < num_aux; ++i) {
    if (!used[static_cast<std::size_t>(i)]) continue;
    const int p = a.aux_parent[static_cast<std::size_t>(i)];
    if (p != -1) {
      tree.set_parent(auxiliaries[static_cast<std::size_t>(i)],
                      auxiliaries[static_cast<std::size_t>(p)]);
    }
  }
  for (std::size_t j = 0; j < targets.size(); ++j) {
    tree.set_parent(targets[j],
                    auxiliaries[static_cast<std::size_t>(a.target_parent[j])]);
  }
  tree.finalize();
  return tree;
}

}  // namespace

std::optional<SearchResult> optimize_tree(
    const std::vector<GroupId>& targets,
    const std::vector<GroupId>& auxiliaries, const WorkloadSpec& spec,
    Objective objective) {
  BZC_EXPECTS(!targets.empty());

  if (targets.size() == 1) {
    // A single target needs no overlay: plain atomic broadcast.
    SearchResult res{core::OverlayTree::single(targets.front()),
                     Evaluation{}, 1, 1};
    res.evaluation = evaluate(res.tree, spec);
    if (!res.evaluation.feasible) return std::nullopt;
    return res;
  }
  BZC_EXPECTS(!auxiliaries.empty());

  const int num_aux = static_cast<int>(auxiliaries.size());
  Assignment a;
  a.aux_parent.assign(static_cast<std::size_t>(num_aux), -1);
  a.target_parent.assign(targets.size(), 0);

  std::optional<SearchResult> best;
  std::size_t considered = 0;
  std::size_t valid = 0;

  // Odometer enumeration over aux parents in {-1, 0..A-1} \ {self} and
  // target parents in {0..A-1}.
  const std::function<void(std::size_t)> enum_targets =
      [&](std::size_t j) {
        if (j == targets.size()) {
          ++considered;
          auto tree = build_candidate(targets, auxiliaries, a);
          if (!tree) return;
          ++valid;
          Evaluation ev = evaluate(*tree, spec);
          if (!best || better(ev, best->evaluation, objective)) {
            best = SearchResult{std::move(*tree), std::move(ev), 0, 0};
          }
          return;
        }
        for (int p = 0; p < num_aux; ++p) {
          a.target_parent[j] = p;
          enum_targets(j + 1);
        }
      };

  const std::function<void(int)> enum_aux = [&](int i) {
    if (i == num_aux) {
      enum_targets(0);
      return;
    }
    for (int p = -1; p < num_aux; ++p) {
      if (p == i) continue;
      a.aux_parent[static_cast<std::size_t>(i)] = p;
      enum_aux(i + 1);
    }
  };
  enum_aux(0);

  if (!best || !best->evaluation.feasible) return std::nullopt;
  best->candidates_considered = considered;
  best->candidates_valid = valid;
  return best;
}

}  // namespace byzcast::optimizer
