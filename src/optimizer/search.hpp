// Exhaustive search for the optimized overlay tree (§III-C): enumerate every
// tree whose leaves are the target groups and whose inner nodes are a subset
// of the available auxiliary groups, evaluate each against the workload, and
// keep the best feasible one (minimum Σ_d H(T,d)).
//
// The search space is every parent assignment: each target's parent is an
// auxiliary group; each used auxiliary's parent is another auxiliary or none
// (the root). With the paper's sizes (≤ 8 targets, ≤ 3 auxiliaries) this is
// at most a few hundred thousand candidates — exact optimization is cheap.
#pragma once

#include <optional>
#include <vector>

#include "core/tree.hpp"
#include "optimizer/evaluate.hpp"
#include "optimizer/spec.hpp"

namespace byzcast::optimizer {

struct SearchResult {
  core::OverlayTree tree;
  Evaluation evaluation;
  std::size_t candidates_considered = 0;
  std::size_t candidates_valid = 0;
};

/// Returns the best feasible tree, or nullopt if no candidate satisfies the
/// capacity constraints. `targets` must have >= 1 element; `auxiliaries`
/// may be empty only if |targets| == 1.
[[nodiscard]] std::optional<SearchResult> optimize_tree(
    const std::vector<GroupId>& targets,
    const std::vector<GroupId>& auxiliaries, const WorkloadSpec& spec,
    Objective objective = Objective::kSumHeights);

}  // namespace byzcast::optimizer
