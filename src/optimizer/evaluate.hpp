// Closed-form evaluation of one candidate overlay tree against a workload
// spec: the quantities of §III-C — P(T,d), H(T,d), T(T,x), L(T,x) — the
// objective Σ_d H(T,d), and the capacity-feasibility verdict. This is what
// Table III tabulates for the 2-level and 3-level trees.
#pragma once

#include <map>
#include <vector>

#include "core/tree.hpp"
#include "optimizer/spec.hpp"

namespace byzcast::optimizer {

/// What the search minimizes. kSumHeights is the paper's objective
/// (Σ_d H(T,d)); kLoadWeightedHeights is an extension weighting each
/// destination's height by its rate (Σ_d F(d)·H(T,d)) — it optimizes the
/// *average message's* hop count rather than the average destination set's.
enum class Objective { kSumHeights, kLoadWeightedHeights };

struct Evaluation {
  bool feasible = true;
  /// Σ_d H(T, d) — the paper's objective; lower is better.
  int sum_heights = 0;
  /// Σ_d F(d) · H(T, d) — extension objective.
  double weighted_heights = 0.0;
  /// L(T, x) per group.
  std::map<GroupId, double> load;
  /// T(T, x): destination sets whose ordering involves group x.
  std::map<GroupId, std::vector<Destination>> involved;
  /// Groups whose load exceeds capacity (empty iff feasible).
  std::vector<GroupId> overloaded;
};

[[nodiscard]] Evaluation evaluate(const core::OverlayTree& tree,
                                  const WorkloadSpec& spec);

/// True when `a` strictly beats `b`: feasibility first, then the objective.
[[nodiscard]] bool better(const Evaluation& a, const Evaluation& b,
                          Objective objective = Objective::kSumHeights);

}  // namespace byzcast::optimizer
