#include "runtime/stage_pool.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace byzcast::runtime {

namespace {
/// Set while the calling thread is one of this process's exec shard workers.
thread_local bool t_in_exec_shard = false;
}  // namespace

StagePool::StagePool(std::uint32_t verify_workers, std::uint32_t exec_shards,
                     std::size_t mailbox_capacity, Poster post_to_owner)
    : post_to_owner_(std::move(post_to_owner)) {
  BZC_EXPECTS(post_to_owner_ != nullptr);
  verify_boxes_.reserve(verify_workers);
  for (std::uint32_t i = 0; i < verify_workers; ++i) {
    verify_boxes_.push_back(
        std::make_unique<Mailbox<VerifyTask>>(mailbox_capacity));
  }
  exec_boxes_.reserve(exec_shards);
  for (std::uint32_t i = 0; i < exec_shards; ++i) {
    exec_boxes_.push_back(
        std::make_unique<Mailbox<std::function<void()>>>(mailbox_capacity));
  }
}

StagePool::~StagePool() { stop(); }

void StagePool::start() {
  BZC_EXPECTS(!started_);
  started_ = true;
  threads_.reserve(verify_boxes_.size() + exec_boxes_.size());
  for (std::size_t i = 0; i < verify_boxes_.size(); ++i) {
    threads_.emplace_back([this, i] { run_verify(i); });
  }
  for (std::size_t i = 0; i < exec_boxes_.size(); ++i) {
    threads_.emplace_back([this, i] { run_exec(i); });
  }
}

void StagePool::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& box : verify_boxes_) box->close();
  for (auto& box : exec_boxes_) box->close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void StagePool::run_verify(std::size_t index) {
  Mailbox<VerifyTask>& box = *verify_boxes_[index];
  VerifyTask task;
  while (box.pop(task)) {
    task.preverify(task.msg);
    // Completion must go through the per-owner reorder buffer; the actual
    // hand-back to the owner's executor lane happens inside complete_verify,
    // in ticket order.
    complete_verify(
        task.owner, task.ticket,
        [release = std::move(task.release), m = std::move(task.msg)]() mutable {
          release(std::move(m));
        });
    task = VerifyTask{};
  }
}

void StagePool::complete_verify(ProcessId owner, std::uint64_t ticket,
                                std::function<void()> post) {
  const std::lock_guard<std::mutex> lock(lanes_mu_);
  Lane& lane = lanes_[owner];
  if (ticket != lane.next_post) ++reordered_;
  lane.done.emplace(ticket, std::move(post));
  auto it = lane.done.find(lane.next_post);
  while (it != lane.done.end()) {
    // Posting under the lock keeps two workers completing for the same owner
    // from interleaving: the owner's mailbox receives releases in ticket
    // order. The poster never blocks (force-push), so holding the lock here
    // cannot deadlock against a submitter.
    post_to_owner_(owner, std::move(it->second));
    lane.done.erase(it);
    it = lane.done.find(++lane.next_post);
  }
}

void StagePool::submit_verify(ProcessId owner, sim::WireMessage msg,
                              std::function<void(sim::WireMessage&)> preverify,
                              std::function<void(sim::WireMessage)> release) {
  BZC_EXPECTS(!verify_boxes_.empty());
  VerifyTask task;
  task.owner = owner;
  task.msg = std::move(msg);
  task.preverify = std::move(preverify);
  task.release = std::move(release);
  std::size_t worker;
  {
    const std::lock_guard<std::mutex> lock(lanes_mu_);
    task.ticket = lanes_[owner].next_submit++;
    worker = static_cast<std::size_t>(next_verify_worker_++ %
                                      verify_boxes_.size());
  }
  // A push after stop() drops the message — the same fate the network gives
  // a message in flight to a destroyed actor; drivers reach quiescence
  // before stopping the env, so nothing of consequence is lost.
  verify_boxes_[worker]->force_push(std::move(task));
}

void StagePool::run_exec(std::size_t index) {
  t_in_exec_shard = true;
  Mailbox<std::function<void()>>& box = *exec_boxes_[index];
  std::function<void()> work;
  while (box.pop(work)) {
    work();
    work = nullptr;
  }
  t_in_exec_shard = false;
}

void StagePool::submit_exec(std::uint64_t key, std::function<void()> work) {
  BZC_EXPECTS(!exec_boxes_.empty());
  const std::size_t shard = static_cast<std::size_t>(key % exec_boxes_.size());
  // After stop() the push is dropped (shutdown only; see submit_verify).
  exec_boxes_[shard]->force_push(std::move(work));
}

bool StagePool::in_exec_shard() const { return t_in_exec_shard; }

}  // namespace byzcast::runtime
