// StagePool: the runtime backend's implementation of sim::StageBackend.
//
// Two fixed thread pools hang off the RuntimeEnv next to the Executor:
//
//  * verify workers — each owns a bounded MPSC mailbox of verify tasks.
//    Tasks for one owner are ticketed at submission (the owner's executor
//    lane is the single submitter, so tickets ARE the arrival order) and
//    their completions pass through a per-owner reorder buffer: a result is
//    posted back to the owner only when every earlier ticket of that owner
//    has been posted, so the order stage observes exactly the sequence it
//    would have seen verifying inline.
//  * exec shards — each owns a mailbox of deferred execute/reply closures,
//    keyed by destination key (key % shards), so work on one key is serial
//    while distinct keys run in parallel. Reply FIFO per origin is the
//    caller's job (bft::ExecBarrier); the shard only provides keyed serial
//    execution.
//
// Shutdown: stop() closes both pools' mailboxes and joins the workers
// (remaining queued tasks are drained, their completions posted). The owning
// RuntimeEnv stops the pool before the Executor, so every posted completion
// still finds a live worker; submissions after stop() are dropped — the same
// fate the network gives a message in flight to a destroyed actor, and
// drivers reach quiescence before stopping the env.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "runtime/mailbox.hpp"
#include "sim/stages.hpp"
#include "sim/wire.hpp"

namespace byzcast::runtime {

class StagePool final : public sim::StageBackend {
 public:
  /// Posts `fn` to run serialized on `owner`'s executor lane. Must never
  /// block (the pool calls it while holding its reorder lock).
  using Poster = std::function<void(ProcessId owner, std::function<void()>)>;

  StagePool(std::uint32_t verify_workers, std::uint32_t exec_shards,
            std::size_t mailbox_capacity, Poster post_to_owner);
  ~StagePool() override;

  StagePool(const StagePool&) = delete;
  StagePool& operator=(const StagePool&) = delete;

  void start();
  /// Idempotent: drains and joins both pools. After stop(), submissions run
  /// inline on the submitting thread.
  void stop();

  // --- StageBackend --------------------------------------------------------
  [[nodiscard]] std::uint32_t verify_workers() const override {
    return static_cast<std::uint32_t>(verify_boxes_.size());
  }
  [[nodiscard]] std::uint32_t exec_shards() const override {
    return static_cast<std::uint32_t>(exec_boxes_.size());
  }
  void submit_verify(ProcessId owner, sim::WireMessage msg,
                     std::function<void(sim::WireMessage&)> preverify,
                     std::function<void(sim::WireMessage)> release) override;
  void submit_exec(std::uint64_t key, std::function<void()> work) override;
  [[nodiscard]] bool in_exec_shard() const override;

  // --- observability (tests) ----------------------------------------------
  /// Completions that finished out of submission order and waited in the
  /// reorder buffer — proof the pool actually ran concurrently.
  [[nodiscard]] std::uint64_t verify_reordered() const {
    const std::lock_guard<std::mutex> lock(lanes_mu_);
    return reordered_;
  }

 private:
  struct VerifyTask {
    ProcessId owner;
    std::uint64_t ticket = 0;
    sim::WireMessage msg;
    std::function<void(sim::WireMessage&)> preverify;
    std::function<void(sim::WireMessage)> release;
  };

  /// Per-owner completion-reorder buffer.
  struct Lane {
    std::uint64_t next_submit = 0;
    std::uint64_t next_post = 0;
    std::map<std::uint64_t, std::function<void()>> done;  // ticket -> post
  };

  void run_verify(std::size_t index);
  void run_exec(std::size_t index);
  /// Registers `ticket`'s completion and posts every now-consecutive one of
  /// `owner`, in ticket order, under the lanes lock (two workers completing
  /// for the same owner must not interleave their posts).
  void complete_verify(ProcessId owner, std::uint64_t ticket,
                       std::function<void()> post);

  Poster post_to_owner_;
  std::vector<std::unique_ptr<Mailbox<VerifyTask>>> verify_boxes_;
  std::vector<std::unique_ptr<Mailbox<std::function<void()>>>> exec_boxes_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex lanes_mu_;
  std::unordered_map<ProcessId, Lane> lanes_;
  std::uint64_t reordered_ = 0;
  /// Round-robin dispatch of verify tasks across workers.
  std::uint64_t next_verify_worker_ = 0;
};

}  // namespace byzcast::runtime
