#include "runtime/executor.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace byzcast::runtime {

namespace {

// Identity of the worker running the current thread. A plain thread_local:
// one executor's workers never run inside another's, and the pointer pair
// lets post() recognize self-posts even with several executors alive (tests
// construct more than one).
struct WorkerContext {
  const Executor* executor = nullptr;
  std::size_t index = Executor::npos;
  std::deque<Executor::Task>* local = nullptr;
};

thread_local WorkerContext t_ctx;

}  // namespace

Executor::Executor(std::size_t workers, std::size_t mailbox_capacity) {
  BZC_EXPECTS(workers > 0);
  mailboxes_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox<Task>>(mailbox_capacity));
  }
}

Executor::~Executor() { stop(); }

void Executor::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(mailboxes_.size());
  for (std::size_t i = 0; i < mailboxes_.size(); ++i) {
    threads_.emplace_back([this, i] { run(i); });
  }
}

void Executor::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& mb : mailboxes_) mb->close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t Executor::current_worker() const {
  return t_ctx.executor == this ? t_ctx.index : npos;
}

bool Executor::post(std::size_t worker, Task task) {
  BZC_EXPECTS(worker < mailboxes_.size());
  if (t_ctx.executor == this && t_ctx.index == worker) {
    // Self-post: run-queue jump keeps drain continuations ahead of newly
    // arriving mailbox traffic and cannot block on our own capacity.
    t_ctx.local->push_back(std::move(task));
    return true;
  }
  return mailboxes_[worker]->force_push(std::move(task));
}

bool Executor::post_external(std::size_t worker, Task task) {
  BZC_EXPECTS(worker < mailboxes_.size());
  BZC_EXPECTS(t_ctx.executor == nullptr);  // workers must never block here
  return mailboxes_[worker]->push(std::move(task));
}

void Executor::run(std::size_t index) {
  std::deque<Task> local;
  t_ctx = WorkerContext{this, index, &local};
  Mailbox<Task>& mailbox = *mailboxes_[index];
  while (true) {
    if (!local.empty()) {
      Task task = std::move(local.front());
      local.pop_front();
      task();
      continue;
    }
    Task task;
    if (!mailbox.pop(task)) break;  // closed and drained; local is empty too
    task();
  }
  t_ctx = WorkerContext{};
}

}  // namespace byzcast::runtime
