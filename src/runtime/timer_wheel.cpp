#include "runtime/timer_wheel.hpp"

#include <chrono>
#include <utility>

#include "common/contracts.hpp"

namespace byzcast::runtime {

TimerWheel::TimerWheel(Time tick, std::size_t slots)
    : tick_(tick), slots_(slots) {
  BZC_EXPECTS(tick > 0);
  BZC_EXPECTS(slots > 0);
}

TimerWheel::~TimerWheel() { stop(); }

void TimerWheel::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void TimerWheel::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& slot : slots_) slot.clear();
  pending_ = 0;
}

void TimerWheel::schedule(Time delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  // +1: the current tick is already in progress, so rounding up alone could
  // fire one tick early. Always-late beats sometimes-early for timeouts.
  const auto ticks =
      static_cast<std::size_t>((delay + tick_ - 1) / tick_) + 1;
  const std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  const std::size_t slot = (cursor_ + ticks) % slots_.size();
  slots_[slot].push_back(Entry{ticks / slots_.size(), std::move(fn)});
  ++pending_;
}

std::size_t TimerWheel::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

void TimerWheel::run() {
  using std::chrono::nanoseconds;
  using std::chrono::steady_clock;
  const auto tick = nanoseconds(tick_);
  auto next = steady_clock::now() + tick;
  std::vector<std::function<void()>> due;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_until(lock, next, [this] { return stopping_; });
      if (stopping_) return;
      cursor_ = (cursor_ + 1) % slots_.size();
      auto& slot = slots_[cursor_];
      for (std::size_t i = 0; i < slot.size();) {
        if (slot[i].rounds == 0) {
          due.push_back(std::move(slot[i].fn));
          slot[i] = std::move(slot.back());
          slot.pop_back();
        } else {
          --slot[i].rounds;
          ++i;
        }
      }
      pending_ -= due.size();
    }
    for (auto& fn : due) fn();  // outside the lock: fns re-enter schedule()
    due.clear();
    next += tick;
    // Oversubscribed host: if we fell behind, skip the missed boundaries
    // rather than firing a burst of catch-up ticks (timers stay >= delay).
    const auto now = steady_clock::now();
    if (next < now) next = now + tick;
  }
}

}  // namespace byzcast::runtime
