// Bounded multi-producer single-consumer mailbox: the inbox of one executor
// worker. Producers are other workers, the timer wheel and the load-injecting
// edge thread; the single consumer is the owning worker's run loop.
//
// Two producer entry points with different blocking disciplines:
//
//  * push()       — blocks while the mailbox is full. Only the *edge* (a
//                   thread outside the executor, e.g. the benchmark driver)
//                   may use it: blocking there is backpressure. A worker
//                   must never call it, or two full mailboxes pushing into
//                   each other deadlock.
//  * force_push() — never blocks; capacity is advisory for interior traffic
//                   (worker-to-worker sends, timer fires). Protocol traffic
//                   is bounded by the protocol itself once the edge is
//                   throttled, so the overshoot is small.
//
// close() wakes everyone; pop() then drains what is left and returns false.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/contracts.hpp"

namespace byzcast::runtime {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity) : capacity_(capacity) {
    BZC_EXPECTS(capacity > 0);
  }

  /// Blocking bounded push (edge producers only). Returns false iff the
  /// mailbox was closed — the item is dropped then.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that ignores capacity (interior producers: workers,
  /// timer wheel). Returns false iff closed.
  bool force_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the mailbox is closed *and*
  /// drained; returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Rejects future pushes and wakes all waiters. Items already queued stay
  /// poppable (the consumer drains them before its loop exits).
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace byzcast::runtime
