// ThreadNetwork: the wall-clock implementation of the ExecutionEnv message
// seam. Where sim::Network turns a send into a scheduler event, this turns
// it into a task posted to the destination actor's executor worker, so
// delivery runs serialized with everything else that actor does. An optional
// fixed one-way delay routes the post through the timing wheel, modelling a
// network where real threads still do the real work but messages take real
// time to cross.
//
// The destination actor is re-resolved at delivery time (on its own worker):
// a message in flight toward an actor that detached meanwhile counts as a
// drop, never a dangling pointer — the exact rule sim::Network applies.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/types.hpp"
#include "runtime/executor.hpp"
#include "runtime/timer_wheel.hpp"
#include "sim/wire.hpp"

namespace byzcast::sim {
class Actor;
}  // namespace byzcast::sim

namespace byzcast::runtime {

class ThreadNetwork {
 public:
  /// `delay` is the injected one-way latency for every message; 0 delivers
  /// as soon as the destination worker gets to the task.
  ThreadNetwork(Executor& executor, TimerWheel& wheel, Time delay);

  /// Registers `actor`, pinned to `worker`. Wiring-thread calls; the table
  /// is mutex-guarded so workers may resolve concurrently.
  void attach(ProcessId id, sim::Actor* actor, std::size_t worker);
  void detach(ProcessId id);

  /// Routes toward msg.to from any thread. Unknown destinations drop.
  void send(sim::WireMessage msg);

  /// Worker an attached actor is pinned to; Executor::npos if unknown.
  [[nodiscard]] std::size_t worker_of(ProcessId id) const;

  [[nodiscard]] std::uint64_t sent() const {
    return sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    sim::Actor* actor = nullptr;
    std::size_t worker = Executor::npos;
  };

  void deliver(sim::WireMessage msg);

  Executor& executor_;
  TimerWheel& wheel_;
  const Time delay_;

  mutable std::mutex mu_;
  std::unordered_map<ProcessId, Slot> actors_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace byzcast::runtime
