// WallClock: monotone real time as byzcast::Time nanoseconds since the
// clock's construction, so runtime timestamps start near zero exactly like
// simulated ones and the existing exporters/plots need no unit changes.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace byzcast::runtime {

class WallClock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] Time now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const {
    return epoch_;
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace byzcast::runtime
