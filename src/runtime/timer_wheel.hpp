// Single-level timing wheel driven by one tick thread. All runtime timers —
// protocol timeouts (leader liveness, client retries) and injected network
// latency — funnel through here; callbacks are expected to be cheap posts
// into an executor mailbox, never protocol work (that would serialize the
// whole system behind the tick thread).
//
// Resolution is the tick period (default 1 ms): a delay of d fires after
// ceil(d / tick) + 1 ticks at the latest correct boundary — always >= d,
// never early. That slack is fine for its two users: protocol timeouts are
// hundreds of milliseconds, and injected latency models a network where
// sub-tick precision is meaningless.
//
// Timers may be armed before start() (system wiring arms leader timeouts
// while the wheel is still cold); they begin counting ticks once the thread
// runs. stop() joins the thread and drops every pending timer — the runtime
// tears down executor-first, so late fires would only race destruction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace byzcast::runtime {

class TimerWheel {
 public:
  static constexpr std::size_t kDefaultSlots = 256;

  explicit TimerWheel(Time tick = kMillisecond,
                      std::size_t slots = kDefaultSlots);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  void start();
  /// Idempotent; joins the tick thread and drops all pending timers.
  void stop();

  /// Arms `fn` to run on the tick thread >= `delay` from now. Thread-safe;
  /// callable before start() and from expiring callbacks. After stop() the
  /// timer is silently dropped.
  void schedule(Time delay, std::function<void()> fn);

  [[nodiscard]] Time tick() const { return tick_; }
  /// Timers armed and not yet fired or dropped (test/debug aid).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Entry {
    std::size_t rounds;  // full wheel revolutions left before firing
    std::function<void()> fn;
  };

  void run();

  const Time tick_;
  std::vector<std::vector<Entry>> slots_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t cursor_ = 0;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace byzcast::runtime
