#include "runtime/thread_network.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "sim/actor.hpp"

namespace byzcast::runtime {

ThreadNetwork::ThreadNetwork(Executor& executor, TimerWheel& wheel,
                             Time delay)
    : executor_(executor), wheel_(wheel), delay_(delay) {
  BZC_EXPECTS(delay >= 0);
}

void ThreadNetwork::attach(ProcessId id, sim::Actor* actor,
                           std::size_t worker) {
  BZC_EXPECTS(actor != nullptr);
  BZC_EXPECTS(worker < executor_.workers());
  const std::lock_guard<std::mutex> lock(mu_);
  BZC_EXPECTS(!actors_.contains(id));
  actors_[id] = Slot{actor, worker};
}

void ThreadNetwork::detach(ProcessId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  actors_.erase(id);
}

std::size_t ThreadNetwork::worker_of(ProcessId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = actors_.find(id);
  return it == actors_.end() ? Executor::npos : it->second.worker;
}

void ThreadNetwork::send(sim::WireMessage msg) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(msg.payload.size(), std::memory_order_relaxed);
  const std::size_t worker = worker_of(msg.to);
  if (worker == Executor::npos) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Executor::Task task = [this, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  };
  if (delay_ == 0) {
    if (!executor_.post(worker, std::move(task))) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // The wheel fires on its tick thread; the callback only posts, so the
  // actual delivery work still happens on the destination worker.
  wheel_.schedule(delay_, [this, worker, task = std::move(task)]() mutable {
    if (!executor_.post(worker, std::move(task))) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

void ThreadNetwork::deliver(sim::WireMessage msg) {
  sim::Actor* actor = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = actors_.find(msg.to);
    if (it == actors_.end()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    actor = it->second.actor;
  }
  // Safe outside the lock: we are on the actor's own worker, and teardown
  // stops the executor before destroying actors.
  actor->enqueue(std::move(msg));
}

}  // namespace byzcast::runtime
