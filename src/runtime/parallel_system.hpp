// ParallelSystem: the runtime sibling of wiring core::ByzCastSystem against
// a Simulation. Owns a RuntimeEnv sized thread-per-group (one worker per
// overlay group plus one shared by the clients, unless overridden), the
// ByzCastSystem built on it, and the clients; adds the lifecycle and
// quiescence plumbing a wall-clock run needs that the simulator gets for
// free from run_to_quiescence().
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "runtime/env.hpp"

namespace byzcast::runtime {

struct ParallelOptions {
  RuntimeOptions runtime;  // .workers == 0 resolves to #groups + 1
  core::FaultPlan faults;
  core::Routing routing = core::Routing::kGenuine;
  Observability obs;
};

class ParallelSystem {
 public:
  ParallelSystem(core::OverlayTree tree, int f, ParallelOptions opts = {});
  ~ParallelSystem();  // stops the backend before any actor dies

  ParallelSystem(const ParallelSystem&) = delete;
  ParallelSystem& operator=(const ParallelSystem&) = delete;

  [[nodiscard]] RuntimeEnv& env() { return env_; }
  [[nodiscard]] core::ByzCastSystem& system() { return system_; }
  [[nodiscard]] core::DeliveryLog& delivery_log() {
    return system_.delivery_log();
  }
  [[nodiscard]] int f() const { return system_.f(); }

  /// Clients are owned by the system (they must not outlive the env).
  core::Client& add_client(const std::string& name);
  [[nodiscard]] const std::vector<std::unique_ptr<core::Client>>& clients()
      const {
    return clients_;
  }

  void start() { env_.start(); }
  void stop() { env_.stop(); }

  /// a-multicasts from `client`, posted to the client's worker with
  /// backpressure (this is the load-injection edge; call from outside the
  /// pool). The completion runs on the client's worker.
  bool a_multicast(core::Client& client, std::vector<GroupId> dst,
                   Bytes payload, core::Client::Completion on_done = {});

  /// Polls the delivery log until it holds >= `expected` records; the
  /// runtime's quiescence barrier. False on timeout.
  bool await_total_deliveries(std::size_t expected,
                              std::chrono::milliseconds timeout);

  /// Deliveries a fully quiescent run must reach: every destination replica
  /// of every message delivers exactly once. (Multiply out the dst lists.)
  [[nodiscard]] std::size_t expected_deliveries(
      const std::vector<std::vector<GroupId>>& dsts) const;

 private:
  RuntimeEnv env_;
  core::ByzCastSystem system_;
  std::vector<std::unique_ptr<core::Client>> clients_;
};

}  // namespace byzcast::runtime
