#include "runtime/env.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace byzcast::runtime {

RuntimeEnv::RuntimeEnv(RuntimeOptions opts)
    : opts_(opts),
      executor_(opts.workers, opts.mailbox_capacity),
      wheel_(opts.tick),
      network_(executor_, wheel_, opts.net_delay),
      keys_(std::make_shared<KeyStore>(
          opts.seed ^ 0xb7e151628aed2a6aULL,
          opts.profile.fast_macs ? MacMode::kFast : MacMode::kHmac,
          /*verify_memo=*/!opts.profile.mac_memo_off)),
      master_rng_(opts.seed) {
  const std::uint32_t vw = opts_.profile.effective_verify_workers();
  const std::uint32_t es = opts_.profile.effective_exec_shards();
  if (vw > 0 || es > 0) {
    stages_ = std::make_unique<StagePool>(
        vw, es, opts_.mailbox_capacity,
        [this](ProcessId owner, std::function<void()> fn) {
          // Verify completions re-enter the owner's executor lane; an owner
          // detached mid-flight counts as a drop (same as the network).
          const std::size_t worker = network_.worker_of(owner);
          if (worker != Executor::npos) executor_.post(worker, std::move(fn));
        });
  }
}

RuntimeEnv::~RuntimeEnv() { stop(); }

void RuntimeEnv::start() {
  executor_.start();
  if (stages_) stages_->start();
  wheel_.start();
}

void RuntimeEnv::stop() {
  wheel_.stop();
  if (stages_) stages_->stop();
  executor_.stop();
}

Rng RuntimeEnv::fork_rng() {
  const std::lock_guard<std::mutex> lock(rng_mu_);
  return master_rng_.fork();
}

void RuntimeEnv::set_placement_domain(std::int32_t domain) {
  const std::lock_guard<std::mutex> lock(placement_mu_);
  current_domain_ = domain;
}

std::size_t RuntimeEnv::worker_for_domain(std::int32_t domain) {
  const std::lock_guard<std::mutex> lock(placement_mu_);
  const auto it = domain_worker_.find(domain);
  if (it != domain_worker_.end()) return it->second;
  // Domains are assigned to workers round-robin in order of first use; with
  // workers == #groups (+1 for clients) this is thread-per-group.
  const std::size_t worker = next_worker_++ % executor_.workers();
  domain_worker_[domain] = worker;
  return worker;
}

void RuntimeEnv::attach(ProcessId id, sim::Actor* actor) {
  std::int32_t domain = 0;
  {
    const std::lock_guard<std::mutex> lock(placement_mu_);
    domain = current_domain_;
  }
  network_.attach(id, actor, worker_for_domain(domain));
}

void RuntimeEnv::schedule(ProcessId owner, Time delay,
                          std::function<void()> fn) {
  const std::size_t worker = network_.worker_of(owner);
  if (worker == Executor::npos) return;  // owner already detached
  if (delay < opts_.tick) {
    // The wheel cannot resolve sub-tick delays: it rounds any positive
    // delay up to 1-2 ticks, which turns a nanosecond-scale CPU-cost hint
    // (actor drain continuations, simulated busy time) into a multi-
    // millisecond stall on the real clock. Post straight to the owner's
    // worker instead — on this backend the real CPU already paid the cost.
    // This deliberately diverges from simulator timing for ALL sub-tick
    // delays; the contract is documented at ExecutionEnv::schedule.
    executor_.post(worker, std::move(fn));
    return;
  }
  wheel_.schedule(delay, [this, worker, fn = std::move(fn)]() mutable {
    executor_.post(worker, std::move(fn));
  });
}

bool RuntimeEnv::run_on(ProcessId owner, std::function<void()> fn) {
  const std::size_t worker = network_.worker_of(owner);
  if (worker == Executor::npos) return false;
  return executor_.post_external(worker, std::move(fn));
}

}  // namespace byzcast::runtime
