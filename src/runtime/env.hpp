// RuntimeEnv: the wall-clock, multi-threaded ExecutionEnv backend. The same
// bft::Replica / core::ByzCastNode code that runs on the deterministic
// simulator runs here on real threads: an Executor worker pool hosts the
// actors (pinned one placement domain per worker, round-robin when domains
// outnumber workers), a ThreadNetwork carries messages between them, and a
// TimerWheel fires protocol timeouts and injected latency.
//
// Lifecycle: construct → wire systems/actors → start() → drive load from the
// edge with run_on() → wait for quiescence (poll the DeliveryLog) → stop()
// → destroy actors. stop() halts the wheel first (no new timer fires), then
// the stage pool (verify/exec workers drain, completions posted into still-
// live executor lanes), then the executor (mailboxes close, workers drain
// and join), so by the time actors die no thread can touch them. Determinism is NOT preserved on this
// backend — runs are real concurrent executions; the property checkers, not
// golden traces, are the correctness oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "runtime/executor.hpp"
#include "runtime/stage_pool.hpp"
#include "runtime/thread_network.hpp"
#include "runtime/timer_wheel.hpp"
#include "runtime/wall_clock.hpp"
#include "sim/env.hpp"
#include "sim/profile.hpp"

namespace byzcast::runtime {

struct RuntimeOptions {
  /// Worker threads. runtime::ParallelSystem resolves 0 (the default) to
  /// one worker per overlay group plus one for clients.
  std::size_t workers = 0;
  std::size_t mailbox_capacity = Executor::kDefaultMailboxCapacity;
  /// Injected one-way network latency (0: deliver as fast as threads go).
  Time net_delay = 0;
  /// Timer wheel resolution.
  Time tick = kMillisecond;
  std::uint64_t seed = 1;
  sim::Profile profile = sim::Profile::wallclock();
};

class RuntimeEnv final : public sim::ExecutionEnv {
 public:
  /// `opts.workers` must be >= 1 here (use ParallelSystem for the 0=auto
  /// convention).
  explicit RuntimeEnv(RuntimeOptions opts);
  ~RuntimeEnv() override;

  void start();
  /// Idempotent. Wheel first, then executor: after stop() no thread runs
  /// actor code, so actors can be destroyed safely.
  void stop();

  // --- ExecutionEnv --------------------------------------------------------
  [[nodiscard]] Time now() const override { return clock_.now(); }
  [[nodiscard]] const sim::Profile& profile() const override {
    return opts_.profile;
  }
  [[nodiscard]] std::shared_ptr<const KeyStore> keys() const override {
    return keys_;
  }
  void attach_observability(Observability obs) override { obs_ = obs; }
  [[nodiscard]] MetricsRegistry* metrics() const override {
    return obs_.metrics;
  }
  [[nodiscard]] TraceLog* trace() const override { return obs_.trace; }
  [[nodiscard]] SpanLog* spans() const override { return obs_.spans; }
  [[nodiscard]] ProcessId allocate_pid() override {
    return ProcessId{next_pid_.fetch_add(1, std::memory_order_relaxed)};
  }
  [[nodiscard]] Rng fork_rng() override;
  void set_placement_domain(std::int32_t domain) override;
  void attach(ProcessId id, sim::Actor* actor) override;
  void detach(ProcessId id) override { network_.detach(id); }
  void send_message(sim::WireMessage msg) override {
    network_.send(std::move(msg));
  }
  [[nodiscard]] sim::StageBackend* stages() const override {
    return stages_.get();
  }
  void schedule(ProcessId owner, Time delay,
                std::function<void()> fn) override;

  // --- runtime-specific ----------------------------------------------------
  /// Runs `fn` serialized with `owner` from a thread OUTSIDE the pool, with
  /// backpressure (blocks while the owner's worker mailbox is full). The
  /// load-injection edge: benchmarks submit client requests through this.
  /// Returns false if the owner is unknown or the executor stopped.
  bool run_on(ProcessId owner, std::function<void()> fn);

  [[nodiscard]] Executor& executor() { return executor_; }
  [[nodiscard]] ThreadNetwork& network() { return network_; }
  [[nodiscard]] const RuntimeOptions& options() const { return opts_; }
  /// The stage pool, or null when the profile configures no stage threads
  /// (verify_workers == 0 and exec_shards == 0, or stage_pipeline_off).
  [[nodiscard]] StagePool* stage_pool() { return stages_.get(); }

 private:
  [[nodiscard]] std::size_t worker_for_domain(std::int32_t domain);

  RuntimeOptions opts_;
  WallClock clock_;
  Executor executor_;
  TimerWheel wheel_;
  ThreadNetwork network_;
  /// Verify/exec stage threads (stage pipeline); null at depth 0. Declared
  /// after the executor/network it posts into, stopped before them.
  std::unique_ptr<StagePool> stages_;
  std::shared_ptr<KeyStore> keys_;
  Observability obs_;
  std::atomic<std::int32_t> next_pid_{0};

  std::mutex rng_mu_;
  Rng master_rng_;

  // Placement state: touched from the wiring thread(s) only, but guarded so
  // late client creation while workers run stays well-defined.
  std::mutex placement_mu_;
  std::map<std::int32_t, std::size_t> domain_worker_;
  std::size_t next_worker_ = 0;
  std::int32_t current_domain_ = 0;
};

}  // namespace byzcast::runtime
