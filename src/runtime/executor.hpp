// Executor: a fixed pool of worker threads, each owning one bounded MPSC
// mailbox of tasks. Every actor is pinned to exactly one worker, so all of
// an actor's message handling and timer callbacks run on that worker — the
// per-actor serialization the protocol code was written against, with
// parallelism *across* actors on different workers.
//
// Posting rules (see Mailbox for the blocking disciplines):
//  * post() from the target's own worker thread goes to a thread-local run
//    queue, not the mailbox — a worker must never block on its own full
//    mailbox, and drain continuations (scheduled with zero delay) must run
//    before newly arriving messages to preserve the actor drain discipline.
//  * post() from any other thread force-pushes (interior traffic).
//  * post_external() blocks while full: the backpressure edge for load
//    injectors.
//
// stop() closes all mailboxes, lets each worker drain what is already
// queued, and joins. Tasks posted after stop() are dropped (false).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"

namespace byzcast::runtime {

class Executor {
 public:
  using Task = std::function<void()>;

  static constexpr std::size_t kDefaultMailboxCapacity = 4096;

  explicit Executor(std::size_t workers,
                    std::size_t mailbox_capacity = kDefaultMailboxCapacity);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void start();
  /// Idempotent; drains queued tasks, then joins all workers.
  void stop();

  [[nodiscard]] std::size_t workers() const { return mailboxes_.size(); }

  /// Runs `task` on worker `worker`. Never blocks. Returns false iff the
  /// executor is stopped (task dropped).
  bool post(std::size_t worker, Task task);

  /// Blocking bounded post for threads outside the pool (the load edge).
  /// Returns false iff stopped.
  bool post_external(std::size_t worker, Task task);

  /// Index of the worker running the calling thread, or npos for outside
  /// threads.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t current_worker() const;

 private:
  void run(std::size_t index);

  std::vector<std::unique_ptr<Mailbox<Task>>> mailboxes_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace byzcast::runtime
