#include "runtime/parallel_system.hpp"

#include <thread>
#include <utility>

namespace byzcast::runtime {

namespace {

RuntimeOptions resolve(RuntimeOptions opts, const core::OverlayTree& tree) {
  if (opts.workers == 0) {
    // Thread-per-group, plus one worker shared by all clients.
    opts.workers = tree.all_groups().size() + 1;
  }
  return opts;
}

}  // namespace

ParallelSystem::ParallelSystem(core::OverlayTree tree, int f,
                               ParallelOptions opts)
    : env_(resolve(opts.runtime, tree)),
      system_(env_, std::move(tree), f, opts.faults, opts.routing, opts.obs) {}

ParallelSystem::~ParallelSystem() {
  // Members die in reverse order (clients, system, env); stopping first
  // guarantees no worker or timer thread is inside an actor by then.
  env_.stop();
}

core::Client& ParallelSystem::add_client(const std::string& name) {
  clients_.push_back(system_.make_client(name));
  return *clients_.back();
}

bool ParallelSystem::a_multicast(core::Client& client,
                                 std::vector<GroupId> dst, Bytes payload,
                                 core::Client::Completion on_done) {
  if (!on_done) on_done = [](const core::MulticastMessage&, Time) {};
  return env_.run_on(
      client.id(),
      [&client, dst = std::move(dst), payload = std::move(payload),
       on_done = std::move(on_done)]() mutable {
        client.a_multicast(std::move(dst), std::move(payload),
                           std::move(on_done));
      });
}

bool ParallelSystem::await_total_deliveries(std::size_t expected,
                                            std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (system_.delivery_log().total_deliveries() < expected) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::size_t ParallelSystem::expected_deliveries(
    const std::vector<std::vector<GroupId>>& dsts) const {
  const std::size_t replicas_per_group =
      static_cast<std::size_t>(3 * system_.f() + 1);
  std::size_t total = 0;
  for (const auto& dst : dsts) total += dst.size() * replicas_per_group;
  return total;
}

}  // namespace byzcast::runtime
