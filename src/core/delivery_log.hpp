// Global record of every a-deliver event in a run. Shared (non-owning) by
// all ByzCast nodes of a system; tests use it to check the five atomic
// multicast properties and benchmarks use it for throughput accounting.
//
// Concurrency: record() and total_deliveries() are safe from multiple
// threads (replicas on the wall-clock runtime backend record concurrently,
// and the driving thread polls total_deliveries() for quiescence). The
// structural readers — records(), sequence() — return references into the
// log and must only be called after the recording threads have quiesced.
#pragma once

#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace byzcast::core {

struct DeliveryRecord {
  GroupId group;
  ProcessId replica;
  MessageId msg;
  Time when;
};

class DeliveryLog {
 public:
  void record(GroupId group, ProcessId replica, MessageId msg, Time when) {
    const std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(DeliveryRecord{group, replica, msg, when});
    by_replica_[replica].push_back(msg);
  }

  /// Read after recording has quiesced.
  [[nodiscard]] const std::vector<DeliveryRecord>& records() const {
    return records_;
  }

  /// a-delivery sequence of one replica, in delivery order. Read after
  /// recording has quiesced.
  [[nodiscard]] const std::vector<MessageId>& sequence(
      ProcessId replica) const {
    const auto it = by_replica_.find(replica);
    return it == by_replica_.end() ? kEmpty : it->second;
  }

  /// Safe mid-run: the quiescence poll of the runtime backend.
  [[nodiscard]] std::size_t total_deliveries() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  // A plain static member, not a function-local static: the miss path of
  // sequence() must not go through a magic-static initialization guard.
  inline static const std::vector<MessageId> kEmpty{};

  mutable std::mutex mu_;
  std::vector<DeliveryRecord> records_;
  std::unordered_map<ProcessId, std::vector<MessageId>> by_replica_;
};

}  // namespace byzcast::core
