// Global record of every a-deliver event in a run. Shared (non-owning) by
// all ByzCast nodes of a system; tests use it to check the five atomic
// multicast properties and benchmarks use it for throughput accounting.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace byzcast::core {

struct DeliveryRecord {
  GroupId group;
  ProcessId replica;
  MessageId msg;
  Time when;
};

class DeliveryLog {
 public:
  void record(GroupId group, ProcessId replica, MessageId msg, Time when) {
    records_.push_back(DeliveryRecord{group, replica, msg, when});
    by_replica_[replica].push_back(msg);
  }

  [[nodiscard]] const std::vector<DeliveryRecord>& records() const {
    return records_;
  }

  /// a-delivery sequence of one replica, in delivery order.
  [[nodiscard]] const std::vector<MessageId>& sequence(
      ProcessId replica) const {
    static const std::vector<MessageId> kEmpty;
    const auto it = by_replica_.find(replica);
    return it == by_replica_.end() ? kEmpty : it->second;
  }

  [[nodiscard]] std::size_t total_deliveries() const {
    return records_.size();
  }

 private:
  std::vector<DeliveryRecord> records_;
  std::unordered_map<ProcessId, std::vector<MessageId>> by_replica_;
};

}  // namespace byzcast::core
