// CriticalPathAnalyzer: reconstructs each traced message's span tree from a
// quiesced SpanLog, follows the critical path (client submit -> entry group
// -> relays -> the destination group whose a-delivery completed the reply
// quorum last -> reply wait), and decomposes the measured end-to-end latency
// into four components per hop: queueing (mailbox + consensus batching),
// cpu (service, execution, relay processing), network (wire transit) and
// quorum_wait (WRITE/ACCEPT quorums and the client's f+1-reply wait).
//
// Exactness: the decomposition walks a monotone boundary chain clamped into
// [submit, completion] (each boundary c_j = clamp(b_j, c_{j-1}, end)), so
// the components are nonnegative and telescope — their sum equals the
// measured end-to-end latency exactly, even when Byzantine replicas stamp
// garbage times or a stage was not observed (the unobserved interval merges
// into the following component instead of being lost).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/span.hpp"
#include "common/types.hpp"

namespace byzcast::core {

/// The four latency components (paper Figs. 5-10 vocabulary).
struct Components {
  Time queueing = 0;
  Time cpu = 0;
  Time network = 0;
  Time quorum_wait = 0;

  [[nodiscard]] Time total() const {
    return queueing + cpu + network + quorum_wait;
  }
  Components& operator+=(const Components& o) {
    queueing += o.queueing;
    cpu += o.cpu;
    network += o.network;
    quorum_wait += o.quorum_wait;
    return *this;
  }
};

/// One hop of a message's critical path: the share of the end-to-end
/// latency spent at (and getting to) this group.
struct HopBreakdown {
  GroupId group;
  ProcessId replica;  // the representative replica whose chain was used
  Components components;
};

struct MessageBreakdown {
  MessageId id;
  /// False when the trace is truncated (no end-to-end span or no a-deliver
  /// observed) — such messages carry no decomposition.
  bool complete = false;
  std::size_t dst_count = 0;
  bool is_global = false;
  Time submitted = 0;
  Time end_to_end = 0;  // measured at the client
  GroupId critical_dst;
  std::vector<HopBreakdown> hops;  // entry group first
  /// Totals over the whole path, including the client-side edges; complete
  /// breakdowns satisfy totals.total() == end_to_end exactly.
  Components totals;
};

/// p50/p99 of the end-to-end latency and each component over a set of
/// messages (one destination class, or one tree edge).
struct PercentileStats {
  std::size_t n = 0;
  Time p50 = 0;
  Time p99 = 0;
};

struct ClassAggregate {
  std::size_t n = 0;
  PercentileStats end_to_end;
  PercentileStats queueing, cpu, network, quorum_wait;
};

class CriticalPathAnalyzer {
 public:
  struct Options {
    /// The groups' fault bound: the representative replica per group is the
    /// one whose a-delivery (resp. execution) is (f+1)-th earliest — the
    /// copy that completes a client's reply quorum.
    int f = 1;
  };

  /// Analyzes every traced message in `log` (which must be quiesced; the
  /// analyzer keeps no reference to it afterwards).
  CriticalPathAnalyzer(const SpanLog& log, Options opts);
  explicit CriticalPathAnalyzer(const SpanLog& log)
      : CriticalPathAnalyzer(log, Options()) {}

  /// Per-message breakdowns, sorted by message id (deterministic).
  [[nodiscard]] const std::vector<MessageBreakdown>& messages() const {
    return messages_;
  }

  /// Aggregate over one destination class (complete breakdowns only).
  [[nodiscard]] ClassAggregate aggregate(bool global) const;

  /// Per tree edge (parent group -> child group): p50/p99 of the time from
  /// the parent's genuine ordering to the child's, over messages whose
  /// critical path crossed that edge.
  [[nodiscard]] std::map<std::pair<GroupId, GroupId>, PercentileStats>
  edge_latency() const;

 private:
  void analyze(const MessageId& id, const std::vector<Span>& spans,
               Options opts);

  std::vector<MessageBreakdown> messages_;
  /// Ordering-to-ordering latency samples per (parent, child) path edge.
  std::map<std::pair<GroupId, GroupId>, std::vector<Time>> edge_samples_;
};

}  // namespace byzcast::core
