#include "core/node.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/log.hpp"
#include "common/monitor.hpp"
#include "common/span.hpp"

namespace byzcast::core {

namespace {

bool intersects(const std::set<GroupId>& reach,
                const std::vector<GroupId>& dst) {
  return std::any_of(dst.begin(), dst.end(),
                     [&reach](GroupId g) { return reach.contains(g); });
}

Bytes ack_bytes(BytesView raw_op) {
  // Digest of the encoded multicast message exactly as it was ordered; the
  // encoding is canonical, so hashing the delivered bytes equals hashing a
  // re-encode — minus one serialization per a-delivery.
  const Digest d = Sha256::hash(raw_op);
  return Bytes(d.begin(), d.begin() + 8);
}

}  // namespace

ByzCastNode::ByzCastNode(const OverlayTree& tree,
                         const GroupRegistry& registry, DeliveryLog& log,
                         bft::FaultSpec faults, Routing routing,
                         Observability obs)
    : tree_(tree),
      registry_(registry),
      log_(log),
      faults_(faults),
      routing_(routing),
      obs_(obs) {}

bool ByzCastNode::valid_destinations(const MulticastMessage& m) const {
  if (m.dst.empty()) return false;
  for (const GroupId g : m.dst) {
    if (!tree_.contains(g) || !tree_.is_target(g)) return false;
  }
  return std::is_sorted(m.dst.begin(), m.dst.end()) &&
         std::adjacent_find(m.dst.begin(), m.dst.end()) == m.dst.end();
}

void ByzCastNode::stamp(const MulticastMessage& m, HopEvent event) const {
  if (obs_.trace == nullptr) return;
  obs_.trace->record(m.id, ctx_->group(), ctx_->self(), event, m.hop,
                     ctx_->now());
}

GroupId ByzCastNode::entry_group(const MulticastMessage& m) const {
  return routing_ == Routing::kViaRoot ? tree_.root() : tree_.lca(m.dst);
}

void ByzCastNode::stamp_hop_spans(const MulticastMessage& m,
                                  Time first_seen) const {
  if (obs_.spans == nullptr || !m.traced()) return;
  const GroupId g = ctx_->group();
  const ProcessId self = ctx_->self();
  const Time now = ctx_->now();
  const auto hop = static_cast<std::int64_t>(m.hop);
  const auto put = [&](SpanKind kind, Time begin, Time end) {
    if (begin < 0 || end < 0) return;  // stage not observed locally
    obs_.spans->record(Span{m.id, kind, g, self, begin, end, hop});
  };
  // The triggering copy's pipeline through this replica, as captured by the
  // hosting bft::Replica. For a relayed message this is the (f+1)-th parent
  // copy — the one whose execution crossed the genuine-ordering threshold.
  if (const bft::ExecTiming* t = ctx_->exec_timing()) {
    put(SpanKind::kNetTransit, t->wire_sent, t->wire_enqueued);
    put(SpanKind::kMailboxWait, t->wire_enqueued, t->wire_svc_start);
    put(SpanKind::kCpuService, t->wire_svc_start, t->admitted);
    put(SpanKind::kConsensusQueue, t->admitted, t->proposed);
    put(SpanKind::kWriteQuorum, t->proposed, t->write_quorum);
    put(SpanKind::kAcceptQuorum, t->write_quorum, t->decided);
    put(SpanKind::kExecute, t->decided, now);
  }
  put(SpanKind::kOrderWait, first_seen, now);
}

void ByzCastNode::sweep_stale_copies() {
  const Time now = ctx_->now();
  if (now - last_sweep_ < pending_expiry_) return;
  last_sweep_ = now;
  // Entries below the f+1 threshold for a whole expiry period are almost
  // certainly fabricated (no correct parent replica ever relays them, so
  // they can never complete); reclaim them. A genuine message whose copies
  // straggle across the cutoff is re-counted from scratch if more copies
  // arrive — safe, merely slower.
  std::erase_if(copies_, [&](const auto& entry) {
    return now - entry.second.first_seen >= pending_expiry_;
  });
}

void ByzCastNode::execute(const bft::Request& req) {
  MulticastMessage m = MulticastMessage::decode(req.op);
  if (!valid_destinations(m)) return;

  sweep_stale_copies();

  const GroupId my_group = ctx_->group();
  const auto parent = tree_.parent(my_group);
  const bool from_parent =
      parent.has_value() && registry_.at(*parent).is_member(req.origin);

  if (from_parent) {
    if (handled_.contains(m.id)) {
      ctx_->consume_app_cpu(1);  // late duplicate: digest lookup only
      return;
    }
    auto& pending = copies_[m.id];
    if (pending.senders.empty()) {
      pending.first_seen = ctx_->now();
      stamp(m, HopEvent::kEnterGroup);
    }
    pending.senders.insert(req.origin);
    if (obs_.monitors != nullptr) {
      obs_.monitors->on_pending_copies(my_group, ctx_->self(), copies_.size(),
                                       ctx_->now());
    }
    if (static_cast<int>(pending.senders.size()) >= ctx_->f() + 1) {
      // (f+1)-th x_k-delivery of m: at least one correct parent replica
      // relayed it, so m was genuinely ordered above us (Algorithm 1 l.9).
      const Time first_seen = pending.first_seen;
      copies_.erase(m.id);
      handle(m, req.op, first_seen);
    }
    return;
  }

  // Direct send (k = 0 path): only the origin itself, only at the entry
  // group — lca(m.dst) for ByzCast, the root for the non-genuine Baseline.
  if (req.origin != m.id.origin) return;
  if (entry_group(m) != my_group) return;
  if (handled_.contains(m.id)) return;  // client retransmission
  stamp(m, HopEvent::kEnterGroup);
  handle(m, req.op);
}

bft::StagedExec ByzCastNode::execute_staged(const bft::Request& req) {
  staging_ = true;
  staged_out_ = {};
  execute(req);
  staging_ = false;
  return std::move(staged_out_);
}

void ByzCastNode::handle(const MulticastMessage& m, const Buffer& raw_op,
                         Time first_seen) {
  handled_.insert(m.id);
  // Any copies counted before the threshold (or before a direct-path
  // handle) are no longer needed: late duplicates take the handled_ fast
  // path and never re-open the entry.
  copies_.erase(m.id);

  stamp(m, HopEvent::kOrdered);
  stamp_hop_spans(m, first_seen);
  if (obs_.metrics != nullptr) {
    if (ordered_ctr_ == nullptr) {
      const std::string g = to_string(ctx_->group());
      ordered_ctr_ = &obs_.metrics->counter("node.ordered." + g);
      relayed_ctr_ = &obs_.metrics->counter("node.relayed." + g);
      adeliver_ctr_ = &obs_.metrics->counter("node.a_deliver." + g);
    }
    ordered_ctr_->inc();
  }

  if (!faults_.drop_relays) forward(m);

  if (faults_.fabricate_relay && ++fabricate_counter_ % 3 == 1) {
    // Inject a message no client ever multicast. Correct children only see
    // one copy of it (ours) and must never a-deliver it.
    MulticastMessage fake;
    fake.id = MessageId{
        ProcessId{kFabricatedOriginBase + ctx_->self().value},
        fabricate_counter_};
    fake.dst = m.dst;
    fake.payload = to_bytes("forged");
    fake.hop = m.hop;
    forward(fake);
  }

  const GroupId my_group = ctx_->group();
  const bool is_destination =
      std::find(m.dst.begin(), m.dst.end(), my_group) != m.dst.end();
  if (is_destination && !a_delivered_.contains(m.id)) {
    a_delivered_.insert(m.id);
    log_.record(my_group, ctx_->self(), m.id, ctx_->now());
    stamp(m, HopEvent::kADelivered);
    if (obs_.spans != nullptr && m.traced()) {
      obs_.spans->record(Span{m.id, SpanKind::kADeliver, my_group,
                              ctx_->self(), ctx_->now(), ctx_->now(),
                              static_cast<std::int64_t>(m.hop)});
    }
    if (obs_.monitors != nullptr) {
      obs_.monitors->on_a_deliver(my_group, ctx_->self(), m.id,
                                  entry_group(m), ctx_->now());
    }
    if (adeliver_ctr_ != nullptr) adeliver_ctr_->inc();
    // Reply to the multicast origin; clients gather f+1 matching replies
    // from every destination group.
    bft::Request synthetic;
    synthetic.group = my_group;
    synthetic.origin = m.id.origin;
    synthetic.seq = m.id.seq;
    if (staging_ && shard_app_ == nullptr) {
      // Defer the pure per-request tail — SHA-256 over the ordered bytes +
      // reply encode — to an exec shard. Captures only ref-counted bytes
      // and the thread-safe reply path (the StagedExec contract).
      staged_out_.key = bft::stage_key(raw_op.view());
      staged_out_.deferred = [ctx = ctx_, synthetic, op = raw_op] {
        ctx->send_reply(synthetic, ack_bytes(op.view()));
      };
    } else {
      Bytes reply = shard_app_ ? shard_app_->apply(my_group, m)
                               : ack_bytes(raw_op.view());
      ctx_->send_reply(synthetic, std::move(reply));
    }
  }
}

namespace {

/// Encodes `m` with its hop count bumped for the next tree level.
Bytes encode_bumped(const MulticastMessage& m) {
  MulticastMessage next_hop = m;
  ++next_hop.hop;
  return next_hop.encode();
}

}  // namespace

void ByzCastNode::forward(const MulticastMessage& m) {
  const GroupId my_group = ctx_->group();
  bool first_relevant_child = true;
  Bytes next_op;  // the bumped-hop encoding, shared by every child relay
  for (const GroupId child : tree_.children(my_group)) {
    if (!intersects(tree_.reach(child), m.dst)) continue;
    if (faults_.front_run && first_relevant_child) {
      first_relevant_child = false;
      // Adversarial reordering toward one child only: hold a message back
      // and emit it after its successor, inverting consecutive pairs there
      // while other children see the honest order (DESIGN.md §3).
      if (!front_run_buffer_) {
        front_run_buffer_ = m;
      } else {
        const MulticastMessage held = *front_run_buffer_;
        front_run_buffer_.reset();
        send_copy(child, m, encode_bumped(m));
        send_copy(child, held, encode_bumped(held));
      }
      continue;
    }
    first_relevant_child = false;
    if (next_op.empty()) next_op = encode_bumped(m);
    send_copy(child, m, next_op);
  }
}

void ByzCastNode::send_copy(GroupId child, const MulticastMessage& m,
                            const Bytes& encoded_op) {
  const auto it = registry_.find(child);
  BZC_ASSERT(it != registry_.end());
  stamp(m, HopEvent::kRelayed);
  if (obs_.spans != nullptr && m.traced()) {
    obs_.spans->record(Span{m.id, SpanKind::kRelay, ctx_->group(),
                            ctx_->self(), ctx_->now(), ctx_->now(),
                            std::int64_t{child.value}});
  }
  if (relayed_ctr_ != nullptr) relayed_ctr_->inc();
  bft::Request relay;
  relay.group = child;
  relay.origin = ctx_->self();
  relay.seq = relay_seq_[child]++;
  relay.op = encoded_op;
  // One encode of the relayed request, 3f+1 shared-buffer sends.
  ctx_->send_request(it->second.replicas(), relay);
}

}  // namespace byzcast::core
