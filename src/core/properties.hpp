// Checkers for the five atomic multicast properties of §II-B, evaluated over
// a run's DeliveryLog. Callers supply which replicas are correct and which
// messages were a-multicast by correct clients. Header-only and gtest-free so
// both the test suite (via tests/support/properties.hpp) and the benchmark
// harness can validate a run's log; each checker returns ok/error prose.
#pragma once

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/delivery_log.hpp"
#include "core/multicast.hpp"

namespace byzcast::core {

struct SentMessage {
  MessageId id;
  std::vector<GroupId> dst;  // canonical
};

struct PropertyInput {
  const DeliveryLog* log = nullptr;
  /// Messages a-multicast by correct clients (completed or not).
  std::vector<SentMessage> sent;
  /// Correct replicas per *target* group.
  std::map<GroupId, std::vector<ProcessId>> correct_replicas;
};

/// Outcome of one property check; converts to bool (true = property holds).
struct PropertyResult {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }
  static PropertyResult pass() { return {}; }
  static PropertyResult fail(std::string why) {
    return PropertyResult{false, std::move(why)};
  }
};

namespace detail {

inline std::map<MessageId, SentMessage> index_sent(const PropertyInput& in) {
  std::map<MessageId, SentMessage> out;
  for (const auto& s : in.sent) out[s.id] = s;
  return out;
}

inline std::map<ProcessId, GroupId> replica_groups(const PropertyInput& in) {
  std::map<ProcessId, GroupId> out;
  for (const auto& [g, replicas] : in.correct_replicas) {
    for (const ProcessId p : replicas) out[p] = g;
  }
  return out;
}

}  // namespace detail

/// Integrity: a correct replica a-delivers a message at most once, only if
/// its group is in m.dst, and only if m was a-multicast (no fabricated ids).
inline PropertyResult check_integrity(const PropertyInput& in) {
  const auto sent = detail::index_sent(in);
  const auto groups = detail::replica_groups(in);
  std::set<std::pair<ProcessId, MessageId>> seen;
  for (const auto& rec : in.log->records()) {
    const auto git = groups.find(rec.replica);
    if (git == groups.end()) continue;  // faulty replica: no guarantees
    if (!seen.emplace(rec.replica, rec.msg).second) {
      return PropertyResult::fail("replica " + to_string(rec.replica) +
                                  " a-delivered " + to_string(rec.msg) +
                                  " twice");
    }
    const auto sit = sent.find(rec.msg);
    if (sit == sent.end()) {
      return PropertyResult::fail(
          "message " + to_string(rec.msg) +
          " a-delivered but never a-multicast by a correct client");
    }
    const auto& dst = sit->second.dst;
    if (std::find(dst.begin(), dst.end(), git->second) == dst.end()) {
      return PropertyResult::fail("replica " + to_string(rec.replica) +
                                  " of group " + to_string(git->second) +
                                  " a-delivered " + to_string(rec.msg) +
                                  " not addressed to its group");
    }
  }
  return PropertyResult::pass();
}

/// Validity + agreement at quiescence: every sent message is a-delivered by
/// every correct replica of every destination group.
inline PropertyResult check_validity_agreement(const PropertyInput& in) {
  std::set<std::pair<ProcessId, MessageId>> delivered;
  for (const auto& rec : in.log->records()) {
    delivered.emplace(rec.replica, rec.msg);
  }
  for (const auto& s : in.sent) {
    for (const GroupId g : s.dst) {
      const auto it = in.correct_replicas.find(g);
      if (it == in.correct_replicas.end()) continue;
      for (const ProcessId p : it->second) {
        if (!delivered.contains({p, s.id})) {
          return PropertyResult::fail("correct replica " + to_string(p) +
                                      " of group " + to_string(g) +
                                      " never a-delivered " + to_string(s.id));
        }
      }
    }
  }
  return PropertyResult::pass();
}

/// Prefix order: two correct replicas never a-deliver two common messages in
/// different relative orders.
inline PropertyResult check_prefix_order(const PropertyInput& in) {
  const auto groups = detail::replica_groups(in);
  std::vector<ProcessId> replicas;
  for (const auto& [p, g] : groups) replicas.push_back(p);

  std::map<ProcessId, std::unordered_map<MessageId, std::size_t>> position;
  for (const ProcessId p : replicas) {
    const auto& seq = in.log->sequence(p);
    for (std::size_t i = 0; i < seq.size(); ++i) position[p][seq[i]] = i;
  }

  for (std::size_t a = 0; a < replicas.size(); ++a) {
    for (std::size_t b = a + 1; b < replicas.size(); ++b) {
      const ProcessId p = replicas[a];
      const ProcessId q = replicas[b];
      const auto& ppos = position[p];
      const auto& qpos = position[q];
      // Common messages in p's order must have increasing q positions.
      std::vector<std::pair<std::size_t, std::size_t>> common;
      for (const auto& [msg, pi] : ppos) {
        const auto qit = qpos.find(msg);
        if (qit != qpos.end()) common.emplace_back(pi, qit->second);
      }
      std::sort(common.begin(), common.end());
      for (std::size_t i = 1; i < common.size(); ++i) {
        if (common[i].second < common[i - 1].second) {
          return PropertyResult::fail("prefix order violated between " +
                                      to_string(p) + " and " + to_string(q));
        }
      }
    }
  }
  return PropertyResult::pass();
}

/// Acyclic order: the union of the correct replicas' delivery orders is a
/// DAG (checked over consecutive-delivery edges; each replica's order is a
/// path, so any cycle in < appears as a cycle here).
inline PropertyResult check_acyclic_order(const PropertyInput& in) {
  const auto groups = detail::replica_groups(in);
  std::map<MessageId, std::set<MessageId>> edges;
  std::set<MessageId> nodes;
  for (const auto& [p, g] : groups) {
    const auto& seq = in.log->sequence(p);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      nodes.insert(seq[i]);
      if (i > 0 && !(seq[i - 1] == seq[i])) {
        edges[seq[i - 1]].insert(seq[i]);
      }
    }
  }
  // Kahn's algorithm.
  std::map<MessageId, std::size_t> indegree;
  for (const auto& n : nodes) indegree[n] = 0;
  for (const auto& [from, tos] : edges) {
    for (const auto& to : tos) ++indegree[to];
  }
  std::queue<MessageId> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.push(n);
  }
  std::size_t emitted = 0;
  while (!ready.empty()) {
    const MessageId n = ready.front();
    ready.pop();
    ++emitted;
    const auto it = edges.find(n);
    if (it == edges.end()) continue;
    for (const auto& to : it->second) {
      if (--indegree[to] == 0) ready.push(to);
    }
  }
  if (emitted != nodes.size()) {
    return PropertyResult::fail(
        "a-delivery precedence relation contains a cycle (" +
        std::to_string(nodes.size() - emitted) + " messages involved)");
  }
  return PropertyResult::pass();
}

/// Runs all five property checks (validity and agreement are combined);
/// returns the first failure, pass otherwise.
inline PropertyResult check_all_properties(const PropertyInput& in) {
  if (auto r = check_integrity(in); !r) return r;
  if (auto r = check_validity_agreement(in); !r) return r;
  if (auto r = check_prefix_order(in); !r) return r;
  if (auto r = check_acyclic_order(in); !r) return r;
  return PropertyResult::pass();
}

}  // namespace byzcast::core
