// ByzCastSystem: assembles one bft::Group per overlay-tree node, all running
// ByzCastNode applications against a shared registry and delivery log, and
// hands out clients. The composition root for every ByzCast experiment.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bft/group.hpp"
#include "core/client.hpp"
#include "core/delivery_log.hpp"
#include "core/node.hpp"
#include "core/tree.hpp"
#include "sim/env.hpp"

namespace byzcast::core {

/// Per-group, per-replica fault assignment. Groups not mentioned are fully
/// correct.
struct FaultPlan {
  std::map<GroupId, std::vector<bft::FaultSpec>> by_group;

  [[nodiscard]] std::vector<bft::FaultSpec> for_group(GroupId g) const {
    const auto it = by_group.find(g);
    return it == by_group.end() ? std::vector<bft::FaultSpec>{} : it->second;
  }
};

class ByzCastSystem {
 public:
  /// `obs` sinks (when non-null) are shared by every node of the system and
  /// must outlive it; they are also attached to `env` so the bft layer can
  /// publish. Null sinks (the default) disable observability at zero cost.
  /// `env` is either a deterministic sim::Simulation or the wall-clock
  /// runtime::RuntimeEnv — the system wiring is backend-agnostic.
  ByzCastSystem(sim::ExecutionEnv& env, OverlayTree tree, int f,
                const FaultPlan& faults = {},
                Routing routing = Routing::kGenuine, Observability obs = {});

  [[nodiscard]] const OverlayTree& tree() const { return tree_; }
  [[nodiscard]] const GroupRegistry& registry() const { return registry_; }
  [[nodiscard]] bft::Group& group(GroupId g) { return *groups_.at(g); }
  [[nodiscard]] DeliveryLog& delivery_log() { return log_; }
  [[nodiscard]] const DeliveryLog& delivery_log() const { return log_; }
  [[nodiscard]] int f() const { return f_; }

  /// The ByzCastNode application hosted by replica `index` of group `g`.
  [[nodiscard]] ByzCastNode& node(GroupId g, int index);

  /// Creates a client wired to this system's tree and registry. The caller
  /// owns the client; it must not outlive the system.
  [[nodiscard]] std::unique_ptr<Client> make_client(const std::string& name);

 private:
  sim::ExecutionEnv& env_;
  OverlayTree tree_;
  int f_;
  Routing routing_;
  Observability obs_;
  GroupRegistry registry_;
  DeliveryLog log_;
  std::map<GroupId, std::unique_ptr<bft::Group>> groups_;
  /// Placement domain handed to the env for the next client (clients get
  /// their own domains so concurrent backends can spread them over workers).
  std::int32_t next_client_domain_ = 1'000'000;
};

}  // namespace byzcast::core
