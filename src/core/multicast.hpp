// The atomically multicast message. Travels as the `op` payload of bft
// Requests: first from the client into lca(m.dst)'s broadcast, then inside
// relay requests down the tree. `id` is the client-chosen unique identifier;
// the bft-level (origin, seq) of the carrying request belongs to whoever
// broadcast this particular copy.
#pragma once

#include <algorithm>
#include <vector>

#include "common/bytes.hpp"
#include "common/serde.hpp"
#include "common/types.hpp"

namespace byzcast::core {

struct MulticastMessage {
  MessageId id;                // origin client + client-unique sequence
  std::vector<GroupId> dst;    // sorted, unique, non-empty
  Bytes payload;
  /// Carried trace record: tree depth below the entry group, incremented by
  /// each relay hop. Deterministic across the replicas of a group (all
  /// parent copies agree on it), so reply digests stay quorum-compatible.
  std::uint32_t hop = 0;
  /// Carried trace context. Bit 0: span tracing requested for this message
  /// (the client's sampling decision, made once at a-multicast so every
  /// replica of every group agrees). Like `hop`, constant across all copies
  /// of one message — reply digests stay quorum-compatible.
  std::uint8_t trace_flags = 0;

  static constexpr std::uint8_t kTraced = 0x01;

  [[nodiscard]] bool is_local() const { return dst.size() == 1; }
  [[nodiscard]] bool is_global() const { return dst.size() > 1; }
  [[nodiscard]] bool traced() const { return (trace_flags & kTraced) != 0; }

  /// Sorts and dedups the destination list (canonical form: encoding and
  /// digests must not depend on the caller's ordering).
  void canonicalize() {
    std::sort(dst.begin(), dst.end());
    dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
  }

  [[nodiscard]] Bytes encode() const {
    Writer w;
    w.message_id(id);
    w.vec(dst, [](Writer& ww, GroupId g) { ww.group_id(g); });
    w.bytes(payload);
    w.u32(hop);
    w.u8(trace_flags);
    return w.take();
  }

  [[nodiscard]] static MulticastMessage decode(BytesView raw) {
    Reader r(raw);
    MulticastMessage m;
    m.id = r.message_id();
    m.dst = r.vec<GroupId>([](Reader& rr) { return rr.group_id(); });
    m.payload = r.bytes();
    m.hop = r.u32();
    m.trace_flags = r.u8();
    return m;
  }

  friend bool operator==(const MulticastMessage&, const MulticastMessage&) =
      default;
};

}  // namespace byzcast::core
