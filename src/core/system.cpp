#include "core/system.hpp"

#include "common/contracts.hpp"

namespace byzcast::core {

ByzCastSystem::ByzCastSystem(sim::ExecutionEnv& env, OverlayTree tree, int f,
                             const FaultPlan& faults, Routing routing,
                             Observability obs)
    : env_(env), tree_(std::move(tree)), f_(f), routing_(routing), obs_(obs) {
  BZC_EXPECTS(tree_.finalized());
  if (obs_.metrics != nullptr || obs_.trace != nullptr ||
      obs_.spans != nullptr || obs_.monitors != nullptr) {
    env_.attach_observability(obs_);
  }
  for (const GroupId g : tree_.all_groups()) {
    // One placement domain per overlay group: concurrent backends map this
    // to their default thread-per-group executor assignment.
    env_.set_placement_domain(g.value);
    const std::vector<bft::FaultSpec> group_faults = faults.for_group(g);
    const bft::AppFactory factory = [this, &group_faults](int index) {
      const bft::FaultSpec spec =
          group_faults.empty() ? bft::FaultSpec::correct()
                               : group_faults[static_cast<std::size_t>(index)];
      return std::make_unique<ByzCastNode>(tree_, registry_, log_, spec,
                                           routing_, obs_);
    };
    auto grp = std::make_unique<bft::Group>(env_, g, f_, factory,
                                            group_faults);
    registry_.emplace(g, grp->info());
    groups_.emplace(g, std::move(grp));
  }
}

ByzCastNode& ByzCastSystem::node(GroupId g, int index) {
  auto& app = group(g).replica(index).application();
  return static_cast<ByzCastNode&>(app);
}

std::unique_ptr<Client> ByzCastSystem::make_client(const std::string& name) {
  env_.set_placement_domain(next_client_domain_++);
  return std::make_unique<Client>(env_, tree_, registry_, name, routing_);
}

}  // namespace byzcast::core
