#include "core/client.hpp"

#include "common/contracts.hpp"
#include "common/span.hpp"

namespace byzcast::core {

Client::Client(sim::ExecutionEnv& env, const OverlayTree& tree,
               const GroupRegistry& registry, std::string name,
               Routing routing)
    : Actor(env, std::move(name)),
      tree_(tree),
      registry_(registry),
      routing_(routing) {
  retry_interval_ = 2 * env.profile().leader_timeout;
}

void Client::a_multicast(std::vector<GroupId> dst, Bytes payload,
                         Completion on_done) {
  BZC_EXPECTS(!dst.empty());

  PendingMsg p;
  p.m.id = MessageId{id(), next_uid_++};
  p.m.dst = std::move(dst);
  p.m.payload = std::move(payload);
  p.m.canonicalize();
  if (trace_sample_every_ > 0 && env().spans() != nullptr &&
      p.m.id.seq % trace_sample_every_ == 0) {
    p.m.trace_flags |= MulticastMessage::kTraced;
  }
  p.lca =
      routing_ == Routing::kViaRoot ? tree_.root() : tree_.lca(p.m.dst);
  p.carrying.group = p.lca;
  p.carrying.origin = id();
  p.carrying.seq = fifo_seq_[p.lca]++;
  p.carrying.op = p.m.encode();
  p.started_at = now();
  p.on_done = std::move(on_done);
  const std::uint64_t uid = p.m.id.seq;
  const auto [it, inserted] = pending_.emplace(uid, std::move(p));
  BZC_ASSERT(inserted);

  transmit(it->second);
  arm_retry(uid);
}

void Client::transmit(const PendingMsg& p) {
  const Buffer encoded{bft::encode_request(p.carrying)};
  for (const ProcessId replica : registry_.at(p.lca).replicas()) {
    send(replica, encoded);
  }
}

void Client::arm_retry(std::uint64_t uid) {
  schedule_in(retry_interval_, [this, uid] {
    if (crashed()) return;
    const auto it = pending_.find(uid);
    if (it != pending_.end()) {
      transmit(it->second);
      arm_retry(uid);
    }
  });
}

Time Client::service_cost(const sim::WireMessage&) const {
  return env().profile().cpu_client_reply;
}

void Client::on_message(const sim::WireMessage& msg) {
  if (msg.payload.empty() || !verify(msg)) return;
  const bft::MsgType type = bft::peek_type(msg.payload);
  if (type != bft::MsgType::kReply && type != bft::MsgType::kReplyBatch)
    return;

  Reader r(msg.payload);
  (void)r.u8();
  if (type == bft::MsgType::kReplyBatch) {
    // A replica batched the a-deliver acks of several of our multicasts into
    // one wire message; each counts as an individual reply.
    for (bft::Reply& rep : bft::ReplyBatch::decode(r).replies) {
      handle_reply(std::move(rep), msg.from);
    }
    return;
  }
  handle_reply(bft::Reply::decode(r), msg.from);
}

void Client::handle_reply(bft::Reply rep, ProcessId from) {
  const auto pit = pending_.find(rep.seq);
  if (pit == pending_.end()) return;
  PendingMsg& p = pit->second;

  // The reply must come from a replica of the destination group it claims.
  const auto it = registry_.find(rep.group);
  if (it == registry_.end() || !it->second.is_member(from)) return;
  const auto& dst = p.m.dst;
  if (std::find(dst.begin(), dst.end(), rep.group) == dst.end()) return;
  if (p.satisfied.contains(rep.group)) return;

  const Digest d = Sha256::hash(rep.result);
  auto& voters = p.votes[rep.group][d];
  voters.insert(from);
  if (voters.size() < static_cast<std::size_t>(it->second.f + 1)) return;

  p.satisfied.insert(rep.group);
  if (p.satisfied.size() < dst.size()) return;

  PendingMsg done = std::move(p);
  pending_.erase(pit);
  ++completed_;
  if (done.m.traced()) {
    if (SpanLog* spans = env().spans()) {
      spans->record(Span{done.m.id, SpanKind::kEndToEnd, GroupId{}, id(),
                         done.started_at, now(),
                         static_cast<std::int64_t>(done.m.dst.size())});
    }
  }
  done.on_done(done.m, now() - done.started_at);
}

}  // namespace byzcast::core
