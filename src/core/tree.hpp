// The ByzCast overlay tree (§III-B): nodes are groups, leaves are usually
// target groups and inner nodes auxiliary groups (the algorithm also allows
// target groups as inner nodes). Provides reach sets, heights, LCA and the
// path-group computation P(T, d) used by the optimizer.
//
// Height convention follows the paper's Table III: leaves have height 1 and
// a node's height is 1 + max(children heights) — so the root of a 2-level
// tree has height 2 and H(T2, d) = 2 for every multi-group destination d.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"

namespace byzcast::core {

class OverlayTree {
 public:
  /// Declares a group. Every group must be added before finalize().
  void add_group(GroupId g, bool is_target);

  /// Declares `parent` as the parent of `child` (both already added).
  void set_parent(GroupId child, GroupId parent);

  /// Validates the structure (exactly one root, acyclic, connected, every
  /// target reachable) and computes reach sets and heights. Must be called
  /// once, after which the tree is immutable.
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }

  [[nodiscard]] GroupId root() const;
  [[nodiscard]] std::optional<GroupId> parent(GroupId g) const;
  [[nodiscard]] const std::vector<GroupId>& children(GroupId g) const;
  [[nodiscard]] bool is_target(GroupId g) const;
  [[nodiscard]] bool contains(GroupId g) const { return nodes_.contains(g); }

  /// Target groups reachable from g by walking down (includes g when g is a
  /// target).
  [[nodiscard]] const std::set<GroupId>& reach(GroupId g) const;

  /// Height per the paper's convention (leaf = 1).
  [[nodiscard]] int height(GroupId g) const;
  /// Depth from the root (root = 0).
  [[nodiscard]] int depth(GroupId g) const;

  /// Lowest common ancestor of a non-empty destination set. Every
  /// destination must be a target group of this tree.
  [[nodiscard]] GroupId lca(const std::vector<GroupId>& dst) const;

  /// P(T, d): lca(d) plus every group on the paths from lca(d) down to each
  /// destination, in no particular order.
  [[nodiscard]] std::vector<GroupId> path_groups(
      const std::vector<GroupId>& dst) const;

  [[nodiscard]] std::vector<GroupId> all_groups() const;
  [[nodiscard]] std::vector<GroupId> target_groups() const;
  [[nodiscard]] std::vector<GroupId> auxiliary_groups() const;

  // --- canned layouts used throughout the paper --------------------------

  /// 2-level tree: one auxiliary root, all targets as direct children.
  [[nodiscard]] static OverlayTree two_level(
      const std::vector<GroupId>& targets, GroupId aux_root);

  /// The paper's Fig. 1 3-level tree: root h1 with children h2 (over the
  /// first half of the targets) and h3 (over the second half).
  [[nodiscard]] static OverlayTree three_level(
      const std::vector<GroupId>& targets, GroupId h1, GroupId h2,
      GroupId h3);

  /// Degenerate single-node "tree": one target group only (plain atomic
  /// broadcast).
  [[nodiscard]] static OverlayTree single(GroupId target);

  /// Maximally deep layout: a chain of auxiliaries aux[0] <- aux[1] <- ...
  /// with one target hanging off each auxiliary (and the remaining targets
  /// under the last one). Used to study how latency grows with the lca
  /// height — the quantity the §III-C optimizer minimizes.
  [[nodiscard]] static OverlayTree chain(const std::vector<GroupId>& targets,
                                         const std::vector<GroupId>& aux);

 private:
  struct Node {
    bool is_target = false;
    std::optional<GroupId> parent;
    std::vector<GroupId> children;
    std::set<GroupId> reach;
    int height = 1;
    int depth = 0;
  };

  [[nodiscard]] const Node& node(GroupId g) const;

  std::map<GroupId, Node> nodes_;
  GroupId root_;
  bool finalized_ = false;
};

}  // namespace byzcast::core
