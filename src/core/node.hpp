// ByzCastNode: the replicated application that runs inside every replica of
// every tree group and implements Algorithm 1 of the paper.
//
// On x_k-deliver (i.e. when the hosting bft::Replica executes a request):
//  * a copy relayed by the parent group counts toward the f+1 threshold and
//    is handled when f+1 distinct parent replicas delivered it;
//  * a direct send is handled immediately iff it comes authenticated from
//    the message origin and this group is lca(m.dst) (k = 0);
//  * handling forwards m into every child whose reach intersects m.dst (the
//    replica acts as a client of the child's broadcast, one FIFO stream per
//    child) and a-delivers + replies to the client when this group is a
//    destination.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <set>

#include "bft/application.hpp"
#include "bft/fault.hpp"
#include "bft/replica.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/delivery_log.hpp"
#include "core/multicast.hpp"
#include "core/tree.hpp"

namespace byzcast::core {

/// Public membership of every group in a system, keyed by group id.
using GroupRegistry = std::map<GroupId, bft::GroupInfo>;

/// Origin ids >= this value mark messages fabricated by the fault injector
/// (no real process has such an id); property checkers key on it.
constexpr std::int32_t kFabricatedOriginBase = 900'000;

/// How messages enter the tree. kGenuine is ByzCast (clients broadcast in
/// lca(m.dst)); kViaRoot is the paper's non-genuine Baseline (every message,
/// local or global, is first ordered by the root group).
enum class Routing { kGenuine, kViaRoot };

/// Application state machine hosted on a target-group replica: `apply` runs
/// once per a-delivered message, in a-delivery order, and its return value
/// is the reply sent to the client (clients collect f+1 matching replies per
/// destination group, so correct replicas must return identical bytes for
/// the same delivery sequence). This is the paper's sharded state machine
/// replication use case (§II-D).
class ShardApplication {
 public:
  virtual ~ShardApplication() = default;
  [[nodiscard]] virtual Bytes apply(GroupId shard,
                                    const MulticastMessage& m) = 0;
};

class ByzCastNode final : public bft::Application {
 public:
  /// `tree`, `registry` and `log` must outlive the node and are shared by
  /// the whole system. `registry` may still be filling while nodes are
  /// constructed; it is only read once messages flow. `obs` sinks (when
  /// non-null) also must outlive the node.
  ByzCastNode(const OverlayTree& tree, const GroupRegistry& registry,
              DeliveryLog& log, bft::FaultSpec faults,
              Routing routing = Routing::kGenuine, Observability obs = {});

  void execute(const bft::Request& req) override;

  /// Stage-pipeline entry: runs everything ordering-relevant (copy counting,
  /// relay forwarding, a-delivery bookkeeping) inline, and defers only the
  /// a-deliver ack reply (digest of the ordered bytes + reply encode) to the
  /// exec shards — and only when no ShardApplication is attached (a shard
  /// state machine mutates shared state, so it must stay serial).
  [[nodiscard]] bft::StagedExec execute_staged(const bft::Request& req) override;

  /// Attaches the replica-local application state machine (may be null: the
  /// reply is then a digest-based ack). Must be set before messages flow
  /// and must outlive the node.
  void set_shard_application(ShardApplication* app) { shard_app_ = app; }

  [[nodiscard]] std::uint64_t handled_count() const { return handled_.size(); }
  [[nodiscard]] std::uint64_t a_delivered_count() const {
    return a_delivered_.size();
  }
  /// Messages still accumulating parent copies (bounded: handled ids are
  /// dropped immediately and stale ids are swept after `pending_expiry`).
  [[nodiscard]] std::size_t pending_copy_count() const {
    return copies_.size();
  }

  /// How long an id may sit below the f+1 copy threshold before the sweep
  /// reclaims it. Entries that can still complete are recreated by later
  /// copies; entries for fabricated messages (never relayed by any correct
  /// parent replica) are what this bounds. Must be much larger than a
  /// quorum round-trip so genuine stragglers are not penalized.
  void set_pending_expiry(Time expiry) { pending_expiry_ = expiry; }

 private:
  /// `raw_op` is the encoded form of `m` as carried by the triggering
  /// request (ref-counted: the deferred ack closure shares it); the
  /// a-deliver ack hashes it instead of re-encoding `m`. `first_seen` is
  /// when the first parent copy arrived (-1: direct path, no f+1 wait) —
  /// the kOrderWait span.
  void handle(const MulticastMessage& m, const Buffer& raw_op,
              Time first_seen = -1);
  void forward(const MulticastMessage& m);
  void send_copy(GroupId child, const MulticastMessage& m,
                 const Bytes& encoded_op);
  [[nodiscard]] bool valid_destinations(const MulticastMessage& m) const;
  void sweep_stale_copies();
  void stamp(const MulticastMessage& m, HopEvent event) const;
  /// Stamps the traced message's per-hop span chain (wire -> mailbox -> CPU
  /// -> consensus phases -> execute -> f+1 order wait) at the moment this
  /// replica genuinely orders it. No-op when spans are off or m is not
  /// sampled.
  void stamp_hop_spans(const MulticastMessage& m, Time first_seen) const;
  /// The group `m` entered the tree through (lca for genuine routing, the
  /// root for the Baseline).
  [[nodiscard]] GroupId entry_group(const MulticastMessage& m) const;

  const OverlayTree& tree_;
  const GroupRegistry& registry_;
  DeliveryLog& log_;
  bft::FaultSpec faults_;
  Routing routing_;
  Observability obs_;

  // f+1 copy counting (per multicast message, distinct parent replicas).
  struct PendingCopies {
    std::set<ProcessId> senders;
    Time first_seen = 0;
  };
  std::unordered_map<MessageId, PendingCopies> copies_;
  std::unordered_set<MessageId> handled_;
  std::unordered_set<MessageId> a_delivered_;
  Time pending_expiry_ = 60 * kSecond;
  Time last_sweep_ = 0;

  // One FIFO relay stream per child group.
  std::map<GroupId, std::uint64_t> relay_seq_;

  // Fault machinery.
  std::uint64_t fabricate_counter_ = 0;
  std::optional<MulticastMessage> front_run_buffer_;

  // Stage-pipeline state: true while execute_staged drives execute(); the
  // a-deliver reply path then fills staged_out_ instead of replying inline.
  bool staging_ = false;
  bft::StagedExec staged_out_;

  // Lazily resolved metric handles (need ctx_ for the group label); stable
  // pointers into obs_.metrics, null when metrics are off.
  mutable Counter* ordered_ctr_ = nullptr;
  mutable Counter* relayed_ctr_ = nullptr;
  mutable Counter* adeliver_ctr_ = nullptr;

  ShardApplication* shard_app_ = nullptr;  // non-owning
};

}  // namespace byzcast::core
