#include "core/tree.hpp"

#include <algorithm>
#include <functional>

#include "common/contracts.hpp"

namespace byzcast::core {

void OverlayTree::add_group(GroupId g, bool is_target) {
  BZC_EXPECTS(!finalized_);
  BZC_EXPECTS(g.valid());
  BZC_EXPECTS(!nodes_.contains(g));
  Node n;
  n.is_target = is_target;
  nodes_.emplace(g, std::move(n));
}

void OverlayTree::set_parent(GroupId child, GroupId parent) {
  BZC_EXPECTS(!finalized_);
  BZC_EXPECTS(nodes_.contains(child) && nodes_.contains(parent));
  BZC_EXPECTS(child != parent);
  auto& c = nodes_.at(child);
  BZC_EXPECTS(!c.parent.has_value());
  c.parent = parent;
  nodes_.at(parent).children.push_back(child);
}

void OverlayTree::finalize() {
  BZC_EXPECTS(!finalized_);
  BZC_EXPECTS(!nodes_.empty());

  // Exactly one root.
  std::vector<GroupId> roots;
  for (const auto& [g, n] : nodes_) {
    if (!n.parent.has_value()) roots.push_back(g);
  }
  BZC_EXPECTS(roots.size() == 1);
  root_ = roots.front();

  // Depth-first from the root: connectivity + acyclicity (parent uniqueness
  // already guarantees no node has two parents; a cycle would be unreachable
  // from the root and caught by the visit count), heights, depths, reach.
  std::size_t visited = 0;
  // Post-order via explicit recursion.
  const std::function<void(GroupId, int)> visit = [&](GroupId g, int depth) {
    Node& n = nodes_.at(g);
    n.depth = depth;
    ++visited;
    n.reach.clear();
    if (n.is_target) n.reach.insert(g);
    int h = 1;
    for (const GroupId c : n.children) {
      visit(c, depth + 1);
      const Node& cn = nodes_.at(c);
      h = std::max(h, cn.height + 1);
      n.reach.insert(cn.reach.begin(), cn.reach.end());
    }
    n.height = h;
    // Every group must be useful: it reaches at least one target.
    BZC_EXPECTS(!n.reach.empty());
  };
  visit(root_, 0);
  BZC_EXPECTS(visited == nodes_.size());

  finalized_ = true;
}

const OverlayTree::Node& OverlayTree::node(GroupId g) const {
  const auto it = nodes_.find(g);
  BZC_EXPECTS(it != nodes_.end());
  return it->second;
}

GroupId OverlayTree::root() const {
  BZC_EXPECTS(finalized_);
  return root_;
}

std::optional<GroupId> OverlayTree::parent(GroupId g) const {
  return node(g).parent;
}

const std::vector<GroupId>& OverlayTree::children(GroupId g) const {
  return node(g).children;
}

bool OverlayTree::is_target(GroupId g) const { return node(g).is_target; }

const std::set<GroupId>& OverlayTree::reach(GroupId g) const {
  BZC_EXPECTS(finalized_);
  return node(g).reach;
}

int OverlayTree::height(GroupId g) const {
  BZC_EXPECTS(finalized_);
  return node(g).height;
}

int OverlayTree::depth(GroupId g) const {
  BZC_EXPECTS(finalized_);
  return node(g).depth;
}

GroupId OverlayTree::lca(const std::vector<GroupId>& dst) const {
  BZC_EXPECTS(finalized_);
  BZC_EXPECTS(!dst.empty());
  GroupId current = dst.front();
  BZC_EXPECTS(node(current).is_target);
  for (std::size_t i = 1; i < dst.size(); ++i) {
    GroupId other = dst[i];
    BZC_EXPECTS(node(other).is_target);
    // Classic two-pointer lift by depth.
    while (current != other) {
      const int dc = node(current).depth;
      const int dn = node(other).depth;
      if (dc >= dn) {
        const auto p = node(current).parent;
        BZC_ASSERT(p.has_value());
        current = *p;
      } else {
        const auto p = node(other).parent;
        BZC_ASSERT(p.has_value());
        other = *p;
      }
    }
  }
  return current;
}

std::vector<GroupId> OverlayTree::path_groups(
    const std::vector<GroupId>& dst) const {
  const GroupId top = lca(dst);
  std::set<GroupId> out;
  for (GroupId g : dst) {
    GroupId cur = g;
    for (;;) {
      out.insert(cur);
      if (cur == top) break;
      const auto p = node(cur).parent;
      BZC_ASSERT(p.has_value());
      cur = *p;
    }
  }
  return std::vector<GroupId>(out.begin(), out.end());
}

std::vector<GroupId> OverlayTree::all_groups() const {
  std::vector<GroupId> out;
  out.reserve(nodes_.size());
  for (const auto& [g, n] : nodes_) out.push_back(g);
  return out;
}

std::vector<GroupId> OverlayTree::target_groups() const {
  std::vector<GroupId> out;
  for (const auto& [g, n] : nodes_) {
    if (n.is_target) out.push_back(g);
  }
  return out;
}

std::vector<GroupId> OverlayTree::auxiliary_groups() const {
  std::vector<GroupId> out;
  for (const auto& [g, n] : nodes_) {
    if (!n.is_target) out.push_back(g);
  }
  return out;
}

OverlayTree OverlayTree::two_level(const std::vector<GroupId>& targets,
                                   GroupId aux_root) {
  BZC_EXPECTS(!targets.empty());
  OverlayTree t;
  t.add_group(aux_root, /*is_target=*/false);
  for (const GroupId g : targets) {
    t.add_group(g, /*is_target=*/true);
    t.set_parent(g, aux_root);
  }
  t.finalize();
  return t;
}

OverlayTree OverlayTree::three_level(const std::vector<GroupId>& targets,
                                     GroupId h1, GroupId h2, GroupId h3) {
  BZC_EXPECTS(targets.size() >= 2);
  OverlayTree t;
  t.add_group(h1, false);
  t.add_group(h2, false);
  t.add_group(h3, false);
  t.set_parent(h2, h1);
  t.set_parent(h3, h1);
  const std::size_t half = targets.size() / 2;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    t.add_group(targets[i], true);
    t.set_parent(targets[i], i < half ? h2 : h3);
  }
  t.finalize();
  return t;
}

OverlayTree OverlayTree::single(GroupId target) {
  OverlayTree t;
  t.add_group(target, true);
  t.finalize();
  return t;
}

OverlayTree OverlayTree::chain(const std::vector<GroupId>& targets,
                               const std::vector<GroupId>& aux) {
  BZC_EXPECTS(!aux.empty());
  BZC_EXPECTS(targets.size() >= 2);
  OverlayTree t;
  for (const GroupId a : aux) t.add_group(a, false);
  for (std::size_t i = 1; i < aux.size(); ++i) {
    t.set_parent(aux[i], aux[i - 1]);  // aux[0] is the root
  }
  for (const GroupId g : targets) t.add_group(g, true);
  // One target per auxiliary level, remaining targets under the last aux.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::size_t level = std::min(i, aux.size() - 1);
    t.set_parent(targets[i], aux[level]);
  }
  t.finalize();
  return t;
}

}  // namespace byzcast::core
