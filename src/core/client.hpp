// ByzCast client: a-multicast(m) sends m into the broadcast of lca(m.dst)
// (the paper's clients "forward messages to every replica in the lowest
// common ancestor group") and the message completes when f+1 matching
// replies arrived from every destination group. Supports any number of
// outstanding messages: the paper's clients run closed-loop (issue the next
// message from the completion callback); open-loop load generators issue on
// a timer regardless of completions.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "bft/message.hpp"
#include "core/multicast.hpp"
#include "core/node.hpp"
#include "core/tree.hpp"
#include "sim/actor.hpp"

namespace byzcast::core {

class Client final : public sim::Actor {
 public:
  using Completion =
      std::function<void(const MulticastMessage& m, Time latency)>;

  Client(sim::ExecutionEnv& env, const OverlayTree& tree,
         const GroupRegistry& registry, std::string name,
         Routing routing = Routing::kGenuine);

  /// Atomically multicasts `payload` to `dst`; any number of messages may
  /// be outstanding. `dst` is canonicalized internally.
  void a_multicast(std::vector<GroupId> dst, Bytes payload,
                   Completion on_done);

  /// Span-tracing sampling knob: marks every n-th message this client sends
  /// as traced (the flag travels on the wire, so every replica stamps spans
  /// for exactly the sampled messages). 0 disables, 1 traces everything.
  /// No effect unless the environment has a SpanLog attached.
  void set_trace_sample_every(std::uint32_t n) { trace_sample_every_ = n; }

  [[nodiscard]] std::size_t outstanding() const { return pending_.size(); }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

 protected:
  void on_message(const sim::WireMessage& msg) override;
  [[nodiscard]] Time service_cost(const sim::WireMessage&) const override;

 private:
  struct PendingMsg;

  void transmit(const PendingMsg& p);
  void arm_retry(std::uint64_t uid);
  /// Applies one reply (standalone or from a kReplyBatch) to the per-group
  /// f+1 vote of the multicast it answers.
  void handle_reply(bft::Reply rep, ProcessId from);

  struct PendingMsg {
    MulticastMessage m;
    bft::Request carrying;  // the request broadcast in lca(m.dst)
    GroupId lca;
    Time started_at = 0;
    Completion on_done;
    // per destination group: result digest -> replicas reporting it
    std::map<GroupId, std::map<Digest, std::set<ProcessId>>> votes;
    std::set<GroupId> satisfied;
  };

  const OverlayTree& tree_;
  const GroupRegistry& registry_;
  Routing routing_;
  std::uint64_t next_uid_ = 0;
  std::uint32_t trace_sample_every_ = 0;  // 0: span tracing off
  std::map<GroupId, std::uint64_t> fifo_seq_;  // bft stream per lca group
  std::map<std::uint64_t, PendingMsg> pending_;  // keyed by message uid
  std::uint64_t completed_ = 0;
  Time retry_interval_;
};

}  // namespace byzcast::core
