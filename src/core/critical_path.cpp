#include "core/critical_path.hpp"

#include <algorithm>

namespace byzcast::core {

namespace {

/// Boundary times of one replica's pipeline for one message, rebuilt from
/// its chain spans. -1: stage not observed.
struct ChainTimes {
  Time wire_sent = -1;
  Time wire_enqueued = -1;
  Time svc_start = -1;
  Time admitted = -1;
  Time proposed = -1;
  Time write_quorum = -1;
  Time decided = -1;
  Time execute_end = -1;
  Time a_deliver = -1;
};

Time percentile(std::vector<Time>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

PercentileStats stats_of(std::vector<Time> v) {
  PercentileStats s;
  s.n = v.size();
  std::sort(v.begin(), v.end());
  s.p50 = percentile(v, 0.50);
  s.p99 = percentile(v, 0.99);
  return s;
}

}  // namespace

CriticalPathAnalyzer::CriticalPathAnalyzer(const SpanLog& log, Options opts) {
  std::vector<MessageId> ids = log.traced_messages();
  std::sort(ids.begin(), ids.end());
  for (const MessageId& id : ids) analyze(id, log.of(id), opts);
}

void CriticalPathAnalyzer::analyze(const MessageId& id,
                                   const std::vector<Span>& spans,
                                   Options opts) {
  MessageBreakdown out;
  out.id = id;

  // Rebuild per-(group, replica) chains, the relay edges, and the client's
  // end-to-end interval.
  std::map<GroupId, std::map<ProcessId, ChainTimes>> chains;
  std::map<GroupId, GroupId> parent_of;  // child -> parent, from kRelay
  bool have_e2e = false;
  Time submit = 0, completion = 0;
  for (const Span& s : spans) {
    switch (s.kind) {
      case SpanKind::kEndToEnd:
        // One client owns the id; a duplicate stamp would be a harness bug.
        have_e2e = true;
        submit = s.begin;
        completion = s.end;
        out.dst_count = static_cast<std::size_t>(s.detail);
        break;
      case SpanKind::kRelay:
        parent_of.emplace(GroupId{static_cast<std::int32_t>(s.detail)},
                          s.group);
        break;
      default: {
        ChainTimes& c = chains[s.group][s.where];
        switch (s.kind) {
          case SpanKind::kNetTransit:
            c.wire_sent = s.begin;
            c.wire_enqueued = s.end;
            break;
          case SpanKind::kMailboxWait:
            c.wire_enqueued = s.begin;
            c.svc_start = s.end;
            break;
          case SpanKind::kCpuService:
            c.svc_start = s.begin;
            c.admitted = s.end;
            break;
          case SpanKind::kConsensusQueue:
            c.admitted = s.begin;
            c.proposed = s.end;
            break;
          case SpanKind::kWriteQuorum:
            c.proposed = s.begin;
            c.write_quorum = s.end;
            break;
          case SpanKind::kAcceptQuorum:
            c.write_quorum = s.begin;
            c.decided = s.end;
            break;
          case SpanKind::kExecute:
            c.decided = s.begin;
            c.execute_end = s.end;
            break;
          case SpanKind::kADeliver:
            c.a_deliver = s.begin;
            break;
          default:
            break;  // kOrderWait etc.: informational, not a chain boundary
        }
        break;
      }
    }
  }
  out.is_global = out.dst_count > 1;

  // Representative replica per group: the (f+1)-th earliest a-delivery
  // (falling back to execution end) — the copy that completes a client's
  // reply quorum. Ties break by replica id, so the choice is deterministic.
  struct Rep {
    ProcessId replica;
    Time ordered = -1;    // execute_end: when this replica genuinely ordered
    Time delivered = -1;  // a_deliver, if a destination
  };
  std::map<GroupId, Rep> rep;
  for (const auto& [g, by_replica] : chains) {
    std::vector<std::pair<Time, ProcessId>> ranked;
    for (const auto& [r, c] : by_replica) {
      const Time key = c.a_deliver >= 0 ? c.a_deliver : c.execute_end;
      if (key >= 0) ranked.emplace_back(key, r);
    }
    if (ranked.empty()) continue;
    std::sort(ranked.begin(), ranked.end());
    const std::size_t idx =
        std::min(static_cast<std::size_t>(opts.f), ranked.size() - 1);
    const ProcessId r = ranked[idx].second;
    const ChainTimes& c = by_replica.at(r);
    rep[g] = Rep{r, c.execute_end, c.a_deliver};
  }

  // Critical destination: the group whose representative a-delivery is
  // latest (its reply quorum completes the client's wait).
  GroupId critical;
  Time critical_time = -1;
  for (const auto& [g, r] : rep) {
    if (r.delivered > critical_time) {
      critical_time = r.delivered;
      critical = g;
    }
  }
  if (!have_e2e || !critical.valid()) {
    // Truncated trace (message lost, log capacity hit, or still in flight
    // at shutdown): report it, but without a decomposition.
    messages_.push_back(std::move(out));
    return;
  }
  out.complete = true;
  out.submitted = submit;
  out.end_to_end = completion - submit;
  out.critical_dst = critical;

  // Walk relay edges from the critical destination up to the entry group.
  std::vector<GroupId> path{critical};
  while (path.size() < 64) {  // cycle guard: Byzantine relays could lie
    const auto it = parent_of.find(path.back());
    if (it == parent_of.end()) break;
    if (std::find(path.begin(), path.end(), it->second) != path.end()) break;
    path.push_back(it->second);
  }
  std::reverse(path.begin(), path.end());  // entry group first

  // The clamped boundary chain. Each boundary closes an interval attributed
  // to one component; clamping keeps the chain monotone inside
  // [submit, completion] so the components telescope to end_to_end exactly.
  Time cursor = submit;
  const auto account = [&](Time boundary, Time Components::*component,
                           Components& hop) {
    if (boundary < 0) return;  // unobserved: merge into the next interval
    const Time next = std::clamp(boundary, cursor, completion);
    hop.*component += next - cursor;
    out.totals.*component += next - cursor;
    cursor = next;
  };

  GroupId prev_group;
  Time prev_ordered = -1;
  for (const GroupId g : path) {
    const auto rit = rep.find(g);
    if (rit == rep.end()) continue;  // no chain at this hop survived
    const ChainTimes& c = chains.at(g).at(rit->second.replica);
    out.hops.push_back(HopBreakdown{g, rit->second.replica, {}});
    Components& hop = out.hops.back().components;
    account(c.wire_sent, &Components::cpu, hop);       // sender processing
    account(c.wire_enqueued, &Components::network, hop);
    account(c.svc_start, &Components::queueing, hop);  // mailbox wait
    account(c.admitted, &Components::cpu, hop);        // service/admission
    account(c.proposed, &Components::queueing, hop);   // batching wait
    account(c.write_quorum, &Components::quorum_wait, hop);
    account(c.decided, &Components::quorum_wait, hop);
    account(c.execute_end, &Components::cpu, hop);
    if (prev_ordered >= 0 && c.execute_end >= 0) {
      edge_samples_[{prev_group, g}].push_back(
          std::max<Time>(0, c.execute_end - prev_ordered));
    }
    if (c.execute_end >= 0) {
      prev_group = g;
      prev_ordered = c.execute_end;
    }
  }
  // Whatever remains is the reply path: transit of the replies plus the
  // client's f+1-matching wait across all destination groups.
  if (!out.hops.empty()) {
    account(completion, &Components::quorum_wait, out.hops.back().components);
  } else {
    Components sink;
    account(completion, &Components::quorum_wait, sink);
  }

  messages_.push_back(std::move(out));
}

ClassAggregate CriticalPathAnalyzer::aggregate(bool global) const {
  ClassAggregate agg;
  std::vector<Time> e2e, queueing, cpu, network, quorum;
  for (const auto& m : messages_) {
    if (!m.complete || m.is_global != global) continue;
    e2e.push_back(m.end_to_end);
    queueing.push_back(m.totals.queueing);
    cpu.push_back(m.totals.cpu);
    network.push_back(m.totals.network);
    quorum.push_back(m.totals.quorum_wait);
  }
  agg.n = e2e.size();
  agg.end_to_end = stats_of(std::move(e2e));
  agg.queueing = stats_of(std::move(queueing));
  agg.cpu = stats_of(std::move(cpu));
  agg.network = stats_of(std::move(network));
  agg.quorum_wait = stats_of(std::move(quorum));
  return agg;
}

std::map<std::pair<GroupId, GroupId>, PercentileStats>
CriticalPathAnalyzer::edge_latency() const {
  std::map<std::pair<GroupId, GroupId>, PercentileStats> out;
  for (const auto& [edge, samples] : edge_samples_) {
    out.emplace(edge, stats_of(samples));
  }
  return out;
}

}  // namespace byzcast::core
