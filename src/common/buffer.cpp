#include "common/buffer.hpp"

#include <cstring>

#include "common/contracts.hpp"

namespace byzcast {

namespace {

std::atomic<std::uint64_t> g_materializations{0};

}  // namespace

Buffer::Buffer(Bytes bytes)
    : owner_(std::make_shared<const Bytes>(std::move(bytes))) {
  data_ = owner_->data();
  size_ = owner_->size();
  g_materializations.fetch_add(1, std::memory_order_relaxed);
}

Buffer Buffer::copy_of(BytesView data) {
  return Buffer(Bytes(data.begin(), data.end()));
}

Buffer Buffer::slice(std::size_t offset, std::size_t len) const {
  BZC_EXPECTS(offset <= size_ && len <= size_ - offset);
  return Buffer(owner_, data_ + offset, len);
}

bool operator==(const Buffer& a, const Buffer& b) {
  if (a.aliases(b)) return true;
  if (a.size_ != b.size_) return false;
  return a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0;
}

std::uint64_t Buffer::materializations() {
  return g_materializations.load(std::memory_order_relaxed);
}

}  // namespace byzcast
