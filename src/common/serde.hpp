// Minimal binary codec. Every protocol message is encoded through a Writer
// before being "sent" and decoded through a Reader on arrival, so digests and
// MACs are computed over real wire bytes and message sizes feed the latency
// model. Encoding is little-endian fixed-width; no varints — simplicity and
// determinism over compactness.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "common/types.hpp"

namespace byzcast {

/// Appends primitive values to a byte buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void i32(std::int32_t v) { put_raw(&v, sizeof v); }
  void i64(std::int64_t v) { put_raw(&v, sizeof v); }

  void process_id(ProcessId p) { i32(p.value); }
  void group_id(GroupId g) { i32(g.value); }
  void message_id(const MessageId& m) {
    process_id(m.origin);
    u64(m.seq);
  }

  /// Length-prefixed byte string.
  void bytes(BytesView data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Appends raw bytes with no length prefix (splicing an already-encoded
  /// fragment, e.g. an encoded batch into a PROPOSE).
  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  /// Pre-sizes the underlying buffer for `n` more bytes.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void str(const std::string& s) {
    bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()),
                    s.size()));
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& items, Fn&& encode_one) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const auto& item : items) encode_one(*this, item);
  }

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  Bytes buf_;
};

/// Consumes primitive values from a byte buffer. Out-of-bounds reads abort:
/// inside the simulation all messages come from our own encoders, so a short
/// read is an invariant violation, not an input-validation concern.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    BZC_EXPECTS(pos_ + 1 <= data_.size());
    return data_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32() { return get_raw<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return get_raw<std::uint64_t>(); }
  [[nodiscard]] std::int32_t i32() { return get_raw<std::int32_t>(); }
  [[nodiscard]] std::int64_t i64() { return get_raw<std::int64_t>(); }

  [[nodiscard]] ProcessId process_id() { return ProcessId{i32()}; }
  [[nodiscard]] GroupId group_id() { return GroupId{i32()}; }
  [[nodiscard]] MessageId message_id() {
    MessageId m;
    m.origin = process_id();
    m.seq = u64();
    return m;
  }

  [[nodiscard]] Bytes bytes() {
    const auto n = u32();
    BZC_EXPECTS(pos_ + n <= data_.size());
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::string str() {
    const auto raw = bytes();
    return std::string(raw.begin(), raw.end());
  }

  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> vec(Fn&& decode_one) {
    const auto n = u32();
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(decode_one(*this));
    return out;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T get_raw() {
    BZC_EXPECTS(pos_ + sizeof(T) <= data_.size());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace byzcast
