// Buffer: a ref-counted immutable byte payload shared across the message
// fabric. Constructing one from Bytes "materializes" a heap buffer exactly
// once; every copy afterwards is a shared_ptr bump, so an N-recipient
// broadcast carries one allocation instead of N deep vector copies. A slice
// shares the parent's ownership, which lets receivers hash or re-wrap a
// sub-range (e.g. the encoded batch inside a PROPOSE) without copying and
// without lifetime hazards: the slice keeps the backing storage alive even
// after every full-range Buffer is gone.
//
// Thread-safety: the payload bytes are immutable after construction and the
// control block is std::shared_ptr, so Buffers may be copied and read from
// any thread concurrently (the cross-thread handoff path through
// runtime::Mailbox relies on exactly this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/bytes.hpp"

namespace byzcast {

class Buffer {
 public:
  /// Empty buffer (no storage, no materialization counted).
  Buffer() = default;

  /// Wraps `bytes` without copying. Intentionally implicit: every encoder
  /// returns Bytes, and the conversion point is exactly where the one deep
  /// buffer per logical payload comes into existence (counted — benchmarks
  /// assert fan-out paths materialize once).
  Buffer(Bytes bytes);  // NOLINT(google-explicit-constructor)

  /// Deep-copies `data` into a fresh buffer (also counts a materialization).
  [[nodiscard]] static Buffer copy_of(BytesView data);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] BytesView view() const { return BytesView(data_, size_); }
  operator BytesView() const { return view(); }  // NOLINT

  /// Sub-range [offset, offset+len) sharing this buffer's ownership. The
  /// slice stays valid after the parent Buffer is destroyed.
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t len) const;
  /// Sub-range from `offset` to the end.
  [[nodiscard]] Buffer slice(std::size_t offset) const {
    return slice(offset, size_ - offset);
  }

  /// True when both views alias the same storage range (no byte compare).
  [[nodiscard]] bool aliases(const Buffer& other) const {
    return data_ == other.data_ && size_ == other.size_;
  }

  /// Content equality (bytewise; aliasing buffers short-circuit).
  friend bool operator==(const Buffer& a, const Buffer& b);

  /// Process-wide count of deep buffers created (Bytes wraps + copy_of).
  /// Benchmarks diff this across a fan-out to prove encode-once behaviour.
  [[nodiscard]] static std::uint64_t materializations();

 private:
  Buffer(std::shared_ptr<const Bytes> owner, const std::uint8_t* data,
         std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  std::shared_ptr<const Bytes> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace byzcast
