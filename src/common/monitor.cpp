#include "common/monitor.hpp"

#include <algorithm>

#include "common/metrics.hpp"

namespace byzcast {

void MonitorHub::on_a_deliver(GroupId group, ProcessId replica,
                              const MessageId& msg, GroupId entry, Time when) {
  const std::lock_guard<std::mutex> lock(mu_);

  // fifo: one client's messages through one entry group reach every replica
  // in send order; MessageId::seq is assigned in send order.
  const StreamKey key{replica, msg.origin, entry};
  const auto [fit, fresh] = fifo_last_.try_emplace(key, msg.seq);
  if (!fresh) {
    if (msg.seq <= fit->second) {
      report(Violation{"fifo", group, replica, msg, when,
                       "seq " + std::to_string(msg.seq) +
                           " a-delivered after seq " +
                           std::to_string(fit->second) + " of the same " +
                           to_string(msg.origin) + " stream via " +
                           to_string(entry)});
    } else {
      fit->second = msg.seq;
    }
  }

  // group_agreement: the k-th a-delivery of every replica of a group must be
  // the same message (replicas of a group share one total order).
  auto& agreed = group_seq_[group];
  auto& pos = replica_pos_[replica];
  if (pos < agreed.size()) {
    if (!(agreed[pos] == msg)) {
      report(Violation{"group_agreement", group, replica, msg, when,
                       "position " + std::to_string(pos) + " delivered " +
                           to_string(msg) + " but a peer delivered " +
                           to_string(agreed[pos])});
    }
  } else {
    agreed.push_back(msg);
  }
  ++pos;

  // acyclic_order: consecutive deliveries at each replica are precedence
  // edges; the union across replicas must stay a DAG.
  const auto lit = last_delivered_.find(replica);
  const MessageId prev = lit == last_delivered_.end() ? MessageId{} : lit->second;
  last_delivered_[replica] = msg;
  if (prev.origin.valid() && !(prev == msg)) {
    const std::uint32_t u = dag_node(prev);
    const std::uint32_t v = dag_node(msg);
    if (!dag_add_edge(u, v)) {
      report(Violation{"acyclic_order", group, replica, msg, when,
                       "a-delivering " + to_string(msg) + " after " +
                           to_string(prev) +
                           " closes a cycle in the global delivery order"});
    }
  }
}

void MonitorHub::on_pending_copies(GroupId group, ProcessId replica,
                                   std::size_t pending, Time when) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (pending_bound_ == 0 || pending <= pending_bound_) return;
  report(Violation{"bounded_pending", group, replica, MessageId{}, when,
                   std::to_string(pending) +
                       " messages below the f+1 copy threshold (bound " +
                       std::to_string(pending_bound_) + ")"});
}

std::uint32_t MonitorHub::dag_node(const MessageId& msg) {
  const auto [it, fresh] =
      dag_index_.try_emplace(msg, static_cast<std::uint32_t>(dag_.size()));
  if (fresh) {
    dag_.emplace_back();
    dag_.back().ord = next_ord_++;
  }
  return it->second;
}

bool MonitorHub::dag_add_edge(std::uint32_t u, std::uint32_t v) {
  auto& out = dag_[u].out;
  if (std::find(out.begin(), out.end(), v) != out.end()) return true;

  // Pearce–Kelly online topological ordering: only edges that go backward in
  // the current order (ord[v] < ord[u]) disturb anything; repair by
  // reordering the affected region [ord[v], ord[u]].
  const std::uint64_t lo = dag_[v].ord;
  const std::uint64_t hi = dag_[u].ord;
  if (lo > hi) {
    out.push_back(v);
    dag_[v].in.push_back(u);
    return true;
  }

  // Forward reachability from v within the region; meeting u means the new
  // edge closes a cycle (reject it, leaving the DAG intact).
  std::vector<std::uint32_t> fwd, stack{v};
  std::unordered_map<std::uint32_t, bool> seen;
  seen[v] = true;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (n == u) return false;
    fwd.push_back(n);
    for (const std::uint32_t w : dag_[n].out) {
      if (dag_[w].ord <= hi && !seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  // Backward reachability from u within the region.
  std::vector<std::uint32_t> bwd;
  stack.push_back(u);
  seen[u] = true;
  bwd.push_back(u);
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    for (const std::uint32_t w : dag_[n].in) {
      if (dag_[w].ord >= lo && !seen[w]) {
        seen[w] = true;
        stack.push_back(w);
        bwd.push_back(w);
      }
    }
  }
  // Reassign the region's ord values: everything that reaches u first (in
  // old relative order), then everything reachable from v.
  const auto by_ord = [this](std::uint32_t a, std::uint32_t b) {
    return dag_[a].ord < dag_[b].ord;
  };
  std::sort(bwd.begin(), bwd.end(), by_ord);
  std::sort(fwd.begin(), fwd.end(), by_ord);
  std::vector<std::uint64_t> ords;
  ords.reserve(bwd.size() + fwd.size());
  for (const std::uint32_t n : bwd) ords.push_back(dag_[n].ord);
  for (const std::uint32_t n : fwd) ords.push_back(dag_[n].ord);
  std::sort(ords.begin(), ords.end());
  std::size_t i = 0;
  for (const std::uint32_t n : bwd) dag_[n].ord = ords[i++];
  for (const std::uint32_t n : fwd) dag_[n].ord = ords[i++];

  out.push_back(v);
  dag_[v].in.push_back(u);
  return true;
}

void MonitorHub::report(Violation v) {
  ++counts_[v.monitor];
  if (metrics_ != nullptr) {
    metrics_->counter("monitor.violations." + v.monitor).inc();
  }
  if (detailed_.size() < kMaxDetailedViolations) detailed_.push_back(std::move(v));
}

std::uint64_t MonitorHub::total_violations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, n] : counts_) total += n;
  return total;
}

std::uint64_t MonitorHub::violations(const std::string& monitor) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counts_.find(monitor);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<Violation> MonitorHub::detailed_violations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {detailed_.begin(), detailed_.end()};
}

}  // namespace byzcast
