#include "common/span_export.hpp"

#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace byzcast {

namespace {

/// Trace-event timestamps are microseconds; ours are integer nanoseconds.
/// Printing milli-microseconds as a fixed 3-decimal value keeps full
/// precision and byte-identical output across runs of the same log.
void json_us(std::ostream& os, Time ns) {
  // Sign handled up front: C++ integer division truncates toward zero, so
  // the digit arithmetic below would emit garbage characters for negative
  // inputs (merged multi-process logs may start before a given epoch).
  if (ns < 0) {
    os << '-';
    ns = -ns;
  }
  os << (ns / 1000) << '.';
  const Time frac = ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + frac / 10 % 10)
     << static_cast<char>('0' + frac % 10);
}

}  // namespace

std::string chrome_trace_json(const SpanLog& log) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"dropped\":" << log.dropped()
     << ",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };

  // Name the tracks up front: one "process" per overlay group (clients and
  // other groupless actors share pid -1), one "thread" per actor.
  std::set<std::int32_t> pids;
  std::map<std::pair<std::int32_t, std::int32_t>, bool> tids;
  for (const Span& s : log.spans()) {
    const std::int32_t pid = s.group.valid() ? s.group.value : -1;
    pids.insert(pid);
    tids.emplace(std::make_pair(pid, s.where.value), true);
  }
  for (const std::int32_t pid : pids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (pid < 0 ? std::string("clients") : "group " + std::to_string(pid))
       << "\"}}";
  }
  for (const auto& [key, unused] : tids) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\"p"
       << key.second << "\"}}";
  }

  for (const Span& s : log.spans()) {
    const std::int32_t pid = s.group.valid() ? s.group.value : -1;
    sep();
    os << "{\"name\":\"" << to_string(s.kind) << "\",\"cat\":\""
       << (s.msg.origin.valid() ? "message" : "infra") << "\",\"pid\":" << pid
       << ",\"tid\":" << s.where.value << ",\"ts\":";
    json_us(os, s.begin);
    if (s.end > s.begin) {
      os << ",\"ph\":\"X\",\"dur\":";
      json_us(os, s.end - s.begin);
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";  // zero-width: an instant
    }
    os << ",\"args\":{";
    if (s.msg.origin.valid()) {
      os << "\"msg\":\"" << to_string(s.msg) << "\",";
    }
    os << "\"detail\":" << s.detail << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace byzcast
