#include "common/trace.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace byzcast {

const char* to_string(HopEvent e) {
  switch (e) {
    case HopEvent::kEnterGroup: return "enter_group";
    case HopEvent::kOrdered: return "ordered";
    case HopEvent::kRelayed: return "relayed";
    case HopEvent::kADelivered: return "a_delivered";
  }
  return "?";
}

void TraceLog::record(const MessageId& msg, GroupId group, ProcessId replica,
                      HopEvent event, std::uint32_t hop, Time when) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(TraceRecord{msg, group, replica, event, hop, when});
}

std::vector<TraceRecord> TraceLog::path(const MessageId& msg) const {
  std::map<std::pair<GroupId, HopEvent>, TraceRecord> earliest;
  for (const auto& r : records_) {
    if (r.msg != msg) continue;
    const auto key = std::make_pair(r.group, r.event);
    const auto it = earliest.find(key);
    if (it == earliest.end() || r.when < it->second.when) {
      earliest.insert_or_assign(key, r);
    }
  }
  std::vector<TraceRecord> out;
  out.reserve(earliest.size());
  for (const auto& [key, rec] : earliest) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.hop != b.hop) return a.hop < b.hop;
              return static_cast<int>(a.event) < static_cast<int>(b.event);
            });
  return out;
}

MessageId TraceLog::find_multi_hop(std::size_t min_groups) const {
  std::map<MessageId, std::set<GroupId>> groups_of;
  for (const auto& r : records_) {
    auto& groups = groups_of[r.msg];
    groups.insert(r.group);
    if (groups.size() >= min_groups) return r.msg;
  }
  return MessageId{};  // origin invalid: no multi-hop trace recorded
}

}  // namespace byzcast
