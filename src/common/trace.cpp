#include "common/trace.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace byzcast {

const char* to_string(HopEvent e) {
  switch (e) {
    case HopEvent::kEnterGroup: return "enter_group";
    case HopEvent::kOrdered: return "ordered";
    case HopEvent::kRelayed: return "relayed";
    case HopEvent::kADelivered: return "a_delivered";
  }
  return "?";
}

void TraceLog::record(const MessageId& msg, GroupId group, ProcessId replica,
                      HopEvent event, std::uint32_t hop, Time when) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  by_msg_[msg].push_back(static_cast<std::uint32_t>(records_.size()));
  records_.push_back(TraceRecord{msg, group, replica, event, hop, when});
}

std::vector<TraceRecord> TraceLog::path(const MessageId& msg) const {
  std::map<std::pair<GroupId, HopEvent>, TraceRecord> earliest;
  const auto mit = by_msg_.find(msg);
  if (mit == by_msg_.end()) return {};
  for (const std::uint32_t idx : mit->second) {
    const TraceRecord& r = records_[idx];
    const auto key = std::make_pair(r.group, r.event);
    const auto it = earliest.find(key);
    if (it == earliest.end() || r.when < it->second.when) {
      earliest.insert_or_assign(key, r);
    }
  }
  std::vector<TraceRecord> out;
  out.reserve(earliest.size());
  for (const auto& [key, rec] : earliest) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.hop != b.hop) return a.hop < b.hop;
              return static_cast<int>(a.event) < static_cast<int>(b.event);
            });
  return out;
}

MessageId TraceLog::find_multi_hop(std::size_t min_groups) const {
  // Probe messages in recording order so the answer stays deterministic
  // (unordered_map iteration order is not).
  std::set<MessageId> probed;
  for (const auto& rec : records_) {
    if (!probed.insert(rec.msg).second) continue;
    std::set<GroupId> groups;
    for (const std::uint32_t idx : by_msg_.at(rec.msg)) {
      groups.insert(records_[idx].group);
      if (groups.size() >= min_groups) return rec.msg;
    }
  }
  return MessageId{};  // origin invalid: no multi-hop trace recorded
}

}  // namespace byzcast
