#include "common/prom.hpp"

#include <cinttypes>
#include <cstdio>

namespace byzcast {

namespace {

/// Shortest-ish round-trippable double for sample values and `le` bounds.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// Renders `{a="x",b="y"}` (empty string for no labels). `extra` lets the
/// histogram path append its per-bucket `le` to the shared const labels.
std::string label_block(const PromLabels& labels, const PromLabels& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  const auto append = [&out, &first](const PromLabels& ls) {
    for (const auto& [key, value] : ls) {
      if (!first) out += ",";
      first = false;
      out += key;
      out += "=\"";
      out += prometheus_escape_label(value);
      out += "\"";
    }
  };
  append(labels);
  append(extra);
  out += "}";
  return out;
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  // A leading digit is illegal; the conventional fix is an underscore.
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry,
                            const PromLabels& const_labels) {
  std::string out;
  const std::string labels = label_block(const_labels, {});
  for (const auto& [name, counter] : registry.counters()) {
    const std::string metric = prometheus_metric_name(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + labels + " " + fmt_u64(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string metric = prometheus_metric_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + labels + " " + fmt_double(gauge.value()) + "\n";
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string metric = prometheus_metric_name(name);
    out += "# TYPE " + metric + " histogram\n";
    const std::vector<double>& bounds = histogram.bounds();
    const std::vector<std::uint64_t> counts = histogram.counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += metric + "_bucket" +
             label_block(const_labels, {{"le", fmt_double(bounds[i])}}) + " " +
             fmt_u64(cumulative) + "\n";
    }
    // The overflow bucket folds into +Inf, which must equal _count: both
    // are derived from the same snapshot so the invariant holds even when
    // scraped mid-run.
    if (!counts.empty()) cumulative += counts.back();
    out += metric + "_bucket" + label_block(const_labels, {{"le", "+Inf"}}) +
           " " + fmt_u64(cumulative) + "\n";
    out += metric + "_sum" + labels + " " + fmt_double(histogram.sum()) + "\n";
    out += metric + "_count" + labels + " " + fmt_u64(cumulative) + "\n";
  }
  return out;
}

}  // namespace byzcast
