#include "common/hmac.hpp"

#include <array>

namespace byzcast {

Digest hmac_sha256(BytesView key, BytesView data) {
  std::array<std::uint8_t, 64> block_key{};
  if (key.size() > 64) {
    const Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<std::uint8_t, 64> inner_pad;
  std::array<std::uint8_t, 64> outer_pad;
  for (std::size_t i = 0; i < 64; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(block_key[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(BytesView(inner_pad.data(), inner_pad.size()));
  inner.update(data);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(outer_pad.data(), outer_pad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

}  // namespace byzcast
