// Deterministic pseudo-random generator (xoshiro256**). Every source of
// randomness in a run derives from one seed, so simulations replay exactly —
// the property all our tests and benchmarks depend on. We do not use
// std::mt19937 distributions because their outputs are not guaranteed
// identical across standard-library implementations.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace byzcast {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound). `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Bernoulli trial.
  bool next_bool(double probability_true);

  /// Derives an independent child generator (for per-actor streams).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace byzcast
