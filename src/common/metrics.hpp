// MetricsRegistry: named counters, gauges, fixed-bucket histograms and
// timeseries that every layer (sim actors, bft replicas, core nodes, the
// workload harness) can publish into. Designed for the hot path: callers
// resolve a metric once by name (map lookup + string build) and then hold a
// pointer, so recording is an increment / push_back with no hashing.
//
// Concurrency: recording is safe from multiple threads (the wall-clock
// runtime backend records from every worker). Counters and gauges are
// relaxed atomics; histogram and timeseries recording and metric resolution
// take a small mutex. Readers (value(), counts(), to_json(), ...) are meant
// for after the recording threads have quiesced — they see a consistent
// snapshot then; mid-run reads are safe but may interleave with writers.
// The single-threaded simulator pays one uncontended atomic/lock per record.
//
// Export is deterministic (std::map iteration order) so two runs with the
// same seed produce byte-identical sidecars.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. an instantaneous queue depth).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Recording is a binary search
/// over the (small, sorted, immutable) bound list — no allocation, no
/// re-sorting, and no lock: buckets and the total are relaxed atomics and
/// the running sum is a CAS loop over the double's bit pattern, so observe()
/// never serializes the runtime backend's per-delivery hot path. Readers see
/// each field individually consistent; cross-field consistency (count vs
/// sum) holds once recording has quiesced, like every other recorder here.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Snapshot of the bucket counts: bounds().size() + 1 entries; the last is
  /// the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit pattern of the double sum
};

/// Append-only (time, value) series; times must be nondecreasing per
/// recording thread (simulated time is monotone; the wall clock too), which
/// the exporters rely on.
class Timeseries {
 public:
  void append(Time when, double value) {
    const std::lock_guard<std::mutex> lock(mu_);
    points_.emplace_back(when, value);
  }
  /// Read after recording has quiesced.
  [[nodiscard]] const std::vector<std::pair<Time, double>>& points() const {
    return points_;
  }

 private:
  std::mutex mu_;
  std::vector<std::pair<Time, double>> points_;
};

/// Naming convention: "<subsystem>.<metric>.<label>", labels embedded in the
/// name (e.g. "node.a_deliver.g0", "actor.cpu_busy.g1.r2"). See the
/// Observability section of docs/ARCHITECTURE.md for the full catalogue.
class MetricsRegistry {
 public:
  /// Each accessor creates the metric on first use and returns a stable
  /// reference (std::map nodes never move), so callers may cache pointers.
  /// Resolution is thread-safe; it is a cold path (callers cache).
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);
  [[nodiscard]] Timeseries& timeseries(const std::string& name);

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, Timeseries>& timeserieses() const {
    return timeseries_;
  }

  /// Whole registry as a JSON object string (hand-rolled; no dependencies).
  /// Timeseries times are exported in fractional milliseconds.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;  // guards map insertion only
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Timeseries> timeseries_;
};

}  // namespace byzcast
