// Tiny leveled logger. Off by default (benchmarks run millions of events);
// tests and examples turn it up when debugging. Not thread-safe — the
// simulation is single-threaded by design.
#pragma once

#include <sstream>
#include <string>

namespace byzcast {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}

}  // namespace byzcast

#define BZC_LOG(level, expr)                                            \
  do {                                                                  \
    if (static_cast<int>(level) >=                                      \
        static_cast<int>(::byzcast::log_level())) {                     \
      std::ostringstream bzc_log_os;                                    \
      bzc_log_os << expr;                                               \
      ::byzcast::detail::log_line(level, bzc_log_os.str());             \
    }                                                                   \
  } while (0)

#define BZC_TRACE(expr) BZC_LOG(::byzcast::LogLevel::kTrace, expr)
#define BZC_DEBUG(expr) BZC_LOG(::byzcast::LogLevel::kDebug, expr)
#define BZC_INFO(expr) BZC_LOG(::byzcast::LogLevel::kInfo, expr)
#define BZC_WARN(expr) BZC_LOG(::byzcast::LogLevel::kWarn, expr)
#define BZC_ERROR(expr) BZC_LOG(::byzcast::LogLevel::kError, expr)
