// Measurement utilities shared by tests and the benchmark harness:
// latency samples with percentiles/CDF and a windowed throughput meter.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

/// Collects latency samples (simulated-time durations) and reports summary
/// statistics. Supports an optional warm-up cutoff: samples recorded before
/// the cutoff are kept but excluded from statistics, mirroring how the
/// paper's benchmarks discard warm-up.
class LatencyRecorder {
 public:
  /// Records a sample taken at `when` with duration `latency`.
  void record(Time when, Time latency);

  void set_warmup(Time cutoff) { warmup_cutoff_ = cutoff; }

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] double mean_ms() const;
  [[nodiscard]] double percentile_ms(double p) const;  // p in [0, 100]
  [[nodiscard]] double median_ms() const { return percentile_ms(50.0); }

  /// (latency_ms, cumulative_fraction) points suitable for plotting a CDF;
  /// at most `max_points` evenly spaced points.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t max_points = 100) const;

  /// One-line summary "n=... mean=...ms p50=... p95=... p99=...".
  [[nodiscard]] std::string summary() const;

 private:
  [[nodiscard]] std::vector<Time> effective_sorted() const;

  struct Sample {
    Time when;
    Time latency;
  };
  std::vector<Sample> samples_;
  Time warmup_cutoff_ = 0;
};

/// Counts completion events and reports a rate over the measurement window
/// (excluding warm-up and cool-down).
class ThroughputMeter {
 public:
  void record(Time when) { events_.push_back(when); }

  /// Events per second between `from` and `to` (simulated time).
  [[nodiscard]] double rate_per_sec(Time from, Time to) const;

  [[nodiscard]] std::size_t total() const { return events_.size(); }

 private:
  std::vector<Time> events_;
};

}  // namespace byzcast
