// Measurement utilities shared by tests and the benchmark harness:
// latency samples with percentiles/CDF and a windowed throughput meter.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

/// Collects latency samples (simulated-time durations) and reports summary
/// statistics. Supports an optional warm-up cutoff: samples recorded before
/// the cutoff are kept but excluded from statistics, mirroring how the
/// paper's benchmarks discard warm-up.
///
/// Sweep-scale runs record millions of samples: call reserve() with the
/// expected count up front (no mid-run reallocation stalls) and optionally
/// set_max_samples() to bound memory. Once the bound is hit further samples
/// are dropped and counted in overflow() instead of silently growing — a
/// nonzero overflow means the reported percentiles cover only the first
/// max_samples observations, and callers (the sweep driver, benches) treat
/// that as a configuration error to surface, not to hide.
class LatencyRecorder {
 public:
  /// Records a sample taken at `when` with duration `latency`.
  void record(Time when, Time latency);

  /// Pre-allocates storage for `n` samples.
  void reserve(std::size_t n) { samples_.reserve(n); }

  /// Caps stored samples at `n` (0 = unbounded, the default). Samples past
  /// the cap are counted in overflow() and dropped.
  void set_max_samples(std::size_t n) { max_samples_ = n; }

  /// Samples dropped because the set_max_samples() bound was reached.
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  void set_warmup(Time cutoff) {
    warmup_cutoff_ = cutoff;
    cache_valid_ = false;
  }

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] double mean_ms() const;
  [[nodiscard]] double percentile_ms(double p) const;  // p in [0, 100]
  [[nodiscard]] double median_ms() const { return percentile_ms(50.0); }

  /// (latency_ms, cumulative_fraction) points suitable for plotting a CDF;
  /// at most `max_points` evenly spaced points.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t max_points = 100) const;

  /// One-line summary "n=... mean=...ms p50=... p95=... p99=...".
  [[nodiscard]] std::string summary() const;

 private:
  /// Sorted post-warmup latencies. Cached: summary() asks for this five
  /// times in a row and benchmarks poll percentiles mid-run, so rebuilding
  /// (copy + O(n log n) sort) on every call was a hot-path sink. The cache
  /// is invalidated by record() and set_warmup().
  [[nodiscard]] const std::vector<Time>& effective_sorted() const;

  struct Sample {
    Time when;
    Time latency;
  };
  std::vector<Sample> samples_;
  Time warmup_cutoff_ = 0;
  std::size_t max_samples_ = 0;  // 0 = unbounded
  std::uint64_t overflow_ = 0;
  mutable std::vector<Time> sorted_cache_;
  mutable bool cache_valid_ = false;
};

/// Counts completion events and reports a rate over the measurement window
/// (excluding warm-up and cool-down). Events must be recorded in
/// nondecreasing time order (simulated time is monotone), which lets every
/// window query binary-search instead of scanning all events.
///
/// Same capacity discipline as LatencyRecorder: reserve() up front for
/// sweep-scale runs, set_max_events() to bound memory. Overflowed events are
/// dropped from window queries but still counted in total() and overflow(),
/// so a degraded meter is loud, not silently wrong.
class ThroughputMeter {
 public:
  void record(Time when);

  /// Pre-allocates storage for `n` events.
  void reserve(std::size_t n) { events_.reserve(n); }

  /// Caps stored events at `n` (0 = unbounded, the default).
  void set_max_events(std::size_t n) { max_events_ = n; }

  /// Events dropped past the set_max_events() bound (excluded from window
  /// rates — a nonzero value means rate_per_sec underreports).
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Events per second between `from` and `to` (simulated time).
  [[nodiscard]] double rate_per_sec(Time from, Time to) const;

  /// Sampled rate timeseries: one (bucket_start, events/sec) point per
  /// `bucket` of simulated time across [from, to). Buckets are half-open;
  /// a final partial bucket is normalized by its true width.
  [[nodiscard]] std::vector<std::pair<Time, double>> timeseries(
      Time from, Time to, Time bucket) const;

  /// All recorded events, stored or overflowed.
  [[nodiscard]] std::size_t total() const {
    return events_.size() + overflow_;
  }

 private:
  /// Number of events in [from, to), by binary search.
  [[nodiscard]] std::size_t count_in(Time from, Time to) const;

  std::vector<Time> events_;  // nondecreasing
  std::size_t max_events_ = 0;  // 0 = unbounded
  std::uint64_t overflow_ = 0;
};

}  // namespace byzcast
