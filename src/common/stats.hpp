// Measurement utilities shared by tests and the benchmark harness:
// latency samples with percentiles/CDF and a windowed throughput meter.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

/// Collects latency samples (simulated-time durations) and reports summary
/// statistics. Supports an optional warm-up cutoff: samples recorded before
/// the cutoff are kept but excluded from statistics, mirroring how the
/// paper's benchmarks discard warm-up.
class LatencyRecorder {
 public:
  /// Records a sample taken at `when` with duration `latency`.
  void record(Time when, Time latency);

  void set_warmup(Time cutoff) {
    warmup_cutoff_ = cutoff;
    cache_valid_ = false;
  }

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] double mean_ms() const;
  [[nodiscard]] double percentile_ms(double p) const;  // p in [0, 100]
  [[nodiscard]] double median_ms() const { return percentile_ms(50.0); }

  /// (latency_ms, cumulative_fraction) points suitable for plotting a CDF;
  /// at most `max_points` evenly spaced points.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf(
      std::size_t max_points = 100) const;

  /// One-line summary "n=... mean=...ms p50=... p95=... p99=...".
  [[nodiscard]] std::string summary() const;

 private:
  /// Sorted post-warmup latencies. Cached: summary() asks for this five
  /// times in a row and benchmarks poll percentiles mid-run, so rebuilding
  /// (copy + O(n log n) sort) on every call was a hot-path sink. The cache
  /// is invalidated by record() and set_warmup().
  [[nodiscard]] const std::vector<Time>& effective_sorted() const;

  struct Sample {
    Time when;
    Time latency;
  };
  std::vector<Sample> samples_;
  Time warmup_cutoff_ = 0;
  mutable std::vector<Time> sorted_cache_;
  mutable bool cache_valid_ = false;
};

/// Counts completion events and reports a rate over the measurement window
/// (excluding warm-up and cool-down). Events must be recorded in
/// nondecreasing time order (simulated time is monotone), which lets every
/// window query binary-search instead of scanning all events.
class ThroughputMeter {
 public:
  void record(Time when);

  /// Events per second between `from` and `to` (simulated time).
  [[nodiscard]] double rate_per_sec(Time from, Time to) const;

  /// Sampled rate timeseries: one (bucket_start, events/sec) point per
  /// `bucket` of simulated time across [from, to). Buckets are half-open;
  /// a final partial bucket is normalized by its true width.
  [[nodiscard]] std::vector<std::pair<Time, double>> timeseries(
      Time from, Time to, Time bucket) const;

  [[nodiscard]] std::size_t total() const { return events_.size(); }

 private:
  /// Number of events in [from, to), by binary search.
  [[nodiscard]] std::size_t count_in(Time from, Time to) const;

  std::vector<Time> events_;  // nondecreasing
};

}  // namespace byzcast
