// Causal span tracing: timed intervals stamped at every stage a multicast
// message passes through (Algorithm 1 hops, consensus phases, mailbox /
// CPU / network segments), keyed by the message's globally unique MessageId
// so a delivered message's full latency can be decomposed hop by hop after
// the run (core::CriticalPathAnalyzer) or inspected visually (the Chrome
// trace exporter in common/span_export.hpp).
//
// Two families of spans share the log:
//  * per-message spans (msg valid): the causal chain of one traced multicast
//    message — recorded only for messages whose on-wire `traced` flag is set
//    (the sampling decision is made once, at the client, so every replica of
//    every group agrees on it);
//  * infrastructure spans (msg invalid): per-actor mailbox-wait / CPU-service
//    intervals and per-group consensus instances, for the per-replica tracks
//    of the Chrome trace. Off by default (set_actor_spans) because they cost
//    one record per wire message.
//
// Like TraceLog, the log is append-only and capacity-bounded: when full,
// recording stops (keeping early traces complete) and drops are counted so
// exports report truncation instead of silently presenting partial data.
// record() is thread-safe (runtime workers stamp concurrently); the readers
// must only run after recording has quiesced.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

/// What interval of a message's (or an actor's) life a span covers.
enum class SpanKind : std::uint8_t {
  // -- per-message causal chain (msg valid) ----------------------------------
  kEndToEnd,        // client: a-multicast submit -> f+1 replies from all dst
  kNetTransit,      // wire send at the source -> arrival in the dest inbox
  kMailboxWait,     // inbox arrival -> service start
  kCpuService,      // service start -> request admission done
  kConsensusQueue,  // admitted -> proposal for its instance accepted here
  kWriteQuorum,     // proposal accepted -> 2f+1 WRITEs seen
  kAcceptQuorum,    // WRITE quorum -> 2f+1 ACCEPTs seen (decide)
  kExecute,         // decide -> the copy executes in the application
  kOrderWait,       // first parent copy executed -> f+1th handled (l.9)
  kRelay,           // point event: relayed into child `detail` (l.12)
  kADeliver,        // point event: a-delivered at this group (l.14)
  // -- infrastructure (msg invalid) ------------------------------------------
  kActorMailbox,    // one wire message: inbox arrival -> service start
  kActorService,    // one wire message: service start -> handler done
  kConsensusInstance,  // one consensus instance: proposed -> decided
};

[[nodiscard]] const char* to_string(SpanKind k);

/// One timed interval. `where` is the stamping process; `group` is the group
/// it acts for (invalid for client / infra spans outside any group).
/// `detail` is kind-specific: the child GroupId for kRelay, the destination
/// count for kEndToEnd, the consensus instance for kConsensusInstance, the
/// wire-message type tag for actor spans.
struct Span {
  MessageId msg;  // invalid origin => infrastructure span
  SpanKind kind = SpanKind::kEndToEnd;
  GroupId group;
  ProcessId where;
  Time begin = 0;
  Time end = 0;
  std::int64_t detail = 0;

  friend bool operator==(const Span&, const Span&) = default;
};

class SpanLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  explicit SpanLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// Appends one span (thread-safe, capacity-bounded). Spans whose end
  /// precedes their begin are clock anomalies; they are recorded as
  /// zero-width at `begin` so downstream math never sees a negative width.
  void record(Span s);

  /// Infra spans (per-actor mailbox/service) are recorded only when this is
  /// on — they cost one record per wire message. Cheap to query on the hot
  /// path (relaxed atomic).
  void set_actor_spans(bool on) {
    actor_spans_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool actor_spans() const {
    return actor_spans_.load(std::memory_order_relaxed);
  }

  // --- readers: only after recording has quiesced ---------------------------
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// All spans of one message, in recording order (per-message index: O(k),
  /// not O(total)).
  [[nodiscard]] std::vector<Span> of(const MessageId& msg) const;
  /// Ids of every message with at least one per-message span, unordered.
  [[nodiscard]] std::vector<MessageId> traced_messages() const;

 private:
  std::mutex mu_;
  std::size_t capacity_;
  std::vector<Span> spans_;
  std::unordered_map<MessageId, std::vector<std::uint32_t>> by_msg_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<bool> actor_spans_{false};
};

}  // namespace byzcast
