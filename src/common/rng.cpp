#include "common/rng.hpp"

#include <cmath>

namespace byzcast {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  BZC_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  BZC_EXPECTS(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // span==0 means full range
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  BZC_EXPECTS(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

bool Rng::next_bool(double probability_true) {
  return next_double() < probability_true;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace byzcast
