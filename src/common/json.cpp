#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace byzcast {

namespace {

const Json kNullSentinel{};
constexpr int kMaxDepth = 64;

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool fail(const std::string& why) {
    if (error.empty()) {
      error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }

  bool consume(char c) {
    if (eof() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool literal(const char* word, Json value, Json* out) {
    for (const char* p = word; *p != '\0'; ++p, ++pos) {
      if (eof() || text[pos] != *p) return fail("bad literal");
    }
    *out = std::move(value);
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for config files; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos;
    if (!eof() && text[pos] == '-') ++pos;
    while (!eof() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (!eof() && text[pos] == '.') {
      ++pos;
      while (!eof() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (!eof() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (!eof() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (!eof() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos == start) return fail("expected number");
    const std::string token = text.substr(start, pos - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return fail("malformed number");
    }
    *out = Json::number(v);
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case 'n': return literal("null", Json::null(), out);
      case 't': return literal("true", Json::boolean(true), out);
      case 'f': return literal("false", Json::boolean(false), out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json::string(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        *out = Json::array();
        skip_ws();
        if (!eof() && peek() == ']') { ++pos; return true; }
        while (true) {
          Json elem;
          if (!parse_value(&elem, depth + 1)) return false;
          out->push_back(std::move(elem));
          skip_ws();
          if (eof()) return fail("unterminated array");
          if (peek() == ',') { ++pos; continue; }
          if (peek() == ']') { ++pos; return true; }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        *out = Json::object();
        skip_ws();
        if (!eof() && peek() == '}') { ++pos; return true; }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Json value;
          if (!parse_value(&value, depth + 1)) return false;
          out->set(key, std::move(value));
          skip_ws();
          if (eof()) return fail("unterminated object");
          if (peek() == ',') { ++pos; continue; }
          if (peek() == '}') { ++pos; return true; }
          return fail("expected ',' or '}'");
        }
      }
      default:
        return parse_number(out);
    }
  }
};

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double v) {
  // Integers (the common case in configs) print without a fraction.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    out += std::to_string(static_cast<std::int64_t>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

std::size_t Json::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (!is_array() || i >= arr_.size()) return kNullSentinel;
  return arr_[i];
}

void Json::push_back(Json v) {
  if (is_array()) arr_.push_back(std::move(v));
}

bool Json::has(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : obj_) {
    if (k == key) return true;
  }
  return false;
}

const Json& Json::get(const std::string& key) const {
  if (is_object()) {
    for (const auto& [k, v] : obj_) {
      if (k == key) return v;
    }
  }
  return kNullSentinel;
}

void Json::set(const std::string& key, Json v) {
  if (!is_object()) return;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

double Json::num_or(const std::string& key, double fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_double() : fallback;
}

std::int64_t Json::int_or(const std::string& key, std::int64_t fallback) const {
  const Json& v = get(key);
  return v.is_number() ? v.as_int() : fallback;
}

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(&out, 0)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (!p.eof()) {
    if (error != nullptr) {
      *error = "trailing characters at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return out;
}

void Json::write(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: write_number(out, num_); return;
    case Type::kString: write_escaped(out, str_); return;
    case Type::kArray: {
      if (arr_.empty()) { out += "[]"; return; }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += inner_pad;
        arr_[i].write(out, indent + 1);
        if (i + 1 < arr_.size()) out += ",";
        out += "\n";
      }
      out += pad + "]";
      return;
    }
    case Type::kObject: {
      if (obj_.empty()) { out += "{}"; return; }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += inner_pad;
        write_escaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.write(out, indent + 1);
        if (i + 1 < obj_.size()) out += ",";
        out += "\n";
      }
      out += pad + "}";
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(out, 0);
  out += "\n";
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kNumber: return a.num_ == b.num_;
    case Json::Type::kString: return a.str_ == b.str_;
    case Json::Type::kArray: return a.arr_ == b.arr_;
    case Json::Type::kObject: return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace byzcast
