// Chrome trace-event JSON export of a SpanLog: load the file in Perfetto
// (ui.perfetto.dev) or chrome://tracing to see one track per replica,
// grouped into one process per overlay group, with every traced message's
// hop chain (net transit, mailbox, CPU, consensus phases, order wait,
// relay / a-deliver instants) laid out on the timeline.
//
// Uses the documented "JSON Array Format" keys only — ph:"X" complete
// events with microsecond ts/dur, ph:"i" instants, ph:"M" process/thread
// name metadata — so the output validates as standard trace-event JSON.
#pragma once

#include <string>

#include "common/span.hpp"

namespace byzcast {

/// Serializes `log` (quiesced) as a Chrome trace-event JSON object.
/// pid = overlay group id (-1 for clients and other groupless actors),
/// tid = process id of the stamping actor.
[[nodiscard]] std::string chrome_trace_json(const SpanLog& log);

}  // namespace byzcast
