// Prometheus text exposition (format version 0.0.4) for a MetricsRegistry,
// rendered on demand by the per-daemon introspection server's /metrics
// endpoint. Hand-rolled like every other exporter in this repo — no client
// library dependency.
//
// Mapping: internal dotted names ("node.a_deliver.g0") become legal metric
// names by replacing every character outside [a-zA-Z0-9_:] with '_';
// counters additionally get the conventional "_total" suffix. Histograms
// export the full cumulative-bucket family (`_bucket{le="..."}` monotone,
// `le="+Inf"` equal to `_count`) plus `_sum` and `_count`. Timeseries have
// no Prometheus equivalent and stay JSON-only (the drain-time sidecars).
// `const_labels` (e.g. {{"node", "g1_r2"}}) are attached to every sample,
// with label values escaped per the exposition rules. Output order is
// deterministic: counters, then gauges, then histograms, each sorted by
// name (std::map order), so two scrapes of the same state are
// byte-identical.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"

namespace byzcast {

using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Sanitized Prometheus metric name (no "_total" suffix applied).
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

/// Label *value* with `\`, `"` and newline escaped for the exposition text.
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

/// The whole registry in exposition text, `const_labels` on every sample.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry,
                                          const PromLabels& const_labels = {});

}  // namespace byzcast
