#include "common/span.hpp"

namespace byzcast {

const char* to_string(SpanKind k) {
  switch (k) {
    case SpanKind::kEndToEnd: return "end_to_end";
    case SpanKind::kNetTransit: return "net_transit";
    case SpanKind::kMailboxWait: return "mailbox_wait";
    case SpanKind::kCpuService: return "cpu_service";
    case SpanKind::kConsensusQueue: return "consensus_queue";
    case SpanKind::kWriteQuorum: return "write_quorum";
    case SpanKind::kAcceptQuorum: return "accept_quorum";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kOrderWait: return "order_wait";
    case SpanKind::kRelay: return "relay";
    case SpanKind::kADeliver: return "a_deliver";
    case SpanKind::kActorMailbox: return "actor_mailbox";
    case SpanKind::kActorService: return "actor_service";
    case SpanKind::kConsensusInstance: return "consensus_instance";
  }
  return "?";
}

void SpanLog::record(Span s) {
  if (s.end < s.begin) s.end = s.begin;
  const std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (s.msg.origin.valid()) {
    by_msg_[s.msg].push_back(static_cast<std::uint32_t>(spans_.size()));
  }
  spans_.push_back(s);
}

std::vector<Span> SpanLog::of(const MessageId& msg) const {
  std::vector<Span> out;
  const auto it = by_msg_.find(msg);
  if (it == by_msg_.end()) return out;
  out.reserve(it->second.size());
  for (const auto idx : it->second) out.push_back(spans_[idx]);
  return out;
}

std::vector<MessageId> SpanLog::traced_messages() const {
  std::vector<MessageId> out;
  out.reserve(by_msg_.size());
  for (const auto& [id, idxs] : by_msg_) out.push_back(id);
  return out;
}

}  // namespace byzcast
