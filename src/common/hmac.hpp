// HMAC-SHA256 (RFC 2104) on top of our SHA-256. Used for pairwise message
// authentication between simulated processes.
#pragma once

#include "common/bytes.hpp"
#include "common/sha256.hpp"

namespace byzcast {

/// Computes HMAC-SHA256(key, data).
[[nodiscard]] Digest hmac_sha256(BytesView key, BytesView data);

}  // namespace byzcast
