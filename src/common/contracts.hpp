// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()"). Violations abort with a
// message: in a deterministic simulation an invariant break means the run is
// meaningless, so failing fast is the only sane policy.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace byzcast::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace byzcast::detail

#define BZC_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::byzcast::detail::contract_failure("Precondition", #cond,     \
                                                __FILE__, __LINE__))

#define BZC_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::byzcast::detail::contract_failure("Postcondition", #cond,    \
                                                __FILE__, __LINE__))

#define BZC_ASSERT(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                           \
          : ::byzcast::detail::contract_failure("Invariant", #cond,        \
                                                __FILE__, __LINE__))
