#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/contracts.hpp"

namespace byzcast {

void LatencyRecorder::record(Time when, Time latency) {
  BZC_EXPECTS(latency >= 0);
  if (max_samples_ > 0 && samples_.size() >= max_samples_) {
    ++overflow_;
    return;
  }
  samples_.push_back(Sample{when, latency});
  cache_valid_ = false;
}

const std::vector<Time>& LatencyRecorder::effective_sorted() const {
  if (!cache_valid_) {
    sorted_cache_.clear();
    sorted_cache_.reserve(samples_.size());
    for (const auto& s : samples_) {
      if (s.when >= warmup_cutoff_) sorted_cache_.push_back(s.latency);
    }
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }
  return sorted_cache_;
}

std::size_t LatencyRecorder::count() const {
  return effective_sorted().size();
}

double LatencyRecorder::mean_ms() const {
  const auto& xs = effective_sorted();
  if (xs.empty()) return 0.0;
  const double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  return sum / static_cast<double>(xs.size()) / 1e6;
}

double LatencyRecorder::percentile_ms(double p) const {
  BZC_EXPECTS(p >= 0.0 && p <= 100.0);
  const auto& xs = effective_sorted();
  if (xs.empty()) return 0.0;
  // Nearest-rank with linear interpolation between adjacent samples.
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  const double v = static_cast<double>(xs[lo]) * (1.0 - frac) +
                   static_cast<double>(xs[hi]) * frac;
  return v / 1e6;
}

std::vector<std::pair<double, double>> LatencyRecorder::cdf(
    std::size_t max_points) const {
  const auto& xs = effective_sorted();
  std::vector<std::pair<double, double>> points;
  if (xs.empty()) return points;
  const std::size_t stride = std::max<std::size_t>(1, xs.size() / max_points);
  for (std::size_t i = 0; i < xs.size(); i += stride) {
    points.emplace_back(static_cast<double>(xs[i]) / 1e6,
                        static_cast<double>(i + 1) /
                            static_cast<double>(xs.size()));
  }
  if (points.back().second < 1.0) {
    points.emplace_back(static_cast<double>(xs.back()) / 1e6, 1.0);
  }
  return points;
}

std::string LatencyRecorder::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "n=" << count() << " mean=" << mean_ms() << "ms"
     << " p50=" << percentile_ms(50) << "ms"
     << " p95=" << percentile_ms(95) << "ms"
     << " p99=" << percentile_ms(99) << "ms";
  return os.str();
}

void ThroughputMeter::record(Time when) {
  BZC_EXPECTS(events_.empty() || when >= events_.back());
  if (max_events_ > 0 && events_.size() >= max_events_) {
    ++overflow_;
    return;
  }
  events_.push_back(when);
}

std::size_t ThroughputMeter::count_in(Time from, Time to) const {
  const auto lo = std::lower_bound(events_.begin(), events_.end(), from);
  const auto hi = std::lower_bound(lo, events_.end(), to);
  return static_cast<std::size_t>(hi - lo);
}

double ThroughputMeter::rate_per_sec(Time from, Time to) const {
  BZC_EXPECTS(from < to);
  return static_cast<double>(count_in(from, to)) / to_sec(to - from);
}

std::vector<std::pair<Time, double>> ThroughputMeter::timeseries(
    Time from, Time to, Time bucket) const {
  BZC_EXPECTS(from < to);
  BZC_EXPECTS(bucket > 0);
  std::vector<std::pair<Time, double>> out;
  for (Time start = from; start < to; start += bucket) {
    const Time end = std::min(start + bucket, to);
    out.emplace_back(start,
                     static_cast<double>(count_in(start, end)) /
                         to_sec(end - start));
  }
  return out;
}

}  // namespace byzcast
