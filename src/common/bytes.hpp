// Byte-buffer alias and small helpers used by the codec and the crypto
// primitives.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace byzcast {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Renders `data` as lowercase hex (test vectors, digests in logs).
[[nodiscard]] std::string to_hex(BytesView data);

/// Parses lowercase/uppercase hex into bytes; aborts on odd length or
/// non-hex characters (inputs are programmer-supplied test vectors).
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Copies a string's bytes into a buffer (convenience for payloads).
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Interprets a buffer as text (payloads in examples and logs).
[[nodiscard]] std::string to_text(BytesView data);

}  // namespace byzcast
