// Hop-level tracing of atomically multicast messages. Every replica that
// advances a message through Algorithm 1 stamps an event here (keyed by the
// message's globally unique MessageId), so the full path of a global message
// down the overlay tree — which group ordered it at which simulated time,
// where it was relayed, where it was a-delivered — is reconstructable after
// the run. The log is shared (non-owning pointers) by all nodes of a system,
// exactly like core::DeliveryLog.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

class MetricsRegistry;
class MonitorHub;
class SpanLog;

/// One step of a message's life inside one group, in Algorithm 1 terms.
enum class HopEvent : std::uint8_t {
  kEnterGroup,   // first x_k-delivered copy seen at this group (l.5)
  kOrdered,      // genuinely ordered here: f+1 parent copies or k=0 (l.9)
  kRelayed,      // forwarded into a child group's broadcast (l.12)
  kADelivered,   // a-delivered at this destination group (l.14)
};

[[nodiscard]] const char* to_string(HopEvent e);

struct TraceRecord {
  MessageId msg;
  GroupId group;      // where the event happened
  ProcessId replica;  // which replica stamped it
  HopEvent event;
  std::uint32_t hop = 0;  // tree depth below the entry group (from the wire)
  Time when = 0;
};

/// Append-only, capacity-bounded event log. When the cap is hit, recording
/// stops (keeping the earliest messages' traces complete) and the number of
/// dropped events is counted, so exports can report the truncation instead
/// of silently presenting partial coverage.
///
/// record() is safe from multiple threads (wall-clock runtime workers stamp
/// concurrently); the readers return references / scan the log and must only
/// run after recording has quiesced.
class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  explicit TraceLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void record(const MessageId& msg, GroupId group, ProcessId replica,
              HopEvent event, std::uint32_t hop, Time when);

  /// Read after recording has quiesced.
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Reconstructed path of one message: the earliest stamp per
  /// (group, event), ordered by time then hop depth. A complete 2-group
  /// global trace reads enter/ordered at the lca, relayed at the lca, then
  /// enter/ordered/a-delivered at each destination child. O(records of msg)
  /// via the per-message index, not O(total records).
  [[nodiscard]] std::vector<TraceRecord> path(const MessageId& msg) const;

  /// Id of some message whose trace contains >= `min_hops` distinct groups
  /// (a multi-hop, i.e. relayed, message); nullopt-like invalid id if none.
  /// O(messages), each probe O(records of that message).
  [[nodiscard]] MessageId find_multi_hop(std::size_t min_groups = 2) const;

 private:
  std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceRecord> records_;
  /// Record indices per message, in recording order — keeps the post-run
  /// queries linear in the answer instead of quadratic in the log.
  std::unordered_map<MessageId, std::vector<std::uint32_t>> by_msg_;
  std::uint64_t dropped_ = 0;
};

/// Bundle of non-owning observability sinks threaded through composition
/// roots (ByzCastSystem, Simulation). Null members disable that sink; the
/// default-constructed bundle makes every stamp a no-op. (New sinks go at
/// the end: aggregate initializers like `{&metrics, &trace}` abound.)
struct Observability {
  MetricsRegistry* metrics = nullptr;
  TraceLog* trace = nullptr;
  SpanLog* spans = nullptr;
  MonitorHub* monitors = nullptr;
};

}  // namespace byzcast
