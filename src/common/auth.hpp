// Message authentication for the simulation. A KeyStore derives pairwise
// symmetric keys from a master seed; each process gets an Authenticator bound
// to its own identity, so a Byzantine process can authenticate *as itself*
// but cannot forge MACs of other processes (the object capability is the
// enforcement mechanism — a faulty actor simply never holds another
// process's Authenticator).
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace byzcast {

/// MAC construction used by a simulation. kHmac is real HMAC-SHA256 (the
/// default; tests rely on it). kFast is a keyed 64-bit mix — unforgeable
/// within the simulation (adversary actors never hold other processes'
/// Authenticators, and keys never leave the KeyStore) and ~50x cheaper in
/// wall-clock time, used by the benchmark harness where millions of wire
/// messages flow. The *simulated* CPU cost of authentication is part of the
/// Profile constants either way.
enum class MacMode { kHmac, kFast };

/// Derives and caches pairwise keys. Shared by all processes of one
/// simulation via shared_ptr; thread-safety is not needed (single-threaded
/// deterministic simulation).
class KeyStore {
 public:
  explicit KeyStore(std::uint64_t master_seed, MacMode mode = MacMode::kHmac);

  /// Symmetric key shared by the (unordered) pair {a, b}.
  [[nodiscard]] Bytes pair_key(ProcessId a, ProcessId b) const;

  [[nodiscard]] MacMode mode() const { return mode_; }
  /// 64-bit key for the fast mode.
  [[nodiscard]] std::uint64_t pair_key64(ProcessId a, ProcessId b) const;

 private:
  std::uint64_t master_seed_;
  MacMode mode_;
};

/// A per-process capability for creating and checking MACs.
class Authenticator {
 public:
  Authenticator(std::shared_ptr<const KeyStore> keys, ProcessId self)
      : keys_(std::move(keys)), self_(self) {}

  [[nodiscard]] ProcessId self() const { return self_; }

  /// MAC over `data` for the channel self -> `to`.
  [[nodiscard]] Digest sign(ProcessId to, BytesView data) const;

  /// Checks a MAC allegedly produced by `from` for the channel from -> self.
  [[nodiscard]] bool verify(ProcessId from, BytesView data,
                            const Digest& mac) const;

 private:
  std::shared_ptr<const KeyStore> keys_;
  ProcessId self_;
};

}  // namespace byzcast
