// Message authentication for the simulation. A KeyStore derives pairwise
// symmetric keys from a master seed; each process gets an Authenticator bound
// to its own identity, so a Byzantine process can authenticate *as itself*
// but cannot forge MACs of other processes (the object capability is the
// enforcement mechanism — a faulty actor simply never holds another
// process's Authenticator).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/bytes.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace byzcast {

/// MAC construction used by a simulation. kHmac is real HMAC-SHA256 (the
/// default; tests rely on it). kFast is a keyed 64-bit mix — unforgeable
/// within the simulation (adversary actors never hold other processes'
/// Authenticators, and keys never leave the KeyStore) and ~50x cheaper in
/// wall-clock time, used by the benchmark harness where millions of wire
/// messages flow. The *simulated* CPU cost of authentication is part of the
/// Profile constants either way.
enum class MacMode { kHmac, kFast };

/// Derives and caches pairwise keys. Shared by all processes of one
/// simulation via shared_ptr; thread-safety is not needed (single-threaded
/// deterministic simulation).
class KeyStore {
 public:
  /// `verify_memo` gates the Authenticator's verification cache for every
  /// process sharing this store (false = the mac_memo_off ablation: each
  /// verification pays the full HMAC even for already-seen bytes).
  explicit KeyStore(std::uint64_t master_seed, MacMode mode = MacMode::kHmac,
                    bool verify_memo = true);

  /// Symmetric key shared by the (unordered) pair {a, b}.
  [[nodiscard]] Bytes pair_key(ProcessId a, ProcessId b) const;

  [[nodiscard]] MacMode mode() const { return mode_; }
  [[nodiscard]] bool verify_memo() const { return verify_memo_; }
  /// 64-bit key for the fast mode.
  [[nodiscard]] std::uint64_t pair_key64(ProcessId a, ProcessId b) const;

 private:
  std::uint64_t master_seed_;
  MacMode mode_;
  bool verify_memo_;
};

/// A per-process capability for creating and checking MACs.
///
/// Successful kHmac verifications are memoized: the tree relay path makes a
/// replica see the same (sender, payload) pair more than once (retransmits,
/// a request forwarded up the tree coming back down), and re-running
/// HMAC-SHA256 for bytes it already authenticated is pure waste. The memo is
/// keyed on the full SHA-256 of the payload: a hit requires the stored
/// payload digest AND the stored 32-byte MAC to equal the presented ones, so
/// by second-preimage resistance the presented bytes are the very bytes that
/// were verified — accepting from the cache is exactly as strong as
/// accepting a replay of an already-verified message, which the channel
/// model permits anyway (replay protection lives in the protocol layer:
/// request dedup, FIFO sequence numbers). A hit costs one SHA-256 pass over
/// the payload instead of the full keyed HMAC (inner pass over key block +
/// payload, plus the outer hash). kFast mode is not cached: its MAC is
/// itself one cheap hash pass, cheaper than the digest lookup.
///
/// The cache is safe for concurrent verifiers: the verify stage fans MAC
/// checks for one replica out to a worker pool, so several threads may probe
/// the memo at once. Each direct-mapped slot carries a one-word try-lock —
/// a thread that cannot take a slot's lock immediately treats the probe as a
/// miss (reader: pays the full HMAC; writer: skips the store). Verification
/// therefore never blocks and never observes a torn slot; contention only
/// costs the optimization, not correctness. `sign` touches no shared state.
class Authenticator {
 public:
  static constexpr std::size_t kDefaultCacheSlots = 1024;  // direct-mapped

  /// `cache_slots` sizes the verify memo (must be > 0; tests shrink it to 1
  /// to force every verification onto the same slot).
  Authenticator(std::shared_ptr<const KeyStore> keys, ProcessId self,
                std::size_t cache_slots = kDefaultCacheSlots)
      : keys_(std::move(keys)), self_(self), cache_slots_(cache_slots) {}

  [[nodiscard]] ProcessId self() const { return self_; }

  /// MAC over `data` for the channel self -> `to`. Thread-safe.
  [[nodiscard]] Digest sign(ProcessId to, BytesView data) const;

  /// Checks a MAC allegedly produced by `from` for the channel from -> self.
  /// Thread-safe: callable concurrently from verify-stage workers.
  [[nodiscard]] bool verify(ProcessId from, BytesView data,
                            const Digest& mac) const;

  /// Verifications answered from the memo (observability / tests).
  [[nodiscard]] std::uint64_t verify_cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  /// One memo entry. `busy` is the per-slot try-lock: 0 free, 1 held.
  struct CacheSlot {
    std::atomic<std::uint32_t> busy{0};
    std::int32_t from = -1;
    Digest payload_hash{};
    Digest mac{};
  };

  std::shared_ptr<const KeyStore> keys_;
  ProcessId self_;
  std::size_t cache_slots_;
  /// Lazily allocated on the first memoizable verification (client actors
  /// by the thousand never verify with real HMACs; don't pay 74 KiB each).
  mutable std::once_flag cache_init_;
  mutable std::unique_ptr<CacheSlot[]> cache_;
  mutable std::atomic<std::uint64_t> hits_{0};
};

}  // namespace byzcast
