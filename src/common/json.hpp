// Minimal JSON value, parser and writer shared by the net backend's cluster
// configuration files and the workload engine's spec files / sweep sidecars.
// Hand-rolled because the repo deliberately carries no third-party
// dependencies beyond gtest/benchmark: configs are small, so a simple
// recursive-descent parser with a depth cap is plenty. Parsing never aborts —
// malformed input returns an error string (configs come from disk, i.e. from
// outside the trust boundary, unlike protocol encoders).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace byzcast {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  /// Any integral type; exact template match avoids int/double ambiguity.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  static Json number(T v) {
    return number(static_cast<double>(v));
  }
  static Json string(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Value accessors return the natural zero value on type mismatch; use
  /// the is_* predicates (or get()) when a mismatch must be detected.
  [[nodiscard]] bool as_bool() const { return is_bool() && bool_; }
  [[nodiscard]] double as_double() const { return is_number() ? num_ : 0.0; }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(as_double());
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  // --- array ---------------------------------------------------------------
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;
  void push_back(Json v);

  // --- object --------------------------------------------------------------
  [[nodiscard]] bool has(const std::string& key) const;
  /// Member lookup; a shared null sentinel when absent or not an object.
  [[nodiscard]] const Json& get(const std::string& key) const;
  void set(const std::string& key, Json v);
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const {
    return obj_;
  }

  /// Number lookup with default (missing or non-number -> `fallback`).
  [[nodiscard]] double num_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(const std::string& key,
                                    std::int64_t fallback) const;

  /// Strict parse of a complete document (trailing garbage is an error).
  /// Returns nullopt and fills `error` (when non-null) on malformed input.
  [[nodiscard]] static std::optional<Json> parse(const std::string& text,
                                                 std::string* error = nullptr);

  /// Serializes with 2-space indentation and a trailing newline at top
  /// level; object member order is preserved, so parse(dump(x)) == x.
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace byzcast
