#include "common/bytes.hpp"

#include "common/contracts.hpp"

namespace byzcast {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (const auto byte : data) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  BZC_EXPECTS(hex.size() % 2 == 0);
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    BZC_EXPECTS(hi >= 0 && lo >= 0);
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_text(BytesView data) {
  return std::string(data.begin(), data.end());
}

}  // namespace byzcast
