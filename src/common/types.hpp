// Strongly-typed identifiers and the simulated-time type shared by every
// module. Strong typedefs (C++ Core Guidelines I.4: "Make interfaces
// precisely and strongly typed") prevent mixing up process ids, group ids and
// client ids, which are all "small integers" underneath.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace byzcast {

/// Simulated time in nanoseconds since the start of the run.
using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000 * kNanosecond;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// Converts simulated time to fractional milliseconds (for reports).
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
/// Converts simulated time to fractional seconds (for reports).
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

namespace detail {

/// CRTP-free strong integer id. `Tag` makes distinct instantiations
/// non-convertible to each other.
template <typename Tag>
struct StrongId {
  std::int32_t value = -1;

  constexpr StrongId() = default;
  constexpr explicit StrongId(std::int32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value >= 0; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

/// Identifies one simulated process (replica or client), unique system-wide.
using ProcessId = detail::StrongId<struct ProcessTag>;
/// Identifies one group of 3f+1 replicas (target or auxiliary).
using GroupId = detail::StrongId<struct GroupTag>;
/// Identifies a geographical region in the WAN latency model.
using RegionId = detail::StrongId<struct RegionTag>;

/// Identifies an atomically multicast message: the originating process plus a
/// per-origin sequence number. Unique and unforgeable given authentication.
struct MessageId {
  ProcessId origin;
  std::uint64_t seq = 0;

  friend constexpr auto operator<=>(const MessageId&, const MessageId&) =
      default;
};

[[nodiscard]] inline std::string to_string(ProcessId p) {
  return "p" + std::to_string(p.value);
}
[[nodiscard]] inline std::string to_string(GroupId g) {
  return "g" + std::to_string(g.value);
}
[[nodiscard]] inline std::string to_string(const MessageId& m) {
  return to_string(m.origin) + ":" + std::to_string(m.seq);
}

}  // namespace byzcast

template <typename Tag>
struct std::hash<byzcast::detail::StrongId<Tag>> {
  std::size_t operator()(byzcast::detail::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value);
  }
};

template <>
struct std::hash<byzcast::MessageId> {
  std::size_t operator()(const byzcast::MessageId& m) const noexcept {
    const auto h1 = std::hash<std::int32_t>{}(m.origin.value);
    const auto h2 = std::hash<std::uint64_t>{}(m.seq);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
