#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/contracts.hpp"

namespace byzcast {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  BZC_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // Doubles have no atomic fetch_add guaranteed lock-free everywhere; CAS the
  // bit pattern instead (the loop retries only under a concurrent update).
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      expected, std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + v),
      std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(counts_.size());
  for (const auto& c : counts_) out.push_back(c.load(std::memory_order_relaxed));
  return out;
}

std::uint64_t Histogram::count() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

Timeseries& MetricsRegistry::timeseries(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return timeseries_[name];
}

namespace {

void json_number(std::ostream& os, double v) {
  // JSON has no NaN/Inf; clamp to null.
  if (v != v) {
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << v;
  os << tmp.str();
}

void json_key(std::ostream& os, const std::string& name, bool& first) {
  if (!first) os << ",";
  first = false;
  os << '"' << name << "\":";  // metric names never need escaping
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    json_key(os, name, first);
    os << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    json_key(os, name, first);
    json_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    json_key(os, name, first);
    os << "{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ",";
      json_number(os, h.bounds()[i]);
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      if (i) os << ",";
      os << h.counts()[i];
    }
    os << "],\"count\":" << h.count() << ",\"sum\":";
    json_number(os, h.sum());
    os << "}";
  }
  os << "},\"timeseries\":{";
  first = true;
  for (const auto& [name, ts] : timeseries_) {
    json_key(os, name, first);
    os << "[";
    for (std::size_t i = 0; i < ts.points().size(); ++i) {
      if (i) os << ",";
      os << "[";
      json_number(os, to_ms(ts.points()[i].first));
      os << ",";
      json_number(os, ts.points()[i].second);
      os << "]";
    }
    os << "]";
  }
  os << "}}";
  return os.str();
}

}  // namespace byzcast
