// Streaming invariant monitors: online checkers of the atomic multicast
// guarantees (§II-B), attached as delivery observers so a fault-injection
// run reports *when* and *where* an invariant first broke, not just a
// post-hoc property verdict from core/properties.hpp.
//
// The MonitorHub fans each observation out to four monitors:
//
//  * fifo            — per (replica, origin, entry group): a-delivery seq
//                      numbers of one client's stream through one entry group
//                      must strictly increase (the client sends one FIFO
//                      stream per lca group; relays preserve it);
//  * group_agreement — per group: the k-th a-delivery of every replica of a
//                      group must be the same message (total order within a
//                      group ⇒ prefix order);
//  * acyclic_order   — across groups: the union of per-replica delivery
//                      orders must stay a DAG, maintained incrementally with
//                      the Pearce–Kelly online topological-order algorithm;
//  * bounded_pending — per replica: the set of messages waiting below the
//                      f+1 parent-copy threshold must stay under a bound
//                      (fabricated ids would otherwise grow it unboundedly).
//
// Violations bump a `monitor.violations.<name>` counter in the attached
// MetricsRegistry (when present) and an internal per-monitor counter; the
// first few carry full prose detail for reports. Observations are
// mutex-serialized — the runtime backend's workers observe concurrently —
// and the hub is deliberately *outside* the replicas under test: a monitor
// never feeds back into the protocol.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace byzcast {

class MetricsRegistry;

/// One detected invariant violation.
struct Violation {
  std::string monitor;  // "fifo", "group_agreement", "acyclic_order", ...
  GroupId group;
  ProcessId replica;
  MessageId msg;
  Time when = 0;
  std::string detail;
};

class MonitorHub {
 public:
  static constexpr std::size_t kMaxDetailedViolations = 16;

  MonitorHub() = default;

  /// Optional: mirror violation counts into `metrics` as
  /// `monitor.violations.<name>` counters. Call before observations flow;
  /// `metrics` must outlive the hub.
  void attach_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Pending-copy sets larger than this trip bounded_pending (0 disables).
  void set_pending_bound(std::size_t bound) { pending_bound_ = bound; }

  /// Observation points, called by core::ByzCastNode. `entry` is the group
  /// the message entered the tree through (lca for genuine routing, the
  /// root for baseline routing); the fifo monitor checks MessageId::seq,
  /// which the client assigns in send order. Thread-safe.
  void on_a_deliver(GroupId group, ProcessId replica, const MessageId& msg,
                    GroupId entry, Time when);
  void on_pending_copies(GroupId group, ProcessId replica, std::size_t pending,
                         Time when);

  // --- readers (thread-safe) ------------------------------------------------
  [[nodiscard]] std::uint64_t total_violations() const;
  [[nodiscard]] std::uint64_t violations(const std::string& monitor) const;
  [[nodiscard]] std::vector<Violation> detailed_violations() const;

 private:
  void report(Violation v);

  // fifo: last seq seen per (replica, origin, entry group).
  struct StreamKey {
    ProcessId replica;
    ProcessId origin;
    GroupId entry;
    friend bool operator==(const StreamKey&, const StreamKey&) = default;
  };
  struct StreamKeyHash {
    std::size_t operator()(const StreamKey& k) const noexcept {
      std::size_t h = std::hash<ProcessId>{}(k.replica);
      h = h * 0x9e3779b97f4a7c15ULL + std::hash<ProcessId>{}(k.origin);
      h = h * 0x9e3779b97f4a7c15ULL + std::hash<GroupId>{}(k.entry);
      return h;
    }
  };

  // acyclic_order: Pearce–Kelly incremental topological order over message
  // nodes; edges come from consecutive deliveries at each replica.
  struct DagNode {
    std::uint64_t ord = 0;               // current topological index
    std::vector<std::uint32_t> out;      // successors
    std::vector<std::uint32_t> in;       // predecessors
  };
  std::uint32_t dag_node(const MessageId& msg);
  /// Adds edge u->v, restoring topological order; returns false on a cycle.
  bool dag_add_edge(std::uint32_t u, std::uint32_t v);

  mutable std::mutex mu_;
  MetricsRegistry* metrics_ = nullptr;  // non-owning
  std::size_t pending_bound_ = 0;

  std::unordered_map<StreamKey, std::uint64_t, StreamKeyHash> fifo_last_;
  // group_agreement: the agreed delivery sequence per group, plus each
  // replica's own position in it.
  std::unordered_map<GroupId, std::vector<MessageId>> group_seq_;
  std::unordered_map<ProcessId, std::size_t> replica_pos_;
  std::unordered_map<ProcessId, MessageId> last_delivered_;
  std::unordered_map<MessageId, std::uint32_t> dag_index_;
  std::vector<DagNode> dag_;
  std::uint64_t next_ord_ = 0;

  std::unordered_map<std::string, std::uint64_t> counts_;
  std::deque<Violation> detailed_;
};

}  // namespace byzcast
