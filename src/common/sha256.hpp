// SHA-256 (FIPS 180-4). The simulation uses real digests so that message ids
// are collision-resistant and Byzantine fabrication tests are meaningful; we
// implement it here because the environment provides no crypto library.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace byzcast {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest; the context must not be reused.
  [[nodiscard]] Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

[[nodiscard]] std::string to_hex(const Digest& d);

}  // namespace byzcast
