#include "common/auth.hpp"

#include <algorithm>

#include "common/hmac.hpp"
#include "common/serde.hpp"

namespace byzcast {

namespace {

std::uint64_t fnv1a(std::uint64_t hash, BytesView data) {
  for (const auto byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Digest fast_mac(std::uint64_t key64, BytesView data) {
  std::uint64_t h = fnv1a(key64 ^ 0xcbf29ce484222325ULL, data);
  // Final avalanche (splitmix64 finalizer).
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  Digest d{};
  for (int i = 0; i < 8; ++i) {
    d[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(h >> (8 * i));
  }
  return d;
}

}  // namespace

KeyStore::KeyStore(std::uint64_t master_seed, MacMode mode, bool verify_memo)
    : master_seed_(master_seed), mode_(mode), verify_memo_(verify_memo) {}

std::uint64_t KeyStore::pair_key64(ProcessId a, ProcessId b) const {
  const std::int32_t lo = std::min(a.value, b.value);
  const std::int32_t hi = std::max(a.value, b.value);
  std::uint64_t h = master_seed_ ^ 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo));
  h *= 0x100000001b3ULL;
  h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi)) << 32;
  h *= 0x100000001b3ULL;
  return h;
}

Bytes KeyStore::pair_key(ProcessId a, ProcessId b) const {
  Writer w;
  w.u64(master_seed_);
  w.i32(std::min(a.value, b.value));
  w.i32(std::max(a.value, b.value));
  const Digest d = Sha256::hash(w.data());
  return Bytes(d.begin(), d.end());
}

Digest Authenticator::sign(ProcessId to, BytesView data) const {
  if (keys_->mode() == MacMode::kFast) {
    return fast_mac(keys_->pair_key64(self_, to), data);
  }
  const Bytes key = keys_->pair_key(self_, to);
  return hmac_sha256(key, data);
}

bool Authenticator::verify(ProcessId from, BytesView data,
                           const Digest& mac) const {
  if (keys_->mode() == MacMode::kFast) {
    return fast_mac(keys_->pair_key64(from, self_), data) == mac;
  }
  if (!keys_->verify_memo()) {  // mac_memo_off ablation: always full HMAC
    const Bytes key = keys_->pair_key(from, self_);
    return hmac_sha256(key, data) == mac;
  }
  // Memo lookup: one SHA-256 pass over the payload instead of the full HMAC
  // when this exact (sender, payload, mac) triple was already verified. The
  // slot is matched on the payload's full digest — second-preimage
  // resistance rules out a different payload hitting a stored entry, so the
  // memo never accepts anything HMAC itself would not. Concurrent verifiers
  // (the verify-stage worker pool) coordinate through the per-slot try-lock;
  // losing the lock race degrades to a full HMAC, never to a wrong answer.
  const Digest ph = Sha256::hash(data);
  std::uint64_t fp = 0;
  for (int i = 0; i < 8; ++i) {
    fp |= static_cast<std::uint64_t>(ph[static_cast<std::size_t>(i)])
          << (8 * i);
  }
  std::call_once(cache_init_, [this] {
    cache_ = std::make_unique<CacheSlot[]>(cache_slots_);
  });
  CacheSlot& slot =
      cache_[(fp ^ static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(from.value) * 0x9e3779b9U)) %
             cache_slots_];
  std::uint32_t free_lock = 0;
  if (slot.busy.compare_exchange_strong(free_lock, 1,
                                        std::memory_order_acquire)) {
    const bool hit =
        slot.from == from.value && slot.payload_hash == ph && slot.mac == mac;
    slot.busy.store(0, std::memory_order_release);
    if (hit) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  const Bytes key = keys_->pair_key(from, self_);
  const bool ok = hmac_sha256(key, data) == mac;
  if (ok) {
    free_lock = 0;
    if (slot.busy.compare_exchange_strong(free_lock, 1,
                                          std::memory_order_acquire)) {
      slot.from = from.value;
      slot.payload_hash = ph;
      slot.mac = mac;
      slot.busy.store(0, std::memory_order_release);
    }
  }
  return ok;
}

}  // namespace byzcast
