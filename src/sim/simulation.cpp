#include "sim/simulation.hpp"

namespace byzcast::sim {

Simulation::Simulation(std::uint64_t seed, const Profile& profile)
    : Simulation(seed, profile, std::make_unique<LanLatency>(profile)) {}

Simulation::Simulation(std::uint64_t seed, const Profile& profile,
                       std::unique_ptr<LatencyModel> latency)
    : profile_(profile),
      master_rng_(seed),
      latency_(std::move(latency)),
      keys_(std::make_shared<KeyStore>(
          seed ^ 0xb7e151628aed2a6aULL,
          profile.fast_macs ? MacMode::kFast : MacMode::kHmac,
          /*verify_memo=*/!profile.mac_memo_off)) {
  network_ = std::make_unique<Network>(scheduler_, *latency_,
                                       master_rng_.fork());
}

}  // namespace byzcast::sim
