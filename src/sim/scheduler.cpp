#include "sim/scheduler.hpp"

#include <utility>

namespace byzcast::sim {

void Scheduler::schedule_at(Time when, Callback fn) {
  BZC_EXPECTS(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires a copy
  // otherwise, so we const_cast the known-unshared top element.
  auto& top = const_cast<Event&>(queue_.top());
  const Time when = top.when;
  Callback fn = std::move(top.fn);
  queue_.pop();
  BZC_ASSERT(when >= now_);
  now_ = when;
  ++executed_;
  fn();
  return true;
}

void Scheduler::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    BZC_ASSERT(++n < max_events);
  }
}

}  // namespace byzcast::sim
