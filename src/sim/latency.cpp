#include "sim/latency.hpp"

#include "common/contracts.hpp"

namespace byzcast::sim {

namespace {

Time jitter(const Profile& profile, Rng& rng) {
  if (profile.net_jitter_mean <= 0) return 0;
  return static_cast<Time>(
      rng.next_exponential(static_cast<double>(profile.net_jitter_mean)));
}

Time wire_time(const Profile& profile, std::size_t bytes) {
  return static_cast<Time>(bytes) * profile.net_per_byte;
}

}  // namespace

Time LanLatency::sample(ProcessId from, ProcessId to, std::size_t bytes,
                        Rng& rng) const {
  if (from == to) return 1 * kMicrosecond;  // loopback
  return profile_.net_one_way + jitter(profile_, rng) +
         wire_time(profile_, bytes);
}

WanLatency::WanLatency(const Profile& profile, std::size_t num_regions)
    : profile_(profile),
      matrix_(num_regions, std::vector<Time>(num_regions, 0)) {}

void WanLatency::set_region_latency(RegionId a, RegionId b, Time one_way) {
  BZC_EXPECTS(a.valid() && b.valid());
  const auto ai = static_cast<std::size_t>(a.value);
  const auto bi = static_cast<std::size_t>(b.value);
  BZC_EXPECTS(ai < matrix_.size() && bi < matrix_.size());
  matrix_[ai][bi] = one_way;
  matrix_[bi][ai] = one_way;
}

void WanLatency::assign(ProcessId p, RegionId r) {
  BZC_EXPECTS(r.valid() &&
              static_cast<std::size_t>(r.value) < matrix_.size());
  region_of_[p] = r;
}

RegionId WanLatency::region_of(ProcessId p) const {
  const auto it = region_of_.find(p);
  BZC_EXPECTS(it != region_of_.end());
  return it->second;
}

Time WanLatency::region_latency(RegionId a, RegionId b) const {
  if (a == b) return intra_region_;
  return matrix_[static_cast<std::size_t>(a.value)]
                [static_cast<std::size_t>(b.value)];
}

Time WanLatency::sample(ProcessId from, ProcessId to, std::size_t bytes,
                        Rng& rng) const {
  if (from == to) return 1 * kMicrosecond;
  const Time base = region_latency(region_of(from), region_of(to));
  return base + jitter(profile_, rng) + wire_time(profile_, bytes);
}

WanLatency WanLatency::ec2_four_regions(const Profile& profile) {
  // Paper Table I, RTT in ms between regions; one-way = RTT / 2.
  // Order: CA=0, VA=1, EU=2, JP=3.
  WanLatency wan(profile, 4);
  const auto ca = RegionId{0};
  const auto va = RegionId{1};
  const auto eu = RegionId{2};
  const auto jp = RegionId{3};
  wan.set_region_latency(ca, va, 35 * kMillisecond);   // RTT 70
  wan.set_region_latency(ca, eu, 82 * kMillisecond + 500 * kMicrosecond);  // RTT 165
  wan.set_region_latency(ca, jp, 56 * kMillisecond);   // RTT 112
  wan.set_region_latency(va, eu, 44 * kMillisecond);   // RTT 88
  wan.set_region_latency(va, jp, 87 * kMillisecond + 500 * kMicrosecond);  // RTT 175
  wan.set_region_latency(eu, jp, 119 * kMillisecond + 500 * kMicrosecond); // RTT 239
  return wan;
}

const std::vector<std::string>& WanLatency::ec2_region_names() {
  static const std::vector<std::string> names = {"CA", "VA", "EU", "JP"};
  return names;
}

}  // namespace byzcast::sim
