// The one message type that crosses the process boundary, shared by every
// execution backend (deterministic simulator and wall-clock runtime). Lives
// in its own header so backends can exchange messages without pulling in the
// simulator's scheduler or latency machinery.
#pragma once

#include "common/bytes.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace byzcast::sim {

/// One message on the wire. `payload` is codec-encoded protocol content;
/// `mac` authenticates (from -> to, payload).
struct WireMessage {
  ProcessId from;
  ProcessId to;
  Bytes payload;
  Digest mac{};
};

}  // namespace byzcast::sim
