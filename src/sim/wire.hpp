// The one message type that crosses the process boundary, shared by every
// execution backend (deterministic simulator and wall-clock runtime). Lives
// in its own header so backends can exchange messages without pulling in the
// simulator's scheduler or latency machinery.
#pragma once

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace byzcast::sim {

/// One message on the wire. `payload` is codec-encoded protocol content;
/// `mac` authenticates (from -> to, payload). The payload is a ref-counted
/// immutable Buffer: fan-out sends of the same logical message share one
/// backing allocation across every recipient (and across threads on the
/// runtime backend).
///
/// The trailing timestamps are in-memory timing metadata for span tracing —
/// stamped by Actor::send / Actor::enqueue / the drain loop, never encoded
/// or MAC'd (each recipient's copy carries its own receive-side values).
/// -1 means "not stamped" (e.g. a message built by a test double).
struct WireMessage {
  ProcessId from;
  ProcessId to;
  Buffer payload;
  Digest mac{};
  Time sent_at = -1;        // Actor::send at the source
  Time enqueued_at = -1;    // arrival in the destination actor's inbox
  Time svc_start = -1;      // popped from the inbox: service begins

  // --- verify-stage stamps (receive-side only, never encoded or MAC'd) ----
  /// Result of an off-thread (or modeled) MAC verification performed by the
  /// verify stage before the message re-enters the serial order stage:
  /// 0 = not pre-verified, 1 = MAC ok, -1 = MAC bad. The order stage trusts
  /// a nonzero verdict and skips the inline verification.
  std::int8_t verify_verdict = 0;
  /// When true, `batch_digest` carries the SHA-256 of the PROPOSE batch
  /// slice, precomputed by the verify stage so the order stage does not
  /// rehash the batch on its critical path.
  bool has_batch_digest = false;
  Digest batch_digest{};
};

}  // namespace byzcast::sim
