// The one message type that crosses the process boundary, shared by every
// execution backend (deterministic simulator and wall-clock runtime). Lives
// in its own header so backends can exchange messages without pulling in the
// simulator's scheduler or latency machinery.
#pragma once

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/sha256.hpp"
#include "common/types.hpp"

namespace byzcast::sim {

/// One message on the wire. `payload` is codec-encoded protocol content;
/// `mac` authenticates (from -> to, payload). The payload is a ref-counted
/// immutable Buffer: fan-out sends of the same logical message share one
/// backing allocation across every recipient (and across threads on the
/// runtime backend).
struct WireMessage {
  ProcessId from;
  ProcessId to;
  Buffer payload;
  Digest mac{};
};

}  // namespace byzcast::sim
