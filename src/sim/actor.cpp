#include "sim/actor.hpp"

#include "common/span.hpp"

namespace byzcast::sim {

Actor::Actor(ExecutionEnv& env, std::string name)
    : env_(env),
      id_(env.allocate_pid()),
      name_(std::move(name)),
      auth_(env.keys(), id_),
      rng_(env.fork_rng()),
      alive_(std::make_shared<int>(0)) {
  env_.attach(id_, this);
}

Actor::~Actor() {
  alive_.reset();  // pending timers fire into a no-op from here on
  env_.detach(id_);
}

Time Actor::service_cost(const WireMessage&) const { return 0; }

void Actor::enqueue(WireMessage msg) {
  if (crashed_) return;
  msg.enqueued_at = env_.now();
  inbox_.push_back(std::move(msg));
  maybe_drain();
}

void Actor::maybe_drain() {
  if (draining_ || inbox_.empty() || crashed_) return;
  draining_ = true;
  WireMessage msg = std::move(inbox_.front());
  inbox_.pop_front();
  msg.svc_start = env_.now();
  const Time cost = service_cost(msg);
  busy_total_ += cost;
  // The drain continuations are internal deferred work and carry the same
  // alive guard as user timers: teardown with messages still queued leaves
  // only no-op events behind.
  env_.schedule(
      id_, cost,
      [this, weak = std::weak_ptr<void>(alive_), m = std::move(msg)]() mutable {
        if (weak.expired()) return;
        if (!crashed_) {
          extra_busy_ = 0;
          on_message(m);
          stamp_actor_spans(m);
          const Time extra = extra_busy_;
          extra_busy_ = 0;
          busy_total_ += extra;
          if (extra > 0) {
            // Stay busy for the CPU consumed while handling (e.g. sends).
            env_.schedule(id_, extra,
                          [this, weak = std::weak_ptr<void>(alive_)] {
                            if (weak.expired()) return;
                            draining_ = false;
                            maybe_drain();
                          });
            return;
          }
        }
        draining_ = false;
        maybe_drain();
      });
}

void Actor::stamp_actor_spans(const WireMessage& m) const {
  SpanLog* spans = env_.spans();
  if (spans == nullptr || !spans->actor_spans()) return;
  // Per-replica infrastructure tracks: where this actor's wall time went for
  // this one wire message. `detail` carries the protocol type tag so the
  // Chrome trace can color by message kind.
  const auto tag =
      m.payload.empty() ? std::int64_t{-1} : std::int64_t{m.payload.view()[0]};
  if (m.enqueued_at >= 0 && m.svc_start >= m.enqueued_at) {
    spans->record(Span{MessageId{}, SpanKind::kActorMailbox, GroupId{}, id_,
                       m.enqueued_at, m.svc_start, tag});
  }
  if (m.svc_start >= 0) {
    spans->record(Span{MessageId{}, SpanKind::kActorService, GroupId{}, id_,
                       m.svc_start, env_.now(), tag});
  }
}

void Actor::send(ProcessId to, Buffer payload) {
  if (crashed_) return;
  const Profile& pr = env_.profile();
  consume_cpu(pr.cpu_send);
  if (pr.zero_copy_off && !payload.empty()) {
    // Ablation: resurrect the pre-zero-copy behaviour — every recipient of
    // a fan-out gets its own deep copy of the payload, and the memcpy is
    // charged as CPU (it was free when N recipients shared one buffer).
    payload = Buffer::copy_of(payload.view());
    consume_cpu(static_cast<Time>((payload.size() + 1023) / 1024) *
                pr.cpu_copy_per_kb);
  }
  WireMessage msg;
  msg.from = id_;
  msg.to = to;
  msg.mac = auth_.sign(to, payload);
  msg.payload = std::move(payload);
  msg.sent_at = env_.now();
  env_.send_message(std::move(msg));
}

bool Actor::verify(const WireMessage& msg) const {
  return msg.to == id_ && auth_.verify(msg.from, msg.payload, msg.mac);
}

void Actor::schedule_in(Time delay, std::function<void()> fn) {
  env_.schedule(id_, delay,
                [weak = std::weak_ptr<void>(alive_), fn = std::move(fn)] {
                  if (!weak.expired()) fn();
                });
}

}  // namespace byzcast::sim
