#include "sim/actor.hpp"

#include "sim/simulation.hpp"

namespace byzcast::sim {

Actor::Actor(Simulation& sim, std::string name)
    : sim_(sim),
      id_(sim.allocate_pid()),
      name_(std::move(name)),
      auth_(sim.keys(), id_),
      rng_(sim.fork_rng()) {
  sim_.network().attach(id_, this);
}

Actor::~Actor() { sim_.network().detach(id_); }

Time Actor::now() const { return sim_.now(); }

Time Actor::service_cost(const WireMessage&) const { return 0; }

void Actor::enqueue(WireMessage msg) {
  if (crashed_) return;
  inbox_.push_back(std::move(msg));
  maybe_drain();
}

void Actor::maybe_drain() {
  if (draining_ || inbox_.empty() || crashed_) return;
  draining_ = true;
  WireMessage msg = std::move(inbox_.front());
  inbox_.pop_front();
  const Time cost = service_cost(msg);
  busy_total_ += cost;
  sim_.scheduler().schedule_after(
      cost, [this, m = std::move(msg)]() mutable {
        if (!crashed_) {
          extra_busy_ = 0;
          on_message(m);
          const Time extra = extra_busy_;
          extra_busy_ = 0;
          busy_total_ += extra;
          if (extra > 0) {
            // Stay busy for the CPU consumed while handling (e.g. sends).
            sim_.scheduler().schedule_after(extra, [this] {
              draining_ = false;
              maybe_drain();
            });
            return;
          }
        }
        draining_ = false;
        maybe_drain();
      });
}

void Actor::send(ProcessId to, Bytes payload) {
  if (crashed_) return;
  consume_cpu(sim_.profile().cpu_send);
  WireMessage msg;
  msg.from = id_;
  msg.to = to;
  msg.mac = auth_.sign(to, payload);
  msg.payload = std::move(payload);
  sim_.network().send(std::move(msg));
}

bool Actor::verify(const WireMessage& msg) const {
  return msg.to == id_ && auth_.verify(msg.from, msg.payload, msg.mac);
}

void Actor::schedule_in(Time delay, std::function<void()> fn) {
  sim_.scheduler().schedule_after(delay, std::move(fn));
}

}  // namespace byzcast::sim
