#include "sim/actor.hpp"

#include <algorithm>

#include "common/span.hpp"

namespace byzcast::sim {

Actor::Actor(ExecutionEnv& env, std::string name)
    : env_(env),
      id_(env.allocate_pid()),
      name_(std::move(name)),
      auth_(env.keys(), id_),
      rng_(env.fork_rng()),
      alive_(std::make_shared<int>(0)) {
  env_.attach(id_, this);
}

Actor::~Actor() {
  alive_.reset();  // pending timers fire into a no-op from here on
  env_.detach(id_);
}

Time Actor::service_cost(const WireMessage&) const { return 0; }

void Actor::enqueue(WireMessage msg) {
  if (crashed_) return;
  msg.enqueued_at = env_.now();
  if (msg.verify_verdict == 0 && stage_verifiable(msg)) {
    if (StageBackend* stages = env_.stages();
        stages != nullptr && stages->verify_workers() > 0) {
      // Runtime backend: real worker pool. The message re-enters via
      // enqueue_verified on this actor's executor lane, in submission order.
      stages->submit_verify(
          id_, std::move(msg),
          [this, weak = std::weak_ptr<void>(alive_)](WireMessage& m) {
            if (weak.expired()) return;
            stage_preverify(m);
          },
          [this, weak = std::weak_ptr<void>(alive_)](WireMessage m) {
            if (weak.expired()) return;
            enqueue_verified(std::move(m));
          });
      return;
    }
    if (const std::uint32_t workers =
            env_.profile().effective_verify_workers();
        workers > 0) {
      // Simulated verify pool. Engages only when this message has a nonzero
      // offloadable share (the wallclock profile zeroes every share, so the
      // net backend never takes this path).
      if (const Time vcost = stage_verify_cost(msg); vcost > 0) {
        model_stage_verify(std::move(msg), workers, vcost);
        return;
      }
    }
  }
  inbox_.push_back(std::move(msg));
  maybe_drain();
}

void Actor::enqueue_verified(WireMessage msg) {
  if (crashed_) return;
  if (msg.enqueued_at < 0) msg.enqueued_at = env_.now();
  inbox_.push_back(std::move(msg));
  maybe_drain();
}

void Actor::stage_preverify(WireMessage& msg) const {
  msg.verify_verdict =
      (msg.to == id_ && auth_.verify(msg.from, msg.payload, msg.mac)) ? 1 : -1;
  if (msg.verify_verdict == 1) stage_precompute(msg);
}

void Actor::model_stage_verify(WireMessage msg, std::uint32_t workers,
                               Time vcost) {
  // Host-side the verification really happens (verdict + digests must be
  // correct); simulated time charges it to the earliest-free pool server.
  stage_preverify(msg);
  if (verify_busy_.size() < workers) verify_busy_.resize(workers, 0);
  auto slot =
      std::min_element(verify_busy_.begin(), verify_busy_.begin() + workers);
  const Time done = std::max(env_.now(), *slot) + vcost;
  *slot = done;
  // Completion-reorder buffer: a result never overtakes an earlier
  // submission, so the order stage sees the arrival sequence.
  const Time ready = std::max(done, verify_frontier_);
  verify_frontier_ = ready;
  env_.schedule(id_, ready - env_.now(),
                [this, weak = std::weak_ptr<void>(alive_),
                 m = std::move(msg)]() mutable {
                  if (weak.expired()) return;
                  enqueue_verified(std::move(m));
                });
}

void Actor::maybe_drain() {
  if (draining_ || inbox_.empty() || crashed_) return;
  draining_ = true;
  WireMessage msg = std::move(inbox_.front());
  inbox_.pop_front();
  msg.svc_start = env_.now();
  const Time cost = service_cost(msg);
  busy_total_ += cost;
  // The drain continuations are internal deferred work and carry the same
  // alive guard as user timers: teardown with messages still queued leaves
  // only no-op events behind.
  env_.schedule(
      id_, cost,
      [this, weak = std::weak_ptr<void>(alive_), m = std::move(msg)]() mutable {
        if (weak.expired()) return;
        if (!crashed_) {
          extra_busy_ = 0;
          on_message(m);
          stamp_actor_spans(m);
          const Time extra = extra_busy_;
          extra_busy_ = 0;
          busy_total_ += extra;
          if (extra > 0) {
            // Stay busy for the CPU consumed while handling (e.g. sends).
            env_.schedule(id_, extra,
                          [this, weak = std::weak_ptr<void>(alive_)] {
                            if (weak.expired()) return;
                            draining_ = false;
                            maybe_drain();
                          });
            return;
          }
        }
        draining_ = false;
        maybe_drain();
      });
}

void Actor::stamp_actor_spans(const WireMessage& m) const {
  SpanLog* spans = env_.spans();
  if (spans == nullptr || !spans->actor_spans()) return;
  // Per-replica infrastructure tracks: where this actor's wall time went for
  // this one wire message. `detail` carries the protocol type tag so the
  // Chrome trace can color by message kind.
  const auto tag =
      m.payload.empty() ? std::int64_t{-1} : std::int64_t{m.payload.view()[0]};
  if (m.enqueued_at >= 0 && m.svc_start >= m.enqueued_at) {
    spans->record(Span{MessageId{}, SpanKind::kActorMailbox, GroupId{}, id_,
                       m.enqueued_at, m.svc_start, tag});
  }
  if (m.svc_start >= 0) {
    spans->record(Span{MessageId{}, SpanKind::kActorService, GroupId{}, id_,
                       m.svc_start, env_.now(), tag});
  }
}

void Actor::send(ProcessId to, Buffer payload) {
  if (crashed_) return;
  const Profile& pr = env_.profile();
  consume_cpu(pr.cpu_send);
  if (pr.zero_copy_off && !payload.empty()) {
    // Ablation: resurrect the pre-zero-copy behaviour — every recipient of
    // a fan-out gets its own deep copy of the payload, and the memcpy is
    // charged as CPU (it was free when N recipients shared one buffer).
    payload = Buffer::copy_of(payload.view());
    consume_cpu(static_cast<Time>((payload.size() + 1023) / 1024) *
                pr.cpu_copy_per_kb);
  }
  WireMessage msg;
  msg.from = id_;
  msg.to = to;
  msg.mac = auth_.sign(to, payload);
  msg.payload = std::move(payload);
  msg.sent_at = env_.now();
  env_.send_message(std::move(msg));
}

bool Actor::verify(const WireMessage& msg) const {
  if (msg.verify_verdict != 0) return msg.verify_verdict > 0;
  return msg.to == id_ && auth_.verify(msg.from, msg.payload, msg.mac);
}

void Actor::send_from_stage(ProcessId to, Buffer payload) {
  WireMessage msg;
  msg.from = id_;
  msg.to = to;
  msg.mac = auth_.sign(to, payload);
  msg.payload = std::move(payload);
  msg.sent_at = env_.now();
  env_.send_message(std::move(msg));
}

void Actor::schedule_in(Time delay, std::function<void()> fn) {
  env_.schedule(id_, delay,
                [weak = std::weak_ptr<void>(alive_), fn = std::move(fn)] {
                  if (!weak.expired()) fn();
                });
}

}  // namespace byzcast::sim
