// Network latency models. The LAN model is base + exponential jitter +
// serialization delay; the WAN model adds an inter-region one-way latency
// matrix (the paper's Table I RTTs halved).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/profile.hpp"

namespace byzcast::sim {

/// Strategy interface: one-way delay for a message of `bytes` from -> to.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  [[nodiscard]] virtual Time sample(ProcessId from, ProcessId to,
                                    std::size_t bytes, Rng& rng) const = 0;
};

/// LAN: identical delay distribution between any two distinct processes.
class LanLatency final : public LatencyModel {
 public:
  explicit LanLatency(const Profile& profile) : profile_(profile) {}

  [[nodiscard]] Time sample(ProcessId from, ProcessId to, std::size_t bytes,
                            Rng& rng) const override;

 private:
  Profile profile_;
};

/// WAN: processes are pinned to regions; cross-region hops pay the matrix
/// latency, intra-region hops pay a small datacenter latency.
class WanLatency final : public LatencyModel {
 public:
  WanLatency(const Profile& profile, std::size_t num_regions);

  /// Sets the one-way latency between two regions (applied symmetrically).
  void set_region_latency(RegionId a, RegionId b, Time one_way);
  /// Latency between processes in the same region.
  void set_intra_region(Time one_way) { intra_region_ = one_way; }

  void assign(ProcessId p, RegionId r);
  [[nodiscard]] RegionId region_of(ProcessId p) const;

  [[nodiscard]] Time sample(ProcessId from, ProcessId to, std::size_t bytes,
                            Rng& rng) const override;

  [[nodiscard]] std::size_t num_regions() const { return matrix_.size(); }
  [[nodiscard]] Time region_latency(RegionId a, RegionId b) const;

  /// The paper's Table I deployment: four EC2 regions
  /// CA (0), VA (1), EU (2), JP (3) with the published RTTs.
  [[nodiscard]] static WanLatency ec2_four_regions(const Profile& profile);

  /// Human-readable region names for the EC2 deployment.
  [[nodiscard]] static const std::vector<std::string>& ec2_region_names();

 private:
  Profile profile_;
  std::vector<std::vector<Time>> matrix_;
  Time intra_region_ = 250 * kMicrosecond;
  std::unordered_map<ProcessId, RegionId> region_of_;
};

}  // namespace byzcast::sim
