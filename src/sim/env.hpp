// ExecutionEnv: the seam between protocol logic and its execution backend.
//
// Everything an Actor needs from its host — clock, message routing, timers,
// randomness, keys, the cost model and observability sinks — is expressed
// through this interface, so the same bft::Replica / core::ByzCastNode code
// runs unchanged on two backends:
//
//  * sim::Simulation     — single-threaded, discrete-event, deterministic;
//  * runtime::RuntimeEnv — multi-threaded, wall-clock, thread-per-group
//                          executors with MPSC mailboxes (src/runtime).
//
// Contract for concurrent backends: `schedule` and message delivery for one
// owner are serialized (an actor is never entered from two threads at once),
// `allocate_pid` / `fork_rng` are thread-safe, and `now` is monotone.
#pragma once

#include <functional>
#include <memory>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "sim/profile.hpp"
#include "sim/wire.hpp"

namespace byzcast::sim {

class Actor;
class StageBackend;

class ExecutionEnv {
 public:
  virtual ~ExecutionEnv() = default;

  /// Current time: simulated ns for the simulator, wall-clock ns since
  /// backend construction for the runtime.
  [[nodiscard]] virtual Time now() const = 0;

  /// Cost model. The runtime backend uses Profile::wallclock(), whose CPU
  /// constants are zero (real CPUs do real work); only protocol knobs such
  /// as leader_timeout and batch_max remain meaningful there.
  [[nodiscard]] virtual const Profile& profile() const = 0;

  [[nodiscard]] virtual std::shared_ptr<const KeyStore> keys() const = 0;

  /// Observability sinks shared by every actor of the system; null members
  /// disable that sink.
  virtual void attach_observability(Observability obs) = 0;
  [[nodiscard]] virtual MetricsRegistry* metrics() const = 0;
  [[nodiscard]] virtual TraceLog* trace() const = 0;
  [[nodiscard]] virtual SpanLog* spans() const = 0;

  /// Allocates a fresh system-wide process id.
  [[nodiscard]] virtual ProcessId allocate_pid() = 0;

  /// Derives an independent RNG stream (per-actor randomness).
  [[nodiscard]] virtual Rng fork_rng() = 0;

  /// Placement hint for concurrent backends: actors created after this call
  /// belong to scheduling domain `domain` (composition roots use one domain
  /// per overlay group, which yields the runtime's default thread-per-group
  /// placement). The deterministic simulator ignores it.
  virtual void set_placement_domain(std::int32_t domain) { (void)domain; }

  /// Registers / unregisters an actor for message delivery.
  virtual void attach(ProcessId id, Actor* actor) = 0;
  virtual void detach(ProcessId id) = 0;

  /// Routes an authenticated message toward msg.to. Unknown destinations
  /// are dropped silently (a real network has no delivery guarantee).
  virtual void send_message(WireMessage msg) = 0;

  /// Stage pipeline backend (sim/stages.hpp), or nullptr when this backend
  /// runs every stage inline. Only the wall-clock runtime returns one (and
  /// only when Profile::effective_verify_workers() > 0); the deterministic
  /// simulator models the verify pool inside Actor instead.
  [[nodiscard]] virtual StageBackend* stages() const { return nullptr; }

  /// Runs `fn` after `delay`, serialized with `owner`'s message handling.
  /// Callers are responsible for guarding `fn` against the owner's
  /// destruction (Actor::schedule_in does this with its alive token).
  ///
  /// Timing semantics: the simulated `delay` is exact on the deterministic
  /// simulator. The wall-clock runtime backend resolves timers at its wheel
  /// tick (1ms) and treats any sub-tick delay as zero — it runs `fn` as soon
  /// as the owner's worker drains to it. Simulated CPU-cost hints fall in
  /// this range by design; do not use sub-tick delays where the two backends
  /// must agree on firing order relative to tick-scale timers.
  virtual void schedule(ProcessId owner, Time delay,
                        std::function<void()> fn) = 0;
};

}  // namespace byzcast::sim
