#include "sim/network.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "sim/actor.hpp"

namespace byzcast::sim {

void NetworkFaults::drop_link(ProcessId from, ProcessId to) {
  dropped_[Link{from, to}] = true;
}

void NetworkFaults::add_delay(ProcessId from, ProcessId to, Time extra) {
  BZC_EXPECTS(extra >= 0);
  delays_[Link{from, to}] += extra;
}

void NetworkFaults::partition(const std::vector<ProcessId>& side_a,
                              const std::vector<ProcessId>& side_b,
                              Time heal_at) {
  partitions_.push_back(Partition{side_a, side_b, heal_at});
}

void NetworkFaults::set_loss_probability(double p) {
  BZC_EXPECTS(p >= 0.0 && p < 1.0);
  loss_probability_ = p;
}

bool NetworkFaults::should_drop(ProcessId from, ProcessId to,
                                Time now) const {
  if (dropped_.contains(Link{from, to})) return true;
  for (const auto& p : partitions_) {
    if (now >= p.heal_at) continue;
    const bool from_a = std::find(p.a.begin(), p.a.end(), from) != p.a.end();
    const bool from_b = std::find(p.b.begin(), p.b.end(), from) != p.b.end();
    const bool to_a = std::find(p.a.begin(), p.a.end(), to) != p.a.end();
    const bool to_b = std::find(p.b.begin(), p.b.end(), to) != p.b.end();
    if ((from_a && to_b) || (from_b && to_a)) return true;
  }
  return false;
}

Time NetworkFaults::extra_delay(ProcessId from, ProcessId to) const {
  const auto it = delays_.find(Link{from, to});
  return it == delays_.end() ? 0 : it->second;
}

void Network::attach(ProcessId id, Actor* actor) {
  BZC_EXPECTS(actor != nullptr);
  BZC_EXPECTS(!actors_.contains(id));
  actors_[id] = actor;
}

void Network::detach(ProcessId id) { actors_.erase(id); }

void Network::send(WireMessage msg) {
  ++sent_;
  bytes_ += msg.payload.size();
  if (tap_) tap_(msg);
  const Time now = scheduler_.now();
  if (faults_.should_drop(msg.from, msg.to, now)) {
    ++dropped_;
    return;
  }
  if (faults_.loss_probability() > 0.0 &&
      rng_.next_bool(faults_.loss_probability())) {
    ++dropped_;
    return;
  }
  if (!actors_.contains(msg.to)) {
    ++dropped_;
    return;
  }
  const Time latency = latency_.sample(msg.from, msg.to, msg.payload.size(),
                                       rng_) +
                       faults_.extra_delay(msg.from, msg.to);
  // The destination is resolved again at delivery time: an actor destroyed
  // while the message was in flight counts as a drop instead of a dangling
  // pointer (mirrors Actor's alive-token rule for timers).
  scheduler_.schedule_after(latency, [this, m = std::move(msg)]() mutable {
    const auto it = actors_.find(m.to);
    if (it == actors_.end()) {
      ++dropped_;
      return;
    }
    it->second->enqueue(std::move(m));
  });
}

}  // namespace byzcast::sim
