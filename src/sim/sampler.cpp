#include "sim/sampler.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace byzcast::sim {

MetricsSampler::MetricsSampler(Simulation& sim, MetricsRegistry& registry,
                               Time interval)
    : sim_(sim), registry_(registry), interval_(interval) {
  BZC_EXPECTS(interval > 0);
}

void MetricsSampler::watch(Actor& actor, const std::string& label) {
  Watched w;
  w.actor = &actor;
  w.queue_depth = &registry_.timeseries("actor.queue_depth." + label);
  w.cpu_busy = &registry_.timeseries("actor.cpu_busy." + label);
  w.last_busy = actor.busy_time();
  watched_.push_back(w);
}

void MetricsSampler::start(Time horizon) {
  sim_.scheduler().schedule_after(interval_, [this, horizon] {
    tick(horizon);
  });
}

void MetricsSampler::tick(Time horizon) {
  const Time now = sim_.now();
  ++ticks_;
  for (auto& w : watched_) {
    w.queue_depth->append(now, static_cast<double>(w.actor->inbox_depth()));
    const Time busy = w.actor->busy_time();
    // Busy time can exceed the interval when a long service period was
    // accounted at its start; clamp so the fraction stays in [0, 1].
    const double frac = std::min(
        1.0, static_cast<double>(busy - w.last_busy) /
                 static_cast<double>(interval_));
    w.cpu_busy->append(now, frac);
    w.last_busy = busy;
  }
  if (now + interval_ <= horizon) {
    sim_.scheduler().schedule_after(interval_, [this, horizon] {
      tick(horizon);
    });
  }
}

}  // namespace byzcast::sim
