// Cost model for the simulated testbed. All constants live here so that the
// calibration (DESIGN.md §8) is explicit and adjustable in one place.
//
// The LAN preset is calibrated against the paper's cluster results: a single
// f=1 BFT-SMaRt group saturates around ~19-20k local messages/s and a
// single-client request completes in a few milliseconds (§V-D, Fig. 7). The
// WAN preset uses the paper's Table I inter-region RTTs.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace byzcast::sim {

struct Profile {
  // --- network -----------------------------------------------------------
  /// Base one-way latency between two distinct processes (LAN: RTT 0.1ms).
  Time net_one_way = 50 * kMicrosecond;
  /// Mean of the exponential jitter added to every hop.
  Time net_jitter_mean = 15 * kMicrosecond;
  /// Serialization delay per byte (1 Gbps = 8 ns/byte).
  Time net_per_byte = 8 * kNanosecond;

  // --- replica CPU -------------------------------------------------------
  /// Verifying + admitting one client request (MAC check, digest, queueing).
  Time cpu_request_admission = 8 * kMicrosecond;
  /// Leader work to assemble and sign a PROPOSE, independent of batch size
  /// (modeled as a real delay before the proposal goes out, which doubles
  /// as the batching window).
  Time cpu_propose_fixed = 1600 * kMicrosecond;
  /// Leader work per request included in a PROPOSE batch.
  Time cpu_propose_per_msg = 5 * kMicrosecond;
  /// Replica work to validate a PROPOSE (batch digest + MAC), fixed part.
  Time cpu_validate_fixed = 1400 * kMicrosecond;
  /// Replica work per request when validating a PROPOSE batch.
  Time cpu_validate_per_msg = 3 * kMicrosecond;
  /// Handling one WRITE or ACCEPT vote from a peer.
  Time cpu_vote = 40 * kMicrosecond;
  /// Executing one decided request in the application, plus building the
  /// reply.
  Time cpu_execute_per_msg = 24 * kMicrosecond;
  /// Handling a duplicate copy of an already-known multicast message
  /// (ByzCast f+1 counting path — a digest lookup, much cheaper than a full
  /// execution).
  Time cpu_duplicate_copy = 2 * kMicrosecond;
  /// Cost of pushing one outgoing message to the NIC.
  Time cpu_send = 8 * kMicrosecond;

  // --- verify-stage offload shares (stage pipeline, ROADMAP item 5) -------
  // The slice of each admission/validation cost that is pure MAC checking +
  // digest computation — the part the verify stage can run on a worker pool
  // off the order stage's critical path. Must not exceed the corresponding
  // serial constant; the order stage keeps the difference.
  /// Offloadable share of cpu_request_admission (HMAC over the request).
  Time cpu_verify_request = 6 * kMicrosecond;
  /// Offloadable share of cpu_validate_fixed (batch SHA-256 + PROPOSE MAC).
  Time cpu_verify_propose_fixed = 1300 * kMicrosecond;
  /// Offloadable share of cpu_validate_per_msg (per-request digest work).
  Time cpu_verify_per_msg = 2 * kMicrosecond;
  /// Offloadable share of cpu_vote (vote MAC check).
  Time cpu_verify_vote = 20 * kMicrosecond;

  // --- client CPU --------------------------------------------------------
  Time cpu_client_reply = 5 * kMicrosecond;

  // --- protocol knobs ----------------------------------------------------
  /// Maximum requests per consensus batch.
  std::uint32_t batch_max = 400;
  /// Lower bound for the adaptive batch-size target. The leader grows its
  /// target (x2, capped at batch_max) whenever the backlog fills a batch
  /// before the assembly window elapses, and shrinks it (/2, floored here)
  /// when a window expires underfull — BFT-SMaRt's maxBatchSize behaviour.
  std::uint32_t batch_min = 1;
  /// Consensus pipelining: maximum in-flight (proposed, undecided) instances
  /// per group. 1 reproduces the sequential one-instance-at-a-time protocol;
  /// deeper windows overlap the leader's proposal assembly with the
  /// WRITE/ACCEPT rounds of earlier instances. Decisions always apply in
  /// instance order regardless of depth.
  std::uint32_t pipeline_depth = 4;
  /// Upper bound on how long the leader's assembly window waits before
  /// cutting a partial batch (BFT-SMaRt's batchTimeoutMS). 0 = use
  /// cpu_propose_fixed as the window, the original behaviour.
  Time batch_timeout = 0;
  /// Use the keyed fast MAC instead of HMAC-SHA256 for wire authentication.
  /// Does not change any *simulated* cost (crypto CPU is part of the
  /// constants above); cuts the host-side wall-clock of large benchmark
  /// sweeps. See common/auth.hpp.
  bool fast_macs = false;
  /// Leader-liveness timeout before a replica asks for a view change.
  Time leader_timeout = 2 * kSecond;
  /// Checkpoint period, in decided consensus instances.
  std::uint32_t checkpoint_period = 256;

  // --- stage pipeline (intra-group vertical scaling) ----------------------
  /// Verify-stage worker pool size per replica. 0 = stage pipeline off:
  /// every message is verified inline on the order stage, bit-identical to
  /// the pre-stage behaviour. On the runtime backend this is the number of
  /// real StagePool worker threads; on the simulator it is the width of the
  /// modeled W-server verify pool.
  std::uint32_t verify_workers = 0;
  /// Execute/reply-stage shard count. 0 = execution stays inline on the
  /// order stage. Sharding applies only to deferred per-request work
  /// (application execution of independent keys + reply encoding); ordering,
  /// relay forwarding and a-delivery bookkeeping always stay serial.
  std::uint32_t exec_shards = 0;
  /// Ablation: force both stage knobs to 0 regardless of their values.
  bool stage_pipeline_off = false;

  /// Stage knobs after the ablation switch.
  [[nodiscard]] std::uint32_t effective_verify_workers() const {
    return stage_pipeline_off ? 0 : verify_workers;
  }
  [[nodiscard]] std::uint32_t effective_exec_shards() const {
    return stage_pipeline_off ? 0 : exec_shards;
  }

  // --- ablation switches (workload-engine step experiments) ---------------
  // Each switch turns one optimization back off so a sweep can measure what
  // that optimization buys, paper-style. Defaults keep every optimization
  // on; the workload engine's spec files flip them per run.
  /// Deep-copy every outgoing payload instead of ref-bumping the shared
  /// Buffer (ablates the PR-3 encode-once fan-out). Each copied send pays
  /// cpu_copy_per_kb of simulated CPU; the host-side effect shows in
  /// Buffer::materializations().
  bool zero_copy_off = false;
  /// Disable the Authenticator's memoized HMAC verification (PR 3/4). Only
  /// observable with real HMACs (fast_macs = false): kFast MACs are never
  /// cached. The effect is host wall-clock + cache-hit counters; simulated
  /// MAC cost is part of the fixed service constants either way.
  bool mac_memo_off = false;
  /// Freeze the adaptive batch-size target at batch_max (ablates the
  /// BFT-SMaRt-style grow/shrink adaptation from PR 6; batching itself and
  /// the assembly window stay on).
  bool batch_adapt_off = false;
  /// Simulated memcpy cost per KiB of payload, charged per send when
  /// zero_copy_off forces a deep copy (~10 GB/s single-core memcpy).
  Time cpu_copy_per_kb = 100 * kNanosecond;

  /// LAN preset (defaults above).
  [[nodiscard]] static Profile lan() { return Profile{}; }

  /// WAN preset: the latency numbers come from the WAN model (region
  /// matrix); CPU costs are the same machine class. Timeouts are wider.
  [[nodiscard]] static Profile wan() {
    Profile p;
    p.net_one_way = 0;  // the region matrix supplies the hop latency
    p.net_jitter_mean = 200 * kMicrosecond;
    p.leader_timeout = 8 * kSecond;
    return p;
  }

  /// Wall-clock preset for the runtime backend: every cpu_* / net_* cost is
  /// zero because real threads spend real CPU and the ThreadNetwork adds any
  /// injected latency itself. Only the protocol knobs remain meaningful;
  /// fast MACs keep the authentication hot path cheap on real hardware.
  [[nodiscard]] static Profile wallclock() {
    Profile p;
    p.net_one_way = 0;
    p.net_jitter_mean = 0;
    p.net_per_byte = 0;
    p.cpu_request_admission = 0;
    p.cpu_propose_fixed = 0;
    p.cpu_propose_per_msg = 0;
    p.cpu_validate_fixed = 0;
    p.cpu_validate_per_msg = 0;
    p.cpu_vote = 0;
    p.cpu_execute_per_msg = 0;
    p.cpu_duplicate_copy = 0;
    p.cpu_send = 0;
    p.cpu_client_reply = 0;
    p.cpu_verify_request = 0;
    p.cpu_verify_propose_fixed = 0;
    p.cpu_verify_per_msg = 0;
    p.cpu_verify_vote = 0;
    p.fast_macs = true;
    p.leader_timeout = 2 * kSecond;
    return p;
  }
};

}  // namespace byzcast::sim
