// Discrete-event scheduler: a priority queue of (time, sequence, callback).
// The sequence number breaks ties deterministically in insertion order, which
// is what makes whole-system runs replayable from a single seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace byzcast::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now).
  void schedule_at(Time when, Callback fn);

  /// Schedules `fn` to run `delay` after the current time.
  void schedule_after(Time delay, Callback fn) {
    BZC_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs the next event; returns false if the queue is empty.
  bool step();

  /// Runs events until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed) or the queue drains.
  void run_until(Time deadline);

  /// Runs until the queue drains. Aborts after `max_events` as a livelock
  /// guard (a correct quiescent protocol always drains).
  void run_all(std::uint64_t max_events = 500'000'000);

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace byzcast::sim
