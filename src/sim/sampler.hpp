// MetricsSampler: periodic scheduler-driven sampling of per-actor queue
// depth and CPU-busy fraction into a MetricsRegistry. The saturation knee in
// the paper's throughput/latency figures is visible here before it is
// visible in latency: queue depths at the bottleneck group grow without
// bound and that group's replicas approach busy fraction 1.0.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "sim/actor.hpp"
#include "sim/simulation.hpp"

namespace byzcast::sim {

class MetricsSampler {
 public:
  /// Samples into `registry` every `interval` of simulated time. Both the
  /// registry and all watched actors must outlive the sampler's activity
  /// (i.e. the run they are sampled over).
  MetricsSampler(Simulation& sim, MetricsRegistry& registry, Time interval);

  /// Registers `actor` under `label` (e.g. "g0.r1"). Emits the timeseries
  /// "actor.queue_depth.<label>" and "actor.cpu_busy.<label>".
  void watch(Actor& actor, const std::string& label);

  /// Schedules sampling ticks up to and including `horizon`.
  void start(Time horizon);

  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick(Time horizon);

  struct Watched {
    Actor* actor;
    Timeseries* queue_depth;
    Timeseries* cpu_busy;
    Time last_busy = 0;
  };

  Simulation& sim_;
  MetricsRegistry& registry_;
  Time interval_;
  std::vector<Watched> watched_;
  std::uint64_t ticks_ = 0;
};

}  // namespace byzcast::sim
