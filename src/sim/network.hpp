// Simulated message-passing network with adversary hooks (drops, extra
// delays, timed partitions). Transports authenticated WireMessages between
// registered actors; delivery delay comes from the installed LatencyModel.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/auth.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler.hpp"
#include "sim/wire.hpp"

namespace byzcast::sim {

class Actor;

/// Network-level fault injection. All rules are evaluated at send time.
class NetworkFaults {
 public:
  /// Permanently drops all messages from -> to (one direction).
  void drop_link(ProcessId from, ProcessId to);
  /// Adds a fixed extra delay on from -> to.
  void add_delay(ProcessId from, ProcessId to, Time extra);
  /// Drops every message between the two sides (both directions) until
  /// `heal_at`.
  void partition(const std::vector<ProcessId>& side_a,
                 const std::vector<ProcessId>& side_b, Time heal_at);

  /// Drops every message independently with probability `p` (all links).
  /// Stresses the retransmission / view-change / state-transfer machinery.
  void set_loss_probability(double p);
  [[nodiscard]] double loss_probability() const { return loss_probability_; }

  [[nodiscard]] bool should_drop(ProcessId from, ProcessId to,
                                 Time now) const;
  [[nodiscard]] Time extra_delay(ProcessId from, ProcessId to) const;

 private:
  struct Link {
    ProcessId from, to;
    friend bool operator==(const Link&, const Link&) = default;
  };
  struct LinkHash {
    std::size_t operator()(const Link& l) const noexcept {
      return std::hash<std::int64_t>{}(
          (static_cast<std::int64_t>(l.from.value) << 32) ^ l.to.value);
    }
  };
  struct Partition {
    std::vector<ProcessId> a, b;
    Time heal_at;
  };

  std::unordered_map<Link, Time, LinkHash> delays_;
  std::unordered_map<Link, bool, LinkHash> dropped_;
  std::vector<Partition> partitions_;
  double loss_probability_ = 0.0;
};

/// Owns routing and delivery scheduling. Does not own the actors.
class Network {
 public:
  Network(Scheduler& scheduler, const LatencyModel& latency, Rng rng)
      : scheduler_(scheduler), latency_(latency), rng_(rng) {}

  void attach(ProcessId id, Actor* actor);
  void detach(ProcessId id);

  /// Sends an authenticated message; delivery is scheduled after the sampled
  /// latency unless a fault rule drops it. Unknown destinations are dropped
  /// silently (a real network has no delivery guarantee either).
  void send(WireMessage msg);

  [[nodiscard]] NetworkFaults& faults() { return faults_; }

  /// Observer invoked for every message at send time (before fault rules).
  /// Tests use it to assert protocol message flow; pass nullptr to clear.
  using Tap = std::function<void(const WireMessage&)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

 private:
  Scheduler& scheduler_;
  const LatencyModel& latency_;
  Rng rng_;
  NetworkFaults faults_;
  Tap tap_;
  std::unordered_map<ProcessId, Actor*> actors_;
  std::uint64_t sent_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace byzcast::sim
