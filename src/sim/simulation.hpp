// Simulation: the deterministic, single-threaded ExecutionEnv backend — the
// composition root owning scheduler, latency model, network, key store and
// the master RNG. Systems (groups of actors) are created against one
// Simulation and driven by running its scheduler. The wall-clock sibling is
// runtime::RuntimeEnv (src/runtime).
#pragma once

#include <memory>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "sim/env.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/profile.hpp"
#include "sim/scheduler.hpp"

namespace byzcast::sim {

class Simulation final : public ExecutionEnv {
 public:
  /// LAN-model simulation.
  Simulation(std::uint64_t seed, const Profile& profile);

  /// Simulation with a caller-provided latency model (e.g. WAN).
  Simulation(std::uint64_t seed, const Profile& profile,
             std::unique_ptr<LatencyModel> latency);

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] const Profile& profile() const override { return profile_; }
  [[nodiscard]] Time now() const override { return scheduler_.now(); }

  [[nodiscard]] std::shared_ptr<const KeyStore> keys() const override {
    return keys_;
  }

  /// Mutable access to the latency model, for post-construction setup such
  /// as WAN region assignment (actors receive their pids at construction).
  [[nodiscard]] LatencyModel& latency_model() { return *latency_; }

  /// Attaches observability sinks (owned by the caller, must outlive the
  /// simulation). Actors and replicas publish through these; by default
  /// both are null and every stamp is a no-op.
  void attach_observability(Observability obs) override { obs_ = obs; }
  [[nodiscard]] MetricsRegistry* metrics() const override {
    return obs_.metrics;
  }
  [[nodiscard]] TraceLog* trace() const override { return obs_.trace; }
  [[nodiscard]] SpanLog* spans() const override { return obs_.spans; }

  /// Derives an independent RNG stream (per-actor randomness).
  [[nodiscard]] Rng fork_rng() override { return master_rng_.fork(); }

  /// Allocates a fresh system-wide process id.
  [[nodiscard]] ProcessId allocate_pid() override {
    return ProcessId{next_pid_++};
  }

  // --- ExecutionEnv routing / timers ---------------------------------------
  void attach(ProcessId id, Actor* actor) override {
    network_->attach(id, actor);
  }
  void detach(ProcessId id) override { network_->detach(id); }
  void send_message(WireMessage msg) override {
    network_->send(std::move(msg));
  }
  /// Single-threaded backend: every event is serialized by the scheduler,
  /// so the owner id needs no routing.
  void schedule(ProcessId, Time delay, std::function<void()> fn) override {
    scheduler_.schedule_after(delay, std::move(fn));
  }

  /// Runs until simulated `deadline`.
  void run_until(Time deadline) { scheduler_.run_until(deadline); }
  /// Runs until no events remain (quiescence).
  void run_to_quiescence() { scheduler_.run_all(); }

 private:
  Profile profile_;
  Scheduler scheduler_;
  Rng master_rng_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<Network> network_;
  std::shared_ptr<KeyStore> keys_;
  std::int32_t next_pid_ = 0;
  Observability obs_;
};

}  // namespace byzcast::sim
