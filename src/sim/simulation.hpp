// Simulation: the composition root owning scheduler, latency model, network,
// key store and the master RNG. Systems (groups of actors) are created
// against one Simulation and driven by running its scheduler.
#pragma once

#include <memory>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "sim/latency.hpp"
#include "sim/network.hpp"
#include "sim/profile.hpp"
#include "sim/scheduler.hpp"

namespace byzcast::sim {

class Simulation {
 public:
  /// LAN-model simulation.
  Simulation(std::uint64_t seed, const Profile& profile);

  /// Simulation with a caller-provided latency model (e.g. WAN).
  Simulation(std::uint64_t seed, const Profile& profile,
             std::unique_ptr<LatencyModel> latency);

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] const Profile& profile() const { return profile_; }
  [[nodiscard]] Time now() const { return scheduler_.now(); }

  [[nodiscard]] std::shared_ptr<const KeyStore> keys() const { return keys_; }

  /// Mutable access to the latency model, for post-construction setup such
  /// as WAN region assignment (actors receive their pids at construction).
  [[nodiscard]] LatencyModel& latency_model() { return *latency_; }

  /// Attaches observability sinks (owned by the caller, must outlive the
  /// simulation). Actors and replicas publish through these; by default
  /// both are null and every stamp is a no-op.
  void attach_observability(Observability obs) { obs_ = obs; }
  [[nodiscard]] MetricsRegistry* metrics() const { return obs_.metrics; }
  [[nodiscard]] TraceLog* trace() const { return obs_.trace; }

  /// Derives an independent RNG stream (per-actor randomness).
  [[nodiscard]] Rng fork_rng() { return master_rng_.fork(); }

  /// Allocates a fresh system-wide process id.
  [[nodiscard]] ProcessId allocate_pid() { return ProcessId{next_pid_++}; }

  /// Runs until simulated `deadline`.
  void run_until(Time deadline) { scheduler_.run_until(deadline); }
  /// Runs until no events remain (quiescence).
  void run_to_quiescence() { scheduler_.run_all(); }

 private:
  Profile profile_;
  Scheduler scheduler_;
  Rng master_rng_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<Network> network_;
  std::shared_ptr<KeyStore> keys_;
  std::int32_t next_pid_ = 0;
  Observability obs_;
};

}  // namespace byzcast::sim
