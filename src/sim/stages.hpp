// StageBackend: the execution-backend seam for the replica stage pipeline
// (ROADMAP item 5 — intra-group vertical scaling).
//
// A backend that can run work on extra threads exposes one of these through
// ExecutionEnv::stages(). Two stages hang off it:
//
//  * verify stage — inbound protocol messages are handed to a worker pool
//    for MAC verification and batch-digest precomputation before they enter
//    the serial order stage. Results re-enter the owner's executor lane in
//    submission order (a per-owner completion-reorder buffer), so the order
//    stage sees exactly the arrival sequence it would have seen inline.
//  * execute/reply stage — once delivery order is fixed, pure per-request
//    work (application execution of independent keys, reply encoding) is
//    sharded by destination key. Ordering, relay forwarding and a-delivery
//    bookkeeping never move off the order stage; callers enforce reply FIFO
//    with a per-origin barrier (bft/exec_barrier.hpp).
//
// The deterministic simulator returns nullptr and instead *models* the
// verify pool inside Actor (same reorder semantics, simulated time); the
// net backend also returns nullptr and runs everything inline. Both are
// bit-identical to the pre-stage behaviour at verify_workers = 0.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "sim/wire.hpp"

namespace byzcast::sim {

class StageBackend {
 public:
  virtual ~StageBackend() = default;

  /// Worker threads in the verify pool (> 0, or the backend would not exist).
  [[nodiscard]] virtual std::uint32_t verify_workers() const = 0;
  /// Shard threads in the execute/reply stage (0 = exec stays inline).
  [[nodiscard]] virtual std::uint32_t exec_shards() const = 0;

  /// Hands one inbound message to the verify pool. `preverify` runs on a
  /// pool worker thread and must be thread-safe with respect to the owner
  /// (it may only touch const/thread-safe actor state: the Authenticator and
  /// pure digest computation). `release` runs afterwards, serialized on the
  /// owner's executor lane; releases for one owner happen in submission
  /// order regardless of which worker finishes first.
  virtual void submit_verify(ProcessId owner, WireMessage msg,
                             std::function<void(WireMessage&)> preverify,
                             std::function<void(WireMessage)> release) = 0;

  /// Runs `work` on the exec shard responsible for `key` (key % exec_shards).
  /// `work` must be thread-safe; per-shard execution is serial. Only valid
  /// when exec_shards() > 0.
  virtual void submit_exec(std::uint64_t key, std::function<void()> work) = 0;

  /// True when the calling thread is an exec shard worker (used by actors to
  /// route replies produced off the order stage through the FIFO barrier).
  [[nodiscard]] virtual bool in_exec_shard() const = 0;
};

}  // namespace byzcast::sim
