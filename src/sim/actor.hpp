// Actor: one protocol process, runnable on any ExecutionEnv backend.
// Incoming messages queue at the actor and are served one at a time; each
// message occupies the CPU for a subclass-declared service cost before its
// effects become visible. On the deterministic simulator this single-server
// queue is what produces realistic saturation and latency growth under load;
// on the wall-clock runtime the costs are zero and the real CPU does the
// work, but the one-message-at-a-time discipline is preserved by the
// per-actor executor serialization.
//
// Lifetime: timer callbacks armed via schedule_in carry a weak reference to
// the actor's alive token and become no-ops once the actor is destroyed, so
// an actor may be torn down while scheduler activity it triggered is still
// pending. (Message delivery is guarded the same way by the network: a
// destination destroyed in flight counts as a drop.)
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "sim/env.hpp"
#include "sim/stages.hpp"

namespace byzcast::sim {

class Actor {
 public:
  Actor(ExecutionEnv& env, std::string name);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Called by the network at message arrival time. Concurrent backends
  /// must call this serialized on the actor's executor, never directly
  /// from a sender's thread. Messages the subclass declares stage-verifiable
  /// detour through the verify stage (real pool or simulated model) before
  /// entering the inbox; everything else goes straight in.
  void enqueue(WireMessage msg);

  /// Inbox entry for a message that already went through the verify stage.
  /// Must run serialized on the actor (the stage pool posts it back to the
  /// owner's executor lane; the simulator schedules it at modeled-done time).
  void enqueue_verified(WireMessage msg);

  /// Verify-stage body: stamps msg.verify_verdict from the MAC check and, on
  /// success, lets the subclass precompute digests (stage_precompute).
  /// Thread-safe: touches only the Authenticator and const state.
  void stage_preverify(WireMessage& msg) const;

  /// A crashed actor ignores everything from now on.
  void crash() { crashed_ = true; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  // --- observability -------------------------------------------------------
  /// Messages waiting behind the one currently in service.
  [[nodiscard]] std::size_t inbox_depth() const { return inbox_.size(); }
  /// Cumulative CPU time this actor has been busy (service + declared extra
  /// work). Samplers diff successive readings to get a busy fraction.
  [[nodiscard]] Time busy_time() const { return busy_total_; }
  /// MAC verifications this actor answered from the Authenticator memo
  /// (always 0 under fast MACs or the mac_memo_off ablation).
  [[nodiscard]] std::uint64_t mac_memo_hits() const {
    return auth_.verify_cache_hits();
  }

 protected:
  /// Handles one message, after its service time elapsed. The MAC has NOT
  /// been verified; call `verify` if authenticity matters (it always does
  /// for protocol logic; the check cost is part of the declared service
  /// cost).
  virtual void on_message(const WireMessage& msg) = 0;

  /// CPU time this message occupies before `on_message` runs.
  [[nodiscard]] virtual Time service_cost(const WireMessage& msg) const;

  /// Signs and sends `payload` to `to` through the network. Adds the
  /// per-send CPU cost to this actor's busy time. Takes a Buffer so fan-out
  /// callers encode once and pass the same buffer to every recipient; a
  /// Bytes rvalue converts implicitly (one materialization, no copy).
  void send(ProcessId to, Buffer payload);

  /// Checks that `msg` was authenticated by its claimed sender for us.
  /// Honors a verify-stage verdict stamped on the message, so pre-verified
  /// messages cost no second MAC check.
  [[nodiscard]] bool verify(const WireMessage& msg) const;

  // --- verify-stage hooks (stage pipeline; default: not staged) -----------
  /// Which inbound messages may detour through the verify stage. Only
  /// messages whose verification + digest work is independent of actor state
  /// qualify (protocol traffic, not timers/replies).
  [[nodiscard]] virtual bool stage_verifiable(const WireMessage&) const {
    return false;
  }
  /// Simulated CPU the verify stage spends on this message (the share of
  /// service_cost that moves off the order stage). 0 disables the simulated
  /// model for this message; the wall-clock runtime ignores it.
  [[nodiscard]] virtual Time stage_verify_cost(const WireMessage&) const {
    return 0;
  }
  /// Digest precomputation performed on the verify worker after a successful
  /// MAC check (e.g. stamping the PROPOSE batch digest). Thread-safe: const,
  /// pure function of the message bytes.
  virtual void stage_precompute(WireMessage&) const {}

  /// Schedules `fn` to run after `delay`; fires regardless of the actor's
  /// queue (used for timeouts). The callback must check state freshness.
  /// If the actor is destroyed before the timer fires, the callback is
  /// dropped (alive-token check at fire time).
  void schedule_in(Time delay, std::function<void()> fn);

  /// Adds `cost` to the actor's current busy period (models extra CPU work
  /// performed while handling the current message). Negative values refund
  /// CPU that a parallel stage absorbed (never below the current period's
  /// zero — callers bound their refunds).
  void consume_cpu(Time cost) { extra_busy_ += cost; }

  /// CPU consumed so far while handling the current message. The staged
  /// execution path diffs successive readings to price each request's
  /// deferred work for the shard-makespan model.
  [[nodiscard]] Time consumed_cpu() const { return extra_busy_; }

  /// Signs and sends from an exec shard thread: no CPU accounting (the
  /// shard burns real CPU off the order stage) and no crash check (crash()
  /// is a sim affordance; stage sends exist only on the runtime backend).
  /// Thread-safe: Authenticator::sign and the runtime network are.
  void send_from_stage(ProcessId to, Buffer payload);

  [[nodiscard]] Time now() const { return env_.now(); }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// The hosting execution environment (cost model, metrics, ...). Named
  /// `env` because it may be the simulator or the wall-clock runtime.
  [[nodiscard]] ExecutionEnv& env() { return env_; }
  [[nodiscard]] const ExecutionEnv& env() const { return env_; }

 private:
  void maybe_drain();
  /// Simulated verify pool: W servers, earliest-free assignment, completion
  /// reordered behind `verify_frontier_` so results re-enter in arrival
  /// order — the same semantics the runtime StagePool implements with real
  /// threads and a per-owner reorder buffer.
  void model_stage_verify(WireMessage msg, std::uint32_t workers, Time vcost);
  /// Records the per-message mailbox-wait / CPU-service infrastructure spans
  /// (no-op unless a SpanLog is attached with actor spans enabled).
  void stamp_actor_spans(const WireMessage& m) const;

  ExecutionEnv& env_;
  ProcessId id_;
  std::string name_;
  Authenticator auth_;
  Rng rng_;
  /// Liveness witness for deferred work: callbacks hold a weak_ptr and
  /// no-op once the actor is gone. Reset first in the destructor.
  std::shared_ptr<void> alive_;
  std::deque<WireMessage> inbox_;
  bool draining_ = false;
  bool crashed_ = false;
  Time extra_busy_ = 0;
  Time busy_total_ = 0;
  /// Simulated verify pool state (empty until the first staged message).
  std::vector<Time> verify_busy_;
  Time verify_frontier_ = 0;
};

}  // namespace byzcast::sim
