// Actor: one protocol process, runnable on any ExecutionEnv backend.
// Incoming messages queue at the actor and are served one at a time; each
// message occupies the CPU for a subclass-declared service cost before its
// effects become visible. On the deterministic simulator this single-server
// queue is what produces realistic saturation and latency growth under load;
// on the wall-clock runtime the costs are zero and the real CPU does the
// work, but the one-message-at-a-time discipline is preserved by the
// per-actor executor serialization.
//
// Lifetime: timer callbacks armed via schedule_in carry a weak reference to
// the actor's alive token and become no-ops once the actor is destroyed, so
// an actor may be torn down while scheduler activity it triggered is still
// pending. (Message delivery is guarded the same way by the network: a
// destination destroyed in flight counts as a drop.)
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "sim/env.hpp"

namespace byzcast::sim {

class Actor {
 public:
  Actor(ExecutionEnv& env, std::string name);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Called by the network at message arrival time. Concurrent backends
  /// must call this serialized on the actor's executor, never directly
  /// from a sender's thread.
  void enqueue(WireMessage msg);

  /// A crashed actor ignores everything from now on.
  void crash() { crashed_ = true; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  // --- observability -------------------------------------------------------
  /// Messages waiting behind the one currently in service.
  [[nodiscard]] std::size_t inbox_depth() const { return inbox_.size(); }
  /// Cumulative CPU time this actor has been busy (service + declared extra
  /// work). Samplers diff successive readings to get a busy fraction.
  [[nodiscard]] Time busy_time() const { return busy_total_; }
  /// MAC verifications this actor answered from the Authenticator memo
  /// (always 0 under fast MACs or the mac_memo_off ablation).
  [[nodiscard]] std::uint64_t mac_memo_hits() const {
    return auth_.verify_cache_hits();
  }

 protected:
  /// Handles one message, after its service time elapsed. The MAC has NOT
  /// been verified; call `verify` if authenticity matters (it always does
  /// for protocol logic; the check cost is part of the declared service
  /// cost).
  virtual void on_message(const WireMessage& msg) = 0;

  /// CPU time this message occupies before `on_message` runs.
  [[nodiscard]] virtual Time service_cost(const WireMessage& msg) const;

  /// Signs and sends `payload` to `to` through the network. Adds the
  /// per-send CPU cost to this actor's busy time. Takes a Buffer so fan-out
  /// callers encode once and pass the same buffer to every recipient; a
  /// Bytes rvalue converts implicitly (one materialization, no copy).
  void send(ProcessId to, Buffer payload);

  /// Checks that `msg` was authenticated by its claimed sender for us.
  [[nodiscard]] bool verify(const WireMessage& msg) const;

  /// Schedules `fn` to run after `delay`; fires regardless of the actor's
  /// queue (used for timeouts). The callback must check state freshness.
  /// If the actor is destroyed before the timer fires, the callback is
  /// dropped (alive-token check at fire time).
  void schedule_in(Time delay, std::function<void()> fn);

  /// Adds `cost` to the actor's current busy period (models extra CPU work
  /// performed while handling the current message).
  void consume_cpu(Time cost) { extra_busy_ += cost; }

  [[nodiscard]] Time now() const { return env_.now(); }
  [[nodiscard]] Rng& rng() { return rng_; }
  /// The hosting execution environment (cost model, metrics, ...). Named
  /// `env` because it may be the simulator or the wall-clock runtime.
  [[nodiscard]] ExecutionEnv& env() { return env_; }
  [[nodiscard]] const ExecutionEnv& env() const { return env_; }

 private:
  void maybe_drain();
  /// Records the per-message mailbox-wait / CPU-service infrastructure spans
  /// (no-op unless a SpanLog is attached with actor spans enabled).
  void stamp_actor_spans(const WireMessage& m) const;

  ExecutionEnv& env_;
  ProcessId id_;
  std::string name_;
  Authenticator auth_;
  Rng rng_;
  /// Liveness witness for deferred work: callbacks hold a weak_ptr and
  /// no-op once the actor is gone. Reset first in the destructor.
  std::shared_ptr<void> alive_;
  std::deque<WireMessage> inbox_;
  bool draining_ = false;
  bool crashed_ = false;
  Time extra_busy_ = 0;
  Time busy_total_ = 0;
};

}  // namespace byzcast::sim
