// Actor: one simulated process. Incoming messages queue at the actor and are
// served one at a time; each message occupies the CPU for a subclass-declared
// service cost before its effects become visible. This single-server queue is
// what produces realistic saturation and latency growth under load.
//
// Lifetime rule: actors must outlive any scheduler activity they triggered;
// systems own their actors for the whole run and destroy them only after the
// scheduler stops.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "common/auth.hpp"
#include "common/rng.hpp"
#include "sim/network.hpp"

namespace byzcast::sim {

class Simulation;

class Actor {
 public:
  Actor(Simulation& sim, std::string name);
  virtual ~Actor();

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] ProcessId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Called by the network at message arrival time.
  void enqueue(WireMessage msg);

  /// A crashed actor ignores everything from now on.
  void crash() { crashed_ = true; }
  [[nodiscard]] bool crashed() const { return crashed_; }

  // --- observability -------------------------------------------------------
  /// Messages waiting behind the one currently in service.
  [[nodiscard]] std::size_t inbox_depth() const { return inbox_.size(); }
  /// Cumulative CPU time this actor has been busy (service + declared extra
  /// work). Samplers diff successive readings to get a busy fraction.
  [[nodiscard]] Time busy_time() const { return busy_total_; }

 protected:
  /// Handles one message, after its service time elapsed. The MAC has NOT
  /// been verified; call `verify` if authenticity matters (it always does
  /// for protocol logic; the check cost is part of the declared service
  /// cost).
  virtual void on_message(const WireMessage& msg) = 0;

  /// CPU time this message occupies before `on_message` runs.
  [[nodiscard]] virtual Time service_cost(const WireMessage& msg) const;

  /// Signs and sends `payload` to `to` through the network. Adds the
  /// per-send CPU cost to this actor's busy time.
  void send(ProcessId to, Bytes payload);

  /// Checks that `msg` was authenticated by its claimed sender for us.
  [[nodiscard]] bool verify(const WireMessage& msg) const;

  /// Schedules `fn` to run after `delay`; fires regardless of the actor's
  /// queue (used for timeouts). The callback must check state freshness.
  void schedule_in(Time delay, std::function<void()> fn);

  /// Adds `cost` to the actor's current busy period (models extra CPU work
  /// performed while handling the current message).
  void consume_cpu(Time cost) { extra_busy_ += cost; }

  [[nodiscard]] Time now() const;
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Simulation& sim() { return sim_; }
  [[nodiscard]] const Simulation& sim() const { return sim_; }

 private:
  void maybe_drain();

  Simulation& sim_;
  ProcessId id_;
  std::string name_;
  Authenticator auth_;
  Rng rng_;
  std::deque<WireMessage> inbox_;
  bool draining_ = false;
  bool crashed_ = false;
  Time extra_busy_ = 0;
  Time busy_total_ = 0;
};

}  // namespace byzcast::sim
