// Zipf-distributed sampler over {0, ..., n-1} by rejection inversion
// (Hörmann & Derflinger 1996, the scheme used by Apache commons-rng and
// FoundationDB's workload generators). P(k) ∝ (k+1)^-s for exponent s ≥ 0.
// O(1) setup and O(1) expected time per sample for any n and s — unlike the
// naive CDF table, which is O(n) setup and O(log n) per sample and melts for
// the million-key populations the workload engine sweeps over.
//
// s = 0 is the uniform distribution and is special-cased (the rejection
// scheme's helper functions degenerate there).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace byzcast::workload {

class ZipfSampler {
 public:
  /// Samples ranks 0-based: rank 0 is the hottest element.
  ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
    BZC_EXPECTS(n >= 1);
    BZC_EXPECTS(s >= 0.0);
    if (s_ == 0.0 || n_ == 1) return;
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n_) + 0.5);
    s_div_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double s() const { return s_; }

  /// Draws one rank in [0, n). Expected iterations of the rejection loop
  /// are < 2 for all (n, s); typically ~1.1.
  [[nodiscard]] std::uint64_t next(Rng& rng) const {
    if (s_ == 0.0 || n_ == 1) return rng.next_below(n_);
    for (;;) {
      // u uniform in (h_x1_, h_n_]; next_double() is [0,1) so flip it to
      // (0,1] to keep u > h_x1_ strict.
      const double u = h_n_ + (1.0 - rng.next_double()) * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= s_div_ || u >= h_integral(k + 0.5) - h(k)) {
        return static_cast<std::uint64_t>(k) - 1;  // 0-based rank
      }
    }
  }

  /// Analytic probability of rank k (0-based) — used by the chi-square
  /// goodness-of-fit tests. O(n) (computes the generalized harmonic number).
  [[nodiscard]] double pmf(std::uint64_t k) const {
    BZC_EXPECTS(k < n_);
    double harmonic = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i) {
      harmonic += std::pow(static_cast<double>(i), -s_);
    }
    return std::pow(static_cast<double>(k + 1), -s_) / harmonic;
  }

 private:
  // H(x) = ∫ t^-s dt with the integration constant chosen so the expressions
  // stay numerically stable near s = 1 (helper2 handles the removable
  // singularity via expm1/log1p).
  [[nodiscard]] double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - s_) * log_x) * log_x;
  }

  [[nodiscard]] double h(double x) const { return std::pow(x, -s_); }

  [[nodiscard]] double h_integral_inverse(double x) const {
    double t = x * (1.0 - s_);
    if (t < -1.0) t = -1.0;  // guard rounding below the pole
    return std::exp(helper1(t) * x);
  }

  /// log1p(x)/x, continuous at 0.
  [[nodiscard]] static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x / 2.0 + x * x / 3.0;
  }

  /// expm1(x)/x, continuous at 0.
  [[nodiscard]] static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x / 2.0 + x * x / 6.0;
  }

  std::uint64_t n_;
  double s_;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double s_div_ = 0.0;
};

}  // namespace byzcast::workload
