#include "workload/runner.hpp"

#include "common/contracts.hpp"

namespace byzcast::workload {

namespace {

SweepSettings settings_from(const RateSchedule& sched) {
  SweepSettings settings;
  settings.rates = sched.rates;
  settings.knee_p99_factor = sched.knee_p99_factor;
  settings.knee_goodput_floor = sched.knee_goodput_floor;
  settings.bisect_iters = sched.bisect_iters;
  return settings;
}

Json point_to_json(const SweepPoint& pt) {
  Json j = Json::object();
  j.set("offered", Json::number(pt.offered));
  j.set("throughput", Json::number(pt.throughput));
  j.set("goodput_ratio", Json::number(pt.goodput_ratio));
  j.set("p50_ms", Json::number(pt.p50_ms));
  j.set("p99_ms", Json::number(pt.p99_ms));
  j.set("completed", Json::number(pt.completed));
  j.set("monitor_violations", Json::number(pt.monitor_violations));
  j.set("sample_overflow", Json::number(pt.sample_overflow));
  j.set("saturated", Json::boolean(pt.saturated));
  return j;
}

Json curve_to_json(const SweepCurve& curve) {
  Json j = Json::object();
  j.set("label", Json::string(curve.label));
  Json points = Json::array();
  for (const SweepPoint& pt : curve.points) points.push_back(point_to_json(pt));
  j.set("points", std::move(points));
  j.set("knee_found", Json::boolean(curve.knee_found));
  if (curve.knee_found) j.set("knee", point_to_json(curve.knee));
  j.set("max_unsaturated_rate", Json::number(curve.max_unsaturated_rate));
  return j;
}

}  // namespace

WorkloadOutcome run_workload(const WorkloadSpec& spec) {
  WorkloadOutcome outcome;
  outcome.spec = spec;

  switch (spec.schedule.kind) {
    case RateSchedule::Kind::kFixed: {
      // All listed ablations apply to the single configuration.
      ExperimentConfig config = spec.base;
      for (const std::string& name : spec.ablations) {
        const bool known = apply_ablation(config, name);
        BZC_ASSERT(known);  // names were validated at parse time
      }
      SweepCurve curve;
      curve.label = "fixed";
      curve.points.push_back(
          measure_point(config, spec.schedule.fixed_rate));
      curve.max_unsaturated_rate = spec.schedule.fixed_rate;
      outcome.curves.push_back(std::move(curve));
      break;
    }
    case RateSchedule::Kind::kStep: {
      ExperimentConfig config = spec.base;
      for (const std::string& name : spec.ablations) {
        const bool known = apply_ablation(config, name);
        BZC_ASSERT(known);
      }
      SweepCurve curve;
      curve.label = "step";
      for (std::size_t i = 0; i < spec.schedule.rates.size(); ++i) {
        // Each segment is its own deterministic run with a distinct seed —
        // segments are independent measurements, not one evolving run, so
        // a saturated early segment cannot poison a later one's queues.
        ExperimentConfig seg = config;
        seg.seed = config.seed + i;
        curve.points.push_back(measure_point(seg, spec.schedule.rates[i]));
      }
      classify_saturation(curve.points, spec.schedule.knee_p99_factor,
                          spec.schedule.knee_goodput_floor);
      outcome.curves.push_back(std::move(curve));
      break;
    }
    case RateSchedule::Kind::kSweep: {
      const SweepSettings settings = settings_from(spec.schedule);
      outcome.curves.push_back(run_sweep(spec.base, settings, "baseline"));
      for (const std::string& name : spec.ablations) {
        ExperimentConfig config = spec.base;
        const bool known = apply_ablation(config, name);
        BZC_ASSERT(known);
        outcome.curves.push_back(run_sweep(config, settings, name));
      }
      break;
    }
  }
  return outcome;
}

Json outcome_to_json(const WorkloadOutcome& outcome) {
  Json doc = Json::object();
  doc.set("schema", Json::string("byzcast-sweep-v1"));
  doc.set("name", Json::string(outcome.spec.name));
  doc.set("protocol", Json::string(to_string(outcome.spec.base.protocol)));
  doc.set("environment",
          Json::string(to_string(outcome.spec.base.environment)));
  doc.set("num_groups", Json::number(outcome.spec.base.num_groups));
  doc.set("clients_per_group",
          Json::number(outcome.spec.base.clients_per_group));
  doc.set("payload_size", Json::number(outcome.spec.base.payload_size));
  doc.set("duration_ms", Json::number(to_ms(outcome.spec.base.duration)));
  Json curves = Json::array();
  for (const SweepCurve& curve : outcome.curves) {
    curves.push_back(curve_to_json(curve));
  }
  doc.set("curves", std::move(curves));
  return doc;
}

}  // namespace byzcast::workload
