// Open-loop arrival pacing for the workload engine. A RateController owns
// one Poisson arrival process at a target rate: the caller asks "when is the
// next arrival?" and fires one message at that instant, regardless of
// completions (open loop — how Table II offers its F(d) rates and what
// exposes a saturated tree, unlike closed-loop clients whose offered load
// collapses with latency).
//
// Drift correction: the controller advances an *ideal* arrival clock by one
// Exp(1/rate) gap per arrival and returns the delay from `now` to that ideal
// instant. If the caller is late (scheduler jitter on the wall-clock
// backends, coarse timers), the returned delay clamps to 0 and subsequent
// arrivals catch up, so the achieved rate converges to the target instead of
// accumulating the lateness — plain `sleep(exp_gap)` loops under-offer by
// exactly the summed overshoot.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace byzcast::workload {

class RateController {
 public:
  /// `rate_per_sec` must be > 0; `origin` anchors the ideal clock (pass the
  /// current time so the first arrival is ~one gap from now).
  RateController(double rate_per_sec, Rng rng, Time origin = 0)
      : rng_(rng), ideal_(origin) {
    set_rate(rate_per_sec);
  }

  /// Retargets the process from the next arrival on (step schedules). The
  /// ideal clock carries over, so no arrivals are lost or doubled at the
  /// boundary.
  void set_rate(double rate_per_sec) {
    BZC_EXPECTS(rate_per_sec > 0.0);
    mean_gap_ns_ = static_cast<double>(kSecond) / rate_per_sec;
  }

  [[nodiscard]] double rate_per_sec() const {
    return static_cast<double>(kSecond) / mean_gap_ns_;
  }

  /// Advances the ideal arrival clock by one exponential gap and returns
  /// the (non-negative) delay from `now` until that arrival. A return of 0
  /// means the caller is behind schedule and should fire immediately.
  [[nodiscard]] Time next_delay(Time now) {
    ideal_ += static_cast<Time>(rng_.next_exponential(mean_gap_ns_));
    ++scheduled_;
    if (ideal_ <= now) {
      behind_ns_ += now - ideal_;
      return 0;
    }
    return ideal_ - now;
  }

  /// Arrivals scheduled so far.
  [[nodiscard]] std::uint64_t scheduled() const { return scheduled_; }
  /// Total lateness absorbed by catch-up (ns); large values relative to the
  /// run length mean the load generator itself cannot sustain the rate.
  [[nodiscard]] std::uint64_t behind_ns() const { return behind_ns_; }

 private:
  Rng rng_;
  double mean_gap_ns_ = 0.0;
  Time ideal_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t behind_ns_ = 0;
};

}  // namespace byzcast::workload
