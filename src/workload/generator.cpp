#include "workload/generator.hpp"

#include "common/contracts.hpp"

namespace byzcast::workload {

DestinationGenerator::DestinationGenerator(GeneratorConfig config,
                                           std::vector<GroupId> targets,
                                           std::size_t home)
    : config_(config), targets_(std::move(targets)), home_(home) {
  BZC_EXPECTS(!targets_.empty());
  BZC_EXPECTS(home_ < targets_.size());
  if (config_.pattern == Pattern::kGlobalUniformPairs ||
      config_.pattern == Pattern::kGlobalSkewedPairs) {
    BZC_EXPECTS(targets_.size() >= 2);
  }
  if (config_.pattern == Pattern::kGlobalSkewedPairs) {
    BZC_EXPECTS(targets_.size() >= 4);
  }
  if (config_.pattern == Pattern::kGlobalFanout) {
    BZC_EXPECTS(config_.global_fanout >= 1);
    BZC_EXPECTS(static_cast<std::size_t>(config_.global_fanout) <=
                targets_.size());
  }
}

std::vector<GroupId> DestinationGenerator::uniform_pair(Rng& rng) const {
  const auto n = targets_.size();
  const auto i = static_cast<std::size_t>(rng.next_below(n));
  auto j = static_cast<std::size_t>(rng.next_below(n - 1));
  if (j >= i) ++j;
  return {targets_[i], targets_[j]};
}

std::vector<GroupId> DestinationGenerator::next(Rng& rng) {
  switch (config_.pattern) {
    case Pattern::kLocalOnly:
      return {targets_[home_]};
    case Pattern::kGlobalUniformPairs:
      return uniform_pair(rng);
    case Pattern::kGlobalSkewedPairs:
      return rng.next_bool(0.5)
                 ? std::vector<GroupId>{targets_[0], targets_[1]}
                 : std::vector<GroupId>{targets_[2], targets_[3]};
    case Pattern::kGlobalFanout: {
      // Floyd's algorithm-free simple sampling: shuffle-select `fanout`
      // distinct indices.
      std::vector<GroupId> pool = targets_;
      std::vector<GroupId> out;
      const auto fanout = static_cast<std::size_t>(config_.global_fanout);
      for (std::size_t i = 0; i < fanout; ++i) {
        const auto j = i + static_cast<std::size_t>(
                               rng.next_below(pool.size() - i));
        std::swap(pool[i], pool[j]);
        out.push_back(pool[i]);
      }
      return out;
    }
    case Pattern::kMixed: {
      const auto total =
          static_cast<double>(config_.mixed_local + config_.mixed_global);
      const bool local =
          rng.next_bool(static_cast<double>(config_.mixed_local) / total);
      if (local) return {targets_[home_]};
      return uniform_pair(rng);
    }
  }
  BZC_ASSERT(false);
  return {};
}

}  // namespace byzcast::workload
