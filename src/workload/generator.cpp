#include "workload/generator.hpp"

#include "common/contracts.hpp"

namespace byzcast::workload {

DestinationGenerator::DestinationGenerator(GeneratorConfig config,
                                           std::vector<GroupId> targets,
                                           std::size_t home)
    : config_(config), targets_(std::move(targets)), home_(home) {
  BZC_EXPECTS(!targets_.empty());
  BZC_EXPECTS(home_ < targets_.size());
  if (config_.pattern == Pattern::kGlobalUniformPairs ||
      config_.pattern == Pattern::kGlobalSkewedPairs) {
    BZC_EXPECTS(targets_.size() >= 2);
  }
  if (config_.pattern == Pattern::kGlobalSkewedPairs) {
    BZC_EXPECTS(targets_.size() >= 4);
  }
  if (config_.pattern == Pattern::kGlobalFanout ||
      config_.pattern == Pattern::kZipf) {
    BZC_EXPECTS(config_.global_fanout >= 1);
    BZC_EXPECTS(static_cast<std::size_t>(config_.global_fanout) <=
                targets_.size());
  }
  if (config_.pattern == Pattern::kZipf) {
    BZC_EXPECTS(config_.zipf_s >= 0.0);
    zipf_.emplace(targets_.size(), config_.zipf_s);
  }
}

std::vector<GroupId> DestinationGenerator::uniform_pair(Rng& rng) const {
  const auto n = targets_.size();
  const auto i = static_cast<std::size_t>(rng.next_below(n));
  auto j = static_cast<std::size_t>(rng.next_below(n - 1));
  if (j >= i) ++j;
  return {targets_[i], targets_[j]};
}

std::vector<GroupId> DestinationGenerator::fanout_uniform(Rng& rng) const {
  // Shuffle-select `fanout` distinct indices.
  std::vector<GroupId> pool = targets_;
  std::vector<GroupId> out;
  const auto fanout = static_cast<std::size_t>(config_.global_fanout);
  for (std::size_t i = 0; i < fanout; ++i) {
    const auto j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

std::vector<GroupId> DestinationGenerator::zipf_single(Rng& rng) const {
  return {targets_[zipf_->next(rng)]};
}

std::vector<GroupId> DestinationGenerator::zipf_fanout(Rng& rng) const {
  // Draw from the Zipf marginal until `fanout` distinct groups accumulate.
  // Terminates because fanout <= |targets|; under heavy skew the expected
  // redraws stay small (the hot groups land on the first few draws, the
  // tail is near-uniform over the rest).
  const auto fanout = static_cast<std::size_t>(config_.global_fanout);
  if (fanout == 1) return zipf_single(rng);
  std::vector<GroupId> out;
  out.reserve(fanout);
  while (out.size() < fanout) {
    const GroupId g = targets_[zipf_->next(rng)];
    bool dup = false;
    for (const GroupId have : out) dup = dup || have == g;
    if (!dup) out.push_back(g);
  }
  return out;
}

std::vector<GroupId> DestinationGenerator::next_local(Rng& rng) {
  if (config_.pattern == Pattern::kZipf) return zipf_single(rng);
  return {targets_[home_]};
}

std::vector<GroupId> DestinationGenerator::next_global(Rng& rng) {
  switch (config_.pattern) {
    case Pattern::kGlobalSkewedPairs:
      return rng.next_bool(0.5)
                 ? std::vector<GroupId>{targets_[0], targets_[1]}
                 : std::vector<GroupId>{targets_[2], targets_[3]};
    case Pattern::kGlobalFanout:
      return fanout_uniform(rng);
    case Pattern::kZipf:
      return zipf_fanout(rng);
    case Pattern::kLocalOnly:
      // A forced-global draw under a local-only pattern degrades to a
      // uniform pair when possible (only reachable from misconfigured
      // per-class pacing; keep it total rather than assert).
      if (targets_.size() < 2) return {targets_[home_]};
      return uniform_pair(rng);
    case Pattern::kGlobalUniformPairs:
    case Pattern::kMixed:
      return uniform_pair(rng);
  }
  BZC_ASSERT(false);
  return {};
}

std::vector<GroupId> DestinationGenerator::next(Rng& rng) {
  switch (config_.pattern) {
    case Pattern::kLocalOnly:
      return {targets_[home_]};
    case Pattern::kGlobalUniformPairs:
      return uniform_pair(rng);
    case Pattern::kGlobalSkewedPairs:
    case Pattern::kGlobalFanout:
      return next_global(rng);
    case Pattern::kMixed:
    case Pattern::kZipf: {
      const auto total =
          static_cast<double>(config_.mixed_local + config_.mixed_global);
      const bool local =
          rng.next_bool(static_cast<double>(config_.mixed_local) / total);
      return local ? next_local(rng) : next_global(rng);
    }
  }
  BZC_ASSERT(false);
  return {};
}

}  // namespace byzcast::workload
