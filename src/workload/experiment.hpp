// Experiment harness: builds one of the three protocols of §V-A3 (ByzCast
// over a 2- or 3-level tree, the non-genuine Baseline, or plain BFT-SMaRt =
// one atomic broadcast group), drives it with closed-loop clients in a LAN
// or the paper's 4-region EC2 WAN, and reports throughput and latency
// statistics split by message class (local / global).
#pragma once

#include <cstdint>
#include <memory>

#include "common/metrics.hpp"
#include "common/monitor.hpp"
#include "common/span.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "workload/generator.hpp"

namespace byzcast::workload {

enum class Protocol {
  kByzCast2Level,
  kByzCast3Level,
  kBaseline,
  kBftSmart,  // single group, plain atomic broadcast (reference)
};

enum class Environment { kLan, kWan };

[[nodiscard]] const char* to_string(Protocol p);
[[nodiscard]] const char* to_string(Environment e);

struct ExperimentConfig {
  Protocol protocol = Protocol::kByzCast2Level;
  Environment environment = Environment::kLan;
  /// Number of target groups (ignored by kBftSmart, which always runs one).
  int num_groups = 2;
  int f = 1;
  /// Closed-loop clients per target group (kBftSmart: total clients =
  /// clients_per_group * num_groups, all on its single group).
  int clients_per_group = 200;
  GeneratorConfig workload;
  /// 0 = closed loop (the paper's clients). > 0 = open loop: the client
  /// population offers this many messages/second in aggregate (Poisson),
  /// regardless of completions — how Table II states its F(d) rates, and
  /// what exposes an overloaded tree layout in Fig. 3. Not supported for
  /// kBftSmart.
  double open_loop_total_rate = 0.0;
  /// Per-class rate split for open-loop runs. When in [0,1], the offered
  /// load is produced by TWO Poisson processes — local at `share * total`,
  /// global at `(1-share) * total` — and each arrival forces its class via
  /// the generator's next_local/next_global draws, so the local:global mix
  /// is a first-class experimental knob instead of a side effect of the
  /// pattern. < 0 (default) keeps the pattern's own mix under one aggregate
  /// process.
  double open_loop_local_share = -1.0;
  std::size_t payload_size = 64;  // the paper's 64-byte messages
  Time warmup = 1 * kSecond;
  Time duration = 4 * kSecond;  // measurement window after warmup
  std::uint64_t seed = 42;
  /// Observability: when true the run publishes per-group counters, hop
  /// traces and sampled per-replica queue depth / CPU-busy fraction into
  /// ExperimentResult::metrics / ::trace (see docs/ARCHITECTURE.md,
  /// "Observability"). Costs a few percent of host time; disable for huge
  /// parameter sweeps where only end-to-end numbers matter.
  bool observability = true;
  Time sample_interval = 100 * kMillisecond;
  std::size_t trace_capacity = TraceLog::kDefaultCapacity;
  /// Causal span tracing (docs/ARCHITECTURE.md, "Observability: spans,
  /// critical path, invariant monitors"): sampled client messages carry a
  /// trace flag on the wire and every Algorithm-1 stage stamps a Span, from
  /// which CriticalPathAnalyzer decomposes end-to-end latency. Requires
  /// `observability`. Off by default; the overhead with sampling is
  /// measured in BENCH_trace.json.
  bool span_tracing = false;
  /// Trace every n-th message per client (1 = all). This is the overhead
  /// knob: production-style runs keep tracing always-on at e.g. 1/64
  /// sampling for <5% cost.
  std::uint32_t span_sample_every = 1;
  std::size_t span_capacity = SpanLog::kDefaultCapacity;
  /// Online invariant monitors (per-sender FIFO, group agreement, acyclic
  /// prefix order across groups, bounded pending copies) attached as
  /// delivery observers; violations surface as monitor.violations.*
  /// counters. Requires `observability`.
  bool monitors = false;
  /// Bound for the pending-copies monitor (0 = that check disabled).
  std::size_t monitor_pending_bound = 0;
  /// Consensus-pipelining / batching overrides applied on top of the
  /// environment's profile preset; 0 keeps the preset's value. Used by the
  /// pipeline-depth x batch-timeout sweeps (bench_pipeline).
  std::uint32_t pipeline_depth = 0;
  std::uint32_t batch_max = 0;
  std::uint32_t batch_min = 0;
  /// Batch assembly window override; 0 keeps the preset (which itself falls
  /// back to cpu_propose_fixed when its batch_timeout is 0).
  Time batch_timeout = 0;
  // --- ablation switches (per-optimization sweeps; see docs/ARCHITECTURE.md,
  // "Workload engine") ------------------------------------------------------
  /// Deep-copy every send payload and charge the memcpy as CPU — undoes the
  /// ref-counted zero-copy fan-out optimization.
  bool zero_copy_off = false;
  /// Disable the MAC verification memo. Implies `real_macs`: the memo is a
  /// host/CPU-side optimization that only exists under real HMACs, so the
  /// meaningful comparison pair is (real_macs, mac_memo_off) vs
  /// (real_macs, memo on) — not against the default fast-MAC runs.
  bool mac_memo_off = false;
  /// Run with real HMAC-SHA256 MACs instead of the sweep-friendly fast
  /// mode. Automatically set by `mac_memo_off`; set it alone to get the
  /// memo-ON companion curve of the MAC ablation pair.
  bool real_macs = false;
  /// Force consensus pipeline depth 1 (sequential instances) — undoes the
  /// pipelining of PR 6 regardless of the preset / pipeline_depth override.
  bool pipeline_off = false;
  /// Freeze the adaptive batch target at batch_max — every batch waits out
  /// the full assembly window (fixed batching, no early cuts growth/decay).
  bool batch_adapt_off = false;
  // --- stage pipeline (intra-group vertical scaling) -----------------------
  /// Verify-stage worker pool size per replica (0 = verification inline on
  /// the order stage — the pre-stage behaviour, bit-identical).
  std::uint32_t verify_workers = 0;
  /// Execute/reply-stage shard count (0 = execution inline).
  std::uint32_t exec_shards = 0;
  /// Ablation: force both stage knobs to 0 regardless of their values.
  bool stage_pipeline_off = false;
};

struct ExperimentResult {
  double throughput = 0.0;  // client completions / second in the window
  double throughput_local = 0.0;
  double throughput_global = 0.0;
  LatencyRecorder latency_all;
  LatencyRecorder latency_local;
  LatencyRecorder latency_global;
  std::uint64_t completed = 0;       // total completions (whole run)
  std::uint64_t a_deliveries = 0;    // ByzCast/Baseline only
  std::uint64_t wire_messages = 0;   // network traffic (whole run)
  /// Populated when config.observability is on (shared_ptr keeps the result
  /// cheaply copyable); null otherwise.
  std::shared_ptr<MetricsRegistry> metrics;
  std::shared_ptr<TraceLog> trace;
  /// Populated when config.span_tracing / config.monitors are on.
  std::shared_ptr<SpanLog> spans;
  std::shared_ptr<MonitorHub> monitors;
};

[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace byzcast::workload
