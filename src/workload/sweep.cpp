#include "workload/sweep.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace byzcast::workload {

namespace {

std::uint64_t sum_monitor_violations(const ExperimentResult& result) {
  if (!result.metrics) return 0;
  std::uint64_t total = 0;
  for (const auto& [name, counter] : result.metrics->counters()) {
    if (name.rfind("monitor.violations.", 0) == 0) total += counter.value();
  }
  return total;
}

}  // namespace

void classify_saturation(std::vector<SweepPoint>& points, double p99_factor,
                         double goodput_floor) {
  if (points.empty()) return;
  // The plateau is the service latency floor: the lowest offered rate's
  // p99, i.e. what the system delivers when queueing is negligible.
  const double plateau_p99 = points.front().p99_ms;
  for (SweepPoint& pt : points) {
    const bool latency_blown =
        plateau_p99 > 0.0 && pt.p99_ms > p99_factor * plateau_p99;
    const bool goodput_short = pt.goodput_ratio < goodput_floor;
    // A point that completed nothing at all is trivially saturated (or the
    // run was misconfigured); either way it is not a sustainable rate.
    pt.saturated = latency_blown || goodput_short || pt.completed == 0;
  }
}

std::size_t first_saturated(const std::vector<SweepPoint>& pts) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].saturated) return i;
  }
  return kNoKnee;
}

SweepPoint measure_point(const ExperimentConfig& base, double rate) {
  ExperimentConfig config = base;
  config.open_loop_total_rate = rate;
  const ExperimentResult result = run_experiment(config);
  SweepPoint pt;
  pt.offered = rate;
  pt.throughput = result.throughput;
  pt.goodput_ratio = rate > 0.0 ? result.throughput / rate : 0.0;
  pt.p50_ms = result.latency_all.percentile_ms(50.0);
  pt.p99_ms = result.latency_all.percentile_ms(99.0);
  pt.completed = result.completed;
  pt.monitor_violations = sum_monitor_violations(result);
  pt.sample_overflow = result.latency_all.overflow() +
                       result.latency_local.overflow() +
                       result.latency_global.overflow();
  return pt;
}

SweepCurve run_sweep(const ExperimentConfig& base,
                     const SweepSettings& settings, const std::string& label) {
  BZC_EXPECTS(!settings.rates.empty());
  BZC_EXPECTS(std::is_sorted(settings.rates.begin(), settings.rates.end()));

  SweepCurve curve;
  curve.label = label;
  for (const double rate : settings.rates) {
    curve.points.push_back(measure_point(base, rate));
  }
  classify_saturation(curve.points, settings.knee_p99_factor,
                      settings.knee_goodput_floor);

  std::size_t knee_idx = first_saturated(curve.points);
  if (knee_idx == kNoKnee) {
    // The whole grid is healthy: report the top rate as the best measured
    // sustainable load, no knee.
    curve.max_unsaturated_rate = curve.points.back().offered;
    return curve;
  }
  if (knee_idx == 0) {
    // Even the lowest rate saturates (goodput collapse — the plateau rule
    // cannot fire on the first point by construction): no healthy bracket
    // to bisect, the knee IS the first grid point.
    curve.knee_found = true;
    curve.knee = curve.points.front();
    return curve;
  }

  // Bisect between the last healthy and first saturated rates: each probe
  // re-classifies against the existing plateau so the bracket shrinks by
  // half per iteration. Probes are appended to the curve (sorted at the
  // end) — they are real measurements, worth keeping in the artifact.
  double lo = curve.points[knee_idx - 1].offered;  // healthy
  double hi = curve.points[knee_idx].offered;      // saturated
  SweepPoint knee = curve.points[knee_idx];
  for (int i = 0; i < settings.bisect_iters; ++i) {
    const double mid = (lo + hi) / 2.0;
    SweepPoint probe = measure_point(base, mid);
    std::vector<SweepPoint> scratch = {curve.points.front(), probe};
    classify_saturation(scratch, settings.knee_p99_factor,
                        settings.knee_goodput_floor);
    probe = scratch.back();
    curve.points.push_back(probe);
    if (probe.saturated) {
      hi = mid;
      knee = probe;
    } else {
      lo = mid;
    }
  }

  std::sort(curve.points.begin(), curve.points.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.offered < b.offered;
            });
  curve.knee_found = true;
  curve.knee = knee;
  curve.max_unsaturated_rate = lo;
  return curve;
}

}  // namespace byzcast::workload
