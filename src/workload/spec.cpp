#include "workload/spec.hpp"

#include <fstream>
#include <sstream>

namespace byzcast::workload {

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

bool parse_protocol(const std::string& s, Protocol* out, std::string* error) {
  if (s == "byzcast-2l") *out = Protocol::kByzCast2Level;
  else if (s == "byzcast-3l") *out = Protocol::kByzCast3Level;
  else if (s == "baseline") *out = Protocol::kBaseline;
  else if (s == "bft-smart") *out = Protocol::kBftSmart;
  else return fail(error, "unknown protocol: " + s);
  return true;
}

bool parse_environment(const std::string& s, Environment* out,
                       std::string* error) {
  if (s == "lan") *out = Environment::kLan;
  else if (s == "wan") *out = Environment::kWan;
  else return fail(error, "unknown environment: " + s);
  return true;
}

bool parse_pattern(const std::string& s, Pattern* out, std::string* error) {
  if (s == "local") *out = Pattern::kLocalOnly;
  else if (s == "uniform-pairs") *out = Pattern::kGlobalUniformPairs;
  else if (s == "skewed-pairs") *out = Pattern::kGlobalSkewedPairs;
  else if (s == "mixed") *out = Pattern::kMixed;
  else if (s == "fanout") *out = Pattern::kGlobalFanout;
  else if (s == "zipf") *out = Pattern::kZipf;
  else return fail(error, "unknown pattern: " + s);
  return true;
}

}  // namespace

bool apply_ablation(ExperimentConfig& config, const std::string& name) {
  if (name == "zero_copy_off") config.zero_copy_off = true;
  else if (name == "mac_memo_off") config.mac_memo_off = true;
  else if (name == "mac_memo_on") config.real_macs = true;
  else if (name == "pipeline_off") config.pipeline_off = true;
  else if (name == "batch_adapt_off") config.batch_adapt_off = true;
  else if (name == "stage_pipeline_off") config.stage_pipeline_off = true;
  else return false;
  return true;
}

std::optional<WorkloadSpec> parse_workload_spec(const Json& doc,
                                                std::string* error) {
  if (!doc.is_object()) {
    fail(error, "spec root must be an object");
    return std::nullopt;
  }
  WorkloadSpec spec;
  spec.name = doc.get("name").as_string();
  if (spec.name.empty()) {
    fail(error, "spec requires a non-empty \"name\"");
    return std::nullopt;
  }

  ExperimentConfig& cfg = spec.base;
  if (doc.has("protocol") &&
      !parse_protocol(doc.get("protocol").as_string(), &cfg.protocol, error)) {
    return std::nullopt;
  }
  if (doc.has("environment") &&
      !parse_environment(doc.get("environment").as_string(), &cfg.environment,
                         error)) {
    return std::nullopt;
  }
  cfg.num_groups = static_cast<int>(doc.int_or("num_groups", cfg.num_groups));
  cfg.f = static_cast<int>(doc.int_or("f", cfg.f));
  cfg.clients_per_group = static_cast<int>(
      doc.int_or("clients_per_group", cfg.clients_per_group));
  cfg.payload_size = static_cast<std::size_t>(
      doc.int_or("payload_size", static_cast<std::int64_t>(cfg.payload_size)));
  cfg.warmup =
      doc.int_or("warmup_ms", static_cast<std::int64_t>(to_ms(cfg.warmup))) *
      kMillisecond;
  cfg.duration =
      doc.int_or("duration_ms",
                 static_cast<std::int64_t>(to_ms(cfg.duration))) *
      kMillisecond;
  cfg.seed = static_cast<std::uint64_t>(
      doc.int_or("seed", static_cast<std::int64_t>(cfg.seed)));
  if (cfg.num_groups < 1 || cfg.f < 1 || cfg.clients_per_group < 1 ||
      cfg.warmup < 0 || cfg.duration <= 0) {
    fail(error, "spec has a non-positive population or window field");
    return std::nullopt;
  }
  cfg.verify_workers = static_cast<std::uint32_t>(
      doc.int_or("verify_workers", cfg.verify_workers));
  cfg.exec_shards = static_cast<std::uint32_t>(
      doc.int_or("exec_shards", cfg.exec_shards));
  if (doc.has("monitors")) cfg.monitors = doc.get("monitors").as_bool();
  if (doc.has("span_tracing")) {
    cfg.span_tracing = doc.get("span_tracing").as_bool();
  }
  if (doc.has("observability")) {
    cfg.observability = doc.get("observability").as_bool();
  }

  const Json& wl = doc.get("workload");
  if (wl.is_object()) {
    if (wl.has("pattern") &&
        !parse_pattern(wl.get("pattern").as_string(), &cfg.workload.pattern,
                       error)) {
      return std::nullopt;
    }
    cfg.workload.zipf_s = wl.num_or("zipf_s", cfg.workload.zipf_s);
    cfg.workload.global_fanout = static_cast<int>(
        wl.int_or("global_fanout", cfg.workload.global_fanout));
    cfg.workload.mixed_local = static_cast<int>(
        wl.int_or("mixed_local", cfg.workload.mixed_local));
    cfg.workload.mixed_global = static_cast<int>(
        wl.int_or("mixed_global", cfg.workload.mixed_global));
    cfg.open_loop_local_share =
        wl.num_or("local_share", cfg.open_loop_local_share);
    if (cfg.workload.zipf_s < 0.0) {
      fail(error, "zipf_s must be >= 0");
      return std::nullopt;
    }
    if (cfg.open_loop_local_share > 1.0) {
      fail(error, "local_share must be <= 1");
      return std::nullopt;
    }
  }

  const Json& rate = doc.get("rate");
  if (rate.is_object()) {
    const std::string kind = rate.get("kind").as_string();
    RateSchedule& sched = spec.schedule;
    if (kind == "fixed" || kind.empty()) {
      sched.kind = RateSchedule::Kind::kFixed;
      sched.fixed_rate = rate.num_or("value", 0.0);
      if (sched.fixed_rate < 0.0) {
        fail(error, "fixed rate must be >= 0");
        return std::nullopt;
      }
    } else if (kind == "step" || kind == "sweep") {
      sched.kind = kind == "step" ? RateSchedule::Kind::kStep
                                  : RateSchedule::Kind::kSweep;
      const Json& rates = rate.get("rates");
      for (std::size_t i = 0; i < rates.size(); ++i) {
        const double r = rates.at(i).as_double();
        if (r <= 0.0) {
          fail(error, "step/sweep rates must be > 0");
          return std::nullopt;
        }
        if (!sched.rates.empty() && r <= sched.rates.back()) {
          fail(error, "step/sweep rates must be strictly increasing");
          return std::nullopt;
        }
        sched.rates.push_back(r);
      }
      if (sched.rates.empty()) {
        fail(error, "step/sweep schedule requires a non-empty \"rates\"");
        return std::nullopt;
      }
      sched.knee_p99_factor =
          rate.num_or("knee_p99_factor", sched.knee_p99_factor);
      sched.knee_goodput_floor =
          rate.num_or("knee_goodput_floor", sched.knee_goodput_floor);
      sched.bisect_iters = static_cast<int>(
          rate.int_or("bisect_iters", sched.bisect_iters));
      if (sched.knee_p99_factor <= 1.0 || sched.knee_goodput_floor <= 0.0 ||
          sched.knee_goodput_floor > 1.0 || sched.bisect_iters < 0) {
        fail(error, "knee parameters out of range");
        return std::nullopt;
      }
    } else {
      fail(error, "unknown rate kind: " + kind);
      return std::nullopt;
    }
  }

  const Json& abl = doc.get("ablations");
  for (std::size_t i = 0; i < abl.size(); ++i) {
    const std::string name = abl.at(i).as_string();
    ExperimentConfig probe;  // validate the name without mutating base
    if (!apply_ablation(probe, name)) {
      fail(error, "unknown ablation: " + name);
      return std::nullopt;
    }
    spec.ablations.push_back(name);
  }
  return spec;
}

std::optional<WorkloadSpec> load_workload_spec(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open workload spec: " + path);
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string parse_error;
  const auto doc = Json::parse(text.str(), &parse_error);
  if (!doc) {
    fail(error, path + ": " + parse_error);
    return std::nullopt;
  }
  return parse_workload_spec(*doc, error);
}

}  // namespace byzcast::workload
