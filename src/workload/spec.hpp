// Workload spec files: a JSON description of one experiment — population,
// destination pattern and skew, payload, rate schedule (fixed / step /
// sweep) and ablation switches — loadable by the sim/runtime harness
// (WorkloadRunner, bench_sweep) and by the real-TCP load generator
// (byzcast-loadgen --workload). Specs live in configs/workloads/*.json; the
// schema is documented in docs/ARCHITECTURE.md, "Workload engine".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "workload/experiment.hpp"

namespace byzcast::workload {

/// How the open-loop offered load evolves over the run.
struct RateSchedule {
  enum class Kind {
    kFixed,  ///< one rate for the whole run (0 = closed loop)
    kStep,   ///< each rate in `rates` run as its own measurement segment
    kSweep,  ///< latency-vs-offered-load sweep over `rates` + knee search
  };
  Kind kind = Kind::kFixed;
  double fixed_rate = 0.0;
  std::vector<double> rates;
  // Knee detection (sweep only): a point is saturated when its p99 exceeds
  // `knee_p99_factor` x the low-load plateau p99, or its goodput falls
  // below `knee_goodput_floor` x offered. The knee is refined by
  // `bisect_iters` bisection steps between the last unsaturated and first
  // saturated grid rates.
  double knee_p99_factor = 5.0;
  double knee_goodput_floor = 0.95;
  int bisect_iters = 3;
};

struct WorkloadSpec {
  std::string name;
  /// Everything but the rate: protocol, environment, population, pattern,
  /// payload, windows, seed, monitors. The schedule decides how
  /// open_loop_total_rate is filled in per run.
  ExperimentConfig base;
  RateSchedule schedule;
  /// Ablation names ("zero_copy_off", "mac_memo_off", "mac_memo_on",
  /// "pipeline_off", "batch_adapt_off"). Sweep mode runs one extra curve
  /// per entry next to the baseline; fixed/step mode applies them all to
  /// the single configuration.
  std::vector<std::string> ablations;
};

/// Applies one named ablation to `config`; false if the name is unknown.
/// "mac_memo_on" is the memo-ON companion of the MAC pair (real HMACs,
/// memo enabled) — see ExperimentConfig::real_macs.
bool apply_ablation(ExperimentConfig& config, const std::string& name);

/// Parses a spec document. Returns nullopt and fills `error` on unknown
/// enum strings, bad types or missing required fields ("name").
[[nodiscard]] std::optional<WorkloadSpec> parse_workload_spec(
    const Json& doc, std::string* error);

/// Reads and parses a spec file from disk.
[[nodiscard]] std::optional<WorkloadSpec> load_workload_spec(
    const std::string& path, std::string* error);

}  // namespace byzcast::workload
