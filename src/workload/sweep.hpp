// SweepDriver: latency-vs-offered-load curves with automatic saturation-knee
// detection. Runs one open-loop experiment per grid rate, classifies each
// point as saturated (p99 blow-up past the low-load plateau, or goodput
// falling short of offered), takes the first saturated rate as the knee and
// refines it by bisection between the last healthy and first saturated grid
// points. The knee is the paper-style "maximum sustainable throughput"
// number that closed-loop sweeps only bracket by guessing client counts.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/experiment.hpp"

namespace byzcast::workload {

/// One measured point of a sweep curve.
struct SweepPoint {
  double offered = 0.0;        // msg/s offered (open-loop total rate)
  double throughput = 0.0;     // msg/s completed in the window
  double goodput_ratio = 0.0;  // throughput / offered
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t monitor_violations = 0;
  std::uint64_t sample_overflow = 0;  // recorder/meter caps hit (should be 0)
  bool saturated = false;
};

struct SweepSettings {
  std::vector<double> rates;  // strictly increasing grid
  double knee_p99_factor = 5.0;
  double knee_goodput_floor = 0.95;
  int bisect_iters = 3;
};

struct SweepCurve {
  std::string label;
  /// All measured points (grid + bisection refinements), sorted by offered.
  std::vector<SweepPoint> points;
  bool knee_found = false;
  /// First saturated point after refinement (valid when knee_found).
  SweepPoint knee;
  /// Highest measured rate classified healthy (0 if none were).
  double max_unsaturated_rate = 0.0;
};

inline constexpr std::size_t kNoKnee = std::numeric_limits<std::size_t>::max();

/// Classifies saturation in place: the plateau p99 is the lowest-offered
/// point's; a point saturates when p99 > factor * plateau or
/// goodput_ratio < floor. `points` must be sorted by offered rate. Pure —
/// unit-testable without running experiments.
void classify_saturation(std::vector<SweepPoint>& points, double p99_factor,
                         double goodput_floor);

/// Index of the first saturated point, or kNoKnee.
[[nodiscard]] std::size_t first_saturated(const std::vector<SweepPoint>& pts);

/// Runs the full sweep for `base` (its open_loop_total_rate is overwritten
/// per point). Experiments run with whatever observability/monitors `base`
/// enables; monitor violations are summed into each point.
[[nodiscard]] SweepCurve run_sweep(const ExperimentConfig& base,
                                   const SweepSettings& settings,
                                   const std::string& label);

/// Measures a single point (exposed for the runner's fixed/step modes).
[[nodiscard]] SweepPoint measure_point(const ExperimentConfig& base,
                                       double rate);

}  // namespace byzcast::workload
