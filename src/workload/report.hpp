// Plain-text reporting helpers shared by the benchmark binaries: aligned
// series tables (throughput / latency rows as the paper's figures) and CDF
// dumps.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace byzcast::workload {

/// Prints "== title ==" section header.
void print_header(const std::string& title);

/// Prints one table: `columns` are headers, each row a vector of
/// preformatted cells.
void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows);

/// Formats a double with `precision` decimals.
[[nodiscard]] std::string fmt(double value, int precision = 1);

/// Prints a latency CDF as "latency_ms cumulative_fraction" pairs.
void print_cdf(const std::string& label, const LatencyRecorder& recorder,
               std::size_t max_points = 20);

/// Writes a CDF as CSV ("latency_ms,cdf") to `path`, creating parent
/// directories. Benches use this to emit plottable data under bench_csv/.
void write_cdf_csv(const std::string& path, const LatencyRecorder& recorder,
                   std::size_t max_points = 200);

/// Writes a generic series table as CSV to `path`.
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows);

}  // namespace byzcast::workload
