// Plain-text reporting helpers shared by the benchmark binaries: aligned
// series tables (throughput / latency rows as the paper's figures) and CDF
// dumps.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "workload/experiment.hpp"

namespace byzcast::workload {

/// Prints "== title ==" section header.
void print_header(const std::string& title);

/// Prints one table: `columns` are headers, each row a vector of
/// preformatted cells.
void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows);

/// Formats a double with `precision` decimals.
[[nodiscard]] std::string fmt(double value, int precision = 1);

/// Prints a latency CDF as "latency_ms cumulative_fraction" pairs.
void print_cdf(const std::string& label, const LatencyRecorder& recorder,
               std::size_t max_points = 20);

/// Writes a CDF as CSV ("latency_ms,cdf") to `path`, creating parent
/// directories. Benches use this to emit plottable data under bench_csv/.
void write_cdf_csv(const std::string& path, const LatencyRecorder& recorder,
                   std::size_t max_points = 200);

/// Writes a generic series table as CSV to `path`.
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows);

/// Writes the machine-readable metrics sidecar for one experiment run as
/// JSON: the whole MetricsRegistry (per-group a-delivery counters,
/// per-replica CPU-busy / queue-depth timeseries, batch-size histograms),
/// run summary numbers, and one reconstructed hop trace of a multi-hop
/// (global) message when the run produced one. Benches emit this next to
/// their CSVs; tools/plot_benches.py consumes it. No-op (removing any stale
/// file is NOT attempted) when the run had observability disabled.
void write_metrics_sidecar(const std::string& path,
                           const ExperimentResult& result);

}  // namespace byzcast::workload
