// Plain-text reporting helpers shared by the benchmark binaries: aligned
// series tables (throughput / latency rows as the paper's figures) and CDF
// dumps.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "workload/experiment.hpp"

namespace byzcast::workload {

/// Prints "== title ==" section header.
void print_header(const std::string& title);

/// Prints one table: `columns` are headers, each row a vector of
/// preformatted cells.
void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows);

/// Formats a double with `precision` decimals.
[[nodiscard]] std::string fmt(double value, int precision = 1);

/// Prints a latency CDF as "latency_ms cumulative_fraction" pairs.
void print_cdf(const std::string& label, const LatencyRecorder& recorder,
               std::size_t max_points = 20);

/// Writes a CDF as CSV ("latency_ms,cdf") to `path`, creating parent
/// directories. Benches use this to emit plottable data under bench_csv/.
void write_cdf_csv(const std::string& path, const LatencyRecorder& recorder,
                   std::size_t max_points = 200);

/// Writes a generic series table as CSV to `path`.
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows);

/// Writes the machine-readable metrics sidecar for one experiment run as
/// JSON: the whole MetricsRegistry (per-group a-delivery counters,
/// per-replica CPU-busy / queue-depth timeseries, batch-size histograms),
/// run summary numbers, and one reconstructed hop trace of a multi-hop
/// (global) message when the run produced one. Benches emit this next to
/// their CSVs; tools/plot_benches.py consumes it. No-op (removing any stale
/// file is NOT attempted) when the run had observability disabled.
void write_metrics_sidecar(const std::string& path,
                           const ExperimentResult& result);

/// Writes the deterministic span sidecar (schema "byzcast-spans-v1") for a
/// run with span tracing on: per-message critical-path breakdowns sorted by
/// message id, local/global aggregates, per-tree-edge latency percentiles
/// and monitor violation counts. All times are integer nanoseconds, so the
/// file is byte-identical across same-seed simulation runs. No-op when the
/// run had no SpanLog. `f` selects the representative replica per group
/// (the (f+1)-th earliest a-delivery — the copy completing a reply quorum).
void write_span_sidecar(const std::string& path,
                        const ExperimentResult& result, int f);

/// Writes the SpanLog as Chrome trace-event JSON — load in Perfetto
/// (ui.perfetto.dev) to browse one track per replica, one process per
/// group. No-op when the run had no SpanLog.
void write_chrome_trace(const std::string& path,
                        const ExperimentResult& result);

/// Prints the per-class latency-breakdown table (end-to-end p50/p99 and the
/// queueing / cpu / network / quorum-wait component medians) reconstructed
/// from the run's spans. No-op without a SpanLog.
void print_latency_breakdown(const ExperimentResult& result, int f);

}  // namespace byzcast::workload
