#include "workload/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/span_export.hpp"
#include "core/critical_path.hpp"

namespace byzcast::workload {

void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(columns);
  std::string rule;
  for (const auto w : widths) rule += std::string(w, '-') + "  ";
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

namespace {

std::ofstream open_csv(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  return std::ofstream(path);
}

}  // namespace

void write_cdf_csv(const std::string& path, const LatencyRecorder& recorder,
                   std::size_t max_points) {
  auto out = open_csv(path);
  if (!out) return;
  out << "latency_ms,cdf\n";
  for (const auto& [ms, frac] : recorder.cdf(max_points)) {
    out << ms << ',' << frac << '\n';
  }
}

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& columns,
                      const std::vector<std::vector<std::string>>& rows) {
  auto out = open_csv(path);
  if (!out) return;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out << (i ? "," : "") << columns[i];
  }
  out << '\n';
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i ? "," : "") << row[i];
    }
    out << '\n';
  }
}

void write_metrics_sidecar(const std::string& path,
                           const ExperimentResult& result) {
  if (!result.metrics) return;
  auto out = open_csv(path);
  if (!out) return;
  out << "{\"summary\":{";
  out << "\"throughput\":" << result.throughput;
  out << ",\"throughput_local\":" << result.throughput_local;
  out << ",\"throughput_global\":" << result.throughput_global;
  out << ",\"completed\":" << result.completed;
  out << ",\"a_deliveries\":" << result.a_deliveries;
  out << ",\"wire_messages\":" << result.wire_messages;
  out << ",\"latency_mean_ms\":" << result.latency_all.mean_ms();
  out << ",\"latency_p95_ms\":" << result.latency_all.percentile_ms(95);
  out << "},\"metrics\":" << result.metrics->to_json();

  out << ",\"trace\":{";
  if (result.trace) {
    out << "\"events_recorded\":" << result.trace->records().size();
    out << ",\"events_dropped\":" << result.trace->dropped();
    const MessageId pick = result.trace->find_multi_hop();
    out << ",\"example_multi_hop\":";
    if (pick.origin.valid()) {
      out << "{\"msg\":\"" << to_string(pick) << "\",\"hops\":[";
      bool first = true;
      for (const auto& rec : result.trace->path(pick)) {
        if (!first) out << ",";
        first = false;
        out << "{\"group\":" << rec.group.value
            << ",\"replica\":" << rec.replica.value << ",\"event\":\""
            << to_string(rec.event) << "\",\"hop\":" << rec.hop
            << ",\"t_ms\":" << to_ms(rec.when) << "}";
      }
      out << "]}";
    } else {
      out << "null";
    }
  } else {
    out << "\"events_recorded\":0,\"events_dropped\":0,"
           "\"example_multi_hop\":null";
  }
  out << "}}\n";
}

namespace {

void json_components(std::ostream& out, const core::Components& c) {
  out << "{\"queueing_ns\":" << c.queueing << ",\"cpu_ns\":" << c.cpu
      << ",\"network_ns\":" << c.network << ",\"quorum_wait_ns\":"
      << c.quorum_wait << "}";
}

void json_pcts(std::ostream& out, const core::PercentileStats& s) {
  out << "{\"n\":" << s.n << ",\"p50_ns\":" << s.p50 << ",\"p99_ns\":"
      << s.p99 << "}";
}

void json_aggregate(std::ostream& out, const core::ClassAggregate& a) {
  out << "{\"n\":" << a.n << ",\"end_to_end\":";
  json_pcts(out, a.end_to_end);
  out << ",\"queueing\":";
  json_pcts(out, a.queueing);
  out << ",\"cpu\":";
  json_pcts(out, a.cpu);
  out << ",\"network\":";
  json_pcts(out, a.network);
  out << ",\"quorum_wait\":";
  json_pcts(out, a.quorum_wait);
  out << "}";
}

}  // namespace

void write_span_sidecar(const std::string& path,
                        const ExperimentResult& result, int f) {
  if (!result.spans) return;
  auto out = open_csv(path);
  if (!out) return;

  core::CriticalPathAnalyzer analyzer(*result.spans,
                                      core::CriticalPathAnalyzer::Options{f});
  out << "{\"schema\":\"byzcast-spans-v1\"";
  out << ",\"f\":" << f;
  out << ",\"spans_recorded\":" << result.spans->spans().size();
  out << ",\"spans_dropped\":" << result.spans->dropped();

  out << ",\"messages\":[";
  bool first = true;
  for (const auto& m : analyzer.messages()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << to_string(m.id) << "\",\"complete\":"
        << (m.complete ? "true" : "false") << ",\"dst_count\":" << m.dst_count
        << ",\"global\":" << (m.is_global ? "true" : "false")
        << ",\"submitted_ns\":" << m.submitted << ",\"end_to_end_ns\":"
        << m.end_to_end;
    if (m.complete) {
      out << ",\"critical_dst\":" << m.critical_dst.value << ",\"totals\":";
      json_components(out, m.totals);
      out << ",\"hops\":[";
      bool hop_first = true;
      for (const auto& h : m.hops) {
        if (!hop_first) out << ",";
        hop_first = false;
        out << "{\"group\":" << h.group.value << ",\"replica\":"
            << h.replica.value << ",\"components\":";
        json_components(out, h.components);
        out << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "]";

  out << ",\"aggregates\":{\"local\":";
  json_aggregate(out, analyzer.aggregate(/*global=*/false));
  out << ",\"global\":";
  json_aggregate(out, analyzer.aggregate(/*global=*/true));
  out << "}";

  out << ",\"edges\":[";
  first = true;
  for (const auto& [edge, stats] : analyzer.edge_latency()) {
    if (!first) out << ",";
    first = false;
    out << "{\"parent\":" << edge.first.value << ",\"child\":"
        << edge.second.value << ",\"stats\":";
    json_pcts(out, stats);
    out << "}";
  }
  out << "]";

  out << ",\"monitor\":";
  if (result.monitors) {
    out << "{\"violations_total\":" << result.monitors->total_violations();
    for (const char* name :
         {"fifo", "group_agreement", "acyclic_order", "bounded_pending"}) {
      out << ",\"" << name << "\":" << result.monitors->violations(name);
    }
    out << "}";
  } else {
    out << "null";
  }
  out << "}\n";
}

void write_chrome_trace(const std::string& path,
                        const ExperimentResult& result) {
  if (!result.spans) return;
  auto out = open_csv(path);
  if (!out) return;
  out << chrome_trace_json(*result.spans);
}

void print_latency_breakdown(const ExperimentResult& result, int f) {
  if (!result.spans) return;
  core::CriticalPathAnalyzer analyzer(*result.spans,
                                      core::CriticalPathAnalyzer::Options{f});
  print_header("latency breakdown (critical path, medians)");
  std::vector<std::vector<std::string>> rows;
  for (const bool global : {false, true}) {
    const auto agg = analyzer.aggregate(global);
    if (agg.n == 0) continue;
    rows.push_back({global ? "global" : "local", std::to_string(agg.n),
                    fmt(to_ms(agg.end_to_end.p50), 2),
                    fmt(to_ms(agg.end_to_end.p99), 2),
                    fmt(to_ms(agg.queueing.p50), 2),
                    fmt(to_ms(agg.cpu.p50), 2),
                    fmt(to_ms(agg.network.p50), 2),
                    fmt(to_ms(agg.quorum_wait.p50), 2)});
  }
  if (rows.empty()) {
    std::printf("(no complete traced messages)\n");
    return;
  }
  print_table({"class", "n", "e2e p50 ms", "e2e p99 ms", "queue p50",
               "cpu p50", "net p50", "quorum p50"},
              rows);
}

void print_cdf(const std::string& label, const LatencyRecorder& recorder,
               std::size_t max_points) {
  std::printf("%s latency CDF (n=%zu):\n", label.c_str(), recorder.count());
  for (const auto& [ms, frac] : recorder.cdf(max_points)) {
    std::printf("  %8.2f ms  %5.3f\n", ms, frac);
  }
}

}  // namespace byzcast::workload
